#!/usr/bin/env python
"""CI benchmark regression gate: compare two BENCH trajectory files.

Usage::

    python benchmarks/compare_trajectory.py PREVIOUS.json CURRENT.json
    python benchmarks/compare_trajectory.py PREV_DIR/ CURRENT.json

Compares the *headline* numbers -- the plan-cache warm-compile speedup
and the engine-kernel speedups -- and exits non-zero when any of them
regressed by more than ``TOLERANCE`` (10%).  Numbers missing from the
previous trajectory (first run after a rename, artifact expired) are
reported but never fail the gate, so the gate cannot wedge itself.

The trajectory filename is versioned per growth PR (``BENCH_<N>.json``),
and the sequence may skip numbers.  When ``PREVIOUS`` is a *directory*,
the gate picks the ``BENCH_<N>.json`` with the largest **numeric** N
(``BENCH_10`` beats ``BENCH_9``, which lexicographic sorting gets
wrong), and passes vacuously when the directory holds no trajectory at
all -- so a ``BENCH_6`` -> ``BENCH_8`` gap cannot wedge the gate.

CI wiring (.github/workflows/ci.yml): the previous argument is the
unpacked ``bench-trajectory`` artifact directory of the last successful
run on ``main``; the current file is this run's trajectory.  A
maintainer who *intends* a slowdown (e.g. trading warm-compile time for
a new analysis) applies the ``bench-regress-ok`` label to the pull
request, which skips the gate for that PR -- see DESIGN.md, "The
benchmark gate".
"""

from __future__ import annotations

import json
import os
import re
import sys

#: Relative regression allowed before the gate fails: measured headline
#: must stay above ``previous * (1 - TOLERANCE)``.
TOLERANCE = 0.10

#: The gated headline numbers: ``(record name, value key)``.  Higher is
#: better for every entry.
HEADLINES = (
    ("plan_cache_warm", "speedup"),
    ("join_kernel", "speedup"),
    ("group_kernel", "speedup"),
)


#: Trajectory filename pattern; group 1 is the numeric sequence N.
_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def pick_previous(directory: str) -> "str | None":
    """The ``BENCH_<N>.json`` in ``directory`` with the largest numeric
    ``N`` (*not* the lexicographically largest -- ``BENCH_10.json``
    beats ``BENCH_9.json``), or ``None`` when the directory holds no
    trajectory file."""
    best_n = -1
    best: "str | None" = None
    for name in os.listdir(directory):
        m = _BENCH_RE.match(name)
        if m and int(m.group(1)) > best_n:
            best_n = int(m.group(1))
            best = os.path.join(directory, name)
    return best


def load_records(path: str) -> dict:
    with open(path) as fh:
        data = json.load(fh)
    return data.get("records", {})


def main(argv: "list[str]") -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    prev_path = argv[1]
    if os.path.isdir(prev_path):
        picked = pick_previous(prev_path)
        if picked is None:
            print(f"no BENCH_<N>.json under {prev_path!r}; "
                  f"nothing to gate against (passing vacuously)")
            return 0
        print(f"previous trajectory: {picked}")
        prev_path = picked
    previous = load_records(prev_path)
    current = load_records(argv[2])
    failures = []
    for name, key in HEADLINES:
        prev = previous.get(name, {}).get(key)
        cur = current.get(name, {}).get(key)
        if cur is None:
            failures.append(f"{name}.{key}: missing from the current "
                            f"trajectory -- did the benchmark get "
                            f"renamed without updating the gate?")
            continue
        if prev is None:
            print(f"  {name}.{key}: {cur:.2f} (no previous value; "
                  f"not gated)")
            continue
        floor = prev * (1.0 - TOLERANCE)
        verdict = "ok" if cur >= floor else "REGRESSION"
        print(f"  {name}.{key}: {prev:.2f} -> {cur:.2f} "
              f"(floor {floor:.2f}) {verdict}")
        if cur < floor:
            failures.append(
                f"{name}.{key} regressed {prev:.2f} -> {cur:.2f} "
                f"(> {TOLERANCE:.0%}); if intended, apply the "
                f"'bench-regress-ok' label to the PR")
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
