"""Shared benchmark fixtures (kept small so the suite stays fast)."""

import pytest

from repro.bench.workloads import avalanche_dataset, paper_dataset


@pytest.fixture(scope="session")
def paper_catalog():
    return paper_dataset()


@pytest.fixture(scope="session", params=(50, 200, 800))
def avalanche_catalog(request):
    """Table 1 instances, scaled to benchmark time (the harness in
    ``examples/avalanche_table1.py`` runs the full-scale experiment)."""
    return request.param, avalanche_dataset(request.param)
