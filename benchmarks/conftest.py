"""Shared benchmark fixtures (kept small so the suite stays fast)."""

import pathlib

import pytest

from repro.bench.workloads import avalanche_dataset, paper_dataset

_HERE = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(config, items):
    """Everything under benchmarks/ carries the ``bench`` marker (the
    hook sees the whole session's items, so filter by path)."""
    for item in items:
        if _HERE in pathlib.Path(item.fspath).parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def paper_catalog():
    return paper_dataset()


@pytest.fixture(scope="session", params=(50, 200, 800))
def avalanche_catalog(request):
    """Table 1 instances, scaled to benchmark time (the harness in
    ``examples/avalanche_table1.py`` runs the full-scale experiment)."""
    return request.param, avalanche_dataset(request.param)
