"""Shared benchmark fixtures, the ``--quick`` switch, and the
trajectory recorder.

``--quick`` shrinks the suite to CI scale: only the smallest avalanche
instance runs (the full-scale experiment lives in
``examples/avalanche_table1.py``).

Every session that executes at least one benchmark also emits
``BENCH_10.json`` at the repo root: one record per benchmark test
(outcome + wall time), any named measurements tests published through
the ``bench_record`` fixture (kernel speedups, parallel-vs-serial
ratios), plus the delta of the process-wide ``repro.obs.METRICS``
registry over the session, so CI can archive how the numbers move
commit over commit.
"""

import json
import pathlib
import time

import pytest

from repro.bench.workloads import avalanche_dataset, paper_dataset
from repro.obs import METRICS

_HERE = pathlib.Path(__file__).parent
_TRAJECTORY = _HERE.parent / "BENCH_10.json"


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="benchmark suite at CI scale (smallest instances only)")


def pytest_collection_modifyitems(config, items):
    """Everything under benchmarks/ carries the ``bench`` marker (the
    hook sees the whole session's items, so filter by path)."""
    for item in items:
        if _HERE in pathlib.Path(item.fspath).parents:
            item.add_marker(pytest.mark.bench)


def pytest_configure(config):
    config.pluginmanager.register(_TrajectoryRecorder(config),
                                  "ferry-bench-trajectory")


@pytest.fixture(scope="session")
def paper_catalog():
    return paper_dataset()


@pytest.fixture(scope="session", params=(50, 200, 800))
def avalanche_catalog(request):
    """Table 1 instances, scaled to benchmark time (the harness in
    ``examples/avalanche_table1.py`` runs the full-scale experiment)."""
    if request.param > 50 and request.config.getoption("--quick", False):
        pytest.skip("--quick runs the smallest instance only")
    return request.param, avalanche_dataset(request.param)


@pytest.fixture
def bench_record(request):
    """Publish named measurements into the ``BENCH_10.json`` trajectory.

    ``bench_record(name, **values)`` stores a dict of numbers under
    ``name`` (e.g. ``bench_record("join_kernel", speedup=3.4)``); the
    recorder dumps all of them under the file's ``"records"`` key.
    """
    recorder = request.config.pluginmanager.get_plugin(
        "ferry-bench-trajectory")

    def record(name: str, **values):
        recorder.records[name] = values

    return record


class _TrajectoryRecorder:
    """Writes ``BENCH_10.json``: per-benchmark outcomes and timings,
    named measurements, plus the session's METRICS counter deltas."""

    def __init__(self, config):
        self.quick = bool(config.getoption("--quick", False))
        self.started_at = time.time()
        self.metrics_before = METRICS.snapshot()
        self.results: list[dict] = []
        self.records: dict[str, dict] = {}

    def pytest_runtest_logreport(self, report):
        if report.when != "call":
            return
        if "benchmarks/" not in report.nodeid.replace("\\", "/"):
            return
        self.results.append({
            "nodeid": report.nodeid,
            "outcome": report.outcome,
            "duration": report.duration,
        })

    def pytest_sessionfinish(self, session, exitstatus):
        if not self.results:
            return  # no benchmark ran; leave any existing file alone
        after = METRICS.snapshot()
        deltas = {
            name: after[name] - self.metrics_before.get(name, 0)
            for name in after
            if not isinstance(after[name], dict)
            and after[name] != self.metrics_before.get(name, 0)
        }
        _TRAJECTORY.write_text(json.dumps({
            "schema": "ferry-bench-trajectory/2",
            "generated_at": time.time(),
            "quick": self.quick,
            "wall_time": time.time() - self.started_at,
            "benchmarks": sorted(self.results,
                                 key=lambda r: r["nodeid"]),
            "records": dict(sorted(self.records.items())),
            "metrics_delta": dict(sorted(deltas.items())),
        }, indent=2, sort_keys=True) + "\n")
