"""Ablation: execution backend choice (Figure 2, step 4).

The same compiled bundle runs on (a) the in-memory algebra engine, (b)
SQLite via the generated SQL:1999, and (c) the MIL column VM.  All three
return identical results; the bench shows their relative costs (the
paper's Pathfinder similarly targeted both SQL:1999 systems and
MonetDB/MIL).
"""


from repro import Connection
from repro.bench.table1 import running_example_query
from repro.bench.workloads import avalanche_dataset

#: SQLite evaluates the deep CTE pyramid with nested-loop joins only, so
#: it gets a smaller instance (the paper's backend was PostgreSQL).
CATALOG_SMALL = avalanche_dataset(25)
CATALOG = avalanche_dataset(150)


def run_on(backend: str, catalog):
    db = Connection(backend=backend, catalog=catalog)
    return db.run(running_example_query(db))


class TestBackendsAgree:
    def test_all_backends_same_result(self):
        results = [run_on(b, CATALOG_SMALL)
                   for b in ("engine", "sqlite", "mil")]
        assert results[0] == results[1] == results[2]


class TestBackendRuntime:
    def test_engine(self, benchmark):
        benchmark(lambda: run_on("engine", CATALOG))

    def test_mil(self, benchmark):
        benchmark(lambda: run_on("mil", CATALOG))

    def test_sqlite(self, benchmark):
        benchmark(lambda: run_on("sqlite", CATALOG_SMALL))
