"""Ablation: join-graph isolation (correlated-filter decorrelation).

Without the decorrelation rule, a comprehension guard correlating a
generator with the enclosing iteration (``fac == f`` in the running
example's ``descrFacility``) compiles to a ``loop x table`` cross product
-- *quadratic* in the Table 1 workload.  With it, the filter becomes one
equi-join against the source compiled once (DESIGN.md, join-graph
isolation [10]); the running example drops from quadratic to
``O(N · matches)``.

The benchmark sizes are deliberately tiny: the naive plan at n=40 already
costs what the decorrelated plan costs at n≈2000.
"""


from repro import Connection
from repro.bench.table1 import running_example_query
from repro.bench.workloads import avalanche_dataset

CATALOG_TINY = avalanche_dataset(12)
CATALOG = avalanche_dataset(40)


def run(catalog, decorrelate: bool):
    db = Connection(catalog=catalog, decorrelate=decorrelate)
    return db.run(running_example_query(db))


class TestEquivalence:
    def test_both_modes_agree(self):
        assert run(CATALOG_TINY, True) == run(CATALOG_TINY, False)

    def test_decorrelated_plan_shape(self):
        """With the rule on, the correlated filter over ``features`` is a
        join -- no quadratic cross of the loop with the table survives
        optimization."""
        from repro.algebra import node_count
        sizes = {}
        for mode in (True, False):
            db = Connection(catalog=CATALOG_TINY, decorrelate=mode)
            compiled = db.compile(running_example_query(db))
            sizes[mode] = sum(node_count(q.plan)
                              for q in compiled.bundle.queries)
        assert sizes[True] != sizes[False]  # genuinely different plans


class TestRuntime:
    def test_with_decorrelation(self, benchmark):
        benchmark(lambda: run(CATALOG, True))

    def test_without_decorrelation(self, benchmark):
        benchmark(lambda: run(CATALOG, False))
