"""Ablation: nested-data representation (Section 4.2).

The paper contrasts two encodings of nesting:

* **DSH/Ferry**: surrogate keys -- inner lists live in a separate table
  joined by foreign key ("can readily benefit from relational indexes");
* **DPH**: ``(offset, length)`` descriptors over one flat data array --
  locality-preserving, ideal in-heap, but on a relational backend it
  "would ultimately lead to range queries of the form
  ``x.pos BETWEEN offset AND offset + length`` -- a workable but less
  efficient alternative".

The bench computes per-segment sums over the same nested data three ways:
the loop-lifted surrogate-join plan, DPH's segmented sum over
descriptors, and the BETWEEN-style range-scan simulation.
"""

import pytest

from repro import Connection, fmap, fsum, group_with
from repro.bench.workloads import numbers_dataset
from repro.dph import from_list, sum_s

N = 3000
GROUPS = 60


@pytest.fixture(scope="session")
def nested_data():
    values = list(range(N))
    segments = [[v for v in values if v % GROUPS == g]
                for g in range(GROUPS)]
    return segments


class TestSegmentedSums:
    def test_surrogate_joins(self, benchmark, nested_data):
        """DSH: group on the database, sum per group -- surrogates link
        the outer and inner queries."""
        db = Connection(catalog=numbers_dataset(N))
        q = fmap(fsum, group_with(lambda x: x % GROUPS, db.table("nums")))
        result = benchmark(lambda: db.run(q))
        assert sorted(result) == sorted(sum(s) for s in nested_data)

    def test_dph_descriptors(self, benchmark, nested_data):
        """DPH: one flat data array + (offset, length) descriptors."""
        arr = from_list(nested_data)
        result = benchmark(lambda: sum_s(arr).values)
        assert sorted(result) == sorted(sum(s) for s in nested_data)

    def test_between_range_scans(self, benchmark, nested_data):
        """The BETWEEN simulation: per segment, scan the flat array for
        offset <= pos < offset + length (what descriptor-based nesting
        costs on a backend without positional indexes)."""
        flat = [v for seg in nested_data for v in seg]
        bounds = []
        offset = 0
        for seg in nested_data:
            bounds.append((offset, len(seg)))
            offset += len(seg)

        def run():
            out = []
            for off, ln in bounds:
                total = 0
                for pos, v in enumerate(flat):  # the range *scan*
                    if off <= pos < off + ln:
                        total += v
                out.append(total)
            return out

        result = benchmark(run)
        assert sorted(result) == sorted(sum(s) for s in nested_data)
