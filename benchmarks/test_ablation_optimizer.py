"""Ablation: the Pathfinder-style optimizer on vs. off.

DESIGN.md calls out the optimizer (step 3 of Figure 2) as a design
component; this bench quantifies it on the running example: plan sizes
(algebra nodes per bundle query) and end-to-end runtime with the rewrite
pipeline enabled and disabled.
"""

from repro import Connection
from repro.algebra import node_count
from repro.bench.table1 import running_example_query
from repro.bench.workloads import avalanche_dataset

CATALOG = avalanche_dataset(150)


def run(optimize: bool):
    db = Connection(catalog=CATALOG, optimize=optimize)
    return db.run(running_example_query(db))


class TestPlanSizes:
    def test_optimizer_shrinks_plans(self):
        raw = Connection(catalog=CATALOG, optimize=False)
        opt = Connection(catalog=CATALOG, optimize=True)
        q = running_example_query(raw)
        raw_sizes = [node_count(s.plan)
                     for s in raw.compile(q).bundle.queries]
        opt_sizes = [node_count(s.plan)
                     for s in opt.compile(q).bundle.queries]
        assert sum(opt_sizes) < sum(raw_sizes)

    def test_results_identical(self):
        assert run(True) == run(False)


class TestRuntime:
    def test_with_optimizer(self, benchmark):
        benchmark(lambda: run(True))

    def test_without_optimizer(self, benchmark):
        benchmark(lambda: run(False))
