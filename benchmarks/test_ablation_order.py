"""Ablation: the cost of the relational order encoding (Section 4.1).

DSH pays for list-order preservation by maintaining the dense ``pos``
column through every operation (extra ROW_NUMBER steps); LINQ-style
systems skip that and return rows in arbitrary order.  The bench
measures (a) an order-heavy DSH pipeline, (b) the same pipeline with the
order-sensitive steps removed, and (c) the order-oblivious LINQ baseline
doing the equivalent flat work -- quantifying what "respects list order"
costs.
"""


from repro import Connection, fmap, ffilter, reverse, sort_with
from repro.baselines.linq import LinqSession
from repro.bench.workloads import numbers_dataset

N = 4000
CATALOG = numbers_dataset(N)


class TestOrderMaintenance:
    def test_order_heavy_pipeline(self, benchmark):
        """filter + map + sort + reverse: four pos-renumbering steps."""
        db = Connection(catalog=CATALOG)
        nums = db.table("nums")
        q = reverse(sort_with(lambda x: x % 97,
                              fmap(lambda x: x * 3,
                                   ffilter(lambda x: x % 2 == 0, nums))))
        result = benchmark(lambda: db.run(q))
        assert len(result) == N // 2

    def test_order_light_pipeline(self, benchmark):
        """the same data volume without the order-sensitive steps."""
        db = Connection(catalog=CATALOG)
        nums = db.table("nums")
        q = fmap(lambda x: x * 3, ffilter(lambda x: x % 2 == 0, nums))
        result = benchmark(lambda: db.run(q))
        assert len(result) == N // 2

    def test_linq_order_oblivious(self, benchmark):
        """the LINQ baseline: one SQL statement, no order guarantee."""
        session = LinqSession(CATALOG)

        def run():
            return [row["n"] * 3 for row in session.table("nums")
                    if row["n"] % 2 == 0]

        result = benchmark(run)
        assert len(result) == N // 2
