"""Cost accounting for the analysis layer (inference + verifier), and
the guard that debug-off compile cost stays within 5% of seed on the
path users actually pay: the warm plan-cache path.

The seed control is the pre-analysis pipeline, reconstructed by
patching out the property sweep and replacing the final staged
verification with the seed's single structural walk (``check_plan`` was
``algebra.validate`` before the verifier subsumed it).  Against it we
measure:

``warm_ratio`` (guarded <= 1.05)
    Full warm ``run`` cost -- compile is a content-addressed cache hit
    and the bundle carries its ``verified`` stamp, so the analysis
    layer's steady-state cost is one ``getattr`` in backend prepare.
    This is the 5% promise: with the plan cache on (the default),
    debug-off compile cost stays within 5% of seed.

``cold_ratio`` (recorded; regression ceiling 2.5)
    A cold compile pays for what the seed never did: one memoized
    property-inference walk over the stabilized DAG (shared by the
    sweep, the F190 self-checks, and the final verifier through
    ``PropsCache``), plus the rewrite sweep and tidy-up round.  That is
    real work, bought deliberately -- the ceiling only pins it against
    silent regression (e.g. a second full inference walk sneaking in).

``inference_ms`` / ``verify_ms``
    Absolute component costs on the running example's final bundle,
    so the trajectory shows where analysis time goes, not just ratios.

``debug_on_ratio``
    Cold compile with ``FERRY_VERIFY=1`` (structural verification after
    every pass invocation) against debug-off -- the price of the debug
    mode CI runs once per push.

Timing discipline matches ``test_obs_overhead.py``: interleaved batches
and the better of ratio-of-minima and best per-pair ratio.
"""

import time
from contextlib import contextmanager

from repro import Connection
from repro.analysis import PropsCache, set_verify_debug, verify_bundle
from repro.analysis import verifier as verifier_mod
from repro.bench.table1 import running_example_query
from repro.bench.workloads import paper_dataset
from repro.optimizer import pipeline

BATCHES = 10
WARM_RUNS_PER_BATCH = 25
COLD_COMPILES_PER_BATCH = 6
WARM_LIMIT = 1.05
COLD_CEILING = 2.5


@contextmanager
def seed_pipeline():
    """The pre-analysis optimizer: no property sweep, and bundle
    validation is the seed's single structural schema walk."""
    real_sweep = pipeline.apply_property_rewrites
    real_verify = pipeline.verify_bundle

    def seed_validate(bundle, label="final", cache=None, **kwargs):
        for query in bundle.queries:
            verifier_mod.check_plan(query.plan)
        bundle.verified = True  # keep the warm run path identical
        return verifier_mod.VerifyReport(label=label)

    pipeline.apply_property_rewrites = (
        lambda plan, fired=None, cache=None, **kwargs: plan)
    pipeline.verify_bundle = seed_validate
    try:
        yield
    finally:
        pipeline.apply_property_rewrites = real_sweep
        pipeline.verify_bundle = real_verify


def interleaved_ratio(measure_current, measure_seed) -> float:
    """current/seed over interleaved batches; the better of the
    ratio-of-minima and the best per-pair ratio (see module docstring)."""
    measure_current()  # throwaway warm round per mode
    measure_seed()
    current_batches, seed_batches = [], []
    for _ in range(BATCHES):
        current_batches.append(measure_current())
        seed_batches.append(measure_seed())
    of_minima = min(current_batches) / min(seed_batches)
    best_pair = min(c / s for c, s in zip(current_batches, seed_batches))
    return min(of_minima, best_pair)


def test_warm_compile_cost_within_five_percent_of_seed(bench_record):
    current_db = Connection(catalog=paper_dataset())
    current_q = running_example_query(current_db)
    current_db.run(current_q)  # plan cache filled, bundle verified
    with seed_pipeline():
        seed_db = Connection(catalog=paper_dataset())
        seed_q = running_example_query(seed_db)
        seed_db.run(seed_q)

    def warm_batch(db, q):
        t0 = time.perf_counter()
        for _ in range(WARM_RUNS_PER_BATCH):
            db.run(q)
        return time.perf_counter() - t0

    ratio = interleaved_ratio(lambda: warm_batch(current_db, current_q),
                              lambda: warm_batch(seed_db, seed_q))

    assert current_db.compile(current_q).bundle.verified  # stamp held
    bench_record("analysis_overhead_warm", ratio=ratio, limit=WARM_LIMIT)
    assert ratio <= WARM_LIMIT, (
        f"analysis layer costs {ratio - 1.0:+.1%} on the warm "
        f"plan-cache path; the debug-off promise is < 5% of seed")


def test_cold_compile_analysis_cost_recorded(bench_record):
    db = Connection(catalog=paper_dataset())
    query = running_example_query(db)
    db.compile(query, use_cache=False)  # import/codegen warm-up

    def cold_batch():
        t0 = time.perf_counter()
        for _ in range(COLD_COMPILES_PER_BATCH):
            db.compile(query, use_cache=False)
        return time.perf_counter() - t0

    def seed_cold_batch():
        with seed_pipeline():
            return cold_batch()

    ratio = interleaved_ratio(cold_batch, seed_cold_batch)

    # the sweep really ran on the current side (its cost is real)
    stats = db.compile(query, use_cache=False).pass_stats
    assert stats.rewrites_fired.get("rownum_dense", 0) >= 3
    bench_record("analysis_overhead_cold", ratio=ratio,
                 ceiling=COLD_CEILING)
    assert ratio <= COLD_CEILING, (
        f"cold compile is {ratio:.2f}x seed; one memoized inference "
        f"walk per compile should stay under {COLD_CEILING}x")


def test_component_costs_recorded(bench_record):
    db = Connection(catalog=paper_dataset())
    query = running_example_query(db)
    bundle = db.compile(query, use_cache=False).bundle

    def best_of(fn, repeats=30):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best * 1000.0

    inference_ms = best_of(
        lambda: [PropsCache().infer(q.plan) for q in bundle.queries])
    verify_ms = best_of(
        lambda: verify_bundle(bundle, label="bench", mark=False))

    def cold_compile():
        db.compile(query, use_cache=False)

    debug_off_ms = best_of(cold_compile, repeats=10)
    previous = set_verify_debug(True)
    try:
        debug_on_ms = best_of(cold_compile, repeats=10)
    finally:
        set_verify_debug(previous)

    bench_record("analysis_components",
                 inference_ms=inference_ms, verify_ms=verify_ms,
                 cold_compile_ms=debug_off_ms,
                 debug_on_ratio=debug_on_ms / debug_off_ms)
    assert inference_ms > 0 and verify_ms > 0
