"""Vectorized engine kernels vs. the seed's row-at-a-time interpreter.

The engine backend evaluates algebra plans column at a time (MonetDB/MIL
style): parallel column lists, whole-column kernels built from C-level
primitives (``map``, ``itertools.compress``, ``dict.fromkeys``).  This
file measures the hot kernels against faithful in-file copies of the
seed's row-at-a-time implementations (tuple-building hash joins,
``setdefault`` grouping) over identical inputs:

* the join and grouped-aggregation hot paths must be at least **2x**
  faster than the seed kernels (measured ~2.4x / ~3.5x locally);
* every other operator gets a pytest-benchmark hook so per-kernel
  latencies land in CI's benchmark output;
* the Table 1 avalanche workload runs end-to-end on the engine at three
  scales (the bundle stays at 2 queries while per-operator cost grows);
* a >= 3-query bundle runs serial vs. parallel on SQLite, which releases
  the GIL during statement execution -- on a multi-core machine parallel
  must win; on a single core we only bound the coordination overhead.

All measured numbers are recorded into ``BENCH_5.json`` via
``bench_record``.
"""

import os
import random
import time
from operator import itemgetter

import pytest

from repro import Connection, fmap, fsum, group_with, pyq, the, tup
from repro.algebra import (
    BinApp,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    RowNum,
    Select,
    SemiJoin,
)
from repro.backends.engine.evaluate import Engine
from repro.backends.sql import SQLiteBackend
from repro.bench.table1 import run_dsh
from repro.bench.workloads import orders_dataset
from repro.ftypes import BoolT, DoubleT, IntT
from repro.runtime.catalog import Catalog

#: Acceptance bar for the join/group hot paths (ISSUE acceptance
#: criterion); locally ~2.4x (join) and ~3.5x (group).
MIN_KERNEL_SPEEDUP = 2.0


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def best_of(f, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# workload: a fact table joined against a keyed dimension table
# ----------------------------------------------------------------------

def _tables(n_rows: int, n_keys: int):
    """(fact, dim) row lists; every fact key hits the dimension (the
    compiler's spine-join shape)."""
    rng = random.Random(5)
    fact = [(rng.randrange(n_keys), i, float(i % 97), i % 7, i * 3,
             float(i) / 2)
            for i in range(n_rows)]
    dim = [(k, k * 2, f"name{k}") for k in range(n_keys)]
    return fact, dim


FACT_SCHEMA = (("k", IntT), ("a", IntT), ("v", DoubleT), ("g", IntT),
               ("x", IntT), ("y", DoubleT))
DIM_SCHEMA = (("k2", IntT), ("b", IntT), ("s", IntT))


@pytest.fixture(scope="module")
def kernel_env():
    """Engine + pre-evaluated literal inputs at benchmark scale.

    Deliberately NOT shrunk under ``--quick``: a kernel iteration is
    ~10ms, and at small scale fixed per-kernel overhead drowns the
    signal the 2x asserts measure."""
    n_rows = 30000
    n_keys = n_rows // 10
    fact, dim = _tables(n_rows, n_keys)
    lit_fact = LitTable(tuple(fact), FACT_SCHEMA)
    lit_dim = LitTable(tuple(dim), DIM_SCHEMA)
    engine = Engine(Catalog())
    memo = {}
    memo[id(lit_fact)] = engine._eval(lit_fact, memo)
    memo[id(lit_dim)] = engine._eval(lit_dim, memo)
    return {"engine": engine, "memo": memo, "fact": fact, "dim": dim,
            "lit_fact": lit_fact, "lit_dim": lit_dim, "n_rows": n_rows}


# ----------------------------------------------------------------------
# the seed's row-at-a-time kernels, copied faithfully (the baseline)
# ----------------------------------------------------------------------

def seed_eqjoin(lrows, rrows, lidx=0, ridx=0):
    lkey, rkey = itemgetter(lidx), itemgetter(ridx)
    buckets = {}
    for rr in rrows:
        buckets.setdefault(rkey(rr), []).append(rr)
    rows = []
    empty = []
    for lr in lrows:
        for rr in buckets.get(lkey(lr), empty):
            rows.append(lr + rr)
    return rows


def seed_group_sum_count(rows, gidx=(0,), vidx=2):
    groups = {}
    for row in rows:
        groups.setdefault(tuple(row[i] for i in gidx), []).append(row)
    out = []
    for key, members in groups.items():
        values = [m[vidx] for m in members]
        out.append(key + (sum(values), len(members)))
    return out


def seed_select(rows, mask_idx):
    return [row for row in rows if row[mask_idx]]


def seed_distinct(rows):
    seen = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


# ----------------------------------------------------------------------
# hot-path speedup asserts (the tentpole's acceptance criterion)
# ----------------------------------------------------------------------

class TestKernelSpeedups:
    def test_join_kernel_2x_over_seed(self, kernel_env, bench_record):
        env = kernel_env
        join = EqJoin(env["lit_fact"], env["lit_dim"], (("k", "k2"),))
        columnar = best_of(lambda: env["engine"]._eval(join, env["memo"]))
        seed = best_of(lambda: seed_eqjoin(env["fact"], env["dim"]))

        rel = env["engine"]._eval(join, env["memo"])
        assert sorted(zip(*rel.columns)) == sorted(
            seed_eqjoin(env["fact"], env["dim"]))

        speedup = seed / columnar
        bench_record("join_kernel", rows=env["n_rows"],
                     columnar_s=columnar, seed_s=seed, speedup=speedup)
        assert speedup >= MIN_KERNEL_SPEEDUP, (
            f"columnar join {columnar * 1e3:.2f}ms vs seed "
            f"{seed * 1e3:.2f}ms: only {speedup:.2f}x")

    def test_group_kernel_2x_over_seed(self, kernel_env, bench_record):
        env = kernel_env
        grp = GroupAggr(env["lit_fact"], ("k",),
                        (("sum", "v", "s"), ("count", None, "c")))
        columnar = best_of(lambda: env["engine"]._eval(grp, env["memo"]))
        seed = best_of(lambda: seed_group_sum_count(env["fact"]))

        rel = env["engine"]._eval(grp, env["memo"])
        assert sorted(zip(*rel.columns)) == sorted(
            seed_group_sum_count(env["fact"]))

        speedup = seed / columnar
        bench_record("group_kernel", rows=env["n_rows"],
                     columnar_s=columnar, seed_s=seed, speedup=speedup)
        assert speedup >= MIN_KERNEL_SPEEDUP, (
            f"columnar group {columnar * 1e3:.2f}ms vs seed "
            f"{seed * 1e3:.2f}ms: only {speedup:.2f}x")


# ----------------------------------------------------------------------
# per-operator kernel latencies (pytest-benchmark hooks)
# ----------------------------------------------------------------------

class TestPerOperatorKernels:
    def _mask_env(self, env):
        """fact extended with a Boolean mask column (a != 0 mod 3)."""
        mask = BinApp(env["lit_fact"], "eq", "g",
                      _const(0), "m")
        env["memo"].setdefault(id(mask),
                               env["engine"]._eval(mask, env["memo"]))
        return mask

    def test_select_kernel(self, benchmark, kernel_env):
        env = kernel_env
        mask = self._mask_env(env)
        node = Select(mask, "m")
        rel = benchmark(lambda: env["engine"]._eval(node, env["memo"]))
        assert rel.nrows == sum(
            1 for row in env["fact"] if row[3] == 0)

    def test_distinct_kernel(self, benchmark, kernel_env):
        env = kernel_env
        node = Distinct(env["lit_dim"])
        rel = benchmark(lambda: env["engine"]._eval(node, env["memo"]))
        assert rel.nrows == len(env["dim"])

    def test_semijoin_kernel(self, benchmark, kernel_env):
        env = kernel_env
        node = SemiJoin(env["lit_fact"], env["lit_dim"], (("k", "k2"),))
        rel = benchmark(lambda: env["engine"]._eval(node, env["memo"]))
        assert rel.nrows == env["n_rows"]  # every key hits

    def test_rownum_kernel(self, benchmark, kernel_env):
        env = kernel_env
        node = RowNum(env["lit_fact"], "rn", (("a", "asc"),), ("g",))
        rel = benchmark(lambda: env["engine"]._eval(node, env["memo"]))
        assert max(rel.column("rn")) <= env["n_rows"]

    def test_binapp_kernel(self, benchmark, kernel_env):
        env = kernel_env
        node = BinApp(env["lit_fact"], "mul", "v", "a", "out")
        rel = benchmark(lambda: env["engine"]._eval(node, env["memo"]))
        assert rel.nrows == env["n_rows"]


def _const(value):
    from repro.algebra import Const
    return Const(value, IntT)


# ----------------------------------------------------------------------
# avalanche scaling: end-to-end engine runtime at three instance sizes
# ----------------------------------------------------------------------

class TestAvalancheScaling:
    def test_engine_scaling(self, benchmark, avalanche_catalog,
                            bench_record):
        n, catalog = avalanche_catalog
        result, queries = benchmark(lambda: run_dsh(catalog, "engine"))
        assert len(result) == n
        assert queries == 2  # bundle size fixed regardless of scale
        bench_record(f"avalanche_engine_{n}", categories=n,
                     queries=queries)


# ----------------------------------------------------------------------
# parallel bundle execution: serial vs. threaded on a 3-query bundle
# ----------------------------------------------------------------------

def _nested_report(db):
    """The nested-orders report: a 3-query bundle (region -> customer ->
    order totals)."""
    customers = db.table("customers")
    orders = db.table("orders")
    lineitems = db.table("lineitems")

    def order_totals(cid):
        customer_orders = pyq(
            "[oid for (cid2, month, oid) in orders if cid2 == cid]",
            orders=orders, cid=cid)
        return fmap(
            lambda oid: fsum(pyq(
                "[price for (line, oid2, price) in lineitems"
                " if oid2 == oid]", lineitems=lineitems, oid=oid)),
            customer_orders)

    return fmap(
        lambda g: tup(
            the(fmap(lambda c: c[2], g)),
            fmap(lambda c: tup(c[1], order_totals(c[0])), g)),
        group_with(lambda c: c[2], customers))


class TestParallelBundles:
    def test_parallel_vs_serial_sqlite(self, request, bench_record):
        quick = request.config.getoption("--quick", False)
        catalog = orders_dataset(n_customers=60 if quick else 300)
        db = Connection(backend="sqlite", catalog=catalog, trace=False)
        report = _nested_report(db)
        compiled = db.compile(report)
        bundle = compiled.bundle
        assert bundle.size >= 3

        backend = SQLiteBackend()
        prepared = backend.prepare_bundle(bundle)

        def run(parallel):
            return backend.execute_bundle(bundle, catalog,
                                          prepared=prepared,
                                          parallel=parallel)

        # Warm both paths first (catalog load + worker connections).
        serial_result = run(False)
        parallel_result = run(True)
        assert parallel_result.rows == serial_result.rows  # bit-identical

        serial = best_of(lambda: run(False), repeats=5)
        parallel = best_of(lambda: run(True), repeats=5)
        cpus = cpu_count()
        bench_record("parallel_bundle_sqlite",
                     bundle_size=bundle.size, cpus=cpus,
                     serial_s=serial, parallel_s=parallel,
                     ratio=parallel / serial if serial else float("inf"))
        if cpus > 1:
            # SQLite releases the GIL per statement: with >= 3 queries
            # and >= 2 cores, fan-out must beat the serial loop.
            assert parallel < serial, (
                f"parallel {parallel * 1e3:.2f}ms not faster than serial "
                f"{serial * 1e3:.2f}ms on {cpus} CPUs")
        else:
            # Single core: no concurrency to win; only bound the thread
            # coordination overhead.
            assert parallel <= serial * 1.6, (
                f"parallel overhead too high on 1 CPU: "
                f"{parallel * 1e3:.2f}ms vs {serial * 1e3:.2f}ms")

    def test_parallel_engine_identical_results(self, bench_record):
        catalog = orders_dataset(n_customers=80)
        serial_db = Connection(catalog=catalog, trace=False)
        parallel_db = Connection(catalog=catalog, trace=False,
                                 parallel_bundles=True)
        report_s = _nested_report(serial_db)
        report_p = _nested_report(parallel_db)
        t0 = time.perf_counter()
        expected = serial_db.run(report_s)
        serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        got = parallel_db.run(report_p)
        parallel = time.perf_counter() - t0
        assert got == expected
        bench_record("parallel_bundle_engine",
                     serial_s=serial, parallel_s=parallel)
