"""Figure 3: cost of the relational list encodings (shred + stitch).

Not a table in the paper, but the encodings of Figure 3 are its central
data structure; this bench measures the full round trip -- compile a
literal nested value into its surrogate encoding, execute, and stitch it
back -- at increasing sizes and nesting depths, checking that the bundle
stays at (depth) queries throughout.
"""

import pytest

from repro import Connection, to_q
from repro.core import compile_exp


def flat_value(n):
    return list(range(n))


def nested_value(n, width=10):
    return [list(range(i, i + width)) for i in range(0, n, width)]


def deep_value(n, width=5):
    return [[[j for j in range(width)] for _ in range(width)]
            for _ in range(n // (width * width))]


class TestEncodingRoundTrip:
    @pytest.mark.parametrize("n", (500, 4000))
    def test_flat_list(self, benchmark, n):
        value = flat_value(n)
        q = to_q(value)
        assert compile_exp(q.exp).size == 1
        db = Connection()
        assert benchmark(lambda: db.run(q)) == value

    @pytest.mark.parametrize("n", (500, 4000))
    def test_nested_list(self, benchmark, n):
        value = nested_value(n)
        q = to_q(value)
        assert compile_exp(q.exp).size == 2
        db = Connection()
        assert benchmark(lambda: db.run(q)) == value

    @pytest.mark.parametrize("n", (500, 2000))
    def test_depth_three(self, benchmark, n):
        value = deep_value(n)
        q = to_q(value)
        assert compile_exp(q.exp).size == 3
        db = Connection()
        assert benchmark(lambda: db.run(q)) == value
