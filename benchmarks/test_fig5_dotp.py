"""Figure 5/6: sparse-vector multiplication, three ways.

The paper uses ``dotp`` to exhibit the DPH/DSH correspondence.  This
bench runs the same program as (a) a scalar Python loop (the Figure 5
comprehension, reference), (b) the vectorised DPH pipeline of Figure 6
(left), and (c) the loop-lifted DSH query of Figure 6 (right) on the
in-memory algebra engine; all three must produce the same value.
"""

import pytest

from repro import Connection
from repro.bench.workloads import sparse_vector
from repro.dph import dotp_comprehension, dotp_query, dotp_vectorised, from_list

SIZES = (256, 2048)


@pytest.fixture(scope="session", params=SIZES)
def workload(request):
    n = request.param
    sv, v = sparse_vector(n, density=0.2, seed=n)
    return n, sv, v


class TestDotProduct:
    def test_scalar_comprehension(self, benchmark, workload):
        _, sv, v = workload
        benchmark(lambda: dotp_comprehension(sv, v))

    def test_dph_vectorised(self, benchmark, workload):
        _, sv, v = workload
        sv_arr, v_arr = from_list(sv), from_list(v)
        result = benchmark(lambda: dotp_vectorised(sv_arr, v_arr))
        assert result == pytest.approx(dotp_comprehension(sv, v))

    def test_dsh_loop_lifted(self, benchmark, workload):
        _, sv, v = workload
        db = Connection()
        q = dotp_query(sv, v)
        compiled = db.compile(q)
        assert compiled.query_count == 1

        def run():
            return db.run(q)

        result = benchmark(run)
        assert result == pytest.approx(dotp_comprehension(sv, v))
