"""Guard: observability left on in production costs < 5% on the
quickstart workload.

The layer must be safe to leave on: with ``trace=True`` (the default)
but no sink registered, a ``run`` allocates only a handful of slotted
span objects and reads a few clocks; with ``sampling="slow-only"`` and
nothing slow, every finished trace is additionally dropped at ``keep``
time.  These tests pin that promise by timing the quickstart workload --
the paper's running example, warm plan cache, engine backend -- in each
mode against a ``trace=False`` control and requiring the instrumented
time to stay within 5%.

Timing discipline: the two modes are timed in *interleaved* batches
(instrumented, plain, instrumented, plain, ...).  The estimator is the
better of (a) the ratio of per-mode minima and (b) the smallest
per-pair ratio: (a) is the classic low-noise estimator for CPU-bound
loops, while (b) cancels machine-wide drift that happens to straddle
one mode's best batch, so a shared-CI slowdown is not misread as
instrumentation overhead.
"""

import time

import pytest

from repro import Connection, ObservabilityError
from repro.bench.table1 import running_example_query
from repro.bench.workloads import paper_dataset

BATCHES = 14
RUNS_PER_BATCH = 25
LIMIT = 1.05


def quickstart_connection(trace: bool, parallel: bool = False,
                          stats: bool = True) -> tuple[Connection, object]:
    db = Connection(catalog=paper_dataset(), trace=trace,
                    parallel_bundles=parallel, statement_stats=stats)
    query = running_example_query(db)
    db.run(query)  # warm: plan cache + codegen store filled (+ pool)
    return db, query


def batch_time(db, query) -> float:
    t0 = time.perf_counter()
    for _ in range(RUNS_PER_BATCH):
        db.run(query)
    return time.perf_counter() - t0


def measured_ratio(instrumented_db, instrumented_q,
                   plain_db, plain_q) -> float:
    """instrumented/plain on interleaved batches; see module docstring."""
    batch_time(instrumented_db, instrumented_q)  # throwaway warm round
    batch_time(plain_db, plain_q)
    inst_batches, plain_batches = [], []
    for _ in range(BATCHES):
        inst_batches.append(batch_time(instrumented_db, instrumented_q))
        plain_batches.append(batch_time(plain_db, plain_q))
    of_minima = min(inst_batches) / min(plain_batches)
    best_pair = min(i / p for i, p in zip(inst_batches, plain_batches))
    return min(of_minima, best_pair)


def test_tracing_without_sink_is_under_five_percent():
    traced_db, traced_q = quickstart_connection(trace=True)
    plain_db, plain_q = quickstart_connection(trace=False)

    ratio = measured_ratio(traced_db, traced_q, plain_db, plain_q)

    assert traced_db.last_trace is not None  # tracing really was on
    with pytest.raises(ObservabilityError):
        plain_db.last_trace  # ...and really was off on the control
    assert ratio <= LIMIT, (
        f"tracing with no sink costs {ratio - 1.0:+.1%} on the "
        f"quickstart workload; the observability layer promises < 5%")


def test_tracing_under_parallel_execute_is_under_five_percent():
    """The bound must also hold on the parallel execute path: worker
    threads open *detached* spans (no tracer-stack sharing), and the
    coordinating thread adopts them afterwards -- that extra machinery
    has to stay in the noise just like the serial span stack."""
    traced_db, traced_q = quickstart_connection(trace=True, parallel=True)
    plain_db, plain_q = quickstart_connection(trace=False, parallel=True)

    ratio = measured_ratio(traced_db, traced_q, plain_db, plain_q)

    # the parallel path really ran: one execute span per bundle query
    assert len(traced_db.last_trace.find_all("execute")) == 2
    assert ratio <= LIMIT, (
        f"tracing costs {ratio - 1.0:+.1%} under parallel bundle "
        f"execution; the observability layer promises < 5%")


def test_statement_stats_are_under_five_percent(bench_record):
    """The per-fingerprint aggregator rides on every ``run``: one lock
    acquisition and a few dict/float updates per execution.  Timed with
    ``trace=False`` on both legs so the measured delta is the stats
    machinery alone (statement_stats on vs. off)."""
    stats_db, stats_q = quickstart_connection(trace=False, stats=True)
    plain_db, plain_q = quickstart_connection(trace=False, stats=False)

    ratio = measured_ratio(stats_db, stats_q, plain_db, plain_q)

    # the aggregator really ran on the instrumented leg...
    totals = stats_db.statement_stats()["totals"]
    assert totals["calls"] > BATCHES * RUNS_PER_BATCH
    with pytest.raises(ObservabilityError):
        plain_db.statement_stats()  # ...and really was off on the control
    bench_record("statement_stats_overhead", ratio=ratio, limit=LIMIT)
    assert ratio <= LIMIT, (
        f"statement statistics cost {ratio - 1.0:+.1%} on the "
        f"quickstart workload; the observability layer promises < 5%")


def test_sampling_off_is_under_five_percent():
    """``sampling="slow-only"`` with no slow threshold hit must also be
    in the noise: spans are recorded but every trace is dropped at
    ``keep`` time, so nothing accumulates and no sink runs."""
    sampled_db = Connection(catalog=paper_dataset(), trace=True,
                            sampling="slow-only")
    sampled_q = running_example_query(sampled_db)
    sampled_db.run(sampled_q)
    plain_db, plain_q = quickstart_connection(trace=False)

    ratio = measured_ratio(sampled_db, sampled_q, plain_db, plain_q)

    assert sampled_db._last_trace is None  # nothing was retained
    assert ratio <= LIMIT, (
        f"slow-only sampling (nothing slow) costs {ratio - 1.0:+.1%} "
        f"on the quickstart workload; promised < 5%")
