"""Guard: tracing with no sink installed costs < 5% on the quickstart
workload.

The observability layer must be safe to leave on in production: with
``trace=True`` (the default) but no sink registered, a ``run`` allocates
only a handful of slotted span objects and reads a few clocks.  This
test pins that promise by timing the quickstart workload -- the paper's
running example, warm plan cache, engine backend -- with tracing on and
off and requiring the traced time to stay within 5%.

Timing discipline: the two modes are timed in *interleaved* batches
(traced, plain, traced, plain, ...) and compared on their per-mode
minimum, so a machine-wide slowdown during the test hits both sides
instead of being misread as tracing overhead; min-of-batches is the
low-noise estimator for CPU-bound loops.
"""

import time

from repro import Connection
from repro.bench.table1 import running_example_query
from repro.bench.workloads import paper_dataset

BATCHES = 12
RUNS_PER_BATCH = 25


def quickstart_connection(trace: bool) -> tuple[Connection, object]:
    db = Connection(catalog=paper_dataset(), trace=trace)
    query = running_example_query(db)
    db.run(query)  # warm: plan cache + codegen store filled
    return db, query


def batch_time(db, query) -> float:
    t0 = time.perf_counter()
    for _ in range(RUNS_PER_BATCH):
        db.run(query)
    return time.perf_counter() - t0


def test_tracing_without_sink_is_under_five_percent():
    traced_db, traced_q = quickstart_connection(trace=True)
    plain_db, plain_q = quickstart_connection(trace=False)

    # one throwaway round each, then interleaved measurement
    batch_time(traced_db, traced_q)
    batch_time(plain_db, plain_q)
    traced = plain = float("inf")
    for _ in range(BATCHES):
        traced = min(traced, batch_time(traced_db, traced_q))
        plain = min(plain, batch_time(plain_db, plain_q))

    assert traced_db.last_trace is not None  # tracing really was on
    assert plain_db.last_trace is None
    overhead = traced / plain - 1.0
    assert traced <= plain * 1.05, (
        f"tracing with no sink costs {overhead:+.1%} on the quickstart "
        f"workload (traced {traced * 1e3:.2f}ms vs plain "
        f"{plain * 1e3:.2f}ms per {RUNS_PER_BATCH}-run batch); "
        f"the observability layer promises < 5%")
