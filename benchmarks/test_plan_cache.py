"""Plan-cache benchmark: the repeat-execution compile path.

The workload is ``examples/quickstart.py`` (the paper's Section 2
running example).  A cold compile runs the whole Figure 2 front half --
loop-lifting, the rewrite fixpoint, schema validation; a warm compile of
the structurally identical program is a fingerprint + cache lookup.  The
acceptance bar for the prepared-query subsystem: the warm compile path is
at least **10x** faster than the cold path, and hit counters prove the
optimizer never ran again.
"""

import time

from repro import Connection
from repro.bench.table1 import running_example_query

#: CI headroom: locally the observed ratio is ~40-60x.
MIN_SPEEDUP = 10.0


def best_of(f, repeats=5):
    """Minimum wall-clock of ``repeats`` calls (noise-robust)."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        times.append(time.perf_counter() - t0)
    return min(times)


class TestRepeatCompilePath:
    def test_warm_compile_at_least_10x_faster(self, paper_catalog,
                                              bench_record):
        db = Connection(catalog=paper_catalog)

        # Cold: a fresh structurally-distinct-from-nothing program; bypass
        # the cache so every repeat pays the full pipeline.
        cold = best_of(lambda: db.compile(running_example_query(db),
                                          use_cache=False))

        db.compile(running_example_query(db))  # populate the cache
        warm = best_of(lambda: db.compile(running_example_query(db)))

        # CI's regression gate watches this headline number.
        bench_record("plan_cache_warm", speedup=cold / warm,
                     cold_ms=cold * 1e3, warm_ms=warm * 1e3)
        assert warm * MIN_SPEEDUP <= cold, (
            f"warm compile {warm * 1e3:.3f}ms vs cold {cold * 1e3:.3f}ms: "
            f"only {cold / warm:.1f}x")

    def test_hit_counters_prove_pipeline_skipped(self, paper_catalog):
        db = Connection(catalog=paper_catalog)
        cold = db.compile(running_example_query(db))
        warm = db.compile(running_example_query(db))
        assert not cold.cache_hit and warm.cache_hit
        assert db.cache_stats.misses == 1 and db.cache_stats.hits == 1
        # loop-lifting and the rewrite fixpoint ran exactly once
        assert cold.pass_stats is not None and cold.pass_stats.rounds > 0
        assert warm.pass_stats is None
        assert "lift" not in warm.timings and "optimize" not in warm.timings

    def test_repeat_run_results_stable(self, paper_catalog):
        db = Connection(catalog=paper_catalog)
        results = [db.run(running_example_query(db)) for _ in range(3)]
        assert results[0] == results[1] == results[2]
        assert db.cache_stats.misses == 1 and db.cache_stats.hits == 2
        # execution accounting unaffected by caching (2-query bundle x 3)
        assert db.queries_issued == 6

    def test_prepared_execute_matches_run(self, paper_catalog):
        db = Connection(catalog=paper_catalog)
        expected = db.run(running_example_query(db))
        prepared = db.prepare(running_example_query(db))
        assert prepared.execute() == expected
        assert prepared.query_count == 2  # avalanche safety preserved


class TestWarmCompileTimings:
    def test_pytest_benchmark_warm_compile(self, benchmark, paper_catalog):
        """pytest-benchmark hook: warm-path compile latency."""
        db = Connection(catalog=paper_catalog)
        query = running_example_query(db)
        db.compile(query)
        compiled = benchmark(lambda: db.compile(query))
        assert compiled.cache_hit
