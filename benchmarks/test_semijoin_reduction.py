"""Ablation: the semijoin-reduction rewrite on vs. off (Table 1 workload).

The loop-lifted running example re-derives surrogate keys by joining a
relation to *itself* on a key; the cost-gated ``semijoin_reduce``
rewrite collapses each such self-join into a single projection.  This
bench quantifies the payoff on the paper's avalanche workload: plan
sizes, rewrite fire counts, and end-to-end execution time with the
rewrite enabled and disabled, publishing the measured speedup into the
``BENCH_10.json`` trajectory.
"""

import time

import repro.optimizer.rewrites.properties as properties
from repro import Connection
from repro.algebra import node_count
from repro.bench.table1 import running_example_query
from repro.bench.workloads import avalanche_dataset

CATALOG = avalanche_dataset(200)


def best_of(f, repeats=5):
    """Minimum wall-clock of ``repeats`` calls (noise-robust)."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        times.append(time.perf_counter() - t0)
    return min(times)


def compiled(monkeypatch, reduce_enabled):
    """A fresh connection + compiled running example, with the
    semijoin-reduction rewrite optionally knocked out at compile time
    (prepared statements are immune to later patching)."""
    with monkeypatch.context() as m:
        if not reduce_enabled:
            m.setattr(properties, "_selfjoin_elim",
                      lambda node, children, props: None)
            m.setattr(properties, "_semijoin_reduce",
                      lambda node, children, props: None)
        db = Connection(catalog=CATALOG)
        query = running_example_query(db)
        cold = db.compile(query)  # cold: carries pass_stats
        return db.prepare(query), cold


class TestPlanShapes:
    def test_reduction_fires_and_shrinks_plans(self, monkeypatch):
        _, with_reduce = compiled(monkeypatch, reduce_enabled=True)
        _, without = compiled(monkeypatch, reduce_enabled=False)
        fired = with_reduce.pass_stats.rewrites_fired.get(
            "semijoin_reduce", 0)
        assert fired > 0, "rewrite never fired on the running example"
        assert without.pass_stats.rewrites_fired.get(
            "semijoin_reduce", 0) == 0
        size = lambda c: sum(node_count(q.plan)  # noqa: E731
                             for q in c.bundle.queries)
        assert size(with_reduce) < size(without)

    def test_results_identical(self, monkeypatch):
        on, _ = compiled(monkeypatch, reduce_enabled=True)
        off, _ = compiled(monkeypatch, reduce_enabled=False)
        assert on.execute() == off.execute()


class TestRuntime:
    def test_reduction_wins_on_the_avalanche_workload(self, monkeypatch,
                                                      bench_record):
        on, on_c = compiled(monkeypatch, reduce_enabled=True)
        off, off_c = compiled(monkeypatch, reduce_enabled=False)
        fast = best_of(on.execute)
        slow = best_of(off.execute)
        size = lambda c: sum(node_count(q.plan)  # noqa: E731
                             for q in c.bundle.queries)
        # CI archives this headline next to the kernel speedups.
        bench_record(
            "semijoin_reduction",
            speedup=slow / fast,
            with_ms=fast * 1e3, without_ms=slow * 1e3,
            nodes_with=size(on_c), nodes_without=size(off_c),
            fired=on_c.pass_stats.rewrites_fired.get("semijoin_reduce", 0))
        # The rewrite must never make execution slower; the measured win
        # locally is ~1.1-1.4x (9 self-joins collapsed per bundle).
        assert slow / fast > 0.95, (
            f"semijoin reduction slowed execution: "
            f"{fast * 1e3:.2f}ms with vs {slow * 1e3:.2f}ms without")
