"""Shard-scaling benchmark: partition-parallel SQL over 1/2/4/8 shards.

The workload is the avalanche dataset's nested facility/feature query --
the shape the shard analysis proves partitionable (its inner member's
``iter`` derives from the stable base-scan surrogate, so the filter
pushes through the surrogate-regeneration self-join; decision ``S400``).
Each fan-out level runs the same program; the recorded numbers land in
``BENCH_7.json`` under ``sharded_sql_<n>`` so CI can track how scatter
scaling moves commit over commit.

The ``>= 2.5x at 4 shards`` acceptance assertion only fires on machines
that can physically parallelize (>= 4 usable cores) and on the largest
instance, where per-shard work dominates the scatter overhead; the
measurements themselves are always recorded.
"""

import os
import time

import pytest

from repro import Connection, fmap

#: Acceptance bar for partition-parallel scaling at fan-out 4 on the
#: largest benchmark instance (multi-core machines only).
MIN_SPEEDUP_AT_4 = 2.5
FANOUTS = (1, 2, 4, 8)


def nested_probe(db):
    features = db.table("features")
    return fmap(
        lambda f: features.filter(lambda g: g[0] == f[0]).map(
            lambda g: g[1]),
        db.table("facilities"))


def best_of(f, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        times.append(time.perf_counter() - t0)
    return min(times)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class TestShardScaling:
    def test_scaling_1_2_4_8(self, avalanche_catalog, bench_record):
        n, catalog = avalanche_catalog

        single = Connection(backend="sqlite", catalog=catalog)
        expected = single.run(nested_probe(single))
        baseline = best_of(lambda: single.run(nested_probe(single)))

        times = {}
        for shards in FANOUTS:
            conn = Connection(shards=shards, catalog=catalog)
            q = nested_probe(conn)
            # First run pays replica loading and plan compilation; the
            # measured runs exercise pure scatter/gather.
            assert conn.run(q) == expected, (
                f"sharded x{shards} diverged from single image")
            times[shards] = best_of(lambda: conn.run(q))
            conn.backend.close()

        record = {f"shards_{k}": times[k] * 1e3 for k in FANOUTS}
        record["single_image_ms"] = baseline * 1e3
        record["speedup_at_4"] = baseline / times[4]
        record["cores"] = usable_cores()
        bench_record(f"sharded_sql_{n}", categories=n, **record)

        if usable_cores() < 4:
            pytest.skip(
                f"only {usable_cores()} usable core(s): scatter cannot "
                f"physically parallelize, numbers recorded only")
        if n < 800:
            pytest.skip("speedup asserted on the largest instance only")
        assert times[4] * MIN_SPEEDUP_AT_4 <= baseline, (
            f"4-shard run {times[4] * 1e3:.1f}ms vs single image "
            f"{baseline * 1e3:.1f}ms: only {baseline / times[4]:.2f}x")

    def test_scatter_decision_is_stable(self, avalanche_catalog):
        """The benchmark measures what it claims to measure: the inner
        query scatters (S400) at every fan-out."""
        _, catalog = avalanche_catalog
        for shards in (2, 8):
            conn = Connection(shards=shards, catalog=catalog)
            report = conn.explain(nested_probe(conn))
            codes = [q.shard["code"] for q in report.queries]
            assert codes == ["F401", "S400"], codes
            conn.backend.close()
