"""Stitch micro-benchmark: bulk surrogate-index building.

Stitching (steps 5-6 of Figure 2) starts by grouping every query's rows
by their ``iter`` surrogate.  Backends deliver rows already sorted by
``(iter, pos)``, so equal surrogates form contiguous runs and
:func:`repro.runtime.stitch.build_index` detects run boundaries with one
C-level :func:`itertools.groupby` sweep instead of a per-row
``dict.setdefault`` loop.  This file checks the bulk path against the
naive loop for correctness and asserts it is not slower (typically
1.5-3x faster on wide fan-out), recording the measured ratio into the
trajectory.
"""

import time

from repro.runtime.stitch import build_index


def _setdefault_index(rows):
    """The pre-bulk implementation (reference + baseline)."""
    index = {}
    for row in rows:
        index.setdefault(row[0], []).append(row[2:])
    return index


def _fanout_rows(n_groups: int, per_group: int) -> list[tuple]:
    """(iter, pos, item...) rows, sorted by (iter, pos) -- the backend
    contract -- with ``per_group`` members per surrogate."""
    return [(g, p, g * per_group + p, float(p))
            for g in range(n_groups) for p in range(per_group)]


def best_of(f, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


class TestBulkIndexCorrectness:
    def test_matches_setdefault_loop(self):
        rows = _fanout_rows(137, 7)
        assert build_index(rows) == _setdefault_index(rows)

    def test_empty_and_single_run(self):
        assert build_index([]) == {}
        rows = [(1, 0, "a"), (1, 1, "b")]
        assert build_index(rows) == {1: [("a",), ("b",)]}

    def test_items_stay_in_pos_order(self):
        rows = _fanout_rows(10, 50)
        index = build_index(rows)
        for members in index.values():
            assert members == sorted(members)


class TestBulkIndexSpeed:
    def test_bulk_not_slower_than_setdefault(self, request, bench_record):
        quick = request.config.getoption("--quick", False)
        rows = _fanout_rows(200 if quick else 2000, 20)
        bulk = best_of(lambda: build_index(rows))
        naive = best_of(lambda: _setdefault_index(rows))
        bench_record("stitch_index",
                     rows=len(rows), bulk_s=bulk, setdefault_s=naive,
                     speedup=naive / bulk if bulk else float("inf"))
        # Generous bound: the bulk path must never regress below the
        # naive loop (observed ~1.5-3x faster); timer noise headroom.
        assert bulk <= naive * 1.10, (
            f"bulk index {bulk * 1e3:.3f}ms vs setdefault "
            f"{naive * 1e3:.3f}ms")

    def test_stitch_benchmark_hook(self, benchmark):
        rows = _fanout_rows(500, 10)
        index = benchmark(lambda: build_index(rows))
        assert len(index) == 500
