"""Table 1: query avalanches -- HaskellDB vs. Ferry/DSH.

The paper's experiment: run the Section 2 program over ``facilities``
tables with a growing number of distinct categories.

* HaskellDB issues ``1 + #categories`` SQL statements, each scanning
  tables that grow with the category count -- runtime grows
  super-linearly until the 100k row in the paper "did not finish within
  hours";
* DSH/Ferry compiles the whole program into **2** queries regardless of
  the instance, and runtime stays linear.

``pytest benchmarks/test_table1_avalanche.py --benchmark-only`` prints
the per-scale timings; query counts are asserted exactly.
"""

from repro.bench.table1 import run_dsh, run_haskelldb


class TestQueryCounts:
    """The table's # queries columns, asserted exactly."""

    def test_haskelldb_avalanche_count(self, avalanche_catalog):
        n, catalog = avalanche_catalog
        _, statements = run_haskelldb(catalog)
        assert statements == 1 + n

    def test_dsh_constant_bundle(self, avalanche_catalog):
        _, catalog = avalanche_catalog
        _, queries = run_dsh(catalog)
        assert queries == 2


class TestRuntimes:
    """The table's runtime columns (pytest-benchmark)."""

    def test_haskelldb_running_example(self, benchmark, avalanche_catalog):
        n, catalog = avalanche_catalog
        result, _ = benchmark(lambda: run_haskelldb(catalog))
        assert len(result) == n

    def test_dsh_running_example_engine(self, benchmark, avalanche_catalog):
        n, catalog = avalanche_catalog
        result, _ = benchmark(lambda: run_dsh(catalog, "engine"))
        assert len(result) == n

    def test_dsh_running_example_mil(self, benchmark, avalanche_catalog):
        n, catalog = avalanche_catalog
        result, _ = benchmark(lambda: run_dsh(catalog, "mil"))
        assert len(result) == n


class TestAgreement:
    def test_both_systems_compute_the_same_answer(self, avalanche_catalog):
        _, catalog = avalanche_catalog
        hdb, _ = run_haskelldb(catalog)
        dsh, _ = run_dsh(catalog)
        assert ({c: frozenset(m) for c, m in hdb}
                == {c: frozenset(m) for c, m in dsh})
