#!/usr/bin/env python3
"""Regenerate Table 1: query avalanches, HaskellDB vs. Ferry/DSH.

For each category count, the Section 2 program runs (a) HaskellDB-style
-- one declarative query per category, Figure 4 -- and (b) through the
full Ferry stack, which always emits exactly two queries.  The paper
reports 1k/10k/100k categories with HaskellDB taking 11.7s/291s/DNF and
DSH 0.6s/6.4s/74.7s on PostgreSQL; our laptop-scaled defaults show the
same shape: a constant-size bundle vs. an avalanche whose per-statement
table scans make it blow up super-linearly.

Usage:
    python examples/avalanche_table1.py                  # scaled default
    python examples/avalanche_table1.py -n 100 1000 4000 # pick your scale
    python examples/avalanche_table1.py --backend mil --runs 5
"""

import argparse

from repro.bench.table1 import format_table1, run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--categories", type=int, nargs="+",
                        default=[100, 500, 2000],
                        help="distinct-category counts (the paper used "
                             "1000 10000 100000)")
    parser.add_argument("--runs", type=int, default=3,
                        help="measurement repetitions (the paper used 10)")
    parser.add_argument("--backend", default="engine",
                        choices=("engine", "mil", "sqlite"),
                        help="DSH execution backend")
    args = parser.parse_args()

    rows = run_table1(tuple(args.categories), runs=args.runs,
                      backend=args.backend)
    print(f"\nTable 1 (DSH backend: {args.backend}; mean of {args.runs} "
          f"runs with bootstrap 95% CI):\n")
    print(format_table1(rows))
    print("\nHaskellDB issues 1 + #categories statements; the Ferry "
          "bundle is always 2.")


if __name__ == "__main__":
    main()
