#!/usr/bin/env python3
"""Nested-data analytics over a customers/orders/lineitems schema.

The paper's motivation: programs over *arbitrarily nested* data should
run inside the database, not in the application heap.  This example
builds a three-level nested report -- per region, per customer, the
customer's order totals -- as one query whose bundle size (3) is fixed
by its result type ``[(String, [(String, [Double])])]``, no matter how
many customers there are.  Records (dataclasses) give named field
access; the Python comprehension front-end ``pyq`` expresses the inner
joins.
"""

import dataclasses
import pprint

from repro import Connection, fmap, fsum, group_with, pyq, queryable, the, tup
from repro.bench.workloads import orders_dataset
from repro.ftypes import count_list_constructors


@queryable
@dataclasses.dataclass
class Customer:
    cid: int
    name: str
    region: str


def main() -> None:
    db = Connection(catalog=orders_dataset(n_customers=40))
    customers = db.table("customers")    # rows: (cid, name, region)
    orders = db.table("orders")          # rows: (cid, month, oid)
    lineitems = db.table("lineitems")    # rows: (line, oid, price)

    def order_totals(cid):
        """Per order of this customer: the total line-item value."""
        customer_orders = pyq(
            "[oid for (cid2, month, oid) in orders if cid2 == cid]",
            orders=orders, cid=cid)
        return fmap(
            lambda oid: fsum(pyq(
                "[price for (line, oid2, price) in lineitems"
                " if oid2 == oid]", lineitems=lineitems, oid=oid)),
            customer_orders)

    report = fmap(
        lambda g: tup(
            the(fmap(lambda c: c[2], g)),          # region
            fmap(lambda c: tup(c[1], order_totals(c[0])), g)),
        group_with(lambda c: c[2], customers))

    compiled = db.compile(report)
    print(f"result type : {report.ty.show()}")
    print(f"bundle size : {compiled.query_count} queries "
          f"(= {count_list_constructors(report.ty)} list constructors)\n")

    result = db.run(report)
    for region, members in result:
        spend = sum(sum(totals) for _, totals in members)
        print(f"{region}: {len(members)} customers, "
              f"total spend {spend:,.2f}")
    region, members = result[0]
    print(f"\nfirst region ({region}), first three customers:")
    pprint.pprint(members[:3])

    # the same shape, any instance size: avalanche safety in action
    for n in (5, 80):
        other = Connection(catalog=orders_dataset(n_customers=n))
        # rebuild against the other catalog
        other_customers = other.table("customers")
        q = group_with(lambda c: c[2], other_customers)
        assert other.compile(q).query_count == 2
    print("\nbundle size is independent of the number of customers ✓")


if __name__ == "__main__":
    main()
