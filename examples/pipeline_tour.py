#!/usr/bin/env python3
"""A tour of the Figure 2 pipeline, one stage at a time.

For a small query this script prints every artefact the compiler
produces: the comprehension source, the desugared combinator AST (step
1), the loop-lifted table-algebra plan before and after optimization
(steps 2-3), the generated SQL:1999 and MIL programs, the tabular results
with their iter/pos/item columns (Figure 3 encodings, step 4-5), and the
final stitched Python value (step 6).
"""

from repro import Connection, qc
from repro.algebra import node_count, operator_histogram, plan_text
from repro.backends.engine import EngineBackend
from repro.backends.mil import MILGenerator
from repro.backends.sql import SQLiteBackend
from repro.expr import pretty


def stage(title: str) -> None:
    print("\n" + "=" * 66)
    print(title)
    print("=" * 66)


def main() -> None:
    db = Connection()
    db.create_table("employees", [("name", str), ("dept", str),
                                  ("salary", int)],
                    [("alice", "eng", 120), ("bob", "ops", 80),
                     ("carol", "eng", 140), ("dan", "ops", 95)])

    source = ("[(the(dept), sum(salary)) | (dept, name, salary)"
              " <- employees, then group by dept]")
    stage("source comprehension")
    print(source)

    employees = db.table("employees")
    query = qc(source, employees=employees)

    stage("step 1: desugared combinator AST (deep embedding)")
    print(pretty(query.exp))
    print(f"\nresult type: {query.ty.show()}")

    raw = Connection(catalog=db.catalog, optimize=False).compile(query)
    compiled = db.compile(query)

    stage("step 2: loop-lifted table algebra (unoptimized)")
    for i, q in enumerate(raw.bundle.queries, start=1):
        print(f"Q{i}: {node_count(q.plan)} operators, "
              f"{operator_histogram(q.plan)}")

    stage("step 3: after the rewrite pipeline (CSE, const-fold, icols, "
          "projection merging)")
    for i, q in enumerate(compiled.bundle.queries, start=1):
        print(f"Q{i}: {node_count(q.plan)} operators")
        print(plan_text(q.plan))

    stage("generated SQL:1999 (the PostgreSQL/SQLite target)")
    sql_backend = SQLiteBackend()
    for i, q in enumerate(compiled.bundle.queries, start=1):
        print(f"-- Q{i}")
        print(sql_backend.generate(q).text)
        print()

    stage("generated MIL (the MonetDB-style column target)")
    for i, q in enumerate(compiled.bundle.queries, start=1):
        gen = MILGenerator()
        program = gen.generate(
            q.plan, (q.iter_col, q.pos_col) + q.item_cols)
        lines = program.show().splitlines()
        print(f"-- Q{i}: {len(lines) - 1} column instructions "
              f"(first 10 shown)")
        print("\n".join(lines[:10]))
        print("...\n")

    stage("steps 4-5: tabular results (iter | pos | item..., Figure 3)")
    result = EngineBackend().execute_bundle(compiled.bundle, db.catalog)
    for i, rows in enumerate(result.rows, start=1):
        print(f"Q{i} rows:")
        for row in rows:
            print(f"   {row}")

    stage("step 6: the stitched Python value")
    print(db.run(query))


if __name__ == "__main__":
    main()
