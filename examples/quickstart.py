#!/usr/bin/env python3
"""Quickstart: the paper's Section 2 running example, end to end.

Loads the Figure 1 tables (facilities / features / meanings), asks the
paper's question -- *what features are characteristic for the various
query facility categories?* -- in comprehension syntax, and executes it
entirely on the database coprocessor as a bundle of exactly two
relational queries.

Usage:
    python examples/quickstart.py             # run and print the result
    python examples/quickstart.py --show-sql  # also print the SQL bundle
    python examples/quickstart.py --explain   # also print algebra plans
"""

import argparse
import pprint

from repro import Connection, qc
from repro.bench.workloads import paper_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--show-sql", action="store_true",
                        help="print the generated SQL:1999 bundle "
                             "(compare the paper's appendix)")
    parser.add_argument("--explain", action="store_true",
                        help="print the optimized table-algebra plans")
    parser.add_argument("--backend", default="engine",
                        choices=("engine", "sqlite", "mil"))
    args = parser.parse_args()

    db = Connection(backend=args.backend, catalog=paper_dataset())
    facilities = db.table("facilities")
    features = db.table("features")
    meanings = db.table("meanings")

    # descrFacility :: Q String -> Q [String]
    def descr_facility(f):
        return qc("[mean | (feat, mean) <- meanings,"
                  " (fac, feat2) <- features,"
                  " feat == feat2 and fac == f]",
                  meanings=meanings, features=features, f=f)

    # query :: Q [(String, [String])]
    query = qc("[(the(cat), nub(concatMap(descrFacility, fac)))"
               " | (cat, fac) <- facilities, then group by cat]",
               facilities=facilities, descrFacility=descr_facility)

    compiled = db.compile(query)
    print(f"result type     : {query.ty.show()}")
    print(f"bundle size     : {compiled.query_count} queries "
          f"(avalanche safety: one per [.] in the type)\n")

    if args.explain:
        print(db.explain(query))
        print()

    if args.show_sql:
        from repro.backends.sql import SQLiteBackend
        backend = SQLiteBackend()
        for i, q in enumerate(compiled.bundle.queries, start=1):
            print(f"-- SQL for Q{i} " + "-" * 50)
            print(backend.generate(q).text)
            print()

    result = db.run(query)
    print("result:")
    pprint.pprint(result)


if __name__ == "__main__":
    main()
