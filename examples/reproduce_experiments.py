#!/usr/bin/env python3
"""Regenerate every number in EXPERIMENTS.md in one run.

Covers Table 1 (both DSH backends), the optimizer / backend / nesting /
order ablations, and the Figure 5/6 dot-product timings.  Takes a few
minutes at the default scales; see EXPERIMENTS.md for the recorded
reference output.
"""

from repro import Connection, ffilter, fmap, fsum, group_with, reverse, sort_with
from repro.algebra import node_count
from repro.baselines.linq import LinqSession
from repro.bench.stats import measure
from repro.bench.table1 import format_table1, run_dsh, run_table1, running_example_query
from repro.bench.workloads import avalanche_dataset, numbers_dataset, sparse_vector
from repro.dph import dotp_comprehension, dotp_query, dotp_vectorised, from_list, sum_s


def main() -> None:
    print("=== TABLE 1 (DSH on the in-memory engine) ===", flush=True)
    print(format_table1(run_table1((100, 1000, 4000), runs=3,
                                   backend="engine")), flush=True)

    print("\n=== TABLE 1, DSH column on the MIL backend ===", flush=True)
    for n in (100, 1000, 4000):
        catalog = avalanche_dataset(n)
        run_dsh(catalog, "mil")  # warm-up
        m = measure(lambda: run_dsh(catalog, "mil"), runs=3)
        print(f"n={n:>5}: 2 queries, {m.show()}", flush=True)

    print("\n=== OPTIMIZER ABLATION (running example, n=150) ===",
          flush=True)
    catalog = avalanche_dataset(150)
    for optimize in (False, True):
        db = Connection(catalog=catalog, optimize=optimize)
        q = running_example_query(db)
        sizes = [node_count(s.plan) for s in db.compile(q).bundle.queries]
        m = measure(lambda: db.run(q), runs=3)
        print(f"optimize={optimize!s:5}: plan sizes {sizes}, "
              f"runtime {m.show()}", flush=True)

    print("\n=== BACKEND ABLATION (running example) ===", flush=True)
    for backend, n in (("engine", 150), ("mil", 150), ("sqlite", 25)):
        db = Connection(backend=backend, catalog=avalanche_dataset(n))
        q = running_example_query(db)
        db.run(q)  # warm-up (loads SQLite)
        m = measure(lambda: db.run(q), runs=3)
        print(f"{backend:7} (n={n}): {m.show()}", flush=True)

    print("\n=== FIGURE 5/6: dotp at n=2048, density 0.2 ===", flush=True)
    sv, v = sparse_vector(2048, density=0.2)
    sva, va = from_list(sv), from_list(v)
    db = Connection()
    q = dotp_query(sv, v)
    print("scalar loop    :",
          measure(lambda: dotp_comprehension(sv, v), runs=5).show(),
          flush=True)
    print("DPH vectorised :",
          measure(lambda: dotp_vectorised(sva, va), runs=5).show(),
          flush=True)
    print("DSH engine     :",
          measure(lambda: db.run(q), runs=3).show(), flush=True)

    print("\n=== NESTING REPRESENTATION ABLATION (N=3000, 60 segments) ===",
          flush=True)
    n_total, groups = 3000, 60
    db = Connection(catalog=numbers_dataset(n_total))
    nested = fmap(fsum, group_with(lambda x: x % groups, db.table("nums")))
    segments = [[v for v in range(n_total) if v % groups == g]
                for g in range(groups)]
    arr = from_list(segments)
    flat = [v for seg in segments for v in seg]
    bounds, offset = [], 0
    for seg in segments:
        bounds.append((offset, len(seg)))
        offset += len(seg)

    def between():
        return [sum(v for p, v in enumerate(flat) if off <= p < off + ln)
                for off, ln in bounds]

    print("surrogate joins (DSH) :",
          measure(lambda: db.run(nested), runs=3).show(), flush=True)
    print("descriptors (DPH)     :",
          measure(lambda: sum_s(arr), runs=5).show(), flush=True)
    print("BETWEEN range scans   :", measure(between, runs=3).show(),
          flush=True)

    print("\n=== ORDER ENCODING ABLATION (n=4000) ===", flush=True)
    catalog = numbers_dataset(4000)
    db = Connection(catalog=catalog)
    nums = db.table("nums")
    heavy = reverse(sort_with(lambda x: x % 97,
                              fmap(lambda x: x * 3,
                                   ffilter(lambda x: x % 2 == 0, nums))))
    light = fmap(lambda x: x * 3, ffilter(lambda x: x % 2 == 0, nums))
    print("order-heavy (4 pos renumberings):",
          measure(lambda: db.run(heavy), runs=3).show(), flush=True)
    print("order-light (filter+map only)   :",
          measure(lambda: db.run(light), runs=3).show(), flush=True)
    session = LinqSession(catalog)
    print("LINQ baseline (no order at all) :",
          measure(lambda: [r["n"] * 3 for r in session.table("nums")
                           if r["n"] % 2 == 0], runs=3).show(), flush=True)


if __name__ == "__main__":
    main()
