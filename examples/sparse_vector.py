#!/usr/bin/env python3
"""Figures 5 and 6: sparse-vector multiplication, DPH vs. DSH.

Runs the paper's ``dotp`` example three ways -- scalar reference,
vectorised Data-Parallel-Haskell style, and as a loop-lifted database
query -- and prints the structural correspondence table of Figure 6:
``bpermuteP`` becomes a relational equi-join over ``pos``, ``*^`` a
column-wise multiplication, ``sumP`` a grouped aggregation.
"""

import argparse

from repro import Connection
from repro.algebra import BinApp, EqJoin, GroupAggr, postorder
from repro.bench.stats import measure
from repro.bench.workloads import sparse_vector
from repro.dph import (
    FIG6_SV,
    FIG6_V,
    dotp_comprehension,
    dotp_query,
    dotp_vectorised,
    from_list,
)


def correspondence(plan) -> dict[str, int]:
    counts = {"equi-joins (bpermuteP)": 0,
              "column multiplications (*^)": 0,
              "sum aggregations (sumP)": 0}
    for node in postorder(plan):
        if isinstance(node, EqJoin):
            counts["equi-joins (bpermuteP)"] += 1
        elif isinstance(node, BinApp) and node.op == "mul":
            counts["column multiplications (*^)"] += 1
        elif isinstance(node, GroupAggr) and any(
                f == "sum" for f, _, _ in node.aggs):
            counts["sum aggregations (sumP)"] += 1
    return counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=2048,
                        help="dense vector length for the timed run")
    args = parser.parse_args()

    print("Figure 6's concrete arrays:")
    print(f"  sv = {FIG6_SV}")
    print(f"  v  = {FIG6_V}")
    db = Connection()
    print(f"  scalar loop : {dotp_comprehension(FIG6_SV, FIG6_V)}")
    print(f"  DPH         : "
          f"{dotp_vectorised(from_list(FIG6_SV), from_list(FIG6_V))}")
    print(f"  DSH query   : {db.run(dotp_query(FIG6_SV, FIG6_V))}")

    compiled = db.compile(dotp_query(FIG6_SV, FIG6_V))
    print(f"\nDSH bundle: {compiled.query_count} query (scalar result)")
    print("structural correspondence (Figure 6):")
    for name, count in correspondence(compiled.bundle.queries[0].plan).items():
        print(f"  {name:32s} x{count}")

    sv, v = sparse_vector(args.size, density=0.2)
    print(f"\ntimings at n={args.size} (density 0.2, criterion-style "
          f"mean with 95% CI):")
    sv_arr, v_arr = from_list(sv), from_list(v)
    q = dotp_query(sv, v)
    subjects = {
        "scalar loop": lambda: dotp_comprehension(sv, v),
        "DPH vectorised": lambda: dotp_vectorised(sv_arr, v_arr),
        "DSH on engine": lambda: db.run(q),
    }
    for name, subject in subjects.items():
        print(f"  {name:16s} {measure(subject, runs=5).show()}")


if __name__ == "__main__":
    main()
