#!/usr/bin/env python3
"""Workload intelligence end to end: stats, dashboard, and the gate.

Runs a small mixed workload (the paper's running example on the default
engine backend plus a nested query on two SQLite shards), serves the
observability endpoints, and shows where each piece lives:

* ``/metrics``     -- OpenMetrics text with trace-id exemplars
* ``/metrics.json``-- the same registry as JSON
* ``/statements``  -- per-fingerprint workload aggregates (the
  ``pg_stat_statements`` view)
* ``/dashboard``   -- zero-dependency live HTML dashboard

Usage:
    python examples/workload_dashboard.py                 # serve + open
    python examples/workload_dashboard.py --check         # CI self-test
    python examples/workload_dashboard.py --write-baseline PATH

``--check`` exercises every endpoint over HTTP, validates the exemplar
linkage (every exemplar's trace id must resolve in a connection's
flight recorder), and gates the live workload against the checked-in
golden baseline via ``repro.obs.report --fail-on-regress`` -- exit 0
means the whole loop works.  ``--write-baseline`` regenerates that
golden file: latency budgets are deliberately inflated (25x measured,
floored at 50ms) so cross-machine variance never trips the gate, while
row counts stay exact (the workload is deterministic).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro import Connection, fmap, serve_metrics
from repro.bench.table1 import running_example_query
from repro.bench.workloads import paper_dataset
from repro.obs import parse_openmetrics, statements_json
from repro.obs import report as report_cli

GOLDEN = Path(__file__).resolve().parent.parent / "tests" / "golden" / \
    "data" / "workload_baseline.json"

#: Latency budgets in the golden baseline are measured-time * this
#: factor (floored at 50ms): regressions must be gross to fire R200,
#: cross-machine noise never does.
INFLATE = 25.0
FLOOR = 0.05


def nested_probe(db):
    """Nested query whose inner member shards (decision ``S400``)."""
    features = db.table("features")
    return fmap(
        lambda f: features.filter(lambda g: g[0] == f[0]).map(
            lambda g: g[1]),
        db.table("facilities"))


def run_workload(runs: int = 5) -> list[Connection]:
    """A deterministic mixed workload over two connections."""
    engine = Connection(catalog=paper_dataset())
    sharded = Connection(shards=2, catalog=paper_dataset())
    example = running_example_query(engine)
    nested = nested_probe(sharded)
    for _ in range(runs):
        engine.run(example)
        sharded.run(nested)
    return [engine, sharded]


def fetch(url: str) -> tuple[str, str]:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read().decode("utf-8"), resp.headers["Content-Type"]


def check() -> int:
    """Exercise every endpoint and the baseline gate; 0 on success."""
    conns = run_workload()
    failures: list[str] = []

    def expect(cond: bool, what: str) -> None:
        print(f"  {'ok' if cond else 'FAIL'}  {what}")
        if not cond:
            failures.append(what)

    with serve_metrics(connections=conns) as server:
        base = server.url[: -len("/metrics")]

        print("endpoints:")
        text, ctype = fetch(base + "/metrics")
        expect("openmetrics" in ctype, "/metrics content type")
        families = parse_openmetrics(text)
        expect("ferry_conn_executions" in families, "/metrics parses")

        doc, _ = fetch(base + "/metrics.json")
        expect("metrics" in json.loads(doc), "/metrics.json parses")

        stmts, ctype = fetch(base + "/statements")
        stmts = json.loads(stmts)
        expect(stmts["totals"]["calls"] == 10,
               "/statements reconciles (10 calls)")

        html, ctype = fetch(base + "/dashboard")
        expect("text/html" in ctype and "FERRY workload" in html,
               "/dashboard serves HTML")

        print("exemplar linkage:")
        exemplared = {name: fam for name, fam in families.items()
                      if fam["exemplars"]}
        expect(bool(exemplared), "exemplars present in /metrics")
        trace_ids = {labels["trace_id"]
                     for fam in exemplared.values()
                     for labels, _, _ in fam["exemplars"].values()
                     if "trace_id" in labels}
        expect(bool(trace_ids), "exemplars carry trace ids")
        resolved = sum(
            1 for tid in trace_ids
            if any(c.query_log.find_trace(tid) is not None
                   for c in conns))
        expect(resolved > 0,
               f"exemplar trace ids resolve in the flight recorder "
               f"({resolved}/{len(trace_ids)})")

    print("baseline gate:")
    if not GOLDEN.exists():
        print(f"  FAIL  golden baseline missing: {GOLDEN}")
        return 1
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as fh:
        json.dump(statements_json(conns), fh, default=str)
        snap = fh.name
    rc = report_cli.main([snap, "--baseline", str(GOLDEN),
                          "--fail-on-regress", "--min-time", "0.02"])
    expect(rc == 0, f"report --fail-on-regress exit code ({rc})")

    if failures:
        print(f"\n{len(failures)} check(s) failed")
        return 1
    print("\nall checks passed")
    return 0


def write_baseline(path: Path) -> int:
    """Regenerate the golden baseline with inflated latency budgets."""
    conns = run_workload()
    doc = statements_json(conns)
    for stmt in doc["statements"]:
        for key in ("p50", "p95", "p99", "min_time", "max_time",
                    "mean_time"):
            if stmt.get(key) is not None:
                stmt[key] = max(stmt[key] * INFLATE, FLOOR)
        stmt["total_time"] = max(stmt["total_time"] * INFLATE, FLOOR)
        # Histograms and exemplars are run-specific, not baseline
        # material; rows/calls stay exact.
        stmt.pop("by_backend", None)
        stmt.pop("by_shard", None)
        stmt["worst_trace_id"] = None
        stmt["first_seen"] = stmt["last_seen"] = 0.0
    doc["generated_at"] = 0.0
    doc["connections"] = []
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    print(f"wrote {path} ({len(doc['statements'])} statements)")
    return 0


def serve() -> int:
    conns = run_workload()
    with serve_metrics(connections=conns) as server:
        base = server.url[: -len("/metrics")]
        print(f"dashboard:  {base}/dashboard")
        print(f"statements: {base}/statements")
        print(f"metrics:    {server.url}")
        print("Ctrl-C to stop")
        try:
            while True:
                time.sleep(1)
        except KeyboardInterrupt:
            pass
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="self-test every endpoint and the baseline "
                           "gate; exit nonzero on any failure")
    mode.add_argument("--write-baseline", metavar="PATH", nargs="?",
                      const=str(GOLDEN),
                      help=f"regenerate the golden baseline "
                           f"(default {GOLDEN})")
    args = parser.parse_args()
    if args.check:
        return check()
    if args.write_baseline:
        return write_baseline(Path(args.write_baseline))
    return serve()


if __name__ == "__main__":
    sys.exit(main())
