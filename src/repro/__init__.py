"""FERRY: database-supported program execution -- a Python reproduction.

A relational database serves as a *coprocessor* for Python: list-prelude
programs over arbitrarily nested lists and tuples are compiled -- via
loop-lifting and a Pathfinder-style table algebra -- into an
avalanche-safe bundle of relational queries (one per list constructor in
the result type), executed on a backend (in-memory engine, SQLite via
generated SQL:1999, or a MIL-style column VM), and stitched back into
ordinary Python values.
"""

from .errors import (
    CompilationError,
    ComprehensionSyntaxError,
    ExecutionError,
    FerryError,
    ObservabilityError,
    PartialFunctionError,
    QTypeError,
    SchemaError,
    ShardError,
    UnsupportedError,
)
from .frontend import *  # noqa: F401,F403 - curated __all__
from .frontend import __all__ as _frontend_all
from .obs import (
    METRICS,
    AnalyzeReport,
    CollectingSink,
    ExplainReport,
    JsonLinesSink,
    MetricsRegistry,
    MetricsServer,
    QueryLog,
    Trace,
    dump_metrics,
    serve_metrics,
)
from .runtime import (
    Catalog,
    CompiledQuery,
    Connection,
    PlanCache,
    PreparedQuery,
)

__version__ = "1.0.0"

__all__ = list(_frontend_all) + [
    "AnalyzeReport",
    "Catalog",
    "CollectingSink",
    "CompiledQuery",
    "Connection",
    "ExplainReport",
    "JsonLinesSink",
    "METRICS",
    "MetricsRegistry",
    "MetricsServer",
    "PlanCache",
    "PreparedQuery",
    "QueryLog",
    "Trace",
    "dump_metrics",
    "serve_metrics",
    "CompilationError",
    "ComprehensionSyntaxError",
    "ExecutionError",
    "FerryError",
    "ObservabilityError",
    "PartialFunctionError",
    "QTypeError",
    "SchemaError",
    "ShardError",
    "UnsupportedError",
    "__version__",
]
