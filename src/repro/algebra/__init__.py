"""Table algebra: the Pathfinder-style relational IR of the compiler."""

from .dag import (
    contains,
    node_count,
    operator_histogram,
    postorder,
    rewrite_dag,
)
from .ops import (
    AGG_FUNCS,
    ASC,
    DESC,
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
)
from .pretty import bundle_text, describe, plan_dot, plan_text
from .schema import Schema, schema_of

__all__ = [
    "AGG_FUNCS", "ASC", "DESC", "AntiJoin", "Attach", "BinApp", "Const",
    "Cross", "Distinct", "EqJoin", "GroupAggr", "LitTable", "Node",
    "Project", "RowNum", "RowRank", "Schema", "Select", "SemiJoin",
    "TableScan", "UnApp", "UnionAll", "bundle_text", "contains",
    "describe", "node_count",
    "operator_histogram", "plan_dot", "plan_text", "postorder",
    "rewrite_dag", "schema_of",
]
