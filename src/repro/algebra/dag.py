"""DAG utilities for algebra plans: traversal, statistics, validation."""

from __future__ import annotations

from typing import Callable, Iterator

from .ops import Node


def postorder(root: Node) -> Iterator[Node]:
    """Yield every node reachable from ``root`` exactly once, children
    before parents (iterative -- plans can be deep)."""
    seen: set[int] = set()
    stack: list[tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in seen:
            continue
        if expanded:
            seen.add(id(node))
            yield node
        else:
            stack.append((node, True))
            for child in node.children:
                if id(child) not in seen:
                    stack.append((child, False))


def node_count(root: Node) -> int:
    """Number of distinct operator nodes in the plan DAG (shared subplans
    counted once) -- the plan-size metric of the optimizer ablation."""
    return sum(1 for _ in postorder(root))


def operator_histogram(root: Node) -> dict[str, int]:
    """How many nodes of each operator kind the plan contains."""
    hist: dict[str, int] = {}
    for node in postorder(root):
        hist[node.label] = hist.get(node.label, 0) + 1
    return dict(sorted(hist.items()))


def contains(root: Node, predicate: Callable[[Node], bool]) -> bool:
    """Does any node of the plan satisfy ``predicate``?  (Used by the
    Fig. 6 structural-correspondence tests.)"""
    return any(predicate(node) for node in postorder(root))


def rewrite_dag(root: Node, visit: Callable[[Node, tuple[Node, ...]], Node],
                memo: dict[int, Node] | None = None) -> Node:
    """Rebuild a DAG bottom-up.

    ``visit`` receives each node together with its (already rewritten)
    children and returns the replacement node (possibly the input,
    reconstructed over the new children).  Sharing is preserved: each
    distinct node is visited once.
    """
    if memo is None:
        memo = {}
    result: dict[int, Node] = {}
    for node in postorder(root):
        new_children = tuple(result[id(c)] for c in node.children)
        result[id(node)] = visit(node, new_children)
    return result[id(root)]
