"""Table algebra operators (the Pathfinder-style intermediate representation).

The paper compiles list programs into "an intermediate representation
called table algebra, a simple variant of relational algebra [that] has
been designed to reflect the query capabilities of modern off-the-shelf
relational database engines" (Section 3).  This module defines that
algebra: plans are DAGs of immutable operator nodes over *named, typed
columns*.

Operator inventory (the classic Pathfinder set):

===============  ====================================================
``LitTable``     literal table (also: the compiler's loop relations)
``TableScan``    reference to a catalog table, columns renamed
``Attach``       attach a constant column
``Project``      project / rename / duplicate columns
``Select``       keep rows whose Boolean column is true
``Distinct``     duplicate elimination over all columns
``RowNum``       ``ROW_NUMBER() OVER (PARTITION BY ... ORDER BY ...)``
``RowRank``      ``DENSE_RANK() OVER (ORDER BY ...)``
``Cross``        Cartesian product
``EqJoin``       equi-join on one or more column pairs
``SemiJoin``     keep left rows with a right match
``AntiJoin``     keep left rows without a right match
``UnionAll``     bag union (schemas must agree)
``GroupAggr``    grouped aggregation (sum/count/min/max/avg/all/any)
``BinApp``       column-wise binary scalar operator
``UnApp``        column-wise unary scalar operator
===============  ====================================================

Nodes use *identity* equality (``eq=False``): plans are DAGs with heavy
sharing, and structural equality would be exponential.  Common
subexpression elimination (``repro.optimizer.rewrites.cse``) performs its
own hash-consing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from ..ftypes import AtomT

#: Sort direction markers for RowNum/RowRank order specifications.
ASC = "asc"
DESC = "desc"

#: Aggregation functions understood by GroupAggr.
AGG_FUNCS = frozenset({"sum", "count", "min", "max", "avg", "all", "any"})


@dataclass(frozen=True, eq=False)
class Const:
    """A literal operand of a column-wise scalar operator."""

    value: Any
    ty: AtomT


#: An operand of BinApp: either a column name or a constant.
Operand = Union[str, Const]


class Node:
    """Base class of algebra operators."""

    @property
    def children(self) -> tuple["Node", ...]:
        return ()

    @property
    def label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True, eq=False)
class LitTable(Node):
    """A literal table with an explicit schema (used for loop relations,
    literal lists, and typed empty relations)."""

    rows: tuple[tuple, ...]
    schema: tuple[tuple[str, AtomT], ...]


@dataclass(frozen=True, eq=False)
class TableScan(Node):
    """Scan a catalog table; ``columns`` maps fresh output column names to
    the source columns (all of them, in canonical alphabetical order)."""

    table: str
    columns: tuple[tuple[str, str, AtomT], ...]  # (out, source, type)


@dataclass(frozen=True, eq=False)
class Attach(Node):
    """Attach a constant column ``col`` with the given value."""

    child: Node
    col: str
    value: Any
    ty: AtomT

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)


@dataclass(frozen=True, eq=False)
class Project(Node):
    """Projection with rename: output ``new`` takes the value of ``old``.

    The same input column may feed several outputs (column duplication);
    input columns not mentioned are dropped.
    """

    child: Node
    cols: tuple[tuple[str, str], ...]  # (new, old)

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)


@dataclass(frozen=True, eq=False)
class Select(Node):
    """Keep rows where Boolean column ``col`` is true."""

    child: Node
    col: str

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)


@dataclass(frozen=True, eq=False)
class Distinct(Node):
    """Duplicate elimination over the full schema."""

    child: Node

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)


@dataclass(frozen=True, eq=False)
class RowNum(Node):
    """Dense 1-based row numbering per partition, in the given order.

    With a key-unique order specification this also serves as the
    surrogate/row-id generator of the loop-lifting compiler (deterministic
    because ``(iter, pos)`` is a key of every vector).
    """

    child: Node
    col: str
    order: tuple[tuple[str, str], ...]  # (column, ASC|DESC)
    part: tuple[str, ...] = ()

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)


@dataclass(frozen=True, eq=False)
class RowRank(Node):
    """``DENSE_RANK`` over the given order (no partitioning): equal order
    keys receive equal ranks -- the compiler's group-surrogate generator
    (compare the "binding due to rank operator" CTEs in the paper's
    appendix)."""

    child: Node
    col: str
    order: tuple[tuple[str, str], ...]

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)


@dataclass(frozen=True, eq=False)
class Cross(Node):
    """Cartesian product; column names must be disjoint."""

    left: Node
    right: Node

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class EqJoin(Node):
    """Equi-join on one or more column pairs; names must be disjoint."""

    left: Node
    right: Node
    pairs: tuple[tuple[str, str], ...]  # (left col, right col)

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class SemiJoin(Node):
    """Keep left rows that have at least one join partner on the right."""

    left: Node
    right: Node
    pairs: tuple[tuple[str, str], ...]

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class AntiJoin(Node):
    """Keep left rows that have *no* join partner on the right (used to
    supply defaults for empty groups: ``sum [] = 0`` etc.)."""

    left: Node
    right: Node
    pairs: tuple[tuple[str, str], ...]

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class UnionAll(Node):
    """Bag union; both inputs must have the identical schema."""

    left: Node
    right: Node

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class GroupAggr(Node):
    """Grouped aggregation.

    ``aggs`` is a tuple of ``(func, in_col, out_col)``; ``in_col`` is
    ``None`` for ``count``.  Output schema: group columns + one column per
    aggregate.  Groups with no rows do not appear (SQL semantics); the
    compiler adds defaults explicitly via :class:`AntiJoin` + :class:`Attach`.
    """

    child: Node
    group: tuple[str, ...]
    aggs: tuple[tuple[str, "str | None", str], ...]

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)


@dataclass(frozen=True, eq=False)
class BinApp(Node):
    """Column-wise binary scalar operator: ``out := op(left, right)``.

    Operands are column names or :class:`Const` literals.  The operator set
    matches ``repro.expr.BIN_OPS``.
    """

    child: Node
    op: str
    lhs: Operand
    rhs: Operand
    out: str

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)


@dataclass(frozen=True, eq=False)
class UnApp(Node):
    """Column-wise unary scalar operator (``not``/``neg``/``abs``/
    ``to_double``): ``out := op(col)``."""

    child: Node
    op: str
    col: str
    out: str

    @property
    def children(self) -> tuple[Node, ...]:
        return (self.child,)
