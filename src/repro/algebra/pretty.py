"""Rendering algebra plans for humans: indented text and Graphviz DOT."""

from __future__ import annotations

from .ops import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
)
from .dag import postorder


def describe(node: Node) -> str:
    """One-line description of a single operator."""
    if isinstance(node, LitTable):
        cols = ", ".join(f"{n}:{t.show()}" for n, t in node.schema)
        return f"LitTable[{len(node.rows)} rows]({cols})"
    if isinstance(node, TableScan):
        cols = ", ".join(f"{new}<={src}" for new, src, _ in node.columns)
        return f'TableScan "{node.table}" ({cols})'
    if isinstance(node, Attach):
        return f"Attach {node.col} := {node.value!r}"
    if isinstance(node, Project):
        cols = ", ".join(new if new == old else f"{new}<={old}"
                         for new, old in node.cols)
        return f"Project [{cols}]"
    if isinstance(node, Select):
        return f"Select {node.col}"
    if isinstance(node, Distinct):
        return "Distinct"
    if isinstance(node, RowNum):
        order = ", ".join(f"{c} {d}" for c, d in node.order)
        part = f" partition by {', '.join(node.part)}" if node.part else ""
        return f"RowNum {node.col} := row_number(order by {order}{part})"
    if isinstance(node, RowRank):
        order = ", ".join(f"{c} {d}" for c, d in node.order)
        return f"RowRank {node.col} := dense_rank(order by {order})"
    if isinstance(node, Cross):
        return "Cross"
    if isinstance(node, (EqJoin, SemiJoin, AntiJoin)):
        pairs = " and ".join(f"{l} = {r}" for l, r in node.pairs)
        return f"{node.label} on {pairs}"
    if isinstance(node, UnionAll):
        return "UnionAll"
    if isinstance(node, GroupAggr):
        aggs = ", ".join(f"{out} := {fn}({col or '*'})"
                         for fn, col, out in node.aggs)
        by = ", ".join(node.group) or "()"
        return f"GroupAggr [{aggs}] by {by}"
    if isinstance(node, BinApp):
        return (f"BinApp {node.out} := {_operand(node.lhs)} "
                f"{node.op} {_operand(node.rhs)}")
    if isinstance(node, UnApp):
        return f"UnApp {node.out} := {node.op}({node.col})"
    return node.label  # pragma: no cover


def _operand(op) -> str:
    return repr(op.value) if isinstance(op, Const) else op


def plan_text(root: Node, annotations: "dict[int, str] | None" = None) -> str:
    """Indented tree rendering; shared subplans are printed once and then
    referenced by number.

    ``annotations`` optionally maps a node's postorder reference (the
    ``@n`` number) to a suffix appended to its line -- EXPLAIN ANALYZE
    uses this to tag operators with time%, cardinalities, and cumulative
    cost without touching the tree layout.
    """
    ids: dict[int, int] = {}
    for i, node in enumerate(postorder(root)):
        ids[id(node)] = i
    lines: list[str] = []
    printed: set[int] = set()

    def go(node: Node, depth: int) -> None:
        ref = ids[id(node)]
        indent = "  " * depth
        if id(node) in printed:
            lines.append(f"{indent}@{ref} (shared, see above)")
            return
        printed.add(id(node))
        suffix = ""
        if annotations is not None and ref in annotations:
            suffix = f"  {annotations[ref]}"
        lines.append(f"{indent}@{ref} {describe(node)}{suffix}")
        for child in node.children:
            go(child, depth + 1)

    go(root, 0)
    return "\n".join(lines)


def bundle_text(bundle) -> str:
    """Render every query of a :class:`~repro.core.bundle.Bundle` with
    its ``-- Qn`` header (the classic ``explain`` text layout)."""
    chunks = []
    for i, query in enumerate(bundle.queries, start=1):
        chunks.append(f"-- Q{i} (iter={query.iter_col}, "
                      f"pos={query.pos_col}, "
                      f"items={', '.join(query.item_cols)})")
        chunks.append(plan_text(query.plan))
    return "\n".join(chunks)


def plan_dot(root: Node, name: str = "plan") -> str:
    """Graphviz DOT rendering of the plan DAG."""
    ids: dict[int, int] = {}
    lines = [f"digraph {name} {{", "  node [shape=box, fontsize=10];"]
    for i, node in enumerate(postorder(root)):
        ids[id(node)] = i
        text = describe(node).replace('"', r"\"")
        lines.append(f'  n{i} [label="{text}"];')
        for child in node.children:
            lines.append(f"  n{i} -> n{ids[id(child)]};")
    lines.append("}")
    return "\n".join(lines)
