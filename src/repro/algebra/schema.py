"""Schema inference and validation for algebra plans.

Every operator's output schema (an ordered mapping column -> atom type) is
derived from its inputs; inference doubles as a *plan validator* -- an
ill-formed plan (unknown column, type mismatch, name clash) raises
:class:`CompilationError` immediately, which keeps compiler bugs close to
their source instead of surfacing as wrong answers.
"""

from __future__ import annotations

from ..errors import CompilationError
from ..expr.exp import ARITH_OPS, BOOL_OPS, CMP_OPS, STR_OPS
from ..ftypes import AtomT, BoolT, DateT, DoubleT, IntT, StringT, TimeT
from .ops import (
    AGG_FUNCS,
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
)

Schema = dict[str, AtomT]


def schema_of(node: Node, memo: dict[int, Schema] | None = None) -> Schema:
    """Infer (and validate) the output schema of ``node``.

    Pass a shared ``memo`` when inferring over a DAG to avoid re-walking
    shared subplans.  Inference is iterative (plans can be thousands of
    operators deep): the node's subplan is prefilled bottom-up.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(node))
    if cached is not None:
        return cached
    # iterative postorder prefill (children before parents)
    seen: set[int] = set(memo)
    stack: list[tuple[Node, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if id(current) in seen:
            continue
        if expanded:
            seen.add(id(current))
            memo[id(current)] = _infer(current, memo)
        else:
            stack.append((current, True))
            for child in current.children:
                if id(child) not in seen:
                    stack.append((child, False))
    return memo[id(node)]


def _fail(node: Node, msg: str, code: str = "F104") -> None:
    """Raise a coded :class:`CompilationError`.

    ``code`` is the verifier's stable diagnostic code (``F101`` unknown
    column, ``F102`` duplicate name, ``F103`` type mismatch, ``F104``
    malformed operator, ``F105`` name clash, ``F106`` union schema
    mismatch); the error also carries the offending ``node`` so the
    verifier can attach the pretty-printer's ``@n`` ref.
    """
    err = CompilationError(f"{node.label}: {msg}")
    err.code = code
    err.node = node
    raise err


def _col(node: Node, schema: Schema, col: str) -> AtomT:
    try:
        return schema[col]
    except KeyError:
        _fail(node, f"unknown column {col!r} (have {sorted(schema)})",
              code="F101")
        raise AssertionError  # pragma: no cover


def _infer(node: Node, memo: dict[int, Schema]) -> Schema:
    if isinstance(node, LitTable):
        out = {}
        for name, ty in node.schema:
            if name in out:
                _fail(node, f"duplicate column {name!r}", code="F102")
            out[name] = ty
        for row in node.rows:
            if len(row) != len(node.schema):
                _fail(node, f"row {row!r} does not match schema width "
                            f"{len(node.schema)}")
        return out

    if isinstance(node, TableScan):
        out = {}
        for new, _src, ty in node.columns:
            if new in out:
                _fail(node, f"duplicate column {new!r}", code="F102")
            out[new] = ty
        return out

    if isinstance(node, Attach):
        child = schema_of(node.child, memo)
        if node.col in child:
            _fail(node, f"column {node.col!r} already exists", code="F102")
        out = dict(child)
        out[node.col] = node.ty
        return out

    if isinstance(node, Project):
        child = schema_of(node.child, memo)
        out = {}
        for new, old in node.cols:
            if new in out:
                _fail(node, f"duplicate output column {new!r}", code="F102")
            out[new] = _col(node, child, old)
        return out

    if isinstance(node, Select):
        child = schema_of(node.child, memo)
        if _col(node, child, node.col) != BoolT:
            _fail(node, f"selection column {node.col!r} is not Bool",
                  code="F103")
        return dict(child)

    if isinstance(node, Distinct):
        return dict(schema_of(node.child, memo))

    if isinstance(node, (RowNum, RowRank)):
        child = schema_of(node.child, memo)
        if node.col in child:
            _fail(node, f"column {node.col!r} already exists", code="F102")
        for col, direction in node.order:
            _col(node, child, col)
            if direction not in ("asc", "desc"):
                _fail(node, f"bad sort direction {direction!r}")
        if isinstance(node, RowNum):
            for col in node.part:
                _col(node, child, col)
        out = dict(child)
        out[node.col] = IntT
        return out

    if isinstance(node, (Cross, EqJoin, SemiJoin, AntiJoin)):
        left = schema_of(node.left, memo)
        right = schema_of(node.right, memo)
        if isinstance(node, (EqJoin, SemiJoin, AntiJoin)):
            if not node.pairs:
                _fail(node, "join requires at least one column pair")
            for lcol, rcol in node.pairs:
                lty = _col(node, left, lcol)
                rty = _col(node, right, rcol)
                if lty != rty:
                    _fail(node, f"join column types differ: {lcol}:{lty.show()}"
                                f" vs {rcol}:{rty.show()}", code="F103")
        if isinstance(node, (SemiJoin, AntiJoin)):
            return dict(left)
        clash = set(left) & set(right)
        if clash:
            _fail(node, f"column name clash {sorted(clash)}", code="F105")
        out = dict(left)
        out.update(right)
        return out

    if isinstance(node, UnionAll):
        left = schema_of(node.left, memo)
        right = schema_of(node.right, memo)
        if left != right:
            _fail(node, f"schemas differ: {_show(left)} vs {_show(right)}",
                  code="F106")
        return dict(left)

    if isinstance(node, GroupAggr):
        child = schema_of(node.child, memo)
        out: Schema = {}
        for col in node.group:
            out[col] = _col(node, child, col)
        for func, in_col, out_col in node.aggs:
            if func not in AGG_FUNCS:
                _fail(node, f"unknown aggregate {func!r}")
            if out_col in out:
                _fail(node, f"duplicate output column {out_col!r}", code="F102")
            if func == "count":
                out[out_col] = IntT
            else:
                ity = _col(node, child, in_col)
                if func == "avg":
                    out[out_col] = DoubleT
                elif func in ("all", "any"):
                    if ity != BoolT:
                        _fail(node, f"{func} requires a Bool column", code="F103")
                    out[out_col] = BoolT
                else:
                    out[out_col] = ity
        return out

    if isinstance(node, BinApp):
        child = schema_of(node.child, memo)
        if node.out in child:
            _fail(node, f"column {node.out!r} already exists", code="F102")
        lty = _operand_ty(node, child, node.lhs)
        rty = _operand_ty(node, child, node.rhs)
        if lty != rty:
            _fail(node, f"operand types differ: {lty.show()} vs {rty.show()}",
                  code="F103")
        if node.op in CMP_OPS:
            res = BoolT
        elif node.op in STR_OPS:
            if lty != StringT:
                _fail(node, f"{node.op} requires String operands", code="F103")
            res = StringT if node.op == "cat" else BoolT
        elif node.op in BOOL_OPS:
            if lty != BoolT:
                _fail(node, f"{node.op} requires Bool operands", code="F103")
            res = BoolT
        elif node.op in ARITH_OPS:
            res = lty
        else:
            _fail(node, f"unknown operator {node.op!r}")
            raise AssertionError  # pragma: no cover
        out = dict(child)
        out[node.out] = res
        return out

    if isinstance(node, UnApp):
        child = schema_of(node.child, memo)
        if node.out in child:
            _fail(node, f"column {node.out!r} already exists", code="F102")
        ity = _col(node, child, node.col)
        if node.op == "not":
            if ity != BoolT:
                _fail(node, "'not' requires a Bool column", code="F103")
            res = BoolT
        elif node.op in ("neg", "abs"):
            if ity not in (IntT, DoubleT):
                _fail(node, f"{node.op!r} requires a numeric column", code="F103")
            res = ity
        elif node.op == "to_double":
            res = DoubleT
        elif node.op in ("upper", "lower"):
            if ity != StringT:
                _fail(node, f"{node.op!r} requires a String column", code="F103")
            res = StringT
        elif node.op == "strlen":
            if ity != StringT:
                _fail(node, "'strlen' requires a String column", code="F103")
            res = IntT
        elif node.op in ("year", "month", "day"):
            if ity != DateT:
                _fail(node, f"{node.op!r} requires a Date column", code="F103")
            res = IntT
        elif node.op in ("hour", "minute", "second"):
            if ity != TimeT:
                _fail(node, f"{node.op!r} requires a Time column", code="F103")
            res = IntT
        else:
            _fail(node, f"unknown operator {node.op!r}")
            raise AssertionError  # pragma: no cover
        out = dict(child)
        out[node.out] = res
        return out

    _fail(node, "unknown operator class")
    raise AssertionError  # pragma: no cover


def _operand_ty(node: Node, schema: Schema, operand) -> AtomT:
    if isinstance(operand, Const):
        return operand.ty
    return _col(node, schema, operand)


def _show(schema: Schema) -> str:
    return "{" + ", ".join(f"{c}: {t.show()}" for c, t in schema.items()) + "}"
