"""Static analysis over compiled plans: property inference + verifier.

See :mod:`repro.analysis.properties` for the inferred property lattice
(keys, constants, cardinality bounds, non-null sets, density and order
provenance) and :mod:`repro.analysis.verifier` for the staged plan
verifier with its ``F1xx``/``F2xx``/``F3xx`` diagnostic codes.
"""

from .properties import (
    Card,
    Props,
    PropsCache,
    annotate_plan,
    infer_properties,
)
from .sharding import (
    ShardDecision,
    build_shard_plan,
    shardable,
)
from .verifier import (
    STAGES,
    Diagnostic,
    VerifyReport,
    avalanche_lint,
    check_avalanche,
    check_order,
    check_plan,
    ensure_verified,
    set_verify_debug,
    verify_bundle,
    verify_debug_enabled,
)

__all__ = [
    "Card",
    "Diagnostic",
    "Props",
    "PropsCache",
    "STAGES",
    "ShardDecision",
    "VerifyReport",
    "annotate_plan",
    "build_shard_plan",
    "avalanche_lint",
    "check_avalanche",
    "check_order",
    "check_plan",
    "ensure_verified",
    "infer_properties",
    "set_verify_debug",
    "shardable",
    "verify_bundle",
    "verify_debug_enabled",
]
