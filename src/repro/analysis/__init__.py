"""Static analysis over compiled plans: properties, cost, verifier, lint.

See :mod:`repro.analysis.properties` for the inferred property lattice
(keys, constants, cardinality bounds, non-null sets, density and order
provenance), :mod:`repro.analysis.cost` for the cardinality-aware cost
model built on top of it, :mod:`repro.analysis.verifier` for the staged
plan verifier with its ``F1xx``/``F2xx``/``F3xx`` diagnostic codes, and
:mod:`repro.analysis.lint` for the estimate-drift lint (``D5xx``).
"""

from .cost import (
    BundleCost,
    CostModel,
    DispatchDecision,
    Est,
    QueryCost,
    annotate_costs,
    decide_parallel,
    estimate_bundle,
    scatter_worthwhile,
)
from .properties import (
    Card,
    Props,
    PropsCache,
    annotate_plan,
    infer_properties,
)
from .sharding import (
    ShardDecision,
    build_shard_plan,
    shardable,
)
from .verifier import (
    STAGES,
    Diagnostic,
    VerifyReport,
    avalanche_lint,
    check_avalanche,
    check_order,
    check_plan,
    ensure_verified,
    set_verify_debug,
    verify_bundle,
    verify_debug_enabled,
)

#: Lint names served lazily (so ``python -m repro.analysis.lint`` does
#: not re-import the module it is executing).
_LINT_EXPORTS = ("D_CODES", "DEFAULT_RATIO_BUDGET", "lint_calibration",
                 "lint_report", "lint_statements")


def __getattr__(name: str):
    if name in _LINT_EXPORTS:
        from . import lint
        return getattr(lint, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BundleCost",
    "Card",
    "CostModel",
    "D_CODES",
    "DEFAULT_RATIO_BUDGET",
    "Diagnostic",
    "DispatchDecision",
    "Est",
    "Props",
    "PropsCache",
    "QueryCost",
    "STAGES",
    "ShardDecision",
    "VerifyReport",
    "annotate_costs",
    "annotate_plan",
    "build_shard_plan",
    "avalanche_lint",
    "check_avalanche",
    "check_order",
    "check_plan",
    "decide_parallel",
    "ensure_verified",
    "estimate_bundle",
    "infer_properties",
    "lint_calibration",
    "lint_report",
    "lint_statements",
    "scatter_worthwhile",
    "set_verify_debug",
    "shardable",
    "verify_bundle",
    "verify_debug_enabled",
]
