"""Cardinality-aware cost estimation over compiled plans.

PR 5 gave every plan node an inferred :class:`~repro.analysis.Props`
record -- keys, constants, ``Card(lo, hi)`` bounds, density facts.  This
module turns that property lattice into the *decision layer*: a
memoized, per-operator estimator that assigns every node

``est_rows``
    a point estimate of its output cardinality, always clamped into
    *sound* bounds ``rows_lo..rows_hi``.  The bounds refine ``Card`` by
    propagating exact table sizes (the catalog is immutable per schema
    generation, so compile-time row counts are exact for the instance)
    through the same sound combinators property inference uses; the
    point estimate additionally applies textbook selectivities
    (join-key uniqueness from the inferred keys, default filter
    selectivity, group-count ratios).
``est_width``
    the output column count, straight from the inferred schema.
``self_cost`` / plan cost
    abstract work units (~ns on the calibration machine): a per-operator
    per-input-row constant plus a per-output-cell constant, calibrated
    once per backend against the measured kernel throughputs of
    ``benchmarks/test_engine_kernels.py`` (see :data:`CALIBRATION` and
    DESIGN.md, "The cost lattice").  A plan's cost sums ``self_cost``
    over the *distinct* DAG nodes -- shared subplans are counted once,
    matching the engine's per-node memoization and SQL's WITH reuse.

Three consumers:

* the optimizer's property-driven rewrites are **cost-gated** -- a
  candidate replacement must *strictly* lower the estimated plan cost
  (``repro.optimizer.rewrites.properties``);
* runtime dispatch -- scatter vs. single-image in
  :mod:`repro.analysis.sharding` and parallel vs. serial bundle
  execution in :class:`~repro.runtime.connection.Connection` -- compares
  estimated work against fan-out overhead (stable ``S41x`` decision
  codes, :func:`decide_parallel`);
* the estimate-drift lint (:mod:`repro.analysis.lint`) diffs these
  static estimates against EXPLAIN ANALYZE actuals (``D5xx`` codes).

Estimates are *advisory*; the bounds are the sound part (the hypothesis
suite asserts they contain every engine-materialized row count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..algebra.dag import postorder
from ..algebra.ops import (
    AntiJoin,
    Attach,
    BinApp,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
)
from .properties import Props, PropsCache

#: Version stamp of the calibration tables below.  Bumped whenever the
#: constants are re-derived from ``benchmarks/test_engine_kernels.py``;
#: the drift lint's ``D502`` flags estimates produced under another
#: version (stale calibration).
CALIBRATION_VERSION = 1

#: Assumed row count of a table scan when no catalog statistics are
#: available (shard decisions deliberately run stats-free so verdicts
#: are stable across instances; see ``analysis.sharding``).
DEFAULT_TABLE_ROWS = 1000

#: Fraction of rows assumed to survive an opaque filter.
SELECT_SELECTIVITY = 0.5
#: Fraction of left rows assumed to survive an anti-join.
ANTI_SELECTIVITY = 0.5
#: Assumed groups-per-row ratio of a grouped aggregation.
GROUP_RATIO = 0.5

#: Per-backend, per-operator cost constants: abstract work units
#: (~nanoseconds on the calibration machine) *per input row*.
#: Calibrated once against the measured kernel throughputs of
#: ``benchmarks/test_engine_kernels.py`` (30k-row fact/dim workloads:
#: the column-kernel engine moves ~2-4M rows/s through joins and
#: grouping, ~10M rows/s through projections; SQLite's C engine is
#: roughly 3x faster per row on the same statements, the MIL VM sits
#: between).  ``__cell__`` is the cost per *output cell*
#: (rows x width) -- materializing wide intermediates is what the
#: semi-join-reduction rewrite wins on; ``__base__`` the fixed
#: per-operator dispatch cost.
CALIBRATION: dict[str, dict[str, float]] = {
    "engine": {
        "__version__": CALIBRATION_VERSION,
        "__base__": 2_000.0,
        "__cell__": 40.0,
        "LitTable": 10.0,
        "TableScan": 60.0,
        "Attach": 80.0,
        "Project": 90.0,
        "Select": 110.0,
        "Distinct": 260.0,
        "RowNum": 420.0,
        "RowRank": 420.0,
        "Cross": 160.0,
        "EqJoin": 310.0,
        "SemiJoin": 200.0,
        "AntiJoin": 200.0,
        "UnionAll": 60.0,
        "GroupAggr": 340.0,
        "BinApp": 130.0,
        "UnApp": 130.0,
    },
    "sqlite": {
        "__version__": CALIBRATION_VERSION,
        "__base__": 9_000.0,
        "__cell__": 15.0,
        "LitTable": 5.0,
        "TableScan": 25.0,
        "Attach": 30.0,
        "Project": 30.0,
        "Select": 40.0,
        "Distinct": 90.0,
        "RowNum": 150.0,
        "RowRank": 150.0,
        "Cross": 60.0,
        "EqJoin": 110.0,
        "SemiJoin": 70.0,
        "AntiJoin": 70.0,
        "UnionAll": 20.0,
        "GroupAggr": 120.0,
        "BinApp": 45.0,
        "UnApp": 45.0,
    },
    "mil": {
        "__version__": CALIBRATION_VERSION,
        "__base__": 4_000.0,
        "__cell__": 25.0,
        "LitTable": 8.0,
        "TableScan": 40.0,
        "Attach": 50.0,
        "Project": 55.0,
        "Select": 70.0,
        "Distinct": 160.0,
        "RowNum": 260.0,
        "RowRank": 260.0,
        "Cross": 100.0,
        "EqJoin": 190.0,
        "SemiJoin": 120.0,
        "AntiJoin": 120.0,
        "UnionAll": 40.0,
        "GroupAggr": 210.0,
        "BinApp": 80.0,
        "UnApp": 80.0,
    },
}

#: Estimated fan-out overhead, in cost units, of scattering one query
#: over one additional SQL shard (connection touch + thread hop +
#: gather merge share).
SCATTER_OVERHEAD = 120_000.0
#: Estimated overhead, in cost units, of fanning one bundle query out
#: to a worker thread (submit + future + span adoption).
PARALLEL_OVERHEAD = 150_000.0


def constants_for(backend: str) -> tuple[dict[str, float], bool]:
    """The calibration table for ``backend`` and whether it is a real
    (calibrated) entry.  Shard-fanout names (``sqlite-x4``) resolve to
    their base backend; unknown backends fall back to the engine table
    uncalibrated -- the drift lint reports that as ``D502``."""
    base = backend.split("-", 1)[0]
    table = CALIBRATION.get(base)
    if table is None:
        return CALIBRATION["engine"], False
    return table, True


@dataclass(frozen=True)
class Est:
    """Cost-estimate record of one plan node."""

    #: Point estimate of the output row count (clamped into the bounds).
    rows: float
    #: Sound lower bound on the output row count.
    rows_lo: float
    #: Sound upper bound (``None`` = unbounded).
    rows_hi: "float | None"
    #: Output width (column count, from the inferred schema).
    width: int
    #: Estimated work of this operator alone, in cost units.
    self_cost: float

    def contains(self, n: int) -> bool:
        """Do the sound bounds contain an observed row count?"""
        return self.rows_lo <= n and (self.rows_hi is None
                                      or n <= self.rows_hi)

    def show(self) -> str:
        hi = "*" if self.rows_hi is None else f"{self.rows_hi:g}"
        return (f"est {self.rows:g} rows ({self.rows_lo:g}..{hi}) "
                f"w={self.width} cost={self.self_cost:g}")


@dataclass(frozen=True)
class QueryCost:
    """Whole-plan estimate of one bundle member."""

    #: Root-node row estimate (the rows the query is expected to emit).
    est_rows: float
    rows_lo: float
    rows_hi: "float | None"
    width: int
    #: Total estimated work: ``self_cost`` summed over the distinct DAG
    #: nodes (shared subplans once).
    total_cost: float

    def to_dict(self) -> dict[str, object]:
        return {"est_rows": self.est_rows, "rows_lo": self.rows_lo,
                "rows_hi": self.rows_hi, "width": self.width,
                "total_cost": self.total_cost}


@dataclass
class BundleCost:
    """Compile-time cost stamp of a whole bundle (``bundle.cost``)."""

    backend: str
    calibrated: bool
    calibration_version: int
    queries: list[QueryCost] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(q.total_cost for q in self.queries)

    @property
    def est_rows(self) -> float:
        return sum(q.est_rows for q in self.queries)

    def to_dict(self) -> dict[str, object]:
        return {"backend": self.backend, "calibrated": self.calibrated,
                "calibration_version": self.calibration_version,
                "total_cost": self.total_cost,
                "queries": [q.to_dict() for q in self.queries]}


class CostModel:
    """Memoized per-node cost estimator over a shared plan DAG.

    ``cache`` is the compile's :class:`~repro.analysis.PropsCache` --
    estimation piggybacks on the property inference the pipeline
    already paid for.  ``table_rows`` maps table names to exact row
    counts (compile-time catalog statistics); without it scans assume
    :data:`DEFAULT_TABLE_ROWS` and the bounds stay as wide as ``Card``.
    """

    __slots__ = ("constants", "calibrated", "backend", "table_rows",
                 "cache", "memo")

    def __init__(self, backend: str = "engine",
                 table_rows: "Mapping[str, int] | None" = None,
                 cache: "PropsCache | None" = None):
        self.backend = backend
        self.constants, self.calibrated = constants_for(backend)
        self.table_rows = table_rows
        self.cache = cache if cache is not None else PropsCache()
        self.memo: dict[int, Est] = {}

    # ------------------------------------------------------------------
    def estimate(self, node: Node) -> Est:
        """The :class:`Est` of ``node``, memoized over the DAG."""
        cached = self.memo.get(id(node))
        if cached is not None:
            return cached
        self.cache.infer(node)  # pins + analyzes the whole subtree
        for current in postorder(node):
            if id(current) not in self.memo:
                self.memo[id(current)] = self._estimate(current)
        return self.memo[id(node)]

    def plan_cost(self, root: Node) -> float:
        """Total estimated work of ``root``'s plan: ``self_cost`` summed
        over distinct reachable nodes (shared subplans once)."""
        self.estimate(root)
        return sum(self.memo[id(node)].self_cost
                   for node in postorder(root))

    def query_cost(self, root: Node) -> QueryCost:
        est = self.estimate(root)
        return QueryCost(est_rows=est.rows, rows_lo=est.rows_lo,
                         rows_hi=est.rows_hi, width=est.width,
                         total_cost=self.plan_cost(root))

    # ------------------------------------------------------------------
    def _props(self, node: Node) -> Props:
        return self.cache.props[id(node)]

    def _estimate(self, node: Node) -> Est:
        props = self._props(node)
        width = len(props.schema)
        rows, lo, hi = self._rows(node, props)
        # Intersect the propagated bounds with the (independently sound)
        # inferred Card; clamp the point estimate into the result.
        lo = max(lo, float(props.card.lo))
        if props.card.hi is not None:
            hi = (float(props.card.hi) if hi is None
                  else min(hi, float(props.card.hi)))
        if hi is not None:
            hi = max(hi, lo)
            rows = min(rows, hi)
        rows = max(rows, lo)
        rows_in = sum(self.memo[id(c)].rows for c in node.children)
        c = self.constants
        per_row = c.get(node.label, c["Project"])
        self_cost = (c["__base__"] + per_row * rows_in
                     + c["__cell__"] * rows * width)
        return Est(rows=rows, rows_lo=lo, rows_hi=hi, width=width,
                   self_cost=self_cost)

    def _rows(self, node: Node, props: Props
              ) -> tuple[float, float, "float | None"]:
        """``(point, lo, hi)`` of the output rows, from the children's
        estimates via the same sound combinators ``Card`` uses, with
        textbook selectivities sharpening the point."""
        if isinstance(node, LitTable):
            n = float(len(node.rows))
            return n, n, n
        if isinstance(node, TableScan):
            if self.table_rows is not None and node.table in self.table_rows:
                # Exact for this catalog instance: tables are immutable
                # per schema generation, and the plan cache keys on it.
                n = float(self.table_rows[node.table])
                return n, n, n
            return float(DEFAULT_TABLE_ROWS), 0.0, None
        if isinstance(node, (Attach, BinApp, UnApp, RowNum, RowRank)):
            e = self.memo[id(node.child)]  # type: ignore[attr-defined]
            return e.rows, e.rows_lo, e.rows_hi
        if isinstance(node, Project):
            e = self.memo[id(node.child)]
            return e.rows, e.rows_lo, e.rows_hi
        if isinstance(node, Select):
            e = self.memo[id(node.child)]
            cp = self._props(node.child)
            if cp.constants.get(node.col) is True:
                return e.rows, e.rows_lo, e.rows_hi
            return e.rows * SELECT_SELECTIVITY, 0.0, e.rows_hi
        if isinstance(node, Distinct):
            e = self.memo[id(node.child)]
            cp = self._props(node.child)
            rows = e.rows if cp.keys else e.rows * 0.9
            return rows, min(e.rows_lo, 1.0), e.rows_hi
        if isinstance(node, Cross):
            le = self.memo[id(node.left)]
            re_ = self.memo[id(node.right)]
            hi = (None if le.rows_hi is None or re_.rows_hi is None
                  else le.rows_hi * re_.rows_hi)
            return le.rows * re_.rows, le.rows_lo * re_.rows_lo, hi
        if isinstance(node, EqJoin):
            le = self.memo[id(node.left)]
            re_ = self.memo[id(node.right)]
            lp = self._props(node.left)
            rp = self._props(node.right)
            lcols = frozenset(l for l, _ in node.pairs)
            rcols = frozenset(r for _, r in node.pairs)
            if rp.has_key(rcols):
                # Each left row matches at most one right row; the
                # compiler's surrogate joins match every row.
                return le.rows, 0.0, le.rows_hi
            if lp.has_key(lcols):
                return re_.rows, 0.0, re_.rows_hi
            hi = (None if le.rows_hi is None or re_.rows_hi is None
                  else le.rows_hi * re_.rows_hi)
            # No distinct-value statistics: assume the join key is near
            # unique on the larger side (|L||R| / max(|L|, |R|)).
            return min(le.rows, re_.rows), 0.0, hi
        if isinstance(node, SemiJoin):
            e = self.memo[id(node.left)]
            return e.rows, 0.0, e.rows_hi
        if isinstance(node, AntiJoin):
            e = self.memo[id(node.left)]
            return e.rows * ANTI_SELECTIVITY, 0.0, e.rows_hi
        if isinstance(node, UnionAll):
            le = self.memo[id(node.left)]
            re_ = self.memo[id(node.right)]
            hi = (None if le.rows_hi is None or re_.rows_hi is None
                  else le.rows_hi + re_.rows_hi)
            return le.rows + re_.rows, le.rows_lo + re_.rows_lo, hi
        if isinstance(node, GroupAggr):
            e = self.memo[id(node.child)]
            lo = 0.0 if e.rows_lo == 0 else 1.0
            if not node.group:
                return (0.0 if e.rows == 0 else 1.0), lo, 1.0
            cp = self._props(node.child)
            rows = e.rows if cp.has_key(node.group) else e.rows * GROUP_RATIO
            return rows, lo, e.rows_hi
        # Unknown operator: schema inference would have raised earlier.
        return 1.0, 0.0, None  # pragma: no cover


# ----------------------------------------------------------------------
# bundle stamping + EXPLAIN annotations
# ----------------------------------------------------------------------

def estimate_bundle(bundle: object, backend: str = "engine",
                    table_rows: "Mapping[str, int] | None" = None,
                    cache: "PropsCache | None" = None) -> BundleCost:
    """Per-query :class:`QueryCost` for a whole bundle (the compile
    pipeline stamps the result on ``bundle.cost``)."""
    model = CostModel(backend, table_rows=table_rows, cache=cache)
    queries = [model.query_cost(q.plan)
               for q in bundle.queries]  # type: ignore[attr-defined]
    return BundleCost(backend=backend, calibrated=model.calibrated,
                      calibration_version=int(
                          model.constants.get("__version__", 0)),
                      queries=queries)


def annotate_costs(root: Node, model: CostModel) -> dict[int, str]:
    """Per-node estimate annotations keyed by the pretty-printer's
    postorder ``@n`` refs (merged into the EXPLAIN property view)."""
    model.estimate(root)
    return {i: "[" + model.memo[id(node)].show() + "]"
            for i, node in enumerate(postorder(root))}


# ----------------------------------------------------------------------
# dispatch decisions (the S41x codes)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DispatchDecision:
    """A cost-threshold dispatch verdict with its stable ``S41x`` code.

    ==========  ======================================================
    ``S410``    scatter: estimated per-query work amortizes the shard
                fan-out overhead (``analysis.sharding``)
    ``S411``    single-image: estimated work below scatter overhead
    ``S412``    parallel bundle execution: estimated bundle work
                amortizes the thread fan-out
    ``S413``    serial bundle execution: estimated bundle work below
                the thread fan-out overhead
    ==========  ======================================================
    """

    parallel: bool
    code: str
    reason: str
    est_cost: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {"parallel": self.parallel, "code": self.code,
                "reason": self.reason, "est_cost": self.est_cost}


def scatter_worthwhile(est_cost: float, coverage: float,
                       fanout: int) -> tuple[bool, str]:
    """The sharding cost gate: does the estimated per-shard saving --
    ``cost x coverage x (1 - 1/fanout)`` -- exceed the scatter overhead
    of ``fanout`` shard statements?  Returns ``(verdict, reason)``;
    the caller maps it to ``S410``/``S411``."""
    fanout = max(fanout, 2)
    saving = est_cost * coverage * (1.0 - 1.0 / fanout)
    overhead = SCATTER_OVERHEAD * fanout
    if saving > overhead:
        return True, (f"estimated work {est_cost:,.0f} x coverage "
                      f"{coverage:.2f} amortizes scatter overhead "
                      f"{overhead:,.0f}")
    return False, (f"estimated saving {saving:,.0f} below scatter "
                   f"overhead {overhead:,.0f}")


def decide_parallel(cost: "BundleCost | None",
                    n_queries: int) -> DispatchDecision:
    """Parallel-vs-serial bundle dispatch for a connection with
    ``parallel_bundles=True``: fan out only when the estimated bundle
    work amortizes the per-query thread overhead."""
    if n_queries <= 1:
        return DispatchDecision(False, "S413",
                                "single-query bundle runs inline")
    if cost is None or not cost.queries:
        return DispatchDecision(True, "S412",
                                "no cost estimate; fan-out by request")
    total = cost.total_cost
    overhead = PARALLEL_OVERHEAD * n_queries
    if total > overhead:
        return DispatchDecision(
            True, "S412",
            f"estimated bundle work {total:,.0f} amortizes thread "
            f"fan-out overhead {overhead:,.0f}", est_cost=total)
    return DispatchDecision(
        False, "S413",
        f"estimated bundle work {total:,.0f} below thread fan-out "
        f"overhead {overhead:,.0f}", est_cost=total)
