"""Estimate-drift lint: do the static cost estimates match reality?

The cost model (:mod:`repro.analysis.cost`) drives rewrite gating and
runtime dispatch, so a silently rotten estimate degrades plans without
failing a single test.  This lint closes the loop by diffing static
estimates against *measured* EXPLAIN ANALYZE actuals and the
per-fingerprint row aggregates of :mod:`repro.obs.stats`, reporting
stable ``D5xx`` codes (:class:`~repro.analysis.Diagnostic` records,
stage ``"drift"``):

==========  =========================================================
``D500``    rows misestimate: a point estimate differs from the
            measured row count beyond the ratio budget (default
            :data:`DEFAULT_RATIO_BUDGET` x) and the absolute slack
            (tiny relations never alarm)
``D501``    cost inversion: the model ranked one bundle query far
            cheaper than a sibling, but the sibling measured far
            faster (both above the noise floor)
``D502``    stale calibration: estimating against a backend with no
            calibration table, a table from another
            ``CALIBRATION_VERSION``, or missing per-operator constants
==========  =========================================================

Surfaces: ``conn.explain(q, analyze=True)`` attaches the findings to
its report, ``/statements`` carries per-fingerprint ``est_rows`` next
to measured rows, and ``python -m repro.analysis.lint`` runs the lint
over the golden workload as a CI gate (exit 1 on any finding;
``--assume-rows table=N`` seeds deliberate misestimates for testing
the gate itself).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Mapping

from .cost import CALIBRATION_VERSION, CostModel, constants_for
from .properties import PropsCache
from .verifier import Diagnostic

#: Largest tolerated est/actual ratio before D500 fires.
DEFAULT_RATIO_BUDGET = 8.0
#: Absolute row slack: differences at most this large never alarm.
ROW_SLACK = 16.0
#: Minimum measured per-query time (seconds) for D501 comparisons;
#: below it wall-clock noise dominates and inversion is meaningless.
D501_MIN_TIME = 0.005
#: Minimum est-cost/time ratio between siblings for D501: the model
#: must claim one query is this many times cheaper while it measured
#: this many times slower.
D501_FACTOR = 4.0

D_CODES = ("D500", "D501", "D502")


def _misestimate(est: float, actual: float, budget: float) -> bool:
    """Outside both the absolute slack and the ratio budget?"""
    if abs(est - actual) <= ROW_SLACK:
        return False
    lo, hi = sorted((est, actual))
    return hi > budget * max(lo, 1.0)


def lint_calibration(backend: str, plans: "list[Any] | None" = None
                     ) -> "list[Diagnostic]":
    """The ``D502`` stale-calibration checks for ``backend`` (and, when
    ``plans`` are given, for every operator label they use)."""
    from ..algebra.dag import postorder
    out: list[Diagnostic] = []
    table, calibrated = constants_for(backend)
    if not calibrated:
        out.append(Diagnostic(
            "D502", "drift",
            f"backend {backend!r} has no calibration table; estimates "
            f"use the engine fallback constants", query=None))
        return out
    version = int(table.get("__version__", 0))
    if version != CALIBRATION_VERSION:
        out.append(Diagnostic(
            "D502", "drift",
            f"calibration table for {backend!r} is version {version}, "
            f"current is {CALIBRATION_VERSION}; re-calibrate against "
            f"benchmarks/test_engine_kernels.py", query=None))
    if plans:
        missing: set[str] = set()
        for plan in plans:
            for node in postorder(plan):
                if node.label not in table:
                    missing.add(node.label)
        for label in sorted(missing):
            out.append(Diagnostic(
                "D502", "drift",
                f"no calibrated constant for operator {label!r} on "
                f"backend {backend!r}", query=None))
    return out


def lint_report(bundle: Any, analyze: Any, backend: str,
                table_rows: "Mapping[str, int] | None" = None,
                ratio_budget: float = DEFAULT_RATIO_BUDGET,
                cache: "PropsCache | None" = None) -> "list[Diagnostic]":
    """Diff static estimates against one EXPLAIN ANALYZE run.

    ``bundle`` is the compiled bundle, ``analyze`` the
    :class:`~repro.obs.AnalyzeReport` measured for it.  Emits ``D500``
    per query (all backends) and per operator (engine profiles),
    ``D501`` for sibling cost inversions, and the ``D502`` calibration
    checks.
    """
    from ..algebra.dag import postorder
    model = CostModel(backend, table_rows=table_rows, cache=cache)
    out = lint_calibration(backend, [q.plan for q in bundle.queries])
    costs: list[float] = []
    for profile, query in zip(analyze.queries, bundle.queries):
        qi = profile.index - 1
        est = model.estimate(query.plan)
        costs.append(model.plan_cost(query.plan))
        if _misestimate(est.rows, profile.rows, ratio_budget):
            out.append(Diagnostic(
                "D500", "drift",
                f"estimated {est.rows:g} rows but measured "
                f"{profile.rows} (budget {ratio_budget:g}x)", query=qi))
        if profile.ops:
            nodes = list(postorder(query.plan))
            for op in profile.ops:
                node_est = model.memo[id(nodes[op.ref])]
                if _misestimate(node_est.rows, op.rows_out, ratio_budget):
                    out.append(Diagnostic(
                        "D500", "drift",
                        f"{op.op}: estimated {node_est.rows:g} rows "
                        f"but measured {op.rows_out} "
                        f"(budget {ratio_budget:g}x)",
                        query=qi, node_ref=op.ref))
    # D501: cost ordering vs measured ordering, between bundle siblings.
    profiles = list(analyze.queries)
    for i in range(len(profiles)):
        for j in range(len(profiles)):
            if i == j:
                continue
            ti, tj = profiles[i].time, profiles[j].time
            if ti < D501_MIN_TIME or tj < D501_MIN_TIME:
                continue
            # Model: i is far cheaper.  Clock: i is far slower.
            if (costs[j] > D501_FACTOR * costs[i]
                    and ti > D501_FACTOR * tj):
                out.append(Diagnostic(
                    "D501", "drift",
                    f"model ranks Q{profiles[i].index} "
                    f"{costs[j] / max(costs[i], 1.0):.1f}x cheaper than "
                    f"Q{profiles[j].index} but it measured "
                    f"{ti / max(tj, 1e-9):.1f}x slower",
                    query=profiles[i].index - 1))
    return out


def lint_statements(stats_snapshot: "Mapping[str, Any]",
                    ratio_budget: float = DEFAULT_RATIO_BUDGET
                    ) -> "list[Diagnostic]":
    """Diff per-fingerprint mean measured rows against the recorded
    static estimate (``repro.obs.stats`` snapshots carry ``est_rows``).
    Pure-aggregate D500s: no bundle or plan needed."""
    out: list[Diagnostic] = []
    for entry in stats_snapshot.get("statements", []):
        est = entry.get("est_rows")
        calls = entry.get("calls", 0)
        if est is None or not calls:
            continue
        mean_rows = entry["rows"] / calls
        if _misestimate(est, mean_rows, ratio_budget):
            fp = entry.get("fingerprint", "?")
            out.append(Diagnostic(
                "D500", "drift",
                f"statement {fp[:16]}…: estimated {est:g} rows but "
                f"measured {mean_rows:g} mean rows over {calls} call(s) "
                f"(budget {ratio_budget:g}x)", query=None))
    return out


# ----------------------------------------------------------------------
# the CLI gate: python -m repro.analysis.lint
# ----------------------------------------------------------------------

def _parse_assume(pairs: "list[str]") -> dict[str, int]:
    assumed: dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(
                f"--assume-rows expects table=N, got {pair!r}")
        assumed[name] = int(value)
    return assumed


def _golden_workload(backend: str) -> "list[tuple[str, Any, Any]]":
    """(name, connection, query) triples of the golden workload: the
    paper's running example plus a nested-orders report."""
    from ..bench.table1 import running_example_query
    from ..bench.workloads import orders_dataset, paper_dataset
    from ..frontend import fmap, pyq, tup
    from ..runtime.connection import Connection

    runs: list[tuple[str, Any, Any]] = []
    db = Connection(backend=backend, catalog=paper_dataset())
    runs.append(("running_example", db, running_example_query(db)))
    orders = Connection(backend=backend,
                        catalog=orders_dataset(n_customers=25))
    customers = orders.table("customers")
    otable = orders.table("orders")
    nested = fmap(
        lambda c: tup(c[1], pyq(
            "[oid for (cid2, month, oid) in otable if cid2 == cid]",
            otable=otable, cid=c[0])),
        customers)
    runs.append(("nested_orders", orders, nested))
    return runs


def main(argv: "list[str] | None" = None) -> int:
    """Run the estimate-drift lint over the golden workload.

    Exit 0 when every estimate lands inside the budget, 1 otherwise --
    usable as a CI gate.  ``--assume-rows table=N`` overrides the
    catalog statistics fed to the estimator (seeding a deliberate D500
    to prove the gate trips).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="estimate-drift lint over the golden workload")
    parser.add_argument("--backend", default="engine",
                        choices=("engine", "sqlite", "mil"))
    parser.add_argument("--ratio-budget", type=float,
                        default=DEFAULT_RATIO_BUDGET,
                        help="largest tolerated est/actual ratio "
                             f"(default {DEFAULT_RATIO_BUDGET:g})")
    parser.add_argument("--assume-rows", action="append", default=[],
                        metavar="TABLE=N",
                        help="override a table's row statistic "
                             "(repeatable; seeds misestimates)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    args = parser.parse_args(argv)
    assumed = _parse_assume(args.assume_rows)

    findings: list[tuple[str, Diagnostic]] = []
    for name, conn, query in _golden_workload(args.backend):
        report = conn.explain(query, analyze=True)
        table_rows = dict(conn._table_stats())
        table_rows.update(assumed)
        for diag in lint_report(report_bundle(conn, query), report.analyze,
                                conn.backend.name, table_rows=table_rows,
                                ratio_budget=args.ratio_budget):
            findings.append((name, diag))
        if conn.stats is not None:
            for diag in lint_statements(conn.statement_stats(),
                                        ratio_budget=args.ratio_budget):
                findings.append((name, diag))
    if args.json:
        print(json.dumps([{"workload": name, **diag.to_dict()}
                          for name, diag in findings], indent=2))
    elif findings:
        for name, diag in findings:
            print(f"{name}: {diag}")
        print(f"{len(findings)} drift finding(s)")
    else:
        print(f"estimate-drift lint clean on backend "
              f"{args.backend!r} (budget {args.ratio_budget:g}x)")
    return 1 if findings else 0


def report_bundle(conn: Any, query: Any) -> Any:
    """The compiled bundle behind an explain (cache hit: free)."""
    return conn.compile(query).bundle


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
