"""Plan-property inference over the table algebra (Pathfinder-style).

Pathfinder drives its rewrites from inferred plan properties -- keys,
constant columns, cardinalities -- rather than from syntactic patterns
alone (Grust et al., "Why off-the-shelf RDBMSs are better at XPath than
you might expect", and the Pathfinder peephole optimizer).  This module
gives the reproduction that analysis layer: a single memoized bottom-up
walk over the shared plan DAG derives, per node, a :class:`Props` record
with

``keys``
    a minimal antichain of column sets whose projection is duplicate
    free (bag semantics).  The empty key means "at most one row".
``constants``
    columns whose value is the same in every row, with that value.
``card``
    cardinality bounds ``lo..hi`` (``hi=None`` means unbounded).
``non_null``
    columns that provably contain no ``None``.  The algebra's type
    system has no Maybe/NULL, so this is almost always every column;
    it is tracked anyway because the differential property tests cheaply
    falsify it if an operator ever starts leaking ``None``.
``dense``
    *sound* density facts: ``(col, part)`` means that within every
    group of rows agreeing on the ``part`` columns, ``col`` carries
    exactly the values ``1..n`` (the paper's ``pos`` encoding).  Only
    facts that hold for every instance are recorded; rewrites may rely
    on them.
``provenance``
    *lineage-grade* order pedigree: columns that descend from a
    ``RowNum`` (or an equivalent dense source) through operators that
    preserve the "this column encodes list order" reading.  Unlike
    ``dense`` this is a lint signal -- the order verifier (``F2xx``)
    uses it to flag plans whose ``pos`` column has no row-numbering
    lineage at all, without false-positiving on prefixes/unions whose
    density is real but not locally provable.

Inference is sound for everything except ``provenance`` (documented
above); the hypothesis differential suite checks ``keys``,
``constants``, ``card``, ``non_null`` and ``dense`` against actually
materialized engine relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any

from ..algebra.ops import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
)
from ..algebra.schema import Schema, schema_of
from ..errors import PartialFunctionError
from ..ftypes import IntT
from ..semantics.interp import _binop, _unop

#: Antichain size cap: key sets beyond this are dropped (smallest kept).
MAX_KEYS = 16
#: Work budget (rows x column pairs) for the pairwise density scan of
#: literal tables.  Everything O(rows x cols) always runs -- a literal's
#: size already bounds compile cost via codegen, and the verifier's
#: F201 check needs the density of user-written literal lists of any
#: length -- but the quadratic-in-width pair loop is budgeted so a
#: pathologically wide literal cannot blow up analysis.
LIT_PAIR_BUDGET = 2_000_000

Key = frozenset  # of column names
DenseFact = tuple  # (col, frozenset[str])


@dataclass(frozen=True)
class Card:
    """Cardinality bounds: ``lo <= nrows <= hi`` (``hi=None``: unbounded)."""

    lo: int = 0
    hi: int | None = None

    def contains(self, n: int) -> bool:
        return self.lo <= n and (self.hi is None or n <= self.hi)

    @property
    def at_most_one(self) -> bool:
        return self.hi is not None and self.hi <= 1

    @property
    def empty(self) -> bool:
        return self.hi == 0

    def show(self) -> str:
        hi = "*" if self.hi is None else str(self.hi)
        return f"{self.lo}..{hi}"

    def times(self, other: "Card") -> "Card":
        hi = (None if self.hi is None or other.hi is None
              else self.hi * other.hi)
        return Card(self.lo * other.lo, hi)

    def plus(self, other: "Card") -> "Card":
        hi = (None if self.hi is None or other.hi is None
              else self.hi + other.hi)
        return Card(self.lo + other.lo, hi)

    def filtered(self) -> "Card":
        """Bounds after dropping an unknown subset of rows."""
        return Card(0, self.hi)


@dataclass
class Props:
    """Inferred properties of one plan node (see module docstring)."""

    schema: Schema
    keys: frozenset[Key] = frozenset()
    constants: dict[str, Any] = field(default_factory=dict)
    card: Card = Card()
    non_null: frozenset[str] = frozenset()
    dense: frozenset[DenseFact] = frozenset()
    provenance: frozenset[str] = frozenset()

    # -- queries -------------------------------------------------------
    def has_key(self, cols: "frozenset[str] | set[str]") -> bool:
        """Is some inferred key a subset of ``cols`` (i.e. ``cols`` is a
        superkey)?"""
        cols = frozenset(cols)
        return any(k <= cols for k in self.keys)

    def is_dense(self, col: str, part: "frozenset[str] | tuple[str, ...]"
                 ) -> bool:
        """Soundly dense: within every ``part`` group, ``col`` is exactly
        ``1..n``.

        A recorded fact ``(col, P)`` applies to any partition that
        groups the rows identically: adding or removing *constant*
        columns never splits or merges groups, so the fact transfers
        whenever ``P`` and ``part`` differ only by constants.
        """
        part = frozenset(part)
        for c, p in self.dense:
            if c != col:
                continue
            if all(x in self.constants for x in (p | part) - (p & part)):
                return True
        # A constant 1 is trivially dense whenever the partition is a
        # superkey (each group holds exactly one row).
        return self.constants.get(col) == 1 and self.has_key(part)

    def order_ok(self, col: str) -> bool:
        """Lint-grade: does ``col`` plausibly encode list order?  (Used
        by the F2xx order stage; see module docstring for soundness.)"""
        return (col in self.provenance
                or any(c == col for c, _ in self.dense)
                or self.constants.get(col) == 1
                or self.card.at_most_one)

    def show(self) -> str:
        """Compact one-line rendering (EXPLAIN property annotations)."""
        parts = [f"card {self.card.show()}"]
        if self.keys:
            keys = sorted(self.keys, key=lambda k: (len(k), sorted(k)))
            parts.append("keys " + " ".join(
                "{" + ",".join(sorted(k)) + "}" for k in keys[:3]))
        if self.constants:
            parts.append("const " + ",".join(
                f"{c}={v!r}" for c, v in sorted(self.constants.items())))
        if self.dense:
            facts = sorted(self.dense,
                           key=lambda f: (f[0], len(f[1]), sorted(f[1])))
            parts.append("dense " + ",".join(
                f"{c}/{{{','.join(sorted(p))}}}" if p else f"{c}"
                for c, p in facts[:3]))
        return "[" + "; ".join(parts) + "]"


# ----------------------------------------------------------------------
# inference entry point
# ----------------------------------------------------------------------

class PropsCache:
    """A property/schema memo shared across pipeline stages.

    The optimizer's property sweep, the rewrite self-checks, and the
    final verifier all analyze largely the *same* DAG; threading one
    cache through them means each node is inferred exactly once per
    compile.  Memos are keyed on node identity, so the cache also
    *pins* every analyzed node (``pins``): without that, a dead
    intermediate plan could be garbage-collected and a later allocation
    could reuse its ``id()``, silently inheriting stale facts.
    """

    __slots__ = ("props", "schemas", "pins")

    def __init__(self) -> None:
        self.props: dict[int, Props] = {}
        self.schemas: dict[int, Schema] = {}
        self.pins: list[Node] = []

    def infer(self, node: Node) -> Props:
        return infer_properties(node, self.props, self.schemas, self.pins)


def infer_properties(node: Node, memo: "dict[int, Props] | None" = None,
                     schemas: "dict[int, Schema] | None" = None,
                     pins: "list[Node] | None" = None) -> Props:
    """Infer :class:`Props` for ``node``, memoized over the shared DAG.

    Pass the same ``memo``/``schemas`` dictionaries across calls (e.g.
    for every query of a bundle) to analyze shared subplans exactly
    once; ``pins`` (see :class:`PropsCache`) additionally receives every
    newly analyzed node, keeping ``id()`` keys stable.  The walk is
    iterative -- plans can be thousands of operators deep.
    """
    if memo is None:
        memo = {}
    if schemas is None:
        schemas = {}
    cached = memo.get(id(node))
    if cached is not None:
        return cached
    seen: set[int] = set(memo)
    stack: list[tuple[Node, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if id(current) in seen:
            continue
        if expanded:
            seen.add(id(current))
            memo[id(current)] = _infer_props(current, memo, schemas)
            if pins is not None:
                pins.append(current)
        else:
            stack.append((current, True))
            for child in current.children:
                if id(child) not in seen:
                    stack.append((child, False))
    return memo[id(node)]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _minimize(keys: "set[Key]") -> frozenset[Key]:
    """Keep only minimal keys (drop supersets), capped at MAX_KEYS."""
    ordered = sorted(keys, key=lambda k: (len(k), sorted(k)))
    out: list[Key] = []
    for k in ordered:
        if not any(m <= k for m in out):
            out.append(k)
        if len(out) >= MAX_KEYS:
            break
    return frozenset(out)


def _finish(schema: Schema, keys: "set[Key]", constants: dict,
            card: Card, non_null: "frozenset[str]",
            dense: "frozenset[DenseFact]",
            provenance: "frozenset[str]") -> Props:
    """Normalize the mutual implications between properties."""
    cols = set(schema)
    consts = {c for c in constants if c in cols}
    # Constant columns neither split partition groups nor distinguish
    # rows: strip them, leaving the strongest (smallest) facts.
    if consts:
        keys = {k - consts for k in keys}
        stripped = set()
        for c, p in dense:
            if c in consts:
                # A constant yet dense column means every group holds
                # exactly one row (the run 1..n collapses to "1"): the
                # partition itself is a key.
                keys.add(frozenset(p - consts))
            else:
                stripped.add((c, frozenset(p - consts)))
        dense = frozenset(stripped)
    # Density implies uniqueness: within a part group col is 1..n, so
    # part + col projects without duplicates.
    for col, part in dense:
        keys.add(frozenset(part | {col}))
    # At most one row <=> the empty key.
    if card.hi is not None and card.hi <= 1:
        keys.add(frozenset())
    minimal = _minimize(keys)
    if frozenset() in minimal and (card.hi is None or card.hi > 1):
        card = Card(card.lo, 1)
    cols = set(schema)
    constants = {c: v for c, v in constants.items() if c in cols}
    return Props(schema, minimal, constants, card,
                 non_null & cols,
                 frozenset((c, p) for c, p in dense
                           if c in cols and p <= cols),
                 provenance & cols)


def _scan_literal(node: LitTable, schema: Schema
                  ) -> ("tuple[set[Key], dict[str, Any], "
                        "frozenset[str], frozenset[DenseFact]]"):
    """Exact keys / constants / density for literal tables (loop
    relations, literal lists) by looking at the rows."""
    cols = list(schema)
    nrows = len(node.rows)
    keys: set[Key] = set()
    constants: dict[str, Any] = {}
    non_null: set[str] = set(cols)
    dense: set[DenseFact] = set()
    if nrows == 0:
        return keys, constants, frozenset(non_null), frozenset(dense)
    columns = {c: [row[i] for row in node.rows]
               for i, c in enumerate(cols)}
    for c in cols:
        vals = columns[c]
        if any(v is None for v in vals):
            non_null.discard(c)
        elif all(v == vals[0] for v in vals):
            constants[c] = vals[0]
    for c in cols:
        try:
            if len(set(columns[c])) == nrows:
                keys.add(frozenset({c}))
        except TypeError:  # pragma: no cover - unhashable literal
            pass
    if not keys and len(set(node.rows)) == nrows:
        keys.add(frozenset(cols))

    def is_dense_seq(vals) -> bool:
        return sorted(vals) == list(range(1, len(vals) + 1))

    pair_budget = LIT_PAIR_BUDGET // max(nrows, 1)
    for c in cols:
        if schema[c] != IntT or c not in non_null:
            continue
        if is_dense_seq(columns[c]):
            dense.add((c, frozenset()))
        for p in cols:
            if p == c:
                continue
            if pair_budget <= 0:
                break  # constant-partition transfer still applies
            pair_budget -= 1
            groups: dict[Any, list] = {}
            for pv, cv in zip(columns[p], columns[c]):
                groups.setdefault(pv, []).append(cv)
            if all(is_dense_seq(g) for g in groups.values()):
                dense.add((c, frozenset({p})))
    return keys, constants, frozenset(non_null), frozenset(dense)


def _rename_keys(keys: "frozenset[Key]", renames: "dict[str, list[str]]"
                 ) -> set[Key]:
    """Survive keys across a Project: every key column must be kept; a
    duplicated column yields one key per choice of new name (capped)."""
    out: set[Key] = set()
    for k in keys:
        choices = [renames.get(c) for c in k]
        if any(ch is None for ch in choices):
            continue
        n_combos = 1
        for ch in choices:
            n_combos *= len(ch)  # type: ignore[arg-type]
        if n_combos > 8:
            choices = [ch[:1] for ch in choices]  # type: ignore[index]
        for combo in product(*choices):  # type: ignore[arg-type]
            out.add(frozenset(combo))
    return out


def _operand_const(operand: "str | Const",
                   constants: "dict[str, Any]") -> Any:
    """The operand's constant value, or a ``_UNKNOWN`` marker."""
    if isinstance(operand, Const):
        return operand.value
    if operand in constants:
        return constants[operand]
    return _UNKNOWN


_UNKNOWN = object()

#: Comparison ops folded when both operands are the *same column*.
_SAME_COL_CMP = {"eq": True, "le": True, "ge": True,
                 "lt": False, "gt": False, "ne": False}


# ----------------------------------------------------------------------
# per-operator rules
# ----------------------------------------------------------------------

def _infer_props(node: Node, memo: "dict[int, Props]",
                 schemas: "dict[int, Schema]") -> Props:
    schema = schema_of(node, schemas)

    if isinstance(node, LitTable):
        keys, constants, non_null, dense = _scan_literal(node, schema)
        n = len(node.rows)
        prov = frozenset(c for c, _ in dense) if n else frozenset(
            c for c in schema if schema[c] == IntT)
        return _finish(schema, keys, constants, Card(n, n), non_null,
                       dense, prov)

    if isinstance(node, TableScan):
        # Catalog rows are validated against the declared atom types on
        # insert, so scans never produce None.
        return _finish(schema, set(), {}, Card(0, None),
                       frozenset(schema), frozenset(), frozenset())

    if isinstance(node, Attach):
        p = memo[id(node.child)]
        constants = dict(p.constants)
        constants[node.col] = node.value
        non_null = p.non_null | ({node.col} if node.value is not None
                                 else frozenset())
        prov = p.provenance | ({node.col} if node.value == 1
                               else frozenset())
        return _finish(schema, set(p.keys), constants, p.card, non_null,
                       p.dense, prov)

    if isinstance(node, Project):
        p = memo[id(node.child)]
        renames: dict[str, list[str]] = {}
        for new, old in node.cols:
            renames.setdefault(old, []).append(new)
        keys = _rename_keys(p.keys, renames)
        constants = {new: p.constants[old] for new, old in node.cols
                     if old in p.constants}
        non_null = frozenset(new for new, old in node.cols
                             if old in p.non_null)
        dense: set[DenseFact] = set()
        for col, part in p.dense:
            new_cols = renames.get(col, [])
            part_choices = [renames.get(c) for c in part]
            if not new_cols or any(ch is None for ch in part_choices):
                continue
            n_combos = 1
            for ch in part_choices:
                n_combos *= len(ch)  # type: ignore[arg-type]
            if n_combos > 8:
                part_choices = [ch[:1] for ch in part_choices]  # type: ignore[index]
            for nc in new_cols:
                for combo in product(*part_choices):  # type: ignore[arg-type]
                    dense.add((nc, frozenset(combo)))
        prov = frozenset(new for new, old in node.cols
                         if old in p.provenance)
        return _finish(schema, keys, constants, p.card, non_null,
                       frozenset(dense), prov)

    if isinstance(node, Select):
        p = memo[id(node.child)]
        constants = dict(p.constants)
        # Downstream of the filter the selection column is always true.
        constants[node.col] = True
        card = (p.card if p.constants.get(node.col) is True
                else p.card.filtered())
        # Filtering breaks density but not lineage.
        return _finish(schema, set(p.keys), constants, card, p.non_null,
                       frozenset(), p.provenance)

    if isinstance(node, Distinct):
        p = memo[id(node.child)]
        keys = set(p.keys)
        keys.add(frozenset(schema))
        card = Card(min(p.card.lo, 1), p.card.hi)
        return _finish(schema, keys, dict(p.constants), card, p.non_null,
                       frozenset(), p.provenance)

    if isinstance(node, RowNum):
        p = memo[id(node.child)]
        keys = set(p.keys)
        keys.add(frozenset(node.part) | {node.col})
        constants = dict(p.constants)
        if p.card.at_most_one:
            constants[node.col] = 1
        dense = set(p.dense)
        dense.add((node.col, frozenset(node.part)))
        prov = p.provenance | {node.col}
        return _finish(schema, keys, constants, p.card,
                       p.non_null | {node.col}, frozenset(dense), prov)

    if isinstance(node, RowRank):
        p = memo[id(node.child)]
        constants = dict(p.constants)
        if p.card.at_most_one:
            constants[node.col] = 1
        # DENSE_RANK is dense 1..k globally, but k < nrows when order
        # keys tie, so (col, ()) is *not* a density fact w.r.t. rows;
        # it is also no key.  Lineage only.
        return _finish(schema, set(p.keys), constants, p.card,
                       p.non_null | {node.col}, p.dense, p.provenance)

    if isinstance(node, Cross):
        lp = memo[id(node.left)]
        rp = memo[id(node.right)]
        keys = {lk | rk for lk in lp.keys for rk in rp.keys}
        constants = dict(lp.constants)
        constants.update(rp.constants)
        dense: set[DenseFact] = set()
        # A dense run replicated per row of the other side stays dense
        # once the partition also pins that row (via one of its keys).
        for col, part in lp.dense:
            for rk in rp.keys:
                dense.add((col, part | rk))
        for col, part in rp.dense:
            for lk in lp.keys:
                dense.add((col, part | lk))
        return _finish(schema, keys, constants, lp.card.times(rp.card),
                       lp.non_null | rp.non_null, frozenset(dense),
                       lp.provenance | rp.provenance)

    if isinstance(node, EqJoin):
        lp = memo[id(node.left)]
        rp = memo[id(node.right)]
        lcols = frozenset(l for l, _ in node.pairs)
        rcols = frozenset(r for _, r in node.pairs)
        right_unique = rp.has_key(rcols)
        left_unique = lp.has_key(lcols)
        keys = {lk | rk for lk in lp.keys for rk in rp.keys}
        if right_unique:
            keys |= set(lp.keys)
        if left_unique:
            keys |= set(rp.keys)
        constants = dict(lp.constants)
        constants.update(rp.constants)
        # Equality propagates constants across the join pairs.
        for lc, rc in node.pairs:
            if lc in constants and rc not in constants:
                constants[rc] = constants[lc]
            elif rc in constants and lc not in constants:
                constants[lc] = constants[rc]
        lo = 0
        if right_unique:
            hi = lp.card.hi
        elif left_unique:
            hi = rp.card.hi
        else:
            hi = lp.card.times(rp.card).hi
        dense: set[DenseFact] = set()
        # A right-side run dense per exactly the join columns survives:
        # each left row pulls in one complete partition group.
        for col, part in rp.dense:
            if part == rcols:
                for lk in lp.keys:
                    dense.add((col, part | lk))
        for col, part in lp.dense:
            if part == lcols:
                for rk in rp.keys:
                    dense.add((col, part | rk))
        return _finish(schema, keys, constants, Card(lo, hi),
                       lp.non_null | rp.non_null, frozenset(dense),
                       lp.provenance | rp.provenance)

    if isinstance(node, (SemiJoin, AntiJoin)):
        lp = memo[id(node.left)]
        return _finish(schema, set(lp.keys), dict(lp.constants),
                       lp.card.filtered(), lp.non_null, frozenset(),
                       lp.provenance)

    if isinstance(node, UnionAll):
        lp = memo[id(node.left)]
        rp = memo[id(node.right)]
        constants = {}
        for c in schema:
            lv = lp.constants.get(c, _UNKNOWN)
            rv = rp.constants.get(c, _UNKNOWN)
            if lp.card.empty:
                lv = rv
            if rp.card.empty:
                rv = lv
            if lv is not _UNKNOWN and lv == rv:
                constants[c] = lv
        # Concatenating two provenant runs is the compiler's append /
        # take-while encoding; order pedigree survives (lint-grade).
        return _finish(schema, set(), constants, lp.card.plus(rp.card),
                       lp.non_null & rp.non_null, frozenset(),
                       lp.provenance & rp.provenance)

    if isinstance(node, GroupAggr):
        p = memo[id(node.child)]
        group = frozenset(node.group)
        keys = {group}
        keys |= {k for k in p.keys if k <= group}
        constants = {c: v for c, v in p.constants.items() if c in group}
        if not node.group:
            card = Card(0 if p.card.lo == 0 else 1, 1)
        else:
            card = Card(0 if p.card.lo == 0 else 1, p.card.hi)
        # Groups with no rows do not appear, so aggregates never see an
        # empty input: sum/min/max/... of a non-empty group is non-None.
        non_null = frozenset(c for c in group if c in p.non_null)
        non_null |= {out for _, _, out in node.aggs}
        prov = group & p.provenance
        return _finish(schema, keys, constants, card, non_null,
                       frozenset(), prov)

    if isinstance(node, BinApp):
        p = memo[id(node.child)]
        constants = dict(p.constants)
        lv = _operand_const(node.lhs, p.constants)
        rv = _operand_const(node.rhs, p.constants)
        if lv is not _UNKNOWN and rv is not _UNKNOWN:
            try:
                constants[node.out] = _binop(node.op, lv, rv)
            except (PartialFunctionError, ArithmeticError, TypeError,
                    ValueError):
                pass
        elif (node.op in _SAME_COL_CMP and isinstance(node.lhs, str)
              and node.lhs == node.rhs):
            constants[node.out] = _SAME_COL_CMP[node.op]
        ins_non_null = all(
            isinstance(o, Const) and o.value is not None
            or isinstance(o, str) and o in p.non_null
            for o in (node.lhs, node.rhs))
        non_null = p.non_null | ({node.out} if ins_non_null
                                 else frozenset())
        return _finish(schema, set(p.keys), constants, p.card, non_null,
                       p.dense, p.provenance)

    if isinstance(node, UnApp):
        p = memo[id(node.child)]
        constants = dict(p.constants)
        if node.col in p.constants:
            try:
                constants[node.out] = _unop(node.op, p.constants[node.col])
            except (PartialFunctionError, ArithmeticError, TypeError,
                    ValueError, AttributeError):
                pass
        non_null = p.non_null | ({node.out} if node.col in p.non_null
                                 else frozenset())
        return _finish(schema, set(p.keys), constants, p.card, non_null,
                       p.dense, p.provenance)

    # Unknown operator: schema_of above would have raised; this is for
    # completeness only.
    return Props(schema)  # pragma: no cover


# ----------------------------------------------------------------------
# EXPLAIN annotations
# ----------------------------------------------------------------------

def annotate_plan(root: Node, memo: "dict[int, Props] | None" = None,
                  schemas: "dict[int, Schema] | None" = None
                  ) -> dict[int, str]:
    """Per-node property annotations keyed by the pretty-printer's
    postorder ``@n`` refs (feed into ``plan_text(root, annotations)``)."""
    from ..algebra.dag import postorder
    if memo is None:
        memo = {}
    infer_properties(root, memo, schemas)
    return {i: memo[id(node)].show()
            for i, node in enumerate(postorder(root))}
