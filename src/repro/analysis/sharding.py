"""Shard-safety analysis: proving a lifted plan partitionable on ``iter``.

Loop-lifting gives every emitted query an explicit ``iter`` column -- the
loop-instance surrogate (Section 3.1).  Rows of different ``iter`` groups
never interact in the *result*: the stitcher consumes each group
independently.  That makes the bundle embarrassingly partitionable along
``iter`` -- *if* the plan itself keeps the groups independent, which is a
per-operator property this module proves or refutes.

The proof object is a filter pushdown.  Shard ``k`` of ``n`` evaluates

    sigma[iter mod n = k](plan)

and the union over all shards is exactly the original result (the
predicates are disjoint and exhaustive, and each query is already
ordered by ``iter, pos``, so a merge on that key reassembles the global
order).  Pushing the filter from the root toward the leaves is what
makes sharding *profitable*: every operator the filter commutes with
evaluates on a fraction of its rows per shard.  Each operator class has
a commutation rule (``sigma_c(op(X)) = op(sigma_c(X))``):

* row-wise operators (``Project``/``Select``/``Attach``/``BinApp``/
  ``UnApp``/``Distinct``) commute, unless they *compute* the tracked
  column;
* ``RowNum`` commutes iff the tracked column is one of its PARTITION BY
  columns -- removing whole partitions never renumbers surviving groups;
* ``GroupAggr`` commutes iff the tracked column is a GROUP BY column;
* ``EqJoin`` on the tracked column pushes into *both* sides (equality
  transitivity); otherwise into the side that owns the column.  Same
  for ``Cross`` (owning side), ``SemiJoin``/``AntiJoin`` (left), and
  ``UnionAll`` (both);
* at a leaf (``TableScan``/``LitTable``) or any non-commuting operator
  the filter is materialized in place (wrap with mod-equality select).

**The shared-ranker rule.**  The commutation rules alone stall on the
compiler's surrogate-regeneration idiom, which sits near the root of
virtually every inner query:

    EqJoin on s = s'
      Project [... s ...]   ----\\
                                 RowNum/RowRank s (global)
      Project [... s' ...]  ----/        |
                                       child

A *global* ranker does renumber when rows are removed -- but here both
join inputs read the *same* ranker node, so filtering the ranker's child
renumbers both sides *consistently*, and a consistent renumbering is a
monotone injection: it preserves every equality, ordering, grouping, and
DENSE_RANK tie the plan can observe.  The rewrite replaces the shared
ranker ``R`` by ``R' = R(sigma_c(child))`` underneath both join sides
and lets the pushdown continue into the child.  The join sides need not
be bare projections: any *rank-indexed* subgraph qualifies -- row-local
operators (and, for the key-valued ``RowNum``, further nested
self-joins on the same rank) keep every row in one-to-one
correspondence with a ranker row, so substituting ``R'`` filters the
side exactly to the surviving ranker rows.  Soundness obligations, each
checked before the rule fires:

1. *key/tie discipline* -- for ``RowNum`` the rank is a key (the
   self-join pairs each row with itself); for ``RowRank`` rank equality
   is order-key equality, and the tracked column must be one of the
   order keys (so both pair members always land on the same shard);
2. *complete substitution* -- every consumer of ``R`` in the query lies
   inside the two verified join sides (otherwise renumbered and
   original rank values would meet);
3. *no escape* -- a taint analysis over the whole query proves the rank
   values never reach the query's output columns and are never combined
   with non-rank values (only rank-to-rank comparisons, order-by,
   grouping, min/max/count -- all invariant under monotone injection).

The decision also consults the PR-5 property layer: a plan whose root
``iter`` is constant (``F401``) or whose result is at most one row
(``F402``) has a single group and cannot scatter.  Reason codes follow
the verifier's convention (stable, greppable):

==========  =========================================================
``S400``    shardable: filter pushdown covers enough of the plan and
            the estimated work amortizes the scatter overhead
``F401``    root ``iter`` is constant -- one loop instance only
``F402``    result cardinality <= 1 -- nothing to partition
``S411``    estimated plan cost below the scatter overhead -- the
            cost gate (``repro.analysis.cost``) keeps the query
            single-image (supersedes the old ``F403`` size heuristic)
``F404``    pushdown blocked near the root -- shards would each
            evaluate (almost) the whole plan
``F405``    ``iter`` is not an integer column (defensive; the lifter
            always makes it one)
==========  =========================================================

The economics gate deliberately estimates *stats-free* (every scan at
the default table size): verdicts depend only on the plan's shape, so a
query's shard decision is stable across catalog instances -- the
instance-specific estimate still shows up in ``conn.explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..algebra.dag import postorder
from ..algebra.ops import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
)
from ..algebra.schema import Schema, schema_of
from ..core.bundle import SerializedQuery
from ..errors import CompilationError
from ..ftypes import IntT
from .properties import PropsCache

#: Minimum fraction of plan nodes the shard filter must commute past
#: (S400 vs F404).  Below this, each shard evaluates nearly the whole
#: plan and the fan-out only adds overhead.
MIN_COVERAGE = 0.25

#: Fresh column names used by the materialized shard filter.  The
#: compiler only emits ``c<n>``-shaped names, so these cannot collide.
_HASH_COL = "__shard_h"
_PRED_COL = "__shard_q"

#: Comparisons invariant under a monotone injective renumbering (the
#: taint analysis allows these between two rank-tainted columns).
_ORDER_CMP = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})


@dataclass(frozen=True)
class ShardDecision:
    """The provable verdict on partition-parallel execution of one query.

    ``code`` is stable across releases (``S400``, the ``S411`` cost
    refusal, or an ``F40x`` soundness refusal) so tests, EXPLAIN
    consumers, and dashboards can match on it.  ``coverage`` is the
    fraction of plan nodes the shard filter commutes past (1.0 = filter
    reaches every leaf); ``est_cost`` the stats-free plan cost the
    economics gate compared against the scatter overhead.
    """

    shardable: bool
    code: str
    reason: str
    coverage: float = 0.0
    est_cost: float = 0.0

    def describe(self) -> str:
        return f"{self.code} {self.reason}"


# ----------------------------------------------------------------------
# the pushdown engine
# ----------------------------------------------------------------------

#: Rule verdicts.
_STOP = "stop"
_CONT = "cont"
_RANKER = "ranker"  # shared-ranker self-join substitution


class _Pushdown:
    """One pushdown pass over one query plan (probe or rebuild)."""

    def __init__(self, query: SerializedQuery, n: int, k: int,
                 schemas: "dict[int, Schema]"):
        self.root = query.plan
        self.out_cols = ((query.iter_col, query.pos_col)
                         + query.item_cols)
        self.n = n
        self.k = k
        self.schemas = schemas
        #: All plan nodes (postorder); basis for consumer counting,
        #: taint analysis, and the coverage metric.
        self.nodes = list(postorder(self.root))
        self.parents: dict[int, list[Node]] = {}
        for node in self.nodes:
            for child in node.children:
                self.parents.setdefault(id(child), []).append(node)
        self._rules: dict[tuple[int, str], tuple] = {}
        self._taint_ok: dict[int, bool] = {}

    # -- per-(node, col) rule, cached ----------------------------------
    def rule(self, node: Node, col: str) -> tuple:
        key = (id(node), col)
        cached = self._rules.get(key)
        if cached is None:
            cached = self._rule(node, col)
            self._rules[key] = cached
        return cached

    def _rule(self, node: Node, col: str) -> tuple:
        """``(_STOP, (), None)``, ``(_CONT, deps, None)`` or
        ``(_RANKER, ((child, col),), info)``."""
        if isinstance(node, (LitTable, TableScan)):
            return _STOP, (), None
        if isinstance(node, Project):
            for new, old in node.cols:
                if new == col:
                    return _CONT, ((node.child, old),), None
            raise CompilationError(  # pragma: no cover - col exists
                f"shard column {col!r} lost in projection")
        if isinstance(node, Select):
            return _CONT, ((node.child, col),), None
        if isinstance(node, Attach):
            # An attached column is constant: the predicate keeps either
            # all rows or none -- no point pushing further.
            if node.col == col:
                return _STOP, (), None
            return _CONT, ((node.child, col),), None
        if isinstance(node, Distinct):
            return _CONT, ((node.child, col),), None
        if isinstance(node, (BinApp, UnApp)):
            if node.out == col:
                return _STOP, (), None
            return _CONT, ((node.child, col),), None
        if isinstance(node, RowNum):
            if col != node.col and col in node.part:
                return _CONT, ((node.child, col),), None
            return _STOP, (), None
        if isinstance(node, RowRank):
            return _STOP, (), None
        if isinstance(node, GroupAggr):
            if col in node.group:
                return _CONT, ((node.child, col),), None
            return _STOP, (), None
        if isinstance(node, EqJoin):
            for lc, rc in node.pairs:
                if col in (lc, rc):
                    return (_CONT, ((node.left, lc), (node.right, rc)),
                            None)
            info = self._shared_ranker(node, col)
            if info is not None:
                ranker, child_col, _members = info
                return _RANKER, ((ranker.child, child_col),), info
            side = (node.left
                    if col in schema_of(node.left, self.schemas)
                    else node.right)
            return _CONT, ((side, col),), None
        if isinstance(node, Cross):
            side = (node.left
                    if col in schema_of(node.left, self.schemas)
                    else node.right)
            return _CONT, ((side, col),), None
        if isinstance(node, (SemiJoin, AntiJoin)):
            return _CONT, ((node.left, col),), None
        if isinstance(node, UnionAll):
            return _CONT, ((node.left, col), (node.right, col)), None
        return _STOP, (), None  # pragma: no cover - unknown operator

    # -- shared-ranker detection ---------------------------------------
    def _shared_ranker(self, join: EqJoin, col: str) -> Any:
        """Detect the surrogate-regeneration idiom at ``join`` (module
        docstring): a join pair whose two columns alias the generated
        rank of one shared global ranker, with both join inputs
        *rank-indexed* -- every row of each side corresponds to exactly
        one ranker row, through row-local operators and (for a key
        ``RowNum``) nested self-joins on the same rank.  Returns
        ``(ranker, child_col, member_ids)`` or ``None``."""
        for lc, rc in join.pairs:
            ranker = self._resolve_rank(join.left, lc)
            if ranker is None or ranker is not self._resolve_rank(
                    join.right, rc):
                continue
            if isinstance(ranker, RowNum) and ranker.part:
                # A partitioned row number is not a key: the self-join
                # would pair rows across partitions and per-partition
                # renumbering changes the pairing.
                continue
            # Nested rank self-joins keep the row<->ranker-row
            # correspondence only when the rank is a key (RowNum).
            allow_join = isinstance(ranker, RowNum)
            members: set[int] = set()
            if not (self._rank_indexed(join.left, ranker, allow_join,
                                       members)
                    and self._rank_indexed(join.right, ranker,
                                           allow_join, members)):
                continue
            # Map the tracked column down whichever side owns it, into
            # the ranker's child schema.
            own = (join.left
                   if col in schema_of(join.left, self.schemas)
                   else join.right)
            child_col = self._map_to_child(own, col, ranker)
            if child_col is None:
                continue
            if isinstance(ranker, RowRank):
                # Rank equality is order-key equality; the filter column
                # must be an order key so both pair members always agree
                # on it (and therefore land on the same shard).
                if child_col not in {c for c, _ in ranker.order}:
                    continue
            # Complete substitution: every consumer of the ranker lies
            # inside the two verified side subgraphs.
            if any(id(p) not in members
                   for p in self.parents.get(id(ranker), ())):
                continue
            if not self._rank_never_escapes(ranker):
                continue
            return ranker, child_col, members
        return None

    def _resolve_rank(self, node: Node, col: str) -> "Node | None":
        """The global ranker whose generated rank ``col`` aliases, or
        ``None``.  Follows renames through row-local operators, join
        sides, and unrelated rankers."""
        while True:
            if isinstance(node, (RowNum, RowRank)):
                if node.col == col:
                    return node
                node = node.child  # unrelated rank passes through
                continue
            if isinstance(node, Project):
                nxt = None
                for new, old in node.cols:
                    if new == col:
                        nxt = old
                        break
                if nxt is None:
                    return None
                node, col = node.child, nxt
                continue
            if isinstance(node, (Attach, BinApp, UnApp)):
                generated = (node.col if isinstance(node, Attach)
                             else node.out)
                if generated == col:
                    return None
                node = node.child
                continue
            if isinstance(node, (Select, Distinct)):
                node = node.child
                continue
            if isinstance(node, (EqJoin, Cross)):
                node = (node.left
                        if col in schema_of(node.left, self.schemas)
                        else node.right)
                continue
            if isinstance(node, (SemiJoin, AntiJoin)):
                node = node.left
                continue
            return None

    def _rank_indexed(self, node: Node, ranker: Node, allow_join: bool,
                      members: set) -> bool:
        """Is every row of ``node`` the image of exactly one ``ranker``
        row?  True for the ranker itself, row-local operators over a
        rank-indexed input, and (``allow_join``) equi-joins of two
        rank-indexed inputs on the shared key rank.  ``members``
        collects the ids of every verified node."""
        if node is ranker:
            members.add(id(node))
            return True
        if isinstance(node, (Project, Select, Attach, BinApp, UnApp)):
            if self._rank_indexed(node.child, ranker, allow_join,
                                  members):
                members.add(id(node))
                return True
            return False
        if isinstance(node, EqJoin) and allow_join:
            if not any(self._resolve_rank(node.left, lc) is ranker
                       and self._resolve_rank(node.right, rc) is ranker
                       for lc, rc in node.pairs):
                return False
            if (self._rank_indexed(node.left, ranker, allow_join,
                                   members)
                    and self._rank_indexed(node.right, ranker,
                                           allow_join, members)):
                members.add(id(node))
                return True
        return False

    def _map_to_child(self, node: Node, col: str,
                      ranker: Node) -> "str | None":
        """The tracked column's name in the ranker's child schema,
        following renames down through the rank-indexed subgraph, or
        ``None`` if it is generated on the way (or is the rank itself)."""
        while node is not ranker:
            if isinstance(node, Project):
                nxt = None
                for new, old in node.cols:
                    if new == col:
                        nxt = old
                        break
                if nxt is None:
                    return None
                node, col = node.child, nxt
                continue
            if isinstance(node, (Attach, BinApp, UnApp)):
                generated = (node.col if isinstance(node, Attach)
                             else node.out)
                if generated == col:
                    return None
                node = node.child
                continue
            if isinstance(node, Select):
                node = node.child
                continue
            if isinstance(node, EqJoin):
                node = (node.left
                        if col in schema_of(node.left, self.schemas)
                        else node.right)
                continue
            return None  # pragma: no cover - subgraph was verified
        if col == ranker.col:
            return None
        if col not in schema_of(ranker.child, self.schemas):
            return None  # pragma: no cover - renames preserve this
        return col

    # -- taint: rank values must not escape ----------------------------
    def _rank_never_escapes(self, ranker: Node) -> bool:
        cached = self._taint_ok.get(id(ranker))
        if cached is None:
            cached = self._taint(ranker)
            self._taint_ok[id(ranker)] = cached
        return cached

    def _taint(self, ranker: Node) -> bool:
        """May the ranker's generated values be consistently renumbered
        without the query noticing?  True iff every use in the plan is
        invariant under a monotone injection on the rank column (see the
        shared-ranker obligations in the module docstring) and no
        tainted column reaches the query's output."""
        taints: dict[int, frozenset[str]] = {}

        def t(child: Node) -> frozenset[str]:
            return taints[id(child)]

        for node in self.nodes:
            if node is ranker:
                taints[id(node)] = frozenset({node.col})  # type: ignore[attr-defined]
                continue
            if not node.children:
                taints[id(node)] = frozenset()
                continue
            if isinstance(node, Project):
                pt = t(node.child)
                out = frozenset(new for new, old in node.cols
                                if old in pt)
            elif isinstance(node, (Attach, Distinct, RowNum, RowRank)):
                # order-by / partition-by / duplicate elimination on a
                # renumbered column observe only its ordering and
                # equalities -- both invariant.
                out = t(node.child)
            elif isinstance(node, Select):
                pt = t(node.child)
                if node.col in pt:
                    return False
                out = pt
            elif isinstance(node, GroupAggr):
                pt = t(node.child)
                keep = set(c for c in node.group if c in pt)
                for func, in_col, agg_out in node.aggs:
                    if in_col is not None and in_col in pt:
                        if func in ("min", "max"):
                            keep.add(agg_out)  # still a rank value
                        elif func != "count":
                            return False  # sum/avg observe magnitudes
                out = frozenset(keep)
            elif isinstance(node, BinApp):
                pt = t(node.child)
                lt = isinstance(node.lhs, str) and node.lhs in pt
                rt = isinstance(node.rhs, str) and node.rhs in pt
                if (lt or rt) and not (lt and rt
                                       and node.op in _ORDER_CMP):
                    return False
                out = pt
            elif isinstance(node, UnApp):
                pt = t(node.child)
                if node.col in pt:
                    return False
                out = pt
            elif isinstance(node, (EqJoin, SemiJoin, AntiJoin)):
                lt_, rt_ = t(node.left), t(node.right)
                for lc, rc in node.pairs:
                    if (lc in lt_) != (rc in rt_):
                        return False
                out = (lt_ | rt_ if isinstance(node, EqJoin) else lt_)
            elif isinstance(node, Cross):
                out = t(node.left) | t(node.right)
            elif isinstance(node, UnionAll):
                lt_, rt_ = t(node.left), t(node.right)
                if lt_ != rt_:
                    return False
                out = lt_
            else:  # pragma: no cover - unknown operator
                return False
            taints[id(node)] = frozenset(out)
        return not (taints[id(self.root)] & set(self.out_cols))

    # -- the walk ------------------------------------------------------
    def run(self, rebuild: bool) -> "tuple[Node | None, set[int]]":
        """Push the filter from the root; returns ``(plan, covered)``.
        ``plan`` is the rebuilt shard plan (``rebuild=True``) or
        ``None``; ``covered`` is the set of node ids the filter
        commuted past."""
        col = self.out_cols[0]
        memo: dict[tuple[int, str], "Node | None"] = {}
        covered: set[int] = set()
        stack: list[tuple[Node, str, bool]] = [(self.root, col, False)]
        while stack:
            node, c, expanded = stack.pop()
            key = (id(node), c)
            if not expanded:
                if key in memo:
                    continue
                action, deps, info = self.rule(node, c)
                if action == _STOP:
                    memo[key] = (self._wrap(node, c) if rebuild else None)
                    continue
                covered.add(id(node))
                if action == _RANKER:
                    _ranker, _cc, members = info
                    covered.update(members)
                stack.append((node, c, True))
                for child, cc in deps:
                    if (id(child), cc) not in memo:
                        stack.append((child, cc, False))
            else:
                if not rebuild:
                    memo[key] = None
                    continue
                action, deps, info = self.rule(node, c)
                built = [memo[(id(child), cc)] for child, cc in deps]
                if action == _RANKER:
                    memo[key] = self._substitute_ranker(node, info,
                                                       built[0])
                else:
                    memo[key] = _swap_children(node, deps, built)
        return memo.get((id(self.root), col)), covered

    def _wrap(self, node: Node, col: str) -> Node:
        """Materialize ``sigma[col mod n = k]`` on top of ``node``,
        restoring the original schema afterwards."""
        original = tuple(schema_of(node, self.schemas))
        hashed = BinApp(node, "mod", col, Const(self.n, IntT), _HASH_COL)
        pred = BinApp(hashed, "eq", _HASH_COL, Const(self.k, IntT),
                      _PRED_COL)
        kept = Select(pred, _PRED_COL)
        return Project(kept, tuple((c, c) for c in original))

    def _substitute_ranker(self, join: Node, info: Any,
                           built_child: Node) -> Node:
        """Rebuild the self-join with the shared ranker over the
        filtered child substituted under *both* sides (every path to the
        ranker must see the same renumbered instance)."""
        ranker, _child_col, _members = info
        sharded_ranker = replace(ranker, child=built_child)
        # Only ancestors of the ranker need rebuilding; everything else
        # keeps its identity (and its sharing).
        ancestors: set[int] = set()
        frontier = [ranker]
        while frontier:
            node = frontier.pop()
            for parent in self.parents.get(id(node), ()):
                if id(parent) not in ancestors:
                    ancestors.add(id(parent))
                    frontier.append(parent)
        memo: dict[int, Node] = {}

        def subst(node: Node) -> Node:
            if node is ranker:
                return sharded_ranker
            if id(node) not in ancestors:
                return node
            done = memo.get(id(node))
            if done is None:
                if isinstance(node, (EqJoin, Cross, SemiJoin, AntiJoin,
                                     UnionAll)):
                    done = replace(node, left=subst(node.left),
                                   right=subst(node.right))
                else:
                    done = replace(node, child=subst(node.child))
                memo[id(node)] = done
            return done

        return replace(join, left=subst(join.left),
                       right=subst(join.right))


def _swap_children(node: Node, deps, built) -> Node:
    """``node`` with the dep children swapped for their sharded builds."""
    if len(deps) == 1:
        child = deps[0][0]
        if isinstance(node, (EqJoin, Cross, SemiJoin, AntiJoin, UnionAll)):
            # Binary node with only one dep side (the other is shared or
            # below the partition point): swap the matching side.
            if child is node.left:
                return replace(node, left=built[0])
            return replace(node, right=built[0])
        return replace(node, child=built[0])
    # two deps: both sides of a join/union
    return replace(node, left=built[0], right=built[1])


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def shardable(query: SerializedQuery,
              cache: "PropsCache | None" = None,
              fanout: int = 2) -> ShardDecision:
    """Decide whether ``query`` may run partition-parallel on ``iter``.

    Sound by construction -- a ``S400`` verdict means the pushdown in
    :func:`build_shard_plan` provably preserves the result; every
    refusal carries a stable reason code (module docstring).  The final
    economics check is the cost gate: the stats-free estimated plan
    work, weighted by pushdown coverage, must amortize ``fanout`` shard
    statements' worth of scatter overhead (``S411`` otherwise).
    """
    if cache is None:
        cache = PropsCache()
    schemas = cache.schemas
    schema = schema_of(query.plan, schemas)
    if schema.get(query.iter_col) != IntT:
        return ShardDecision(False, "F405",
                             f"iter column {query.iter_col!r} is not "
                             f"an integer column")
    props = cache.infer(query.plan)
    if query.iter_col in props.constants:
        return ShardDecision(
            False, "F401",
            f"iter is constant {props.constants[query.iter_col]!r} "
            f"(single loop instance)")
    if props.card.at_most_one:
        return ShardDecision(False, "F402",
                             "result has at most one row")
    walk = _Pushdown(query, 2, 0, schemas)
    total = len(walk.nodes)
    _, covered = walk.run(rebuild=False)
    coverage = len(covered) / total
    if coverage < MIN_COVERAGE:
        return ShardDecision(
            False, "F404",
            f"shard filter commutes past only {len(covered)} of {total} "
            f"operators", coverage=coverage)
    from .cost import CostModel, scatter_worthwhile
    est_cost = CostModel("engine", cache=cache).plan_cost(query.plan)
    worthwhile, why = scatter_worthwhile(est_cost, coverage, fanout)
    if not worthwhile:
        return ShardDecision(False, "S411", why, coverage=coverage,
                             est_cost=est_cost)
    return ShardDecision(
        True, "S400",
        f"filter on {query.iter_col!r} covers {len(covered)} of {total} "
        f"operators; {why}", coverage=coverage, est_cost=est_cost)


def build_shard_plan(query: SerializedQuery, n: int,
                     k: int) -> SerializedQuery:
    """The plan for shard ``k`` of ``n``: the original query filtered to
    ``iter mod n = k``, with the filter pushed down as far as the
    commutation and shared-ranker rules allow.  The union of all ``n``
    shard results equals the original result exactly (disjoint,
    exhaustive predicates); each shard keeps the ``ORDER BY iter, pos``
    contract, so a ``(iter, pos)`` merge restores the global order.
    """
    if not (0 <= k < n):
        raise CompilationError(f"shard index {k} out of range 0..{n - 1}")
    schemas: dict[int, Schema] = {}
    plan, _covered = _Pushdown(query, n, k, schemas).run(rebuild=True)
    assert plan is not None
    return SerializedQuery(plan, query.iter_col, query.pos_col,
                           query.item_cols, query.item_types)
