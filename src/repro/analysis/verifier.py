"""The staged plan verifier: machine-checked compile-pipeline invariants.

Ferry's headline guarantees are *static* properties of the compiled
bundle: every plan is well-formed over named, typed columns, the ``pos``
column of every bundle root encodes list order (Section 3.2's ``pos``
encoding), and the bundle holds exactly one query per ``[.]``
constructor in the static result type (avalanche safety).  This module
checks them in three stages with stable diagnostic codes:

=========  ===========================================================
``F101``   structural: unknown column reference
``F102``   structural: duplicate column name
``F103``   structural: type mismatch
``F104``   structural: malformed operator
``F105``   structural: column name clash across a product/join
``F106``   structural: union over differing schemas
``F190``   structural: a property-driven rewrite failed self-check
``F201``   order: root ``pos`` has no row-numbering lineage
``F202``   order: root schema not in standard ``iter|pos|item`` form
``F203``   order: item column type differs from the declared type
``F301``   avalanche: bundle size differs from the static prediction
``F302``   avalanche: observed statement count exceeds the static
           bound (the HaskellDB/LINQ baseline lint)
=========  ===========================================================

The verifier runs (a) after loop-lifting and after *every* optimizer
pass when debug mode is on (``FERRY_VERIFY=1`` or
:func:`set_verify_debug`), and (b) on the final plans every backend
receives -- always, at the cost of the single schema walk the pipeline
already paid before this module existed, so bundle validation is one
traversal, not two.  (:func:`check_plan` with ``collect=None`` is the
raise-on-first-failure entry point the retired ``algebra.validate``
shim used to alias.)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..algebra.dag import postorder
from ..algebra.ops import Node
from ..algebra.schema import Schema, _infer
from ..errors import CompilationError, VerifyError
from ..ftypes import IntT, Type, count_list_constructors
from ..obs.metrics import METRICS
from .properties import Props, infer_properties

#: Stage names, in checking order.
STAGES = ("structural", "order", "avalanche")


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding: a stable code, the stage that produced it,
    and where in the bundle/plan it points."""

    code: str
    stage: str
    message: str
    #: 0-based bundle query index, or ``None`` for bundle-level checks.
    query: "int | None" = None
    #: Pretty-printer postorder ref of the offending node (``@n``).
    node_ref: "int | None" = None

    def __str__(self) -> str:
        where = ""
        if self.query is not None:
            where += f" Q{self.query + 1}"
        if self.node_ref is not None:
            where += f" @{self.node_ref}"
        return f"{self.code} [{self.stage}]{where}: {self.message}"

    def to_dict(self) -> "dict[str, Any]":
        return {"code": self.code, "stage": self.stage,
                "message": self.message, "query": self.query,
                "node_ref": self.node_ref}


@dataclass
class VerifyReport:
    """The outcome of one verifier invocation."""

    #: Where in the pipeline this ran (``post-lift``, ``pass:cse``,
    #: ``final``, ``backend:engine`` ...).
    label: str
    stages: tuple[str, ...] = STAGES
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def raise_if_failed(self) -> None:
        if self.diagnostics:
            first = self.diagnostics[0]
            raise VerifyError(
                f"plan verification failed at {self.label}: {first}"
                + (f" (+{len(self.diagnostics) - 1} more)"
                   if len(self.diagnostics) > 1 else ""),
                code=first.code, diagnostics=self.diagnostics)

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "stages": list(self.stages),
            "ok": self.ok,
            "diagnostics": [{
                "code": d.code, "stage": d.stage, "message": d.message,
                "query": d.query, "node_ref": d.node_ref,
            } for d in self.diagnostics],
        }


# ----------------------------------------------------------------------
# debug mode
# ----------------------------------------------------------------------

_DEBUG_OVERRIDE: "bool | None" = None


def verify_debug_enabled() -> bool:
    """Is per-pass verification on?  Programmatic override first
    (:func:`set_verify_debug`), then the ``FERRY_VERIFY`` environment
    variable."""
    if _DEBUG_OVERRIDE is not None:
        return _DEBUG_OVERRIDE
    return os.environ.get("FERRY_VERIFY", "").lower() in (
        "1", "true", "on", "yes")


def set_verify_debug(enabled: "bool | None") -> "bool | None":
    """Force verifier debug mode on/off (``None`` defers to the
    environment again); returns the previous override."""
    global _DEBUG_OVERRIDE
    previous = _DEBUG_OVERRIDE
    _DEBUG_OVERRIDE = enabled
    return previous


# ----------------------------------------------------------------------
# structural stage (subsumes the old algebra.validate)
# ----------------------------------------------------------------------

def check_plan(root: Node, schemas: "dict[int, Schema] | None" = None,
               query: "int | None" = None,
               collect: "list[Diagnostic] | None" = None) -> None:
    """Structural verification: full schema inference over the DAG.

    With ``collect=None`` (the ``algebra.validate`` alias path) the
    first inconsistency raises :class:`VerifyError` carrying the
    diagnostic code and the offending node's ``@n`` ref; otherwise
    diagnostics are appended and checking continues past the failing
    node (its schema is treated as empty).
    """
    if schemas is None:
        schemas = {}
    refs: dict[int, int] = {}
    for i, node in enumerate(postorder(root)):
        refs[id(node)] = i
        if id(node) in schemas:
            continue
        try:
            schemas[id(node)] = _infer(node, schemas)
        except CompilationError as err:
            code = getattr(err, "code", None) or "F104"
            ref = refs.get(id(getattr(err, "node", node)), i)
            diag = Diagnostic(code, "structural", str(err), query=query,
                              node_ref=ref)
            if collect is None:
                raise VerifyError(f"{code} @{ref}: {err}", code=code,
                                  diagnostics=[diag]) from err
            collect.append(diag)
            schemas[id(node)] = {}


# ----------------------------------------------------------------------
# order stage
# ----------------------------------------------------------------------

def check_order(query: Any, index: int,
                props_memo: "dict[int, Props]",
                schemas: "dict[int, Schema]",
                pins: "list | None" = None) -> list[Diagnostic]:
    """Order verification of one bundle member (standard form + ``pos``
    pedigree).  ``query`` is a ``SerializedQuery``."""
    out: list[Diagnostic] = []
    schema = schemas.get(id(query.plan))
    if schema is None or not schema:
        return out  # structural stage already failed this plan
    expected = [query.iter_col, query.pos_col, *query.item_cols]
    if list(schema) != expected:
        out.append(Diagnostic(
            "F202", "order",
            f"root schema {list(schema)} is not the standard "
            f"iter|pos|item form {expected}", query=index, node_ref=None))
        return out
    for col, want in zip(query.item_cols, query.item_types):
        have = schema[col]
        if have != want:
            out.append(Diagnostic(
                "F203", "order",
                f"item column {col!r} is {have.show()}, declared "
                f"{want.show()}", query=index))
    if schema[query.pos_col] != IntT:
        out.append(Diagnostic(
            "F203", "order",
            f"pos column {query.pos_col!r} is "
            f"{schema[query.pos_col].show()}, not Int", query=index))
        return out
    props = infer_properties(query.plan, props_memo, schemas, pins)
    if not props.order_ok(query.pos_col):
        out.append(Diagnostic(
            "F201", "order",
            f"pos column {query.pos_col!r} has no row-numbering "
            f"lineage (not provably dense-from-1 per {query.iter_col!r})",
            query=index))
    return out


# ----------------------------------------------------------------------
# avalanche stage
# ----------------------------------------------------------------------

def check_avalanche(bundle: Any) -> list[Diagnostic]:
    """Static avalanche check: one query per ``[.]`` constructor."""
    if bundle.size == bundle.expected_size:
        return []
    return [Diagnostic(
        "F301", "avalanche",
        f"bundle has {bundle.size} queries; the static result type "
        f"{bundle.result_ty.show()} predicts {bundle.expected_size}")]


def avalanche_lint(result_ty: Type, statements: int,
                   root_is_list: bool = True) -> list[Diagnostic]:
    """Lint an *observed* statement count against the static bound.

    This is the baseline shaming device: HaskellDB- and LINQ-style
    execution issues one statement per inner list (1 + N for the
    running example), while the static type only licenses one query per
    ``[.]`` constructor.  Returns an ``F302`` diagnostic when the
    observed count exceeds the bound, and nothing when the execution
    was avalanche-safe.
    """
    n = count_list_constructors(result_ty)
    bound = n if root_is_list else n + 1
    if statements <= bound:
        return []
    return [Diagnostic(
        "F302", "avalanche",
        f"query avalanche: {statements} statements issued where the "
        f"static result type {result_ty.show()} permits {bound}")]


# ----------------------------------------------------------------------
# bundle entry point
# ----------------------------------------------------------------------

def verify_bundle(bundle: Any, label: str = "final",
                  stages: Iterable[str] = STAGES,
                  raise_on_error: bool = True,
                  mark: bool = True,
                  cache: Any = None) -> VerifyReport:
    """Run the selected verifier stages over a whole bundle.

    One shared schema/property memo serves every query, so plans that
    share subDAGs (the compiler's cross-query sharing) are walked once.
    Passing the optimizer's :class:`~repro.analysis.PropsCache` as
    ``cache`` makes verification incremental over the analysis the
    pipeline already did.  On success with all stages selected the
    bundle is stamped ``verified`` -- backends skip re-verification of
    bundles the connection pipeline already checked.
    """
    stages = tuple(stages)
    report = VerifyReport(label=label, stages=stages)
    schemas: dict[int, Schema] = cache.schemas if cache is not None else {}
    props_memo: dict[int, Props] = cache.props if cache is not None else {}
    pins = cache.pins if cache is not None else None
    if "structural" in stages:
        for i, query in enumerate(bundle.queries):
            check_plan(query.plan, schemas, query=i,
                       collect=report.diagnostics)
    if "order" in stages:
        for i, query in enumerate(bundle.queries):
            report.diagnostics.extend(
                check_order(query, i, props_memo, schemas, pins))
    if "avalanche" in stages:
        report.diagnostics.extend(check_avalanche(bundle))
    METRICS.counter("verify.runs").inc()
    if report.diagnostics:
        METRICS.counter("verify.diagnostics").inc(len(report.diagnostics))
    elif mark and set(STAGES) <= set(stages):
        bundle.verified = True
    if raise_on_error:
        report.raise_if_failed()
    return report


def ensure_verified(bundle: Any, label: str) -> None:
    """Backend-side guard: verify a bundle unless the compile pipeline
    already stamped it (the common path, which keeps prepare cheap)."""
    if getattr(bundle, "verified", False):
        return
    verify_bundle(bundle, label=label)
