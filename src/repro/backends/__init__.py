"""Query-execution backends: in-memory engine, SQL:1999/SQLite, MIL VM."""

from .base import Backend, ExecutionResult

__all__ = ["Backend", "ExecutionResult"]
