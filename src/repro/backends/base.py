"""The backend interface: executing query bundles on some query engine.

A backend receives a compiled (and optimized) :class:`Bundle` plus the
:class:`Catalog` holding the database instance, executes the bundle's
queries, and returns -- per query -- rows in the standard
``(iter, pos, item...)`` form, sorted by ``(iter, pos)``, with item values
converted back to native Python values.

Backends also report how many queries they issued: the measurement behind
the paper's Table 1 (query avalanches).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..core.bundle import Bundle
from ..runtime.catalog import Catalog


@dataclass
class ExecutionResult:
    """Rows per bundle query, plus accounting for the avalanche metric."""

    rows: list[list[tuple]]
    queries_issued: int
    #: Backend-specific artefacts (e.g. the generated SQL text) for
    #: inspection by examples and tests.
    artifacts: dict = field(default_factory=dict)


class Backend(abc.ABC):
    """Abstract query-execution backend."""

    #: Short identifier ("engine", "sqlite", "mil").
    name: str = "abstract"

    @abc.abstractmethod
    def execute_bundle(self, bundle: Bundle, catalog: Catalog) -> ExecutionResult:
        """Execute every query of the bundle against the catalog."""
