"""The backend interface: executing query bundles on some query engine.

A backend receives a compiled (and optimized) :class:`Bundle` plus the
:class:`Catalog` holding the database instance, executes the bundle's
queries, and returns -- per query -- rows in the standard
``(iter, pos, item...)`` form, sorted by ``(iter, pos)``, with item values
converted back to native Python values.

Backends also report how many queries they issued: the measurement behind
the paper's Table 1 (query avalanches).

Code generation is split from execution so prepared queries can skip it:
:meth:`Backend.prepare_bundle` produces the backend's generated artefact
(SQL text, MIL programs, engine schedules) without touching data, and
:meth:`Backend.execute_bundle` accepts that artefact back via its
``prepared`` argument.  The runtime's plan cache stores the artefacts per
backend, so a repeated program re-runs *only* the data-dependent part.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from ..core.bundle import Bundle
from ..obs.metrics import METRICS
from ..obs.trace import NULL_TRACER
from ..runtime.catalog import Catalog


def observe_query_time(backend_name: str, qi: int, seconds: float,
                       trace_id: "str | None" = None) -> None:
    """Record one bundle query's wall time into the per-backend
    ``backend.<name>.query_seconds`` histogram.  Traced executions attach
    an exemplar naming the trace id and 1-based query index, so the
    OpenMetrics exposition links each latency bucket's worst case back to
    the flight-recorder entry that produced it."""
    exemplar = ({"trace_id": trace_id, "query": str(qi + 1)}
                if trace_id is not None else None)
    METRICS.histogram(f"backend.{backend_name}.query_seconds").observe(
        seconds, exemplar=exemplar)


@dataclass
class ExecutionResult:
    """Rows per bundle query, plus accounting for the avalanche metric."""

    rows: list[list[tuple]]
    queries_issued: int
    #: Backend-specific artefacts (e.g. the generated SQL text) for
    #: inspection by examples and tests.
    artifacts: dict = field(default_factory=dict)
    #: Per-shard wall-clock seconds, as ``(shard_index, seconds)`` pairs
    #: (one per shard-executed query slice; empty for unsharded
    #: backends).  The runtime feeds these into the per-fingerprint
    #: statement statistics' ``by_shard`` latency histograms.
    shard_timings: list = field(default_factory=list)


class Backend(abc.ABC):
    """Abstract query-execution backend."""

    #: Short identifier ("engine", "sqlite", "mil").
    name: str = "abstract"

    def prepare_bundle(self, bundle: Bundle) -> Any:
        """Generate this backend's executable artefact for ``bundle``.

        The result is opaque to callers; it is handed back unchanged as
        ``execute_bundle``'s ``prepared`` argument.  Data-independent by
        contract (it may be cached across catalogs and executions).
        """
        return None

    def describe_prepared(self, prepared: Any) -> "list[str | None]":
        """Human-readable rendering of a :meth:`prepare_bundle` result,
        one string per bundle query (``Connection.explain`` attaches
        these as the backend artifacts).  Backends with no meaningful
        artifact may return an empty list."""
        return []

    @abc.abstractmethod
    def execute_bundle(self, bundle: Bundle, catalog: Catalog,
                       prepared: Any = None,
                       tracer=NULL_TRACER,
                       collector=None,
                       parallel: bool = False) -> ExecutionResult:
        """Execute every query of the bundle against the catalog.

        ``prepared``, when given, is a previous :meth:`prepare_bundle`
        result for this very bundle; the backend then skips code
        generation and goes straight to execution.

        ``tracer`` (a :class:`repro.obs.Tracer`) receives one
        ``execute`` span per bundle query, tagged with the query index
        and its result row count -- the trace-level image of the
        avalanche metric.

        ``collector`` (a :class:`repro.obs.AnalyzeCollector`), when
        given, receives one ``QueryProfile`` per bundle query -- wall
        time and row count -- at the finest granularity the backend
        supports; the engine backend additionally fills per-operator
        profiles when ``collector.per_op`` is set (EXPLAIN ANALYZE).

        ``parallel=True`` asks the backend to fan the bundle's queries
        out over worker threads.  Bundle queries are independent by
        construction -- each is a complete plan over the catalog's
        read-only tables; queries only *share* subplans, never mutate
        state -- so any interleaving is observationally equal to the
        serial order.  Backends that cannot parallelize (the MIL VM
        shares one variable environment per bundle) simply ignore the
        flag; the result must be identical either way.
        """
