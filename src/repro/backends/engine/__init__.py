"""The in-memory algebra engine backend."""

from .backend import EngineBackend
from .evaluate import Engine
from .relation import Relation

__all__ = ["Engine", "EngineBackend", "Relation"]
