"""Bundle execution on the in-memory algebra engine."""

from __future__ import annotations

from ...algebra import Node
from ...core.bundle import Bundle
from ...runtime.catalog import Catalog
from ..base import Backend, ExecutionResult
from .evaluate import Engine, compile_schedule


class EngineBackend(Backend):
    """Executes algebra plans directly (no SQL round trip).

    This is the default backend: it runs exactly the plans the
    loop-lifting compiler produced, which makes it both the fastest local
    option and the most direct check on the compilation itself.
    """

    name = "engine"

    def prepare_bundle(self, bundle: Bundle) -> list[tuple[Node, ...]]:
        """Flatten every plan DAG into its evaluation schedule."""
        return [compile_schedule(query.plan) for query in bundle.queries]

    def execute_bundle(self, bundle: Bundle, catalog: Catalog,
                       prepared: "list[tuple[Node, ...]] | None" = None
                       ) -> ExecutionResult:
        engine = Engine(catalog)
        if prepared is None:
            prepared = self.prepare_bundle(bundle)
        results: list[list[tuple]] = []
        for query, schedule in zip(bundle.queries, prepared):
            rel = engine.execute(query.plan, schedule)
            i = rel.col_index(query.iter_col)
            p = rel.col_index(query.pos_col)
            items = [rel.col_index(c) for c in query.item_cols]
            rows = [tuple([row[i], row[p]] + [row[j] for j in items])
                    for row in rel.rows]
            rows.sort(key=lambda r: (r[0], r[1]))
            results.append(rows)
        return ExecutionResult(results, queries_issued=len(bundle.queries))
