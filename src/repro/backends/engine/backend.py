"""Bundle execution on the in-memory algebra engine."""

from __future__ import annotations

import time

from ...algebra import Node, describe
from ...core.bundle import Bundle
from ...obs.metrics import METRICS
from ...obs.trace import NULL_TRACER
from ...runtime.catalog import Catalog
from ..base import Backend, ExecutionResult
from .evaluate import Engine, compile_schedule


class EngineBackend(Backend):
    """Executes algebra plans directly (no SQL round trip).

    This is the default backend: it runs exactly the plans the
    loop-lifting compiler produced, which makes it both the fastest local
    option and the most direct check on the compilation itself.
    """

    name = "engine"

    def prepare_bundle(self, bundle: Bundle) -> list[tuple[Node, ...]]:
        """Flatten every plan DAG into its evaluation schedule."""
        return [compile_schedule(query.plan) for query in bundle.queries]

    def describe_prepared(self, prepared: "list[tuple[Node, ...]]"
                          ) -> list[str]:
        """Render each schedule as a numbered instruction listing."""
        return ["\n".join(f"{i:3d}: {describe(node)}"
                          for i, node in enumerate(schedule))
                for schedule in prepared]

    def execute_bundle(self, bundle: Bundle, catalog: Catalog,
                       prepared: "list[tuple[Node, ...]] | None" = None,
                       tracer=NULL_TRACER,
                       collector=None) -> ExecutionResult:
        engine = Engine(catalog)
        if prepared is None:
            prepared = self.prepare_bundle(bundle)
        results: list[list[tuple]] = []
        total_rows = 0
        for qi, (query, schedule) in enumerate(zip(bundle.queries, prepared)):
            profile = None
            qp = None
            if collector is not None:
                qp = collector.query(qi + 1)
                if collector.per_op:
                    profile = qp.ops
            with tracer.span("execute", query=qi + 1,
                             backend=self.name) as sp:
                t0 = time.perf_counter() if qp is not None else 0.0
                rel = engine.execute(query.plan, schedule, profile=profile)
                i = rel.col_index(query.iter_col)
                p = rel.col_index(query.pos_col)
                items = [rel.col_index(c) for c in query.item_cols]
                rows = [tuple([row[i], row[p]] + [row[j] for j in items])
                        for row in rel.rows]
                rows.sort(key=lambda r: (r[0], r[1]))
                sp.set(rows=len(rows))
                if qp is not None:
                    qp.time = time.perf_counter() - t0
                    qp.rows = len(rows)
            total_rows += len(rows)
            results.append(rows)
        METRICS.counter("backend.engine.queries").inc(len(bundle.queries))
        METRICS.counter("backend.engine.rows").inc(total_rows)
        return ExecutionResult(results, queries_issued=len(bundle.queries))
