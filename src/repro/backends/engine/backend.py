"""Bundle execution on the in-memory algebra engine."""

from __future__ import annotations

from ...core.bundle import Bundle
from ...runtime.catalog import Catalog
from ..base import Backend, ExecutionResult
from .evaluate import Engine


class EngineBackend(Backend):
    """Executes algebra plans directly (no SQL round trip).

    This is the default backend: it runs exactly the plans the
    loop-lifting compiler produced, which makes it both the fastest local
    option and the most direct check on the compilation itself.
    """

    name = "engine"

    def execute_bundle(self, bundle: Bundle, catalog: Catalog) -> ExecutionResult:
        engine = Engine(catalog)
        results: list[list[tuple]] = []
        for query in bundle.queries:
            rel = engine.execute(query.plan)
            i = rel.col_index(query.iter_col)
            p = rel.col_index(query.pos_col)
            items = [rel.col_index(c) for c in query.item_cols]
            rows = [tuple([row[i], row[p]] + [row[j] for j in items])
                    for row in rel.rows]
            rows.sort(key=lambda r: (r[0], r[1]))
            results.append(rows)
        return ExecutionResult(results, queries_issued=len(bundle.queries))
