"""Bundle execution on the in-memory algebra engine."""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

from ...algebra import Node, describe
from ...analysis import ensure_verified
from ...core.bundle import Bundle, SerializedQuery
from ...obs.metrics import METRICS
from ...obs.trace import NULL_TRACER
from ...runtime.catalog import Catalog
from ..base import Backend, ExecutionResult, observe_query_time
from .evaluate import BundleCache, Engine, compile_schedule


def default_workers(n_queries: int) -> int:
    """Worker count for intra-bundle parallelism: one per query, capped
    by the machine (affinity-aware where the platform reports it)."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(n_queries, cpus))


class EngineBackend(Backend):
    """Executes algebra plans directly (no SQL round trip).

    This is the default backend: it runs exactly the plans the
    loop-lifting compiler produced, which makes it both the fastest local
    option and the most direct check on the compilation itself.

    Every ``execute_bundle`` owns one :class:`BundleCache`, so subplans
    shared between bundle queries (the outer query's spine feeding each
    inner query) materialize once per bundle.  With ``parallel=True``
    the bundle's queries -- independent by construction (each is a
    self-contained plan over the catalog; they only *share* read-only
    subplans) -- fan out over a thread pool, coordinating through the
    same cache.
    """

    name = "engine"

    def __init__(self) -> None:
        self._pool: "ThreadPoolExecutor | None" = None

    def prepare_bundle(self, bundle: Bundle) -> list[tuple[Node, ...]]:
        """Flatten every plan DAG into its evaluation schedule."""
        ensure_verified(bundle, "backend:engine")
        return [compile_schedule(query.plan) for query in bundle.queries]

    def describe_prepared(self, prepared: "list[tuple[Node, ...]]"
                          ) -> list[str]:
        """Render each schedule as a numbered instruction listing."""
        return ["\n".join(f"{i:3d}: {describe(node)}"
                          for i, node in enumerate(schedule))
                for schedule in prepared]

    def _executor(self, n_queries: int) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=default_workers(max(n_queries, 2)),
                thread_name_prefix="ferry-engine")
        return self._pool

    def execute_bundle(self, bundle: Bundle, catalog: Catalog,
                       prepared: "list[tuple[Node, ...]] | None" = None,
                       tracer=NULL_TRACER,
                       collector=None,
                       parallel: bool = False) -> ExecutionResult:
        engine = Engine(catalog)
        if prepared is None:
            prepared = self.prepare_bundle(bundle)
        cache = BundleCache()
        n = len(bundle.queries)
        per_op = collector is not None and collector.per_op
        results: "list[list[tuple] | None]" = [None] * n
        # Profiles are pre-registered in bundle order from this thread,
        # so reports stay aligned with bundle.queries under parallelism.
        qps = [collector.query(qi + 1) if collector is not None else None
               for qi in range(n)]

        if parallel and n > 1:
            pool = self._executor(n)
            futures = [
                pool.submit(self._run_query, engine, cache, query, schedule,
                            qi, tracer, qps[qi], per_op)
                for qi, (query, schedule)
                in enumerate(zip(bundle.queries, prepared))
            ]
            handles = []
            for qi, future in enumerate(futures):
                rows, handle = future.result()
                results[qi] = rows
                handles.append(handle)
            for handle in handles:  # adopt spans in bundle-query order
                tracer.attach(handle)
        else:
            for qi, (query, schedule) in enumerate(zip(bundle.queries,
                                                       prepared)):
                qp = qps[qi]
                with tracer.span("execute", query=qi + 1,
                                 backend=self.name) as sp:
                    t0 = time.perf_counter()
                    rows = self._evaluate_query(engine, cache, query,
                                                schedule, qp, per_op)
                    seconds = time.perf_counter() - t0
                    sp.set(rows=len(rows))
                    if qp is not None:
                        qp.time = seconds
                        qp.rows = len(rows)
                observe_query_time(self.name, qi, seconds, tracer.trace_id)
                results[qi] = rows

        total_rows = sum(len(rows) for rows in results)
        METRICS.counter("backend.engine.queries").inc(n)
        METRICS.counter("backend.engine.rows").inc(total_rows)
        return ExecutionResult(results, queries_issued=n)

    # ------------------------------------------------------------------
    def _run_query(self, engine: Engine, cache: BundleCache,
                   query: SerializedQuery, schedule, qi: int, tracer, qp,
                   per_op: bool):
        """One bundle query on a worker thread: evaluate, project into
        standard form, and time a detached span (attached to the trace by
        the coordinating thread afterwards)."""
        handle = tracer.detached("execute", query=qi + 1, backend=self.name)
        with handle as sp:
            t0 = time.perf_counter()
            rows = self._evaluate_query(engine, cache, query, schedule, qp,
                                        per_op)
            seconds = time.perf_counter() - t0
            sp.set(rows=len(rows))
            if qp is not None:
                qp.time = seconds
                qp.rows = len(rows)
        observe_query_time(self.name, qi, seconds, tracer.trace_id)
        return rows, handle

    def _evaluate_query(self, engine: Engine, cache: BundleCache,
                        query: SerializedQuery, schedule, qp,
                        per_op: bool) -> list[tuple]:
        profile = qp.ops if (qp is not None and per_op) else None
        rel = engine.execute(query.plan, schedule, profile=profile,
                             cache=cache)
        ic = rel.column(query.iter_col)
        pc = rel.column(query.pos_col)
        items = [rel.column(c) for c in query.item_cols]
        # (iter, pos) is a key of every query, so sorting the zipped row
        # tuples orders by it without a per-row key function.
        return sorted(zip(ic, pc, *items))
