"""The in-memory algebra engine: bottom-up evaluation of plan DAGs.

This is the laptop-scale stand-in for the paper's database back-end: it
executes exactly the table-algebra plans the loop-lifting compiler emits,
with hash joins, grouped aggregation, and window functions
(``ROW_NUMBER``/``DENSE_RANK``).  Shared subplans are evaluated once
(the engine memoizes per DAG node), mirroring the ``WITH`` bindings of
the generated SQL.
"""

from __future__ import annotations

import time
from operator import itemgetter
from typing import Any

from ...algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
    postorder,
)
from ...errors import ExecutionError, PartialFunctionError
from ...runtime.catalog import Catalog
from .relation import Relation, sort_rows


def compile_schedule(root: Node) -> tuple[Node, ...]:
    """The engine's "generated code" for a plan: its evaluation order.

    Flattening the DAG into an instruction-like postorder sequence is
    data-independent, so prepared queries compute it once and replay it
    on every execution.
    """
    return tuple(postorder(root))


class Engine:
    """Evaluates algebra plans against a :class:`Catalog`."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def execute(self, root: Node,
                schedule: "tuple[Node, ...] | None" = None,
                profile: "list | None" = None) -> Relation:
        """Evaluate the plan DAG rooted at ``root``.

        ``schedule`` is an optional precomputed evaluation order (the
        DAG's postorder, as produced by :func:`compile_schedule`); passing
        it skips the traversal, which prepared queries cache.

        ``profile``, when given, receives one
        :class:`~repro.obs.analyze.OpProfile` per schedule slot --
        exclusive wall time, input/output cardinalities, and output
        width -- the data behind EXPLAIN ANALYZE's annotated plan.  The
        profiling loop is kept separate so unprofiled execution pays
        zero clock reads.
        """
        memo: dict[int, Relation] = {}
        if schedule is None:
            schedule = tuple(postorder(root))
        if profile is None:
            for node in schedule:
                memo[id(node)] = self._eval(node, memo)
            return memo[id(root)]

        from ...algebra import describe
        from ...obs.analyze import OpProfile
        for ref, node in enumerate(schedule):
            rows_in = sum(len(memo[id(c)].rows) for c in node.children)
            t0 = time.perf_counter()
            rel = self._eval(node, memo)
            elapsed = time.perf_counter() - t0
            memo[id(node)] = rel
            profile.append(OpProfile(ref=ref, op=describe(node),
                                     time=elapsed, rows_in=rows_in,
                                     rows_out=len(rel.rows),
                                     width=len(rel.cols)))
        return memo[id(root)]

    # ------------------------------------------------------------------
    def _eval(self, node: Node, memo: dict[int, Relation]) -> Relation:
        children = [memo[id(c)] for c in node.children]

        if isinstance(node, LitTable):
            return Relation([n for n, _ in node.schema], list(node.rows))

        if isinstance(node, TableScan):
            schema = self.catalog.schema(node.table)
            src_index = {name: i for i, (name, _) in enumerate(schema)}
            idxs = [src_index[src] for _, src, _ in node.columns]
            rows = [tuple(r[i] for i in idxs)
                    for r in self.catalog.rows(node.table)]
            return Relation([out for out, _, _ in node.columns], rows)

        if isinstance(node, Attach):
            (rel,) = children
            value = node.value
            return Relation(rel.cols + (node.col,),
                            [row + (value,) for row in rel.rows])

        if isinstance(node, Project):
            (rel,) = children
            idxs = [rel.col_index(old) for _, old in node.cols]
            new_cols = [new for new, _ in node.cols]
            if idxs == list(range(len(rel.cols))):
                return Relation(new_cols, rel.rows)  # pure rename
            if len(idxs) == 1:
                i = idxs[0]
                rows = [(row[i],) for row in rel.rows]
            else:
                get = itemgetter(*idxs)
                rows = [get(row) for row in rel.rows]
            return Relation(new_cols, rows)

        if isinstance(node, Select):
            (rel,) = children
            i = rel.col_index(node.col)
            return Relation(rel.cols, [row for row in rel.rows if row[i]])

        if isinstance(node, Distinct):
            (rel,) = children
            seen: set = set()
            rows = []
            for row in rel.rows:
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
            return Relation(rel.cols, rows)

        if isinstance(node, RowNum):
            (rel,) = children
            keys = ([(rel.col_index(c), False) for c in node.part]
                    + [(rel.col_index(c), d == "desc") for c, d in node.order])
            ordered = sort_rows(rel.rows, keys)
            part_idx = [rel.col_index(c) for c in node.part]
            counters: dict[tuple, int] = {}
            rows = []
            for row in ordered:
                key = tuple(row[i] for i in part_idx)
                counters[key] = counters.get(key, 0) + 1
                rows.append(row + (counters[key],))
            return Relation(rel.cols + (node.col,), rows)

        if isinstance(node, RowRank):
            (rel,) = children
            keys = [(rel.col_index(c), d == "desc") for c, d in node.order]
            ordered = sort_rows(rel.rows, keys)
            order_idx = [rel.col_index(c) for c, _ in node.order]
            rows = []
            rank = 0
            prev: Any = object()
            for row in ordered:
                key = tuple(row[i] for i in order_idx)
                if key != prev:
                    rank += 1
                    prev = key
                rows.append(row + (rank,))
            return Relation(rel.cols + (node.col,), rows)

        if isinstance(node, Cross):
            left, right = children
            rows = [lr + rr for lr in left.rows for rr in right.rows]
            return Relation(left.cols + right.cols, rows)

        if isinstance(node, EqJoin):
            left, right = children
            lkey = _key_getter(left, [l for l, _ in node.pairs])
            rkey = _key_getter(right, [r for _, r in node.pairs])
            buckets: dict[Any, list[tuple]] = {}
            for rr in right.rows:
                buckets.setdefault(rkey(rr), []).append(rr)
            rows = []
            empty: list = []
            for lr in left.rows:
                for rr in buckets.get(lkey(lr), empty):
                    rows.append(lr + rr)
            return Relation(left.cols + right.cols, rows)

        if isinstance(node, (SemiJoin, AntiJoin)):
            left, right = children
            lkey = _key_getter(left, [l for l, _ in node.pairs])
            rkey = _key_getter(right, [r for _, r in node.pairs])
            keys = {rkey(rr) for rr in right.rows}
            keep = isinstance(node, SemiJoin)
            rows = [lr for lr in left.rows if (lkey(lr) in keys) == keep]
            return Relation(left.cols, rows)

        if isinstance(node, UnionAll):
            left, right = children
            if left.cols == right.cols:
                rrows = right.rows
            else:  # align right's column order with left's
                idxs = [right.col_index(c) for c in left.cols]
                rrows = [tuple(row[i] for i in idxs) for row in right.rows]
            return Relation(left.cols, left.rows + rrows)

        if isinstance(node, GroupAggr):
            return _group_aggr(node, children[0])

        if isinstance(node, BinApp):
            (rel,) = children
            lhs = _operand_getter(rel, node.lhs)
            rhs = _operand_getter(rel, node.rhs)
            fn = _BIN_FNS[node.op]
            rows = [row + (fn(lhs(row), rhs(row)),) for row in rel.rows]
            return Relation(rel.cols + (node.out,), rows)

        if isinstance(node, UnApp):
            (rel,) = children
            get = rel.getter(node.col)
            fn = _UN_FNS[node.op]
            rows = [row + (fn(get(row)),) for row in rel.rows]
            return Relation(rel.cols + (node.out,), rows)

        raise ExecutionError(f"engine cannot evaluate {node.label}")


# ----------------------------------------------------------------------
# scalar kernels
# ----------------------------------------------------------------------

def _key_getter(rel: Relation, cols: list):
    """A fast join-key extractor (single columns avoid tuple wrapping)."""
    idxs = [rel.col_index(c) for c in cols]
    if len(idxs) == 1:
        return itemgetter(idxs[0])
    return itemgetter(*idxs)


def _guarded_div(fn):
    def wrapped(a, b):
        if b == 0:
            raise PartialFunctionError("division by zero")
        return fn(a, b)
    return wrapped


_BIN_FNS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _guarded_div(lambda a, b: a / b),
    "idiv": _guarded_div(lambda a, b: a // b),
    "mod": _guarded_div(lambda a, b: a % b),
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "min": min,
    "max": max,
    "cat": lambda a, b: a + b,
    "like": None,  # bound below (imports the shared matcher)
}

from ...semantics.interp import like_match as _like_match  # noqa: E402

_BIN_FNS["like"] = _like_match

_UN_FNS = {
    "not": lambda a: not a,
    "neg": lambda a: -a,
    "abs": abs,
    "to_double": float,
    "upper": lambda a: a.upper(),
    "lower": lambda a: a.lower(),
    "strlen": len,
    "year": lambda d: d.year,
    "month": lambda d: d.month,
    "day": lambda d: d.day,
    "hour": lambda t: t.hour,
    "minute": lambda t: t.minute,
    "second": lambda t: t.second,
}


def _operand_getter(rel: Relation, operand):
    if isinstance(operand, Const):
        value = operand.value
        return lambda row: value
    return rel.getter(operand)


def _group_aggr(node: GroupAggr, rel: Relation) -> Relation:
    gidx = [rel.col_index(c) for c in node.group]
    groups: dict[tuple, list[tuple]] = {}
    for row in rel.rows:
        groups.setdefault(tuple(row[i] for i in gidx), []).append(row)
    out_rows = []
    for key, members in groups.items():
        aggs = []
        for func, in_col, out_col in node.aggs:
            if func == "count":
                aggs.append(len(members))
                continue
            i = rel.col_index(in_col)
            values = [m[i] for m in members]
            if func == "sum":
                aggs.append(sum(values))
            elif func == "min":
                aggs.append(min(values))
            elif func == "max":
                aggs.append(max(values))
            elif func == "avg":
                aggs.append(float(sum(values)) / len(values))
            elif func == "all":
                aggs.append(all(values))
            elif func == "any":
                aggs.append(any(values))
            else:  # pragma: no cover - schema validation rejects
                raise ExecutionError(f"unknown aggregate {func!r}")
        out_rows.append(key + tuple(aggs))
    cols = tuple(node.group) + tuple(out for _, _, out in node.aggs)
    return Relation(cols, out_rows)
