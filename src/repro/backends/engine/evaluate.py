"""The in-memory algebra engine: bottom-up evaluation of plan DAGs.

This is the laptop-scale stand-in for the paper's database back-end: it
executes exactly the table-algebra plans the loop-lifting compiler emits,
column at a time.  Each operator is a whole-column kernel over
:class:`~repro.backends.engine.relation.Relation`'s parallel column
lists -- hash joins probe whole key columns and gather via C-level
``map``, selection is one ``itertools.compress`` pass per column,
projection is pure column aliasing, and scalar operators are a single
``map`` over value columns -- mirroring the MonetDB/MIL execution model
(and the fused bag-semantics kernels of Dong & Kjolstad).

Shared subplans are evaluated once: within a query through the schedule
(postorder visits each DAG node once), and *across* the queries of a
bundle through a :class:`BundleCache` keyed on DAG node identity, so the
outer query's spine feeding each inner query materializes once per
bundle rather than once per query -- the engine-level image of the
``WITH`` bindings in the generated SQL.
"""

from __future__ import annotations

import threading
import time
from itertools import compress, repeat
from operator import add, eq, ge, gt, itemgetter, le, lt, mul, ne, neg, sub
from typing import Any, Callable, Sequence

from ...algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
    postorder,
)
from ...errors import ExecutionError, PartialFunctionError
from ...runtime.catalog import Catalog
from .relation import Relation, sort_rows  # noqa: F401  (sort_rows re-export)


def compile_schedule(root: Node) -> tuple[Node, ...]:
    """The engine's "generated code" for a plan: its evaluation order.

    Flattening the DAG into an instruction-like postorder sequence is
    data-independent, so prepared queries compute it once and replay it
    on every execution.
    """
    return tuple(postorder(root))


class BundleCache:
    """Cross-query materialization cache, keyed on DAG node identity.

    The queries of a bundle share plan DAG nodes (the outer query's
    spine feeds each inner query; the optimizer hash-conses across the
    whole bundle), so one cache per ``execute_bundle`` lets every shared
    subplan materialize exactly once per bundle.

    ``materialize`` has once-only semantics under concurrency: the first
    caller to claim a node computes it while later callers block on the
    claim's event and then read the finished relation (or re-raise the
    computing thread's error).  ``values`` is only ever written by the
    claim owner, so lock-free reads of finished entries are safe under
    the GIL.
    """

    __slots__ = ("values", "_claims", "_lock")

    def __init__(self) -> None:
        #: id(node) -> materialized Relation (complete entries only).
        self.values: dict[int, Relation] = {}
        self._claims: dict[int, tuple[threading.Event, list]] = {}
        self._lock = threading.Lock()

    def materialize(self, node: Node,
                    compute: Callable[[], Relation]) -> Relation:
        nid = id(node)
        rel = self.values.get(nid)
        if rel is not None:
            return rel
        with self._lock:
            claim = self._claims.get(nid)
            mine = claim is None
            if mine:
                claim = self._claims[nid] = (threading.Event(), [])
        event, errbox = claim
        if mine:
            try:
                rel = compute()
                self.values[nid] = rel
            except BaseException as err:
                errbox.append(err)
                raise
            finally:
                event.set()
            return rel
        event.wait()
        if errbox:
            raise errbox[0]
        return self.values[nid]


class Engine:
    """Evaluates algebra plans against a :class:`Catalog`."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def execute(self, root: Node,
                schedule: "tuple[Node, ...] | None" = None,
                profile: "list | None" = None,
                cache: "BundleCache | None" = None) -> Relation:
        """Evaluate the plan DAG rooted at ``root``.

        ``schedule`` is an optional precomputed evaluation order (the
        DAG's postorder, as produced by :func:`compile_schedule`); passing
        it skips the traversal, which prepared queries cache.

        ``profile``, when given, receives one
        :class:`~repro.obs.analyze.OpProfile` per schedule slot --
        exclusive wall time, input/output cardinalities, and output
        width -- the data behind EXPLAIN ANALYZE's annotated plan.  The
        profiling loop is kept separate so unprofiled execution pays
        zero clock reads.

        ``cache``, when given, is the bundle-wide materialization cache:
        nodes already materialized (by an earlier query of the bundle,
        or concurrently by another bundle worker) are served from it,
        and nodes this query materializes become visible to the rest of
        the bundle.  Cardinalities and widths reported to ``profile``
        are unaffected -- a cache hit reports the same relation, only
        with (near-)zero exclusive time.
        """
        if schedule is None:
            schedule = tuple(postorder(root))
        values = cache.values if cache is not None else {}
        if profile is None:
            if cache is None:
                for node in schedule:
                    values[id(node)] = self._eval(node, values)
            else:
                for node in schedule:
                    cache.materialize(
                        node, lambda node=node: self._eval(node, values))
            return values[id(root)]

        from ...algebra import describe
        from ...obs.analyze import OpProfile
        for ref, node in enumerate(schedule):
            rows_in = sum(values[id(c)].nrows for c in node.children)
            t0 = time.perf_counter()
            if cache is None:
                rel = self._eval(node, values)
                values[id(node)] = rel
            else:
                rel = cache.materialize(
                    node, lambda node=node: self._eval(node, values))
            elapsed = time.perf_counter() - t0
            profile.append(OpProfile(ref=ref, op=describe(node),
                                     time=elapsed, rows_in=rows_in,
                                     rows_out=rel.nrows,
                                     width=len(rel.cols)))
        return values[id(root)]

    # ------------------------------------------------------------------
    # whole-column kernels
    # ------------------------------------------------------------------
    def _eval(self, node: Node, memo: dict[int, Relation]) -> Relation:
        children = [memo[id(c)] for c in node.children]

        if isinstance(node, LitTable):
            return Relation.from_rows([n for n, _ in node.schema],
                                      list(node.rows))

        if isinstance(node, TableScan):
            schema = self.catalog.schema(node.table)
            src_index = {name: i for i, (name, _) in enumerate(schema)}
            rows = self.catalog.rows(node.table)
            if rows:
                src_cols = list(zip(*rows))  # one transpose, C-level
                columns = [list(src_cols[src_index[src]])
                           for _, src, _ in node.columns]
            else:
                columns = [[] for _ in node.columns]
            return Relation([out for out, _, _ in node.columns], columns,
                            len(rows))

        if isinstance(node, Attach):
            (rel,) = children
            return Relation(rel.cols + (node.col,),
                            rel.columns + [[node.value] * rel.nrows],
                            rel.nrows)

        if isinstance(node, Project):
            (rel,) = children
            # Pure column aliasing: no per-row work at all.
            return Relation([new for new, _ in node.cols],
                            [rel.columns[rel.col_index(old)]
                             for _, old in node.cols],
                            rel.nrows)

        if isinstance(node, Select):
            (rel,) = children
            mask = rel.columns[rel.col_index(node.col)]
            columns = [list(compress(col, mask)) for col in rel.columns]
            return Relation(rel.cols, columns,
                            len(columns[0]) if columns else 0)

        if isinstance(node, Distinct):
            (rel,) = children
            # dict.fromkeys keeps first occurrences in order (bag → set
            # while preserving the incidental row order, like the seed).
            uniq = list(dict.fromkeys(zip(*rel.columns)))
            return Relation.from_rows(rel.cols, uniq)

        if isinstance(node, RowNum):
            (rel,) = children
            keys = ([(rel.col_index(c), False) for c in node.part]
                    + [(rel.col_index(c), d == "desc")
                       for c, d in node.order])
            perm = rel.sort_perm(keys)
            out = [0] * rel.nrows
            if not node.part:
                for n, i in enumerate(perm, start=1):
                    out[i] = n
            else:
                part_cols = [rel.columns[rel.col_index(c)]
                             for c in node.part]
                counters: dict[Any, int] = {}
                if len(part_cols) == 1:
                    pc = part_cols[0]
                    for i in perm:
                        key = pc[i]
                        n = counters.get(key, 0) + 1
                        counters[key] = n
                        out[i] = n
                else:
                    for i in perm:
                        key = tuple(pc[i] for pc in part_cols)
                        n = counters.get(key, 0) + 1
                        counters[key] = n
                        out[i] = n
            # Numbers are written back through the permutation, so the
            # input's (arbitrary) row order is kept and no column needs
            # gathering.
            return Relation(rel.cols + (node.col,), rel.columns + [out],
                            rel.nrows)

        if isinstance(node, RowRank):
            (rel,) = children
            keys = [(rel.col_index(c), d == "desc") for c, d in node.order]
            perm = rel.sort_perm(keys)
            order_cols = [rel.columns[rel.col_index(c)]
                          for c, _ in node.order]
            out = [0] * rel.nrows
            rank = 0
            prev: Any = object()
            if len(order_cols) == 1:
                oc = order_cols[0]
                for i in perm:
                    key = oc[i]
                    if key != prev:
                        rank += 1
                        prev = key
                    out[i] = rank
            else:
                for i in perm:
                    key = tuple(c[i] for c in order_cols)
                    if key != prev:
                        rank += 1
                        prev = key
                    out[i] = rank
            return Relation(rel.cols + (node.col,), rel.columns + [out],
                            rel.nrows)

        if isinstance(node, Cross):
            left, right = children
            nl, nr = left.nrows, right.nrows
            rrange = range(nr)
            columns = [[v for v in col for _ in rrange]
                       for col in left.columns]
            columns += [list(col) * nl for col in right.columns]
            return Relation(left.cols + right.cols, columns, nl * nr)

        if isinstance(node, EqJoin):
            left, right = children
            lkeys = _key_column(left, [l for l, _ in node.pairs])
            rkeys = _key_column(right, [r for _, r in node.pairs])
            pos: dict[Any, int] = {k: j for j, k in enumerate(rkeys)}
            if len(pos) == len(right):
                # Unique build keys (the common case: the right side is
                # keyed, e.g. the compiler's surrogate spines): probe the
                # whole key column with one C-level map, then compress
                # out the misses.
                hits = list(map(pos.get, lkeys))
                if None not in hits:  # every probe matched (C-level scan)
                    # 1:1 join: the left columns pass through untouched
                    # (columns are immutable by convention, so aliasing
                    # them costs nothing); only the right side gathers.
                    columns = left.columns + [
                        list(map(col.__getitem__, hits))
                        for col in right.columns]
                    return Relation(left.cols + right.cols, columns,
                                    len(hits))
                mask = [j is not None for j in hits]
                li: Sequence[int] = list(compress(range(len(lkeys)), mask))
                ri: Sequence[int] = list(compress(hits, mask))
            else:
                buckets: dict[Any, list[int]] = {}
                for j, k in enumerate(rkeys):
                    b = buckets.get(k)
                    if b is None:
                        buckets[k] = [j]
                    else:
                        b.append(j)
                li = []
                ri = []
                get = buckets.get
                for i, k in enumerate(lkeys):
                    js = get(k)
                    if js is not None:
                        li += repeat(i, len(js))
                        ri += js
            columns = [list(map(col.__getitem__, li))
                       for col in left.columns]
            columns += [list(map(col.__getitem__, ri))
                        for col in right.columns]
            return Relation(left.cols + right.cols, columns, len(li))

        if isinstance(node, (SemiJoin, AntiJoin)):
            left, right = children
            lkeys = _key_column(left, [l for l, _ in node.pairs])
            rkeys = _key_column(right, [r for _, r in node.pairs])
            keys = set(rkeys)
            if isinstance(node, SemiJoin):
                mask = list(map(keys.__contains__, lkeys))
            else:
                mask = [k not in keys for k in lkeys]
            columns = [list(compress(col, mask)) for col in left.columns]
            return Relation(left.cols, columns,
                            len(columns[0]) if columns else 0)

        if isinstance(node, UnionAll):
            left, right = children
            if left.cols == right.cols:
                rcols = right.columns
            else:  # align right's column order with left's
                rcols = [right.columns[right.col_index(c)]
                         for c in left.cols]
            columns = [list(lc) + list(rc)
                       for lc, rc in zip(left.columns, rcols)]
            return Relation(left.cols, columns, left.nrows + right.nrows)

        if isinstance(node, GroupAggr):
            return _group_aggr(node, children[0])

        if isinstance(node, BinApp):
            (rel,) = children
            lhs = _operand_column(rel, node.lhs)
            rhs = _operand_column(rel, node.rhs)
            out = list(map(_BIN_FNS[node.op], lhs, rhs))
            return Relation(rel.cols + (node.out,), rel.columns + [out],
                            rel.nrows)

        if isinstance(node, UnApp):
            (rel,) = children
            col = rel.columns[rel.col_index(node.col)]
            out = list(map(_UN_FNS[node.op], col))
            return Relation(rel.cols + (node.out,), rel.columns + [out],
                            rel.nrows)

        raise ExecutionError(f"engine cannot evaluate {node.label}")


# ----------------------------------------------------------------------
# column kernels' helpers
# ----------------------------------------------------------------------

def _key_column(rel: Relation, cols: list) -> Sequence[Any]:
    """The join/group key per row as one sequence: the value column
    itself for single-column keys (no tuple wrapping), a zipped tuple
    column otherwise."""
    if len(cols) == 1:
        return rel.columns[rel.col_index(cols[0])]
    return list(zip(*(rel.columns[rel.col_index(c)] for c in cols)))


def _guarded_div(fn):
    def wrapped(a, b):
        if b == 0:
            raise PartialFunctionError("division by zero")
        return fn(a, b)
    return wrapped


_BIN_FNS = {
    # operator.* where a C-level callable exists (map stays in C).
    "add": add,
    "sub": sub,
    "mul": mul,
    "div": _guarded_div(lambda a, b: a / b),
    "idiv": _guarded_div(lambda a, b: a // b),
    "mod": _guarded_div(lambda a, b: a % b),
    "eq": eq,
    "ne": ne,
    "lt": lt,
    "le": le,
    "gt": gt,
    "ge": ge,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "min": min,
    "max": max,
    "cat": add,
    "like": None,  # bound below (imports the shared matcher)
}

from ...semantics.interp import like_match as _like_match  # noqa: E402

_BIN_FNS["like"] = _like_match

_UN_FNS = {
    "not": lambda a: not a,
    "neg": neg,
    "abs": abs,
    "to_double": float,
    "upper": lambda a: a.upper(),
    "lower": lambda a: a.lower(),
    "strlen": len,
    "year": lambda d: d.year,
    "month": lambda d: d.month,
    "day": lambda d: d.day,
    "hour": lambda t: t.hour,
    "minute": lambda t: t.minute,
    "second": lambda t: t.second,
}


def _operand_column(rel: Relation, operand) -> Sequence[Any]:
    """A BinApp operand as an iterable of per-row values: the value
    column for a column reference, a bounded ``repeat`` for a constant
    (bounded so two constant operands cannot stall ``map``)."""
    if isinstance(operand, Const):
        return repeat(operand.value, rel.nrows)
    return rel.columns[rel.col_index(operand)]


def _group_aggr(node: GroupAggr, rel: Relation) -> Relation:
    keys = _key_column(rel, list(node.group)) if node.group else None
    groups: dict[Any, list[int]] = {}
    if keys is None:
        # global aggregation: one group iff there are rows (SQL semantics
        # at the algebra level: no rows, no group, no output row)
        if rel.nrows:
            groups[()] = list(range(rel.nrows))
    else:
        for i, k in enumerate(keys):
            b = groups.get(k)
            if b is None:
                groups[k] = [i]
            else:
                b.append(i)
    # group-key output columns (first-occurrence order = dict order)
    if not node.group:
        key_columns: list[list] = []
    elif len(node.group) == 1:
        key_columns = [list(groups.keys())]
    else:
        gkeys = list(groups.keys())
        key_columns = ([list(col) for col in zip(*gkeys)] if gkeys
                       else [[] for _ in node.group])
    members = list(groups.values())
    agg_columns: list[list] = []
    for func, in_col, _out in node.aggs:
        if func == "count":
            agg_columns.append([len(m) for m in members])
            continue
        values = rel.columns[rel.col_index(in_col)]
        getv = values.__getitem__
        if func == "sum":
            agg_columns.append([sum(map(getv, m)) for m in members])
        elif func == "min":
            agg_columns.append([min(map(getv, m)) for m in members])
        elif func == "max":
            agg_columns.append([max(map(getv, m)) for m in members])
        elif func == "avg":
            agg_columns.append([float(sum(map(getv, m))) / len(m)
                                for m in members])
        elif func == "all":
            agg_columns.append([all(map(getv, m)) for m in members])
        elif func == "any":
            agg_columns.append([any(map(getv, m)) for m in members])
        else:  # pragma: no cover - schema validation rejects
            raise ExecutionError(f"unknown aggregate {func!r}")
    cols = tuple(node.group) + tuple(out for _, _, out in node.aggs)
    return Relation(cols, key_columns + agg_columns, len(members))


# Row-tuple access for the few remaining row-oriented consumers (kept so
# external callers of the seed API keep working).
def _key_getter(rel: Relation, cols: list):
    """A row-tuple join-key extractor (single columns avoid wrapping)."""
    idxs = [rel.col_index(c) for c in cols]
    if len(idxs) == 1:
        return itemgetter(idxs[0])
    return itemgetter(*idxs)
