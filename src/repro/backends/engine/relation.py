"""Relations (materialized tables) for the in-memory algebra engine."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence


class Relation:
    """A bag of rows with a fixed column order.

    Rows are plain tuples; the engine treats relations as unordered (any
    observable order is established explicitly through ``RowNum`` columns,
    exactly as on a real relational backend).
    """

    __slots__ = ("cols", "rows", "_index")

    def __init__(self, cols: Sequence[str], rows: Iterable[tuple]):
        self.cols = tuple(cols)
        self.rows = list(rows)
        self._index = {c: i for i, c in enumerate(self.cols)}

    def col_index(self, col: str) -> int:
        return self._index[col]

    def getter(self, col: str) -> Callable[[tuple], Any]:
        i = self._index[col]
        return lambda row: row[i]

    def column(self, col: str) -> list:
        i = self._index[col]
        return [row[i] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.cols} x {len(self.rows)} rows>"


def sort_rows(rows: list[tuple], keys: list[tuple[int, bool]]) -> list[tuple]:
    """Multi-key sort with per-key direction via successive stable sorts
    (strings cannot be negated, so ``reverse=`` per pass is the portable
    way to mix ascending and descending keys)."""
    out = list(rows)
    for idx, descending in reversed(keys):
        out.sort(key=lambda row: row[idx], reverse=descending)
    return out
