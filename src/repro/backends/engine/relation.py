"""Columnar relations (materialized tables) for the in-memory engine.

The engine follows the MonetDB/MIL execution model the paper targets:
a relation is a set of *parallel columns* (one Python list per column,
positionally aligned), not a list of row tuples.  Operators become
whole-column kernels -- projection is pure column aliasing, selection is
one ``itertools.compress`` pass per column, joins gather via
``map(col.__getitem__, index)`` -- so the per-row interpretive overhead
of the seed's tuple-at-a-time evaluator disappears from the hot path.

Columns are treated as immutable once a relation is built: kernels that
"extend" a relation share the input's column objects and only append
freshly built columns, which makes column aliasing across relations (and
across the bundle-wide materialization cache) safe.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Iterable, Sequence


class Relation:
    """A bag of rows stored column-wise with a fixed column order.

    ``columns[i]`` is the value list of column ``cols[i]``; all columns
    have length ``nrows``.  The engine treats relations as unordered
    (any observable order is established explicitly through ``RowNum``
    columns, exactly as on a real relational backend), so kernels are
    free to return rows in whatever order is cheapest.
    """

    __slots__ = ("cols", "columns", "nrows", "_index")

    def __init__(self, cols: Sequence[str], columns: Sequence[Sequence[Any]],
                 nrows: "int | None" = None):
        self.cols = tuple(cols)
        self.columns = list(columns)
        if nrows is None:
            nrows = len(self.columns[0]) if self.columns else 0
        self.nrows = nrows
        self._index = {c: i for i, c in enumerate(self.cols)}

    @classmethod
    def from_rows(cls, cols: Sequence[str],
                  rows: Iterable[tuple]) -> "Relation":
        """Build a columnar relation by transposing row tuples."""
        rows = rows if isinstance(rows, list) else list(rows)
        cols = tuple(cols)
        if rows:
            columns = [list(col) for col in zip(*rows)]
        else:
            columns = [[] for _ in cols]
        return cls(cols, columns, len(rows))

    # ------------------------------------------------------------------
    @property
    def rows(self) -> list[tuple]:
        """Row-tuple view (tests, debugging, row-oriented consumers).

        Materializes on every access -- hot paths should stay columnar.
        """
        if not self.columns:
            return [()] * self.nrows
        return list(zip(*self.columns))

    def col_index(self, col: str) -> int:
        return self._index[col]

    def column(self, col: str) -> Sequence[Any]:
        """The (shared, do-not-mutate) value sequence of ``col``."""
        return self.columns[self._index[col]]

    def take(self, index: Sequence[int]) -> "Relation":
        """Gather rows by position (the MIL backend's ``Take``), keeping
        the schema: one C-level ``map`` per column."""
        return Relation(self.cols,
                        [list(map(col.__getitem__, index))
                         for col in self.columns],
                        len(index))

    def sort_perm(self, keys: Sequence[tuple[int, bool]]) -> list[int]:
        """Positions sorted by the ``(column index, descending)`` keys.

        Successive stable sorts, last key first; each pass's key function
        is the column's bound ``__getitem__`` (no per-row closure), so
        mixed-direction multi-key sorts stay C-level.
        """
        perm = list(range(self.nrows))
        for idx, descending in reversed(list(keys)):
            perm.sort(key=self.columns[idx].__getitem__, reverse=descending)
        return perm

    def __len__(self) -> int:
        return self.nrows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.cols} x {self.nrows} rows>"


def sort_rows(rows: list[tuple], keys: list[tuple[int, bool]]) -> list[tuple]:
    """Multi-key sort of row tuples with per-key direction via successive
    stable sorts (strings cannot be negated, so ``reverse=`` per pass is
    the portable way to mix ascending and descending keys).  Key
    extraction uses ``itemgetter`` -- one reusable C-level getter per
    pass instead of a fresh Python lambda."""
    out = list(rows)
    for idx, descending in reversed(keys):
        out.sort(key=itemgetter(idx), reverse=descending)
    return out
