"""MIL-style column-at-a-time code generator and virtual machine."""

from .backend import MILBackend, MILGenerator
from .program import MILProgram, MILVM

__all__ = ["MILBackend", "MILGenerator", "MILProgram", "MILVM"]
