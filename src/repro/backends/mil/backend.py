"""Lowering algebra plans to MIL column programs.

The MIL code generator (the second Pathfinder back-end the paper
mentions): every algebra operator becomes a short sequence of
column-at-a-time instructions.  A node's output relation is represented
as one VM variable per schema column; row alignment across a node's
columns is positional, exactly like MonetDB's BATs.
"""

from __future__ import annotations

import itertools
import time

from ...algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
    postorder,
    schema_of,
)
from ...analysis import ensure_verified
from ...core.bundle import Bundle
from ...errors import ExecutionError
from ...obs.metrics import METRICS
from ...obs.trace import NULL_TRACER
from ...runtime.catalog import Catalog
from ..base import Backend, ExecutionResult, observe_query_time
from . import program as mil


class MILGenerator:
    """Compile one algebra plan into a :class:`MILProgram`."""

    def __init__(self) -> None:
        self._counter = itertools.count()
        self.instructions: list[mil.Instr] = []

    def fresh(self, prefix: str = "b") -> str:
        return f"{prefix}{next(self._counter)}"

    def emit(self, instr: mil.Instr) -> None:
        self.instructions.append(instr)

    # ------------------------------------------------------------------
    def generate(self, root: Node, out_cols: tuple[str, ...]) -> mil.MILProgram:
        memo: dict = {}
        colmap: dict[int, dict[str, str]] = {}
        for node in postorder(root):
            colmap[id(node)] = self._lower(node, colmap, memo)
        root_cols = colmap[id(root)]
        return mil.MILProgram(self.instructions,
                              tuple(root_cols[c] for c in out_cols))

    # ------------------------------------------------------------------
    def _lower(self, node: Node, colmap, memo) -> dict[str, str]:
        kids = [colmap[id(c)] for c in node.children]

        if isinstance(node, LitTable):
            out = {}
            for i, (name, _ty) in enumerate(node.schema):
                var = self.fresh()
                self.emit(mil.LitCol(var, tuple(r[i] for r in node.rows)))
                out[name] = var
            return out

        if isinstance(node, TableScan):
            out = {}
            for new, src, _ty in node.columns:
                var = self.fresh()
                self.emit(mil.LoadCol(var, node.table, src))
                out[new] = var
            return out

        if isinstance(node, Attach):
            (child,) = kids
            out = dict(child)
            like = next(iter(child.values()))
            var = self.fresh()
            self.emit(mil.ConstCol(var, node.value, like))
            out[node.col] = var
            return out

        if isinstance(node, Project):
            (child,) = kids
            return {new: child[old] for new, old in node.cols}

        if isinstance(node, Select):
            (child,) = kids
            idx = self.fresh("i")
            self.emit(mil.MaskIndex(idx, child[node.col]))
            return self._gather(child, idx)

        if isinstance(node, Distinct):
            (child,) = kids
            schema = schema_of(node, memo)
            idx = self.fresh("i")
            self.emit(mil.DistinctIndex(
                idx, tuple(child[c] for c in schema)))
            return self._gather(child, idx)

        if isinstance(node, RowNum):
            (child,) = kids
            perm = self.fresh("p")
            keys = tuple((child[c], "asc") for c in node.part)
            keys += tuple((child[c], d) for c, d in node.order)
            self.emit(mil.SortPerm(perm, keys))
            var = self.fresh()
            self.emit(mil.RowNumber(var, perm,
                                    tuple(child[c] for c in node.part)))
            out = dict(child)
            out[node.col] = var
            return out

        if isinstance(node, RowRank):
            (child,) = kids
            perm = self.fresh("p")
            keys = tuple((child[c], d) for c, d in node.order)
            self.emit(mil.SortPerm(perm, keys))
            var = self.fresh()
            self.emit(mil.DenseRank(var, perm,
                                    tuple(child[c] for c, _ in node.order)))
            out = dict(child)
            out[node.col] = var
            return out

        if isinstance(node, Cross):
            left, right = kids
            li, ri = self.fresh("i"), self.fresh("i")
            self.emit(mil.CrossIndex(li, ri, next(iter(left.values())),
                                     next(iter(right.values()))))
            out = self._gather(left, li)
            out.update(self._gather(right, ri))
            return out

        if isinstance(node, EqJoin):
            left, right = kids
            li, ri = self.fresh("i"), self.fresh("i")
            self.emit(mil.HashJoinIndex(
                li, ri,
                tuple(left[l] for l, _ in node.pairs),
                tuple(right[r] for _, r in node.pairs)))
            out = self._gather(left, li)
            out.update(self._gather(right, ri))
            return out

        if isinstance(node, (SemiJoin, AntiJoin)):
            left, right = kids
            idx = self.fresh("i")
            self.emit(mil.SemiIndex(
                idx,
                tuple(left[l] for l, _ in node.pairs),
                tuple(right[r] for _, r in node.pairs),
                anti=isinstance(node, AntiJoin)))
            return self._gather(left, idx)

        if isinstance(node, UnionAll):
            left, right = kids
            out = {}
            for col in schema_of(node, memo):
                var = self.fresh()
                self.emit(mil.Concat(var, left[col], right[col]))
                out[col] = var
            return out

        if isinstance(node, GroupAggr):
            (child,) = kids
            group_out = tuple(self.fresh() for _ in node.group)
            agg_specs = []
            out = {}
            for func, in_col, out_col in node.aggs:
                var = self.fresh()
                agg_specs.append(
                    (func, child[in_col] if in_col else None, var))
                out[out_col] = var
            self.emit(mil.GroupAggregate(
                tuple(child[c] for c in node.group),
                tuple(agg_specs), group_out))
            for name, var in zip(node.group, group_out):
                out[name] = var
            return out

        if isinstance(node, BinApp):
            (child,) = kids
            var = self.fresh()
            lc = isinstance(node.lhs, Const)
            rc = isinstance(node.rhs, Const)
            if lc and rc:
                raise ExecutionError("BinApp over two constants should have "
                                     "been folded")
            if lc:
                self.emit(mil.Map2Const(var, node.op, child[node.rhs],
                                        node.lhs.value, const_left=True))
            elif rc:
                self.emit(mil.Map2Const(var, node.op, child[node.lhs],
                                        node.rhs.value))
            else:
                self.emit(mil.Map2(var, node.op, child[node.lhs],
                                   child[node.rhs]))
            out = dict(child)
            out[node.out] = var
            return out

        if isinstance(node, UnApp):
            (child,) = kids
            var = self.fresh()
            self.emit(mil.Map1(var, node.op, child[node.col]))
            out = dict(child)
            out[node.out] = var
            return out

        raise ExecutionError(f"cannot lower {node.label} to MIL")

    def _gather(self, cols: dict[str, str], idx: str) -> dict[str, str]:
        out = {}
        for name, var in cols.items():
            new = self.fresh()
            self.emit(mil.Take(new, var, idx))
            out[name] = new
        return out


class MILBackend(Backend):
    """Generates MIL column programs and runs them on the mini VM."""

    name = "mil"

    def prepare_bundle(self, bundle: Bundle) -> list[mil.MILProgram]:
        """Lower every bundle member to a MIL program (no execution)."""
        ensure_verified(bundle, "backend:mil")
        programs = []
        for query in bundle.queries:
            gen = MILGenerator()
            out_cols = (query.iter_col, query.pos_col) + query.item_cols
            programs.append(gen.generate(query.plan, out_cols))
        return programs

    def describe_prepared(self, prepared: "list[mil.MILProgram]") -> list[str]:
        """The MIL instruction listings."""
        return [program.show() for program in prepared]

    def execute_bundle(self, bundle: Bundle, catalog: Catalog,
                       prepared: "list[mil.MILProgram] | None" = None,
                       tracer=NULL_TRACER,
                       collector=None,
                       parallel: bool = False) -> ExecutionResult:
        # ``parallel`` is accepted but ignored: every program in the
        # bundle runs on one shared VM variable namespace, so the MIL
        # backend stays serial (results are identical either way).
        base: dict[str, list] = {}
        for table in catalog.table_names():
            schema = catalog.schema(table)
            rows = catalog.rows(table)
            for i, (col, _ty) in enumerate(schema):
                base[f"@{table}.{col}"] = [r[i] for r in rows]
        vm = mil.MILVM(base)
        if prepared is None:
            prepared = self.prepare_bundle(bundle)
        results: list[list[tuple]] = []
        programs: list[str] = []
        total_rows = 0
        for qi, program in enumerate(prepared):
            programs.append(program.show())
            # The VM runs a whole column program per query; per-query
            # wall time + row count is the ANALYZE granularity here.
            qp = collector.query(qi + 1) if collector is not None else None
            with tracer.span("execute", query=qi + 1,
                             backend=self.name) as sp:
                t0 = time.perf_counter()
                columns = vm.run(program)
                # (iter, pos) is a key, so sorting full rows orders by it.
                rows = sorted(zip(*columns)) if columns[0] else []
                seconds = time.perf_counter() - t0
                sp.set(rows=len(rows))
                if qp is not None:
                    qp.time = seconds
                    qp.rows = len(rows)
            observe_query_time(self.name, qi, seconds, tracer.trace_id)
            total_rows += len(rows)
            results.append([tuple(r) for r in rows])
        METRICS.counter("backend.mil.queries").inc(len(bundle.queries))
        METRICS.counter("backend.mil.rows").inc(total_rows)
        return ExecutionResult(results, queries_issued=len(bundle.queries),
                               artifacts={"mil": programs})
