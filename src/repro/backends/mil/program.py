"""A MIL-style column-at-a-time virtual machine.

The paper's second code-generation target is MIL, the MonetDB Interpreter
Language [5]: a language whose primitives each process *entire columns*
(BATs) at a time.  This module provides a faithful miniature: a
:class:`MILProgram` is a flat sequence of column instructions (printable
as pseudo-MIL), executed by :class:`MILVM` over an environment of named
columns.  Every instruction materializes its full result column before
the next runs -- the column-at-a-time execution model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ...errors import ExecutionError, PartialFunctionError


class Instr:
    """Base class of VM instructions."""

    def execute(self, env: dict[str, list]) -> None:
        raise NotImplementedError

    def show(self) -> str:
        raise NotImplementedError


@dataclass
class LitCol(Instr):
    """Materialize a literal column."""

    dst: str
    values: tuple

    def execute(self, env: dict[str, list]) -> None:
        env[self.dst] = list(self.values)

    def show(self) -> str:
        preview = list(self.values[:4])
        suffix = ", ..." if len(self.values) > 4 else ""
        return f"{self.dst} := bat.new({preview}{suffix})  # {len(self.values)} values"


@dataclass
class LoadCol(Instr):
    """Load a base-table column (bound at VM construction)."""

    dst: str
    table: str
    column: str

    def execute(self, env: dict[str, list]) -> None:
        env[self.dst] = env[f"@{self.table}.{self.column}"]

    def show(self) -> str:
        return f'{self.dst} := bat("{self.table}", "{self.column}")'


@dataclass
class ConstCol(Instr):
    """A constant column as long as ``like``."""

    dst: str
    value: Any
    like: str

    def execute(self, env: dict[str, list]) -> None:
        env[self.dst] = [self.value] * len(env[self.like])

    def show(self) -> str:
        return f"{self.dst} := const({self.value!r}).project({self.like})"


@dataclass
class Alias(Instr):
    dst: str
    src: str

    def execute(self, env: dict[str, list]) -> None:
        env[self.dst] = env[self.src]

    def show(self) -> str:
        return f"{self.dst} := {self.src}"


def _div(a, b):
    if b == 0:
        raise PartialFunctionError("division by zero")
    return a / b


def _idiv(a, b):
    if b == 0:
        raise PartialFunctionError("division by zero")
    return a // b


def _mod(a, b):
    if b == 0:
        raise PartialFunctionError("division by zero")
    return a % b


_BIN: dict[str, Callable[[Any, Any], Any]] = {
    "add": lambda a, b: a + b, "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b, "div": _div, "idiv": _idiv, "mod": _mod,
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b,
    "and": lambda a, b: a and b, "or": lambda a, b: a or b,
    "min": min, "max": max,
    "cat": lambda a, b: a + b,
}

from ...semantics.interp import like_match as _like_match  # noqa: E402

_BIN["like"] = _like_match

_UN: dict[str, Callable[[Any], Any]] = {
    "not": lambda a: not a, "neg": lambda a: -a, "abs": abs,
    "to_double": float,
    "upper": lambda a: a.upper(), "lower": lambda a: a.lower(),
    "strlen": len,
    "year": lambda d: d.year, "month": lambda d: d.month,
    "day": lambda d: d.day,
    "hour": lambda t: t.hour, "minute": lambda t: t.minute,
    "second": lambda t: t.second,
}


@dataclass
class Map2(Instr):
    """Column-wise binary operator (the MIL ``[op]`` multiplex)."""

    dst: str
    op: str
    lhs: str
    rhs: str

    def execute(self, env: dict[str, list]) -> None:
        fn = _BIN[self.op]
        env[self.dst] = [fn(a, b) for a, b in zip(env[self.lhs],
                                                  env[self.rhs])]

    def show(self) -> str:
        return f"{self.dst} := [{self.op}]({self.lhs}, {self.rhs})"


@dataclass
class Map2Const(Instr):
    dst: str
    op: str
    lhs: str
    const: Any
    const_left: bool = False

    def execute(self, env: dict[str, list]) -> None:
        fn = _BIN[self.op]
        if self.const_left:
            env[self.dst] = [fn(self.const, a) for a in env[self.lhs]]
        else:
            env[self.dst] = [fn(a, self.const) for a in env[self.lhs]]

    def show(self) -> str:
        if self.const_left:
            return f"{self.dst} := [{self.op}]({self.const!r}, {self.lhs})"
        return f"{self.dst} := [{self.op}]({self.lhs}, {self.const!r})"


@dataclass
class Map1(Instr):
    dst: str
    op: str
    src: str

    def execute(self, env: dict[str, list]) -> None:
        fn = _UN[self.op]
        env[self.dst] = [fn(a) for a in env[self.src]]

    def show(self) -> str:
        return f"{self.dst} := [{self.op}]({self.src})"


@dataclass
class MaskIndex(Instr):
    """Row indices where the Boolean column is true (MIL ``uselect``)."""

    dst: str
    mask: str

    def execute(self, env: dict[str, list]) -> None:
        env[self.dst] = [i for i, v in enumerate(env[self.mask]) if v]

    def show(self) -> str:
        return f"{self.dst} := {self.mask}.uselect(true)"


@dataclass
class Take(Instr):
    """Positional gather (MIL ``join`` with a void-headed BAT; DPH's
    ``bpermuteP``)."""

    dst: str
    src: str
    index: str

    def execute(self, env: dict[str, list]) -> None:
        col = env[self.src]
        env[self.dst] = [col[i] for i in env[self.index]]

    def show(self) -> str:
        return f"{self.dst} := {self.src}.take({self.index})"


@dataclass
class DistinctIndex(Instr):
    """Indices of the first occurrence of each distinct tuple."""

    dst: str
    cols: tuple[str, ...]

    def execute(self, env: dict[str, list]) -> None:
        seen: set = set()
        out = []
        columns = [env[c] for c in self.cols]
        for i in range(len(columns[0])):
            key = tuple(col[i] for col in columns)
            if key not in seen:
                seen.add(key)
                out.append(i)
        env[self.dst] = out

    def show(self) -> str:
        return f"{self.dst} := distinct({', '.join(self.cols)})"


@dataclass
class SortPerm(Instr):
    """Stable sort permutation over (column, direction) keys."""

    dst: str
    keys: tuple[tuple[str, str], ...]

    def execute(self, env: dict[str, list]) -> None:
        n = len(env[self.keys[0][0]]) if self.keys else 0
        perm = list(range(n))
        for col, direction in reversed(self.keys):
            column = env[col]
            perm.sort(key=lambda i: column[i], reverse=(direction == "desc"))
        env[self.dst] = perm

    def show(self) -> str:
        keys = ", ".join(f"{c} {d}" for c, d in self.keys)
        return f"{self.dst} := sort_perm({keys})"


@dataclass
class RowNumber(Instr):
    """Dense numbering along ``perm`` within partitions (window function
    in column form)."""

    dst: str
    perm: str
    part: tuple[str, ...]

    def execute(self, env: dict[str, list]) -> None:
        perm = env[self.perm]
        part_cols = [env[c] for c in self.part]
        counters: dict[tuple, int] = {}
        out = [0] * len(perm)
        for i in perm:
            key = tuple(col[i] for col in part_cols)
            counters[key] = counters.get(key, 0) + 1
            out[i] = counters[key]
        env[self.dst] = out

    def show(self) -> str:
        part = ", ".join(self.part) or "()"
        return f"{self.dst} := row_number(perm={self.perm}, part={part})"


@dataclass
class DenseRank(Instr):
    dst: str
    perm: str
    keys: tuple[str, ...]

    def execute(self, env: dict[str, list]) -> None:
        perm = env[self.perm]
        key_cols = [env[c] for c in self.keys]
        out = [0] * len(perm)
        rank = 0
        prev: Any = object()
        for i in perm:
            key = tuple(col[i] for col in key_cols)
            if key != prev:
                rank += 1
                prev = key
            out[i] = rank
        env[self.dst] = out

    def show(self) -> str:
        return f"{self.dst} := dense_rank(perm={self.perm}, keys={list(self.keys)})"


@dataclass
class HashJoinIndex(Instr):
    """Equi-join index pair (MIL ``join``)."""

    dst_left: str
    dst_right: str
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]

    def execute(self, env: dict[str, list]) -> None:
        rcols = [env[c] for c in self.right_keys]
        n_right = len(rcols[0]) if rcols else 0
        buckets: dict[tuple, list[int]] = {}
        for j in range(n_right):
            buckets.setdefault(tuple(col[j] for col in rcols), []).append(j)
        lcols = [env[c] for c in self.left_keys]
        n_left = len(lcols[0]) if lcols else 0
        li, ri = [], []
        for i in range(n_left):
            for j in buckets.get(tuple(col[i] for col in lcols), ()):
                li.append(i)
                ri.append(j)
        env[self.dst_left] = li
        env[self.dst_right] = ri

    def show(self) -> str:
        return (f"({self.dst_left}, {self.dst_right}) := join("
                f"{list(self.left_keys)}, {list(self.right_keys)})")


@dataclass
class SemiIndex(Instr):
    dst: str
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]
    anti: bool

    def execute(self, env: dict[str, list]) -> None:
        rcols = [env[c] for c in self.right_keys]
        n_right = len(rcols[0]) if rcols else 0
        keys = {tuple(col[j] for col in rcols) for j in range(n_right)}
        lcols = [env[c] for c in self.left_keys]
        n_left = len(lcols[0]) if lcols else 0
        env[self.dst] = [
            i for i in range(n_left)
            if (tuple(col[i] for col in lcols) in keys) != self.anti]

    def show(self) -> str:
        op = "antijoin" if self.anti else "semijoin"
        return f"{self.dst} := {op}({list(self.left_keys)}, {list(self.right_keys)})"


@dataclass
class CrossIndex(Instr):
    dst_left: str
    dst_right: str
    left_like: str
    right_like: str

    def execute(self, env: dict[str, list]) -> None:
        nl, nr = len(env[self.left_like]), len(env[self.right_like])
        env[self.dst_left] = [i for i in range(nl) for _ in range(nr)]
        env[self.dst_right] = [j for _ in range(nl) for j in range(nr)]

    def show(self) -> str:
        return (f"({self.dst_left}, {self.dst_right}) := "
                f"cross({self.left_like}, {self.right_like})")


@dataclass
class Concat(Instr):
    dst: str
    first: str
    second: str

    def execute(self, env: dict[str, list]) -> None:
        env[self.dst] = env[self.first] + env[self.second]

    def show(self) -> str:
        return f"{self.dst} := {self.first}.append({self.second})"


@dataclass
class GroupAggregate(Instr):
    """Grouped aggregation in one column pass (MIL ``{op}`` pump)."""

    group_cols: tuple[str, ...]
    #: (func, input column or None, output var)
    aggs: tuple[tuple[str, "str | None", str], ...]
    #: outputs for the group-by columns themselves
    group_out: tuple[str, ...]

    def execute(self, env: dict[str, list]) -> None:
        gcols = [env[c] for c in self.group_cols]
        n = len(gcols[0]) if gcols else 0
        order: list[tuple] = []
        members: dict[tuple, list[int]] = {}
        for i in range(n):
            key = tuple(col[i] for col in gcols)
            if key not in members:
                members[key] = []
                order.append(key)
            members[key].append(i)
        for out, col in zip(self.group_out, zip(*order) if order else
                            [[] for _ in self.group_cols]):
            env[out] = list(col)
        if not order:
            for out in self.group_out:
                env[out] = []
        for func, in_col, out in self.aggs:
            values = []
            for key in order:
                idx = members[key]
                if func == "count":
                    values.append(len(idx))
                    continue
                col = env[in_col]
                xs = [col[i] for i in idx]
                if func == "sum":
                    values.append(sum(xs))
                elif func == "min":
                    values.append(min(xs))
                elif func == "max":
                    values.append(max(xs))
                elif func == "avg":
                    values.append(float(sum(xs)) / len(xs))
                elif func == "all":
                    values.append(all(xs))
                elif func == "any":
                    values.append(any(xs))
                else:  # pragma: no cover
                    raise ExecutionError(f"unknown aggregate {func!r}")
            env[out] = values

    def show(self) -> str:
        aggs = ", ".join(f"{o} := {{{f}}}({c or '*'})"
                         for f, c, o in self.aggs)
        return f"group by ({', '.join(self.group_cols)}): {aggs}"


@dataclass
class MILProgram:
    """A generated column program plus its output column variables."""

    instructions: list[Instr]
    out_vars: tuple[str, ...]

    def show(self) -> str:
        lines = [instr.show() for instr in self.instructions]
        lines.append(f"return ({', '.join(self.out_vars)})")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)


class MILVM:
    """Executes MIL programs against base-table columns."""

    def __init__(self, base_columns: dict[str, list]):
        #: keys have the form ``@table.column``
        self.base_columns = base_columns

    def run(self, program: MILProgram) -> list[list]:
        env: dict[str, list] = dict(self.base_columns)
        for instr in program.instructions:
            instr.execute(env)
        return [env[v] for v in program.out_vars]
