"""SQL:1999 code generation and the DB-API / sharded executors."""

from .backend import SQLiteBackend
from .dbapi import (
    SQLITE_DIALECT,
    Adapter,
    Dialect,
    SQLiteAdapter,
    SQLiteDialect,
    load_catalog,
)
from .generate import GeneratedSQL, generate_sql, render_literal, sql_type
from .shard import ShardedSQLiteBackend

__all__ = [
    "Adapter",
    "Dialect",
    "GeneratedSQL",
    "SQLITE_DIALECT",
    "SQLiteAdapter",
    "SQLiteBackend",
    "SQLiteDialect",
    "ShardedSQLiteBackend",
    "generate_sql",
    "load_catalog",
    "render_literal",
    "sql_type",
]
