"""SQL:1999 code generation and the SQLite executor."""

from .backend import SQLiteBackend
from .generate import GeneratedSQL, generate_sql, render_literal, sql_type

__all__ = ["GeneratedSQL", "SQLiteBackend", "generate_sql",
           "render_literal", "sql_type"]
