"""Executing generated SQL on an off-the-shelf RDBMS (SQLite).

Step 4 of Figure 2: the bundle's SQL statements run on a standards-
compliant relational system.  The paper used PostgreSQL 9.0; here the
stdlib ``sqlite3`` (window functions, CTEs) plays that role.  Catalog
tables are loaded once per catalog version; each bundle member is a
single SQL statement, so the connection's statement count directly
measures avalanches (Table 1).
"""

from __future__ import annotations

import datetime
import sqlite3
import time
from typing import Any

from ...core.bundle import Bundle, SerializedQuery
from ...errors import ExecutionError, PartialFunctionError
from ...ftypes import AtomT, BoolT, DateT, DoubleT, IntT, TimeT
from ...obs.metrics import METRICS
from ...obs.trace import NULL_TRACER
from ...runtime.catalog import Catalog
from ..base import Backend, ExecutionResult
from .generate import GeneratedSQL, generate_sql, quote_ident, sql_type


# sqlite3 reports UDF failures as a generic OperationalError, losing the
# exception type; the UDFs record theirs here so the executor can re-raise
# faithfully (division by zero must surface as PartialFunctionError).
_LAST_UDF_ERROR: list[Exception] = []


def _udf_error(err: Exception) -> Exception:
    _LAST_UDF_ERROR.clear()
    _LAST_UDF_ERROR.append(err)
    return err


def _ferry_div(a, b):
    if b == 0:
        raise _udf_error(PartialFunctionError("division by zero"))
    return float(a) / float(b)


def _ferry_idiv(a, b):
    if b == 0:
        raise _udf_error(PartialFunctionError("division by zero"))
    return a // b


def _ferry_mod(a, b):
    if b == 0:
        raise _udf_error(PartialFunctionError("division by zero"))
    return a % b


def _ferry_like(value, pattern):
    from ...semantics.interp import like_match
    return int(like_match(value, pattern))


class SQLiteBackend(Backend):
    """Generates SQL:1999 and executes it on SQLite."""

    name = "sqlite"

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._conn.create_function("FERRY_DIV", 2, _ferry_div,
                                   deterministic=True)
        self._conn.create_function("FERRY_IDIV", 2, _ferry_idiv,
                                   deterministic=True)
        self._conn.create_function("FERRY_MOD", 2, _ferry_mod,
                                   deterministic=True)
        self._conn.create_function("FERRY_LIKE", 2, _ferry_like,
                                   deterministic=True)
        self._loaded: tuple[int, int] | None = None
        #: SQL statements executed over this backend's lifetime.
        self.statements_executed = 0

    # ------------------------------------------------------------------
    def prepare_bundle(self, bundle: Bundle) -> list[GeneratedSQL]:
        """Generate the bundle's SQL statements (no execution)."""
        return [self.generate(query) for query in bundle.queries]

    def describe_prepared(self, prepared: "list[GeneratedSQL]") -> list[str]:
        """The generated SQL statements themselves."""
        return [gen.text for gen in prepared]

    def execute_bundle(self, bundle: Bundle, catalog: Catalog,
                       prepared: "list[GeneratedSQL] | None" = None,
                       tracer=NULL_TRACER,
                       collector=None) -> ExecutionResult:
        self._ensure_loaded(catalog)
        if prepared is None:
            prepared = self.prepare_bundle(bundle)
        results: list[list[tuple]] = []
        sql_texts: list[str] = []
        total_rows = 0
        for qi, (gen, query) in enumerate(zip(prepared, bundle.queries)):
            sql_texts.append(gen.text)
            # SQLite runs each statement as one opaque unit, so per-query
            # wall time + row count is the finest ANALYZE granularity here.
            qp = collector.query(qi + 1) if collector is not None else None
            with tracer.span("execute", query=qi + 1,
                             backend=self.name) as sp:
                t0 = time.perf_counter() if qp is not None else 0.0
                rows = self.run_sql(gen, query)
                sp.set(rows=len(rows))
                if qp is not None:
                    qp.time = time.perf_counter() - t0
                    qp.rows = len(rows)
            total_rows += len(rows)
            results.append(rows)
        METRICS.counter("backend.sqlite.queries").inc(len(bundle.queries))
        METRICS.counter("backend.sqlite.rows").inc(total_rows)
        return ExecutionResult(results, queries_issued=len(bundle.queries),
                               artifacts={"sql": sql_texts})

    def generate(self, query: SerializedQuery) -> GeneratedSQL:
        """SQL for one bundle member (iter, pos, items; ordered)."""
        out_cols = (query.iter_col, query.pos_col) + query.item_cols
        return generate_sql(query.plan, out_cols,
                            (query.iter_col, query.pos_col))

    def run_sql(self, gen: GeneratedSQL,
                query: SerializedQuery) -> list[tuple]:
        """Execute one generated statement and convert values back."""
        _LAST_UDF_ERROR.clear()
        try:
            cursor = self._conn.execute(gen.text)
            raw_rows = cursor.fetchall()
        except sqlite3.Error as err:
            if _LAST_UDF_ERROR:
                raise _LAST_UDF_ERROR[0] from None
            raise ExecutionError(f"SQLite rejected generated SQL: {err}\n"
                                 f"{gen.text}") from None
        self.statements_executed += 1
        converters = [_converter(ty) for ty in query.item_types]
        rows = []
        for raw in raw_rows:
            it, pos = raw[0], raw[1]
            items = tuple(conv(v) for conv, v in zip(converters, raw[2:]))
            rows.append((it, pos) + items)
        return rows

    # ------------------------------------------------------------------
    def _ensure_loaded(self, catalog: Catalog) -> None:
        key = (id(catalog), catalog.version)
        if self._loaded == key:
            return
        cur = self._conn.cursor()
        existing = [r[0] for r in cur.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'")]
        for name in existing:
            cur.execute(f"DROP TABLE {quote_ident(name)}")
        for name in catalog.table_names():
            schema = catalog.schema(name)
            cols = ", ".join(f"{quote_ident(c)} {sql_type(ty)}"
                             for c, ty in schema)
            cur.execute(f"CREATE TABLE {quote_ident(name)} ({cols})")
            placeholders = ", ".join("?" for _ in schema)
            rows = [tuple(_to_sql_value(v) for v in row)
                    for row in catalog.rows(name)]
            cur.executemany(
                f"INSERT INTO {quote_ident(name)} VALUES ({placeholders})",
                rows)
        self._conn.commit()
        self._loaded = key


def _to_sql_value(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (datetime.date, datetime.time)):
        return value.isoformat()
    return value


def _converter(ty: AtomT):
    if ty == BoolT:
        return lambda v: bool(v)
    if ty == IntT:
        return lambda v: int(v)
    if ty == DoubleT:
        return lambda v: float(v)
    if ty == DateT:
        return lambda v: datetime.date.fromisoformat(v)
    if ty == TimeT:
        return lambda v: datetime.time.fromisoformat(v)
    return lambda v: v
