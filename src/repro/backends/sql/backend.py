"""Executing generated SQL on an off-the-shelf RDBMS via DB-API.

Step 4 of Figure 2: the bundle's SQL statements run on a standards-
compliant relational system.  The paper used PostgreSQL 9.0; here any
PEP 249 driver can play that role through the adapter layer in
:mod:`repro.backends.sql.dbapi` (the default adapter wraps the stdlib
``sqlite3``: window functions, CTEs).  Catalog tables are loaded once per
catalog version; each bundle member is a single SQL statement, so the
connection's statement count directly measures avalanches (Table 1).

With ``parallel=True`` the bundle's statements fan out over a thread
pool.  DB-API connections are single-thread objects, so every worker
thread lazily opens its *own* connection via the adapter and loads the
catalog (keyed on catalog identity+version, so repeated bundles amortize
the load).  SQLite releases the GIL while a statement runs, which makes
this the one backend where Python threads buy real CPU concurrency.
File-backed databases stay serial: separate connections on one file
would race on the catalog load.
"""

from __future__ import annotations

import time
import threading
from concurrent.futures import ThreadPoolExecutor

from ...analysis import ensure_verified
from ...core.bundle import Bundle, SerializedQuery
from ...errors import ExecutionError
from ...obs.metrics import METRICS
from ...obs.trace import NULL_TRACER
from ...runtime.catalog import Catalog
from ..base import Backend, ExecutionResult, observe_query_time
from ..engine.backend import default_workers
from .dbapi import (
    Adapter,
    SQLiteAdapter,
    clear_udf_error,
    load_catalog,
    take_udf_error,
)
from .generate import GeneratedSQL, generate_sql


class SQLiteBackend(Backend):
    """Generates dialect-rendered SQL:1999 and executes it over DB-API.

    Named for its default host: with no explicit adapter this runs on
    in-memory SQLite.  Any :class:`~repro.backends.sql.dbapi.Adapter`
    can be substituted; the generator takes its quirks from
    ``adapter.dialect``.
    """

    name = "sqlite"

    def __init__(self, path: str = ":memory:",
                 adapter: "Adapter | None" = None):
        self.adapter: Adapter = (SQLiteAdapter(path) if adapter is None
                                 else adapter)
        self.dialect = self.adapter.dialect
        self._path = path
        self._conn = self.adapter.connect()
        self._local = threading.local()
        #: Catalog (identity, version) loaded per connection, keyed by
        #: ``id(conn)``.  Each thread touches only its own connection's
        #: entry, so plain dict writes are safe.
        self._loaded: dict[int, tuple[int, int]] = {}
        self._pool: "ThreadPoolExecutor | None" = None
        #: SQL statements executed over this backend's lifetime.  Bumped
        #: only by the coordinating thread (also under parallelism).
        self.statements_executed = 0

    # ------------------------------------------------------------------
    def prepare_bundle(self, bundle: Bundle) -> list[GeneratedSQL]:
        """Generate the bundle's SQL statements (no execution)."""
        ensure_verified(bundle, "backend:sqlite")
        return [self.generate(query) for query in bundle.queries]

    def describe_prepared(self, prepared: "list[GeneratedSQL]") -> list[str]:
        """The generated SQL statements, each stamped with the dialect
        and DB-API driver that produced and will host it."""
        stamp = f"-- dialect {self.dialect.name} ({self.adapter.describe()})"
        return [f"{stamp}\n{gen.text}" for gen in prepared]

    def _executor(self, n_queries: int) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=default_workers(max(n_queries, 2)),
                thread_name_prefix="ferry-sqlite")
        return self._pool

    def execute_bundle(self, bundle: Bundle, catalog: Catalog,
                       prepared: "list[GeneratedSQL] | None" = None,
                       tracer=NULL_TRACER,
                       collector=None,
                       parallel: bool = False) -> ExecutionResult:
        if prepared is None:
            prepared = self.prepare_bundle(bundle)
        n = len(bundle.queries)
        sql_texts = [gen.text for gen in prepared]
        results: "list[list[tuple] | None]" = [None] * n
        # Profiles are pre-registered in bundle order from this thread,
        # so reports stay aligned with bundle.queries under parallelism.
        qps = [collector.query(qi + 1) if collector is not None else None
               for qi in range(n)]

        if parallel and n > 1 and self._path == ":memory:":
            pool = self._executor(n)
            futures = [
                pool.submit(self._run_query, gen, query, catalog, qi,
                            tracer, qps[qi])
                for qi, (gen, query)
                in enumerate(zip(prepared, bundle.queries))
            ]
            handles = []
            for qi, future in enumerate(futures):
                rows, handle = future.result()
                results[qi] = rows
                self.statements_executed += 1
                handles.append(handle)
            for handle in handles:  # adopt spans in bundle-query order
                tracer.attach(handle)
        else:
            self._ensure_loaded(catalog)
            for qi, (gen, query) in enumerate(zip(prepared, bundle.queries)):
                # The host runs each statement as one opaque unit, so
                # per-query wall time + row count is the finest ANALYZE
                # granularity here.
                qp = qps[qi]
                with tracer.span("execute", query=qi + 1,
                                 backend=self.name) as sp:
                    t0 = time.perf_counter()
                    rows = self.run_sql(gen, query)
                    seconds = time.perf_counter() - t0
                    sp.set(rows=len(rows))
                    if qp is not None:
                        qp.time = seconds
                        qp.rows = len(rows)
                observe_query_time(self.name, qi, seconds, tracer.trace_id)
                self.statements_executed += 1
                results[qi] = rows

        total_rows = sum(len(rows) for rows in results)
        METRICS.counter("backend.sqlite.queries").inc(n)
        METRICS.counter("backend.sqlite.rows").inc(total_rows)
        return ExecutionResult(results, queries_issued=n,
                               artifacts={"sql": sql_texts})

    # ------------------------------------------------------------------
    def _run_query(self, gen: GeneratedSQL, query: SerializedQuery,
                   catalog: Catalog, qi: int, tracer, qp):
        """One bundle statement on a worker thread, using the thread's
        own connection; returns rows plus the detached trace span."""
        conn = self._thread_conn(catalog)
        handle = tracer.detached("execute", query=qi + 1, backend=self.name)
        with handle as sp:
            t0 = time.perf_counter()
            rows = self.run_sql(gen, query, conn)
            seconds = time.perf_counter() - t0
            sp.set(rows=len(rows))
            if qp is not None:
                qp.time = seconds
                qp.rows = len(rows)
        observe_query_time(self.name, qi, seconds, tracer.trace_id)
        return rows, handle

    def _thread_conn(self, catalog: Catalog):
        """This thread's private connection, catalog loaded."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self.adapter.connect()
            self._local.conn = conn
        self._ensure_loaded(catalog, conn)
        return conn

    def generate(self, query: SerializedQuery) -> GeneratedSQL:
        """SQL for one bundle member (iter, pos, items; ordered)."""
        out_cols = (query.iter_col, query.pos_col) + query.item_cols
        return generate_sql(query.plan, out_cols,
                            (query.iter_col, query.pos_col),
                            self.dialect)

    def run_sql(self, gen: GeneratedSQL, query: SerializedQuery,
                conn=None) -> list[tuple]:
        """Execute one generated statement and convert values back.

        Does *not* bump ``statements_executed`` -- the bundle loop does,
        from the coordinating thread, so the counter never races."""
        if conn is None:
            conn = self._conn
        clear_udf_error()
        try:
            cursor = conn.execute(gen.text)
            raw_rows = cursor.fetchall()
        except Exception as err:
            udf_err = take_udf_error()
            if udf_err is not None:
                raise udf_err from None
            raise ExecutionError(
                f"{self.dialect.name} rejected generated SQL: {err}\n"
                f"{gen.text}") from None
        converters = [self.dialect.from_db_value(ty)
                      for ty in query.item_types]
        rows = []
        for raw in raw_rows:
            it, pos = raw[0], raw[1]
            items = tuple(conv(v) for conv, v in zip(converters, raw[2:]))
            rows.append((it, pos) + items)
        return rows

    # ------------------------------------------------------------------
    def _ensure_loaded(self, catalog: Catalog, conn=None) -> None:
        if conn is None:
            conn = self._conn
        key = (id(catalog), catalog.version)
        if self._loaded.get(id(conn)) == key:
            return
        load_catalog(conn, catalog, self.dialect)
        self._loaded[id(conn)] = key
