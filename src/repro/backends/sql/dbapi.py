"""The dialect / DB-API layer: hosting generated SQL:1999 on any PEP 249
driver.

The paper ran its bundles on PostgreSQL 9.0; this reproduction uses the
stdlib ``sqlite3``.  Nothing about the generated SQL is SQLite-specific
beyond a handful of quirks -- identifier quoting, type affinity names,
window-function spellings, and how the FERRY_* scalar UDFs are
registered -- so this module isolates exactly those quirks:

* :class:`Dialect` renders the engine-specific SQL fragments (one
  instance per target system; :data:`SQLITE_DIALECT` today).  The code
  generator (``repro.backends.sql.generate``) asks the dialect for every
  fragment it emits, so porting the backend to another SQL:1999 system
  means writing one ``Dialect`` subclass, not touching the generator.
* :class:`Adapter` is the connection factory: anything that can produce
  a PEP 249 connection, register the FERRY_* UDFs on it, and say which
  driver it used.  :class:`SQLiteAdapter` wraps ``sqlite3``
  (file-or-memory); the sharded executor instantiates one adapter per
  shard.
* :func:`load_catalog` transfers a :class:`~repro.runtime.catalog.Catalog`
  instance into a connection (CREATE TABLE + executemany INSERT), shared
  by the single-image and sharded executors.

UDF error faithfulness: DB-API drivers report scalar-function failures
as their generic database error, losing the Python exception type.  The
UDFs therefore record the *original* exception in a thread-local
(:func:`record_udf_error` / :func:`take_udf_error`) so executors can
re-raise it faithfully -- division by zero must surface as
:class:`~repro.errors.PartialFunctionError` on every host engine.
"""

from __future__ import annotations

import datetime
import sqlite3
import threading
from typing import Any, Callable, Iterable, Protocol

from ...errors import ExecutionError, PartialFunctionError
from ...ftypes import AtomT, BoolT, DateT, DoubleT, IntT, StringT, TimeT
from ...runtime.catalog import Catalog

# ----------------------------------------------------------------------
# UDF error side channel (thread-local: parallel execution runs UDFs on
# several threads at once, and each must see only its own error)
# ----------------------------------------------------------------------

_UDF_ERRORS = threading.local()


def record_udf_error(err: Exception) -> Exception:
    """Remember ``err`` so the executor can re-raise it faithfully."""
    _UDF_ERRORS.last = err
    return err


def clear_udf_error() -> None:
    _UDF_ERRORS.last = None


def take_udf_error() -> "Exception | None":
    """The UDF error recorded on this thread, if any."""
    return getattr(_UDF_ERRORS, "last", None)


def _ferry_div(a, b):
    if b == 0:
        raise record_udf_error(PartialFunctionError("division by zero"))
    return float(a) / float(b)


def _ferry_idiv(a, b):
    if b == 0:
        raise record_udf_error(PartialFunctionError("division by zero"))
    return a // b


def _ferry_mod(a, b):
    if b == 0:
        raise record_udf_error(PartialFunctionError("division by zero"))
    return a % b


def _ferry_like(value, pattern):
    from ...semantics.interp import like_match
    return int(like_match(value, pattern))


#: The scalar UDFs every hosting connection must provide:
#: name -> (arity, function).  Haskell's flooring div/mod semantics and
#: case-sensitive LIKE survive the translation through these.
FERRY_UDFS: dict[str, tuple[int, Callable]] = {
    "FERRY_DIV": (2, _ferry_div),
    "FERRY_IDIV": (2, _ferry_idiv),
    "FERRY_MOD": (2, _ferry_mod),
    "FERRY_LIKE": (2, _ferry_like),
}


# ----------------------------------------------------------------------
# dialects
# ----------------------------------------------------------------------

class Dialect:
    """SQL:1999 rendering quirks of one host engine.

    The base class *is* the standard dialect; subclasses override only
    what their engine spells differently.  Everything the generator
    emits -- identifiers, literals, type names, window functions,
    scalar operators -- goes through here.
    """

    #: Short identifier, reported by ``describe_prepared``.
    name = "sql1999"

    # -- identifiers and types -----------------------------------------
    def quote_ident(self, name: str) -> str:
        return '"' + name.replace('"', '""') + '"'

    def type_name(self, ty: AtomT) -> str:
        """Column type (affinity) for CREATE TABLE statements."""
        return {
            BoolT: "INTEGER",
            IntT: "INTEGER",
            DoubleT: "REAL",
            StringT: "TEXT",
            DateT: "TEXT",
            TimeT: "TEXT",
        }[ty]

    # -- literals ------------------------------------------------------
    def literal(self, value: Any, ty: AtomT) -> str:
        if ty == BoolT:
            return "1" if value else "0"
        if ty == IntT:
            return str(int(value))
        if ty == DoubleT:
            return repr(float(value))
        if ty == StringT:
            return "'" + str(value).replace("'", "''") + "'"
        if ty in (DateT, TimeT):
            return "'" + value.isoformat() + "'"
        raise ExecutionError(f"cannot render literal of type {ty!r}")

    # -- window functions ----------------------------------------------
    def row_number(self, part: "tuple[str, ...]", order: str) -> str:
        prefix = ""
        if part:
            prefix = ("PARTITION BY "
                      + ", ".join(self.quote_ident(c) for c in part) + " ")
        return f"ROW_NUMBER() OVER ({prefix}ORDER BY {order})"

    def dense_rank(self, order: str) -> str:
        return f"DENSE_RANK() OVER (ORDER BY {order})"

    # -- data transfer -------------------------------------------------
    def to_db_value(self, value: Any) -> Any:
        """Python atom -> driver-level parameter value."""
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (datetime.date, datetime.time)):
            return value.isoformat()
        return value

    def from_db_value(self, ty: AtomT) -> Callable[[Any], Any]:
        """Converter from driver-level values back to Python atoms."""
        if ty == BoolT:
            return lambda v: bool(v)
        if ty == IntT:
            return lambda v: int(v)
        if ty == DoubleT:
            return lambda v: float(v)
        if ty == DateT:
            return lambda v: datetime.date.fromisoformat(v)
        if ty == TimeT:
            return lambda v: datetime.time.fromisoformat(v)
        return lambda v: v


class SQLiteDialect(Dialect):
    """SQLite's rendering of the standard dialect.

    SQLite accepts every fragment the base dialect emits (it grew window
    functions in 3.25), so the subclass only renames itself -- kept as a
    distinct class so engine-specific overrides have an obvious home.
    """

    name = "sqlite"


#: The default dialect (module-level singleton; the generator and both
#: executors share it).
SQLITE_DIALECT = SQLiteDialect()


# ----------------------------------------------------------------------
# adapters (PEP 249 connection factories)
# ----------------------------------------------------------------------

class Adapter(Protocol):
    """A source of PEP 249 connections that can host FERRY bundles.

    Implementations pair a driver (``connect`` + ``register_udfs``) with
    the :class:`Dialect` its SQL must be rendered in.  Executors call
    ``connect()`` once per worker thread (DB-API connections are
    single-thread objects in the general case) and never share the
    returned object across threads.
    """

    #: The dialect this adapter's connections speak.
    dialect: Dialect

    def connect(self) -> Any:
        """Open a fresh PEP 249 connection with UDFs registered."""
        ...

    def describe(self) -> str:
        """Human-readable driver identification (for EXPLAIN output)."""
        ...


class SQLiteAdapter:
    """The stdlib ``sqlite3`` adapter (file-backed or ``:memory:``)."""

    dialect: Dialect = SQLITE_DIALECT

    def __init__(self, path: str = ":memory:"):
        self.path = path

    def connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path)
        self.register_udfs(conn)
        return conn

    def register_udfs(self, conn: sqlite3.Connection) -> None:
        for name, (arity, func) in FERRY_UDFS.items():
            conn.create_function(name, arity, func, deterministic=True)

    def describe(self) -> str:
        # deliberately version-free: this string is embedded in prepared
        # artifacts (and golden files), which must not vary per machine
        return f"driver sqlite3, paramstyle {sqlite3.paramstyle}"


# ----------------------------------------------------------------------
# catalog transfer
# ----------------------------------------------------------------------

def load_catalog(conn: Any, catalog: Catalog, dialect: Dialect,
                 tables: "Iterable[str] | None" = None,
                 keep: "Callable[[str, tuple], bool] | None" = None) -> None:
    """Load (or reload) the catalog instance into ``conn``.

    Drops every existing table first, then creates and populates
    ``tables`` (default: all of them).  ``keep(table, row)``, when given,
    filters rows per table -- the hook through which a sharded executor
    could partition instead of replicate (see DESIGN.md for why lifted
    plans force full replicas today).
    """
    q = dialect.quote_ident
    cur = conn.cursor()
    existing = [r[0] for r in cur.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table'")]
    for name in existing:
        cur.execute(f"DROP TABLE {q(name)}")
    for name in (catalog.table_names() if tables is None else tables):
        schema = catalog.schema(name)
        cols = ", ".join(f"{q(c)} {dialect.type_name(ty)}"
                         for c, ty in schema)
        cur.execute(f"CREATE TABLE {q(name)} ({cols})")
        placeholders = ", ".join("?" for _ in schema)
        rows = [tuple(dialect.to_db_value(v) for v in row)
                for row in catalog.rows(name)
                if keep is None or keep(name, row)]
        cur.executemany(f"INSERT INTO {q(name)} VALUES ({placeholders})",
                        rows)
    conn.commit()
