"""SQL:1999 code generation from table-algebra plans.

The Pathfinder role (step 3 of Figure 2): lower an optimized algebra DAG
into a single SQL:1999 statement built from common table expressions, with
``ROW_NUMBER()``/``DENSE_RANK()`` window functions carrying the order and
surrogate encodings -- the same shapes as the appendix of the paper
("binding due to rank operator", "binding due to duplicate elimination").

Every operator node becomes one ``WITH`` binding (``t0000``, ``t0001``,
...); shared subplans are emitted once, mirroring the DAG.  The dialect
targets any SQL:1999 system with window functions; division and modulus
are emitted as the UDF names registered by the SQLite executor so that
Haskell's flooring ``div``/``mod`` semantics survive the translation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
    postorder,
    schema_of,
)
from ...errors import ExecutionError
from ...ftypes import AtomT, BoolT, DateT, DoubleT, IntT, StringT, TimeT


@dataclass
class GeneratedSQL:
    """One SQL statement of the bundle."""

    text: str
    columns: tuple[str, ...]  # iter, pos, item... in output order


def sql_type(ty: AtomT) -> str:
    """Column type name for CREATE TABLE statements."""
    return {
        BoolT: "INTEGER",
        IntT: "INTEGER",
        DoubleT: "REAL",
        StringT: "TEXT",
        DateT: "TEXT",
        TimeT: "TEXT",
    }[ty]


def render_literal(value, ty: AtomT) -> str:
    if ty == BoolT:
        return "1" if value else "0"
    if ty == IntT:
        return str(int(value))
    if ty == DoubleT:
        return repr(float(value))
    if ty == StringT:
        return "'" + str(value).replace("'", "''") + "'"
    if ty in (DateT, TimeT):
        return "'" + value.isoformat() + "'"
    raise ExecutionError(f"cannot render literal of type {ty!r}")


def quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def generate_sql(root: Node, out_cols: tuple[str, ...],
                 order_by: tuple[str, ...]) -> GeneratedSQL:
    """Generate one SQL statement computing the plan ``root``, projecting
    ``out_cols`` and ordering the result by ``order_by``."""
    names: dict[int, str] = {}
    ctes: list[str] = []
    memo: dict = {}
    for i, node in enumerate(postorder(root)):
        name = f"t{i:04d}"
        names[id(node)] = name
        body = _render(node, names, memo)
        cols = ", ".join(quote_ident(c) for c in schema_of(node, memo))
        ctes.append(f"{name}({cols}) AS (\n{body}\n)")
    select = ", ".join(quote_ident(c) for c in out_cols)
    order = ", ".join(f"{quote_ident(c)} ASC" for c in order_by)
    text = ("WITH\n" + ",\n".join(ctes)
            + f"\nSELECT {select}\nFROM {names[id(root)]}"
            + (f"\nORDER BY {order}" if order_by else "") + ";")
    return GeneratedSQL(text, out_cols)


# ----------------------------------------------------------------------
# per-operator rendering
# ----------------------------------------------------------------------

def _cols(node: Node, memo) -> list[str]:
    return list(schema_of(node, memo))


def _select_list(cols: list[str]) -> str:
    return ", ".join(quote_ident(c) for c in cols)


def _render(node: Node, names: dict[int, str], memo) -> str:
    if isinstance(node, LitTable):
        if not node.rows:
            nulls = ", ".join(
                f"CAST(NULL AS {sql_type(ty)}) AS {quote_ident(n)}"
                for n, ty in node.schema)
            return f"  SELECT {nulls} WHERE 0"
        selects = []
        for row in node.rows:
            cells = ", ".join(
                f"{render_literal(v, ty)} AS {quote_ident(n)}"
                for v, (n, ty) in zip(row, node.schema))
            selects.append(f"  SELECT {cells}")
        return "\n  UNION ALL\n".join(selects)

    if isinstance(node, TableScan):
        cols = ", ".join(f"{quote_ident(src)} AS {quote_ident(out)}"
                         for out, src, _ in node.columns)
        return f"  SELECT {cols}\n  FROM {quote_ident(node.table)}"

    child = names[id(node.children[0])] if node.children else None

    if isinstance(node, Attach):
        base = _select_list(_cols(node.children[0], memo))
        lit = render_literal(node.value, node.ty)
        return (f"  SELECT {base}, {lit} AS {quote_ident(node.col)}"
                f"\n  FROM {child}")

    if isinstance(node, Project):
        cols = ", ".join(f"{quote_ident(old)} AS {quote_ident(new)}"
                         for new, old in node.cols)
        return f"  SELECT {cols}\n  FROM {child}"

    if isinstance(node, Select):
        base = _select_list(_cols(node, memo))
        return (f"  SELECT {base}\n  FROM {child}"
                f"\n  WHERE {quote_ident(node.col)}")

    if isinstance(node, Distinct):
        base = _select_list(_cols(node, memo))
        # "binding due to duplicate elimination" (appendix)
        return f"  SELECT DISTINCT {base}\n  FROM {child}"

    if isinstance(node, (RowNum, RowRank)):
        base = _select_list(_cols(node.children[0], memo))
        order = ", ".join(f"{quote_ident(c)} {d.upper()}"
                          for c, d in node.order)
        if isinstance(node, RowNum):
            part = ""
            if node.part:
                part = ("PARTITION BY "
                        + ", ".join(quote_ident(c) for c in node.part) + " ")
            window = f"ROW_NUMBER() OVER ({part}ORDER BY {order})"
        else:
            # "binding due to rank operator" (appendix)
            window = f"DENSE_RANK() OVER (ORDER BY {order})"
        return (f"  SELECT {base},\n         {window} AS "
                f"{quote_ident(node.col)}\n  FROM {child}")

    if isinstance(node, Cross):
        left, right = (names[id(c)] for c in node.children)
        base = _select_list(_cols(node, memo))
        return f"  SELECT {base}\n  FROM {left}, {right}"

    if isinstance(node, EqJoin):
        left, right = (names[id(c)] for c in node.children)
        base = _select_list(_cols(node, memo))
        on = " AND ".join(f"{left}.{quote_ident(l)} = {right}.{quote_ident(r)}"
                          for l, r in node.pairs)
        return (f"  SELECT {base}\n  FROM {left}\n  JOIN {right}"
                f"\n    ON {on}")

    if isinstance(node, (SemiJoin, AntiJoin)):
        left, right = (names[id(c)] for c in node.children)
        base = _select_list(_cols(node, memo))
        on = " AND ".join(f"{right}.{quote_ident(r)} = {left}.{quote_ident(l)}"
                          for l, r in node.pairs)
        neg = "NOT " if isinstance(node, AntiJoin) else ""
        return (f"  SELECT {base}\n  FROM {left}\n  WHERE {neg}EXISTS "
                f"(SELECT 1 FROM {right} WHERE {on})")

    if isinstance(node, UnionAll):
        left, right = (names[id(c)] for c in node.children)
        cols = _cols(node, memo)
        base = _select_list(cols)
        return (f"  SELECT {base}\n  FROM {left}"
                f"\n  UNION ALL\n  SELECT {base}\n  FROM {right}")

    if isinstance(node, GroupAggr):
        parts = [quote_ident(c) for c in node.group]
        for func, in_col, out_col in node.aggs:
            parts.append(f"{_aggregate_sql(func, in_col)} AS "
                         f"{quote_ident(out_col)}")
        sql = f"  SELECT {', '.join(parts)}\n  FROM {child}"
        if node.group:
            sql += ("\n  GROUP BY "
                    + ", ".join(quote_ident(c) for c in node.group))
        return sql

    if isinstance(node, BinApp):
        base = _select_list(_cols(node.children[0], memo))
        child_schema = schema_of(node.children[0], memo)
        expr = _binop_sql(node, child_schema)
        return (f"  SELECT {base}, {expr} AS {quote_ident(node.out)}"
                f"\n  FROM {child}")

    if isinstance(node, UnApp):
        base = _select_list(_cols(node.children[0], memo))
        col = quote_ident(node.col)
        expr = {
            "not": f"(NOT {col})",
            "neg": f"(-{col})",
            "abs": f"ABS({col})",
            "to_double": f"CAST({col} AS REAL)",
            "upper": f"UPPER({col})",
            "lower": f"LOWER({col})",
            "strlen": f"LENGTH({col})",
            # dates/times are stored as ISO-8601 text: fixed-offset parts
            "year": f"CAST(SUBSTR({col}, 1, 4) AS INTEGER)",
            "month": f"CAST(SUBSTR({col}, 6, 2) AS INTEGER)",
            "day": f"CAST(SUBSTR({col}, 9, 2) AS INTEGER)",
            "hour": f"CAST(SUBSTR({col}, 1, 2) AS INTEGER)",
            "minute": f"CAST(SUBSTR({col}, 4, 2) AS INTEGER)",
            "second": f"CAST(SUBSTR({col}, 7, 2) AS INTEGER)",
        }[node.op]
        return (f"  SELECT {base}, {expr} AS {quote_ident(node.out)}"
                f"\n  FROM {child}")

    raise ExecutionError(f"cannot generate SQL for {node.label}")


def _aggregate_sql(func: str, in_col: "str | None") -> str:
    if func == "count":
        return "COUNT(*)"
    col = quote_ident(in_col)
    return {
        "sum": f"SUM({col})",
        "min": f"MIN({col})",
        "max": f"MAX({col})",
        "avg": f"AVG(CAST({col} AS REAL))",
        # booleans are stored as 0/1, so EVERY/SOME reduce to MIN/MAX
        "all": f"MIN({col})",
        "any": f"MAX({col})",
    }[func]


def _operand_sql(operand, schema) -> str:
    if isinstance(operand, Const):
        return render_literal(operand.value, operand.ty)
    return quote_ident(operand)


def _binop_sql(node: BinApp, schema) -> str:
    a = _operand_sql(node.lhs, schema)
    b = _operand_sql(node.rhs, schema)
    simple = {
        "add": f"({a} + {b})",
        "sub": f"({a} - {b})",
        "mul": f"({a} * {b})",
        "eq": f"({a} = {b})",
        "ne": f"({a} <> {b})",
        "lt": f"({a} < {b})",
        "le": f"({a} <= {b})",
        "gt": f"({a} > {b})",
        "ge": f"({a} >= {b})",
        "and": f"({a} AND {b})",
        "or": f"({a} OR {b})",
        "min": f"MIN({a}, {b})",
        "max": f"MAX({a}, {b})",
        # UDFs registered by the executor: Haskell div/mod floor toward
        # negative infinity and must error (not NULL) on division by zero.
        "div": f"FERRY_DIV({a}, {b})",
        "idiv": f"FERRY_IDIV({a}, {b})",
        "mod": f"FERRY_MOD({a}, {b})",
        "cat": f"({a} || {b})",
        # SQLite's native LIKE is case-insensitive for ASCII; the UDF
        # keeps the library's case-sensitive semantics on every backend.
        "like": f"FERRY_LIKE({a}, {b})",
    }
    return simple[node.op]
