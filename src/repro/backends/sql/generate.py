"""SQL:1999 code generation from table-algebra plans.

The Pathfinder role (step 3 of Figure 2): lower an optimized algebra DAG
into a single SQL:1999 statement built from common table expressions, with
``ROW_NUMBER()``/``DENSE_RANK()`` window functions carrying the order and
surrogate encodings -- the same shapes as the appendix of the paper
("binding due to rank operator", "binding due to duplicate elimination").

Every operator node becomes one ``WITH`` binding (``t0000``, ``t0001``,
...); shared subplans are emitted once, mirroring the DAG.  Engine
quirks -- identifier quoting, type names, literal syntax, window-function
spellings -- are delegated to a :class:`~repro.backends.sql.dbapi.Dialect`
(default: SQLite); division and modulus are emitted as the UDF names the
adapter registers so that Haskell's flooring ``div``/``mod`` semantics
survive the translation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
    postorder,
    schema_of,
)
from ...errors import ExecutionError
from ...ftypes import AtomT
from .dbapi import SQLITE_DIALECT, Dialect


@dataclass
class GeneratedSQL:
    """One SQL statement of the bundle."""

    text: str
    columns: tuple[str, ...]  # iter, pos, item... in output order


# Module-level helpers bound to the default (SQLite) dialect, kept for
# callers that predate the dialect layer.

def sql_type(ty: AtomT) -> str:
    """Column type name for CREATE TABLE statements."""
    return SQLITE_DIALECT.type_name(ty)


def render_literal(value, ty: AtomT) -> str:
    return SQLITE_DIALECT.literal(value, ty)


def quote_ident(name: str) -> str:
    return SQLITE_DIALECT.quote_ident(name)


def generate_sql(root: Node, out_cols: tuple[str, ...],
                 order_by: tuple[str, ...],
                 dialect: Dialect = SQLITE_DIALECT) -> GeneratedSQL:
    """Generate one SQL statement computing the plan ``root``, projecting
    ``out_cols`` and ordering the result by ``order_by``."""
    q = dialect.quote_ident
    names: dict[int, str] = {}
    ctes: list[str] = []
    memo: dict = {}
    for i, node in enumerate(postorder(root)):
        name = f"t{i:04d}"
        names[id(node)] = name
        body = _render(node, names, memo, dialect)
        cols = ", ".join(q(c) for c in schema_of(node, memo))
        ctes.append(f"{name}({cols}) AS (\n{body}\n)")
    select = ", ".join(q(c) for c in out_cols)
    order = ", ".join(f"{q(c)} ASC" for c in order_by)
    text = ("WITH\n" + ",\n".join(ctes)
            + f"\nSELECT {select}\nFROM {names[id(root)]}"
            + (f"\nORDER BY {order}" if order_by else "") + ";")
    return GeneratedSQL(text, out_cols)


# ----------------------------------------------------------------------
# per-operator rendering
# ----------------------------------------------------------------------

def _cols(node: Node, memo) -> list[str]:
    return list(schema_of(node, memo))


def _select_list(cols: list[str], d: Dialect) -> str:
    return ", ".join(d.quote_ident(c) for c in cols)


def _render(node: Node, names: dict[int, str], memo, d: Dialect) -> str:
    q = d.quote_ident

    if isinstance(node, LitTable):
        if not node.rows:
            nulls = ", ".join(
                f"CAST(NULL AS {d.type_name(ty)}) AS {q(n)}"
                for n, ty in node.schema)
            return f"  SELECT {nulls} WHERE 0"
        selects = []
        for row in node.rows:
            cells = ", ".join(
                f"{d.literal(v, ty)} AS {q(n)}"
                for v, (n, ty) in zip(row, node.schema))
            selects.append(f"  SELECT {cells}")
        return "\n  UNION ALL\n".join(selects)

    if isinstance(node, TableScan):
        cols = ", ".join(f"{q(src)} AS {q(out)}"
                         for out, src, _ in node.columns)
        return f"  SELECT {cols}\n  FROM {q(node.table)}"

    child = names[id(node.children[0])] if node.children else None

    if isinstance(node, Attach):
        base = _select_list(_cols(node.children[0], memo), d)
        lit = d.literal(node.value, node.ty)
        return (f"  SELECT {base}, {lit} AS {q(node.col)}"
                f"\n  FROM {child}")

    if isinstance(node, Project):
        cols = ", ".join(f"{q(old)} AS {q(new)}"
                         for new, old in node.cols)
        return f"  SELECT {cols}\n  FROM {child}"

    if isinstance(node, Select):
        base = _select_list(_cols(node, memo), d)
        return (f"  SELECT {base}\n  FROM {child}"
                f"\n  WHERE {q(node.col)}")

    if isinstance(node, Distinct):
        base = _select_list(_cols(node, memo), d)
        # "binding due to duplicate elimination" (appendix)
        return f"  SELECT DISTINCT {base}\n  FROM {child}"

    if isinstance(node, (RowNum, RowRank)):
        base = _select_list(_cols(node.children[0], memo), d)
        order = ", ".join(f"{q(c)} {dr.upper()}"
                          for c, dr in node.order)
        if isinstance(node, RowNum):
            window = d.row_number(node.part, order)
        else:
            # "binding due to rank operator" (appendix)
            window = d.dense_rank(order)
        return (f"  SELECT {base},\n         {window} AS "
                f"{q(node.col)}\n  FROM {child}")

    if isinstance(node, Cross):
        left, right = (names[id(c)] for c in node.children)
        base = _select_list(_cols(node, memo), d)
        return f"  SELECT {base}\n  FROM {left}, {right}"

    if isinstance(node, EqJoin):
        left, right = (names[id(c)] for c in node.children)
        base = _select_list(_cols(node, memo), d)
        on = " AND ".join(f"{left}.{q(lc)} = {right}.{q(rc)}"
                          for lc, rc in node.pairs)
        return (f"  SELECT {base}\n  FROM {left}\n  JOIN {right}"
                f"\n    ON {on}")

    if isinstance(node, (SemiJoin, AntiJoin)):
        left, right = (names[id(c)] for c in node.children)
        base = _select_list(_cols(node, memo), d)
        on = " AND ".join(f"{right}.{q(rc)} = {left}.{q(lc)}"
                          for lc, rc in node.pairs)
        neg = "NOT " if isinstance(node, AntiJoin) else ""
        return (f"  SELECT {base}\n  FROM {left}\n  WHERE {neg}EXISTS "
                f"(SELECT 1 FROM {right} WHERE {on})")

    if isinstance(node, UnionAll):
        left, right = (names[id(c)] for c in node.children)
        cols = _cols(node, memo)
        base = _select_list(cols, d)
        return (f"  SELECT {base}\n  FROM {left}"
                f"\n  UNION ALL\n  SELECT {base}\n  FROM {right}")

    if isinstance(node, GroupAggr):
        parts = [q(c) for c in node.group]
        for func, in_col, out_col in node.aggs:
            parts.append(f"{_aggregate_sql(func, in_col, d)} AS "
                         f"{q(out_col)}")
        sql = f"  SELECT {', '.join(parts)}\n  FROM {child}"
        if node.group:
            sql += ("\n  GROUP BY "
                    + ", ".join(q(c) for c in node.group))
        return sql

    if isinstance(node, BinApp):
        base = _select_list(_cols(node.children[0], memo), d)
        expr = _binop_sql(node, d)
        return (f"  SELECT {base}, {expr} AS {q(node.out)}"
                f"\n  FROM {child}")

    if isinstance(node, UnApp):
        base = _select_list(_cols(node.children[0], memo), d)
        col = q(node.col)
        expr = {
            "not": f"(NOT {col})",
            "neg": f"(-{col})",
            "abs": f"ABS({col})",
            "to_double": f"CAST({col} AS REAL)",
            "upper": f"UPPER({col})",
            "lower": f"LOWER({col})",
            "strlen": f"LENGTH({col})",
            # dates/times are stored as ISO-8601 text: fixed-offset parts
            "year": f"CAST(SUBSTR({col}, 1, 4) AS INTEGER)",
            "month": f"CAST(SUBSTR({col}, 6, 2) AS INTEGER)",
            "day": f"CAST(SUBSTR({col}, 9, 2) AS INTEGER)",
            "hour": f"CAST(SUBSTR({col}, 1, 2) AS INTEGER)",
            "minute": f"CAST(SUBSTR({col}, 4, 2) AS INTEGER)",
            "second": f"CAST(SUBSTR({col}, 7, 2) AS INTEGER)",
        }[node.op]
        return (f"  SELECT {base}, {expr} AS {q(node.out)}"
                f"\n  FROM {child}")

    raise ExecutionError(f"cannot generate SQL for {node.label}")


def _aggregate_sql(func: str, in_col: "str | None", d: Dialect) -> str:
    if func == "count":
        return "COUNT(*)"
    col = d.quote_ident(in_col)
    return {
        "sum": f"SUM({col})",
        "min": f"MIN({col})",
        "max": f"MAX({col})",
        "avg": f"AVG(CAST({col} AS REAL))",
        # booleans are stored as 0/1, so EVERY/SOME reduce to MIN/MAX
        "all": f"MIN({col})",
        "any": f"MAX({col})",
    }[func]


def _operand_sql(operand, d: Dialect) -> str:
    if isinstance(operand, Const):
        return d.literal(operand.value, operand.ty)
    return d.quote_ident(operand)


def _binop_sql(node: BinApp, d: Dialect) -> str:
    a = _operand_sql(node.lhs, d)
    b = _operand_sql(node.rhs, d)
    simple = {
        "add": f"({a} + {b})",
        "sub": f"({a} - {b})",
        "mul": f"({a} * {b})",
        "eq": f"({a} = {b})",
        "ne": f"({a} <> {b})",
        "lt": f"({a} < {b})",
        "le": f"({a} <= {b})",
        "gt": f"({a} > {b})",
        "ge": f"({a} >= {b})",
        "and": f"({a} AND {b})",
        "or": f"({a} OR {b})",
        "min": f"MIN({a}, {b})",
        "max": f"MAX({a}, {b})",
        # UDFs registered by the adapter: Haskell div/mod floor toward
        # negative infinity and must error (not NULL) on division by zero.
        "div": f"FERRY_DIV({a}, {b})",
        "idiv": f"FERRY_IDIV({a}, {b})",
        "mod": f"FERRY_MOD({a}, {b})",
        "cat": f"({a} || {b})",
        # SQLite's native LIKE is case-insensitive for ASCII; the UDF
        # keeps the library's case-sensitive semantics on every backend.
        "like": f"FERRY_LIKE({a}, {b})",
    }
    return simple[node.op]
