"""Partition-parallel SQL execution: scatter on ``iter``, gather on
``(iter, pos)``.

Loop-lifting hands us a natural partitioning key for free: every bundle
query carries the loop-instance surrogate ``iter``, and the stitcher
consumes ``iter`` groups independently.  The sharded executor exploits
this: for each bundle query that the analysis layer proves partitionable
(:func:`repro.analysis.shardable`, code ``S400``), shard ``k`` of ``n``
executes the plan filtered to ``iter mod n = k`` -- with the filter
pushed toward the leaves -- on its *own* SQLite connection, pinned to
its own worker thread.  SQLite releases the GIL while a statement runs,
so the shards genuinely overlap on multi-core machines.

Gather is a ``heapq.merge`` on ``(iter, pos)``: each shard's statement
already ends in ``ORDER BY iter, pos`` (the backend contract the
stitcher relies on), the shard predicates are disjoint and exhaustive,
and whole ``iter`` groups live on exactly one shard -- so the merge
reproduces the single-image row stream *exactly*, by construction.

Plans the analysis refuses (constant ``iter``, tiny plans, pushdown
blocked at the root -- each with a stable ``F40x`` reason code) fall
back to single-image execution transparently: same rows, same order,
same errors.

Why replicas, not partitioned base tables: the compiler derives every
surrogate by *globally* row-numbering scanned tables (the canonical
``RowNum`` right above each ``TableScan``).  Physically splitting base
rows across shards would renumber them per shard and change every
surrogate -- provably unsound for any lifted plan.  Each shard therefore
holds a full catalog replica, and the shard predicate (not the data
placement) provides the partitioning.  See DESIGN.md.
"""

from __future__ import annotations

import heapq
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ...analysis import (
    PropsCache,
    ShardDecision,
    build_shard_plan,
    ensure_verified,
    shardable,
)
from ...core.bundle import Bundle, SerializedQuery
from ...errors import FerryError, ShardError
from ...obs.metrics import METRICS
from ...obs.trace import NULL_TRACER
from ...runtime.catalog import Catalog
from ..base import Backend, ExecutionResult, observe_query_time
from .backend import SQLiteBackend
from .dbapi import Adapter, SQLiteAdapter
from .generate import GeneratedSQL, generate_sql


@dataclass
class ShardedQuery:
    """Prepared form of one bundle member under sharding."""

    #: Single-image statement (fallback path, and EXPLAIN artifact).
    single: GeneratedSQL
    #: The analysis verdict with its stable reason code.
    decision: ShardDecision
    #: One statement per shard when ``decision.shardable`` (else ``None``).
    shards: "tuple[GeneratedSQL, ...] | None"


def _close_pools(pools, conns):
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)
    for conn in conns:
        if conn is not None:
            try:
                conn.close()
            except Exception:  # pragma: no cover - close is best effort
                pass


class ShardedSQLiteBackend(Backend):
    """Scatter-gather executor over ``n`` single-thread SQLite shards.

    The backend name encodes the fan-out (``sqlite-x4``): prepared
    artifacts are shard-count-specific, and the plan cache's per-backend
    codegen store keys on the name.
    """

    def __init__(self, shards: int, path: str = ":memory:",
                 adapter: "Adapter | None" = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.name = f"sqlite-x{shards}"
        #: Single-image engine: generation, value conversion, catalog
        #: loading, and the fallback execution path all delegate here.
        self._image = SQLiteBackend(path, adapter=adapter)
        self.adapter = self._image.adapter
        self.dialect = self._image.dialect
        #: One single-thread pool per shard; the pool pins its shard's
        #: connection to its one worker thread (DB-API connections are
        #: not thread-safe).  Created lazily: bundles whose every query
        #: falls back never pay for threads.
        self._pools: "list[ThreadPoolExecutor] | None" = None
        self._conns: list = [None] * shards
        self._loaded: list = [None] * shards
        self._finalizer = None

    # -- statement accounting (delegated to the single-image engine so
    # -- fallback and sharded statements land in one counter)
    @property
    def statements_executed(self) -> int:
        return self._image.statements_executed

    def close(self) -> None:
        """Shut down shard pools and close their connections."""
        if self._pools is not None:
            _close_pools(self._pools, self._conns)
            self._pools = None
            self._conns = [None] * self.shards
            self._loaded = [None] * self.shards
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None

    def _shard_pools(self) -> "list[ThreadPoolExecutor]":
        if self._pools is None:
            self._pools = [
                ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix=f"ferry-shard{k}")
                for k in range(self.shards)
            ]
            # Hypothesis suites construct thousands of short-lived
            # connections; reclaim pool threads when the backend dies
            # even without an explicit close().
            self._finalizer = weakref.finalize(
                self, _close_pools, self._pools, self._conns)
        return self._pools

    # ------------------------------------------------------------------
    def prepare_bundle(self, bundle: Bundle) -> list[ShardedQuery]:
        """Decide shardability per query and generate all statements."""
        ensure_verified(bundle, f"backend:{self.name}")
        cache = PropsCache()
        prepared = []
        for query in bundle.queries:
            decision = shardable(query, cache, fanout=self.shards)
            gens = None
            if decision.shardable:
                gens = tuple(
                    self._generate(build_shard_plan(query, self.shards, k))
                    for k in range(self.shards))
            prepared.append(ShardedQuery(self._image.generate(query),
                                         decision, gens))
        return prepared

    def _generate(self, query: SerializedQuery) -> GeneratedSQL:
        out_cols = (query.iter_col, query.pos_col) + query.item_cols
        return generate_sql(query.plan, out_cols,
                            (query.iter_col, query.pos_col), self.dialect)

    def describe_prepared(self,
                          prepared: "list[ShardedQuery]") -> list[str]:
        """Single-image SQL stamped with dialect/driver and the shard
        decision (reason code + fan-out)."""
        out = []
        stamp = f"-- dialect {self.dialect.name} ({self.adapter.describe()})"
        for sq in prepared:
            fanout = (f"fan-out {self.shards}" if sq.decision.shardable
                      else "single-image fallback")
            out.append(f"{stamp}\n-- shard decision: "
                       f"{sq.decision.describe()}; {fanout}\n"
                       f"{sq.single.text}")
        return out

    def shard_decisions(self,
                        bundle: Bundle) -> "list[ShardDecision]":
        """Per-query shard verdicts (EXPLAIN surfaces these)."""
        cache = PropsCache()
        return [shardable(query, cache, fanout=self.shards)
                for query in bundle.queries]

    # ------------------------------------------------------------------
    def execute_bundle(self, bundle: Bundle, catalog: Catalog,
                       prepared: "list[ShardedQuery] | None" = None,
                       tracer=NULL_TRACER,
                       collector=None,
                       parallel: bool = False) -> ExecutionResult:
        if prepared is None:
            prepared = self.prepare_bundle(bundle)
        n = len(bundle.queries)
        results: "list[list[tuple] | None]" = [None] * n
        qps = [collector.query(qi + 1) if collector is not None else None
               for qi in range(n)]
        sharded_count = 0
        shard_timings: list[tuple[int, float]] = []
        for qi, (sq, query) in enumerate(zip(prepared, bundle.queries)):
            qp = qps[qi]
            if sq.shards is None:
                # Transparent fallback: the single-image engine runs the
                # unsharded statement on the coordinating thread.
                with tracer.span("execute", query=qi + 1, backend=self.name,
                                 shard="fallback",
                                 decision=sq.decision.code) as sp:
                    self._image._ensure_loaded(catalog)
                    t0 = time.perf_counter()
                    rows = self._image.run_sql(sq.single, query)
                    seconds = time.perf_counter() - t0
                    sp.set(rows=len(rows))
                    if qp is not None:
                        qp.time = seconds
                        qp.rows = len(rows)
                observe_query_time(self.name, qi, seconds, tracer.trace_id)
                self._image.statements_executed += 1
            else:
                t0 = time.perf_counter() if qp is not None else 0.0
                rows, timings = self._scatter_gather(sq, query, catalog,
                                                     qi, tracer)
                shard_timings.extend(timings)
                if qp is not None:
                    qp.time = time.perf_counter() - t0
                    qp.rows = len(rows)
                self._image.statements_executed += self.shards
                sharded_count += 1
            results[qi] = rows

        total_rows = sum(len(rows) for rows in results)
        METRICS.counter("backend.sqlite.queries").inc(n)
        METRICS.counter("backend.sqlite.rows").inc(total_rows)
        METRICS.counter("backend.shard.queries_sharded").inc(sharded_count)
        METRICS.counter("backend.shard.queries_fallback").inc(
            n - sharded_count)
        return ExecutionResult(
            results, queries_issued=n,
            artifacts={"sql": [sq.single.text for sq in prepared],
                       "shards": self.shards,
                       "decisions": [sq.decision.code for sq in prepared]},
            shard_timings=shard_timings)

    def _scatter_gather(self, sq: ShardedQuery, query: SerializedQuery,
                        catalog: Catalog, qi: int, tracer
                        ) -> "tuple[list[tuple], list[tuple[int, float]]]":
        """Fan one query's shard statements out and merge the results;
        also returns each shard's wall-clock seconds."""
        pools = self._shard_pools()
        futures = [
            pools[k].submit(self._run_shard, sq.shards[k], query, catalog,
                            k, qi, tracer)
            for k in range(self.shards)
        ]
        shard_rows: list = [None] * self.shards
        timings: list[tuple[int, float]] = []
        handles = []
        error: "Exception | None" = None
        for k, future in enumerate(futures):
            try:
                shard_rows[k], handle, seconds = future.result()
                handles.append(handle)
                timings.append((k, seconds))
            except FerryError as err:
                # Semantic failures (e.g. division by zero in a UDF)
                # must surface exactly as single-image execution would
                # raise them.
                error = error or err
            except Exception as err:  # infrastructure failure
                error = error or ShardError(k, str(err))
        for handle in handles:  # adopt spans in shard order
            tracer.attach(handle)
        hist = METRICS.histogram("backend.shard.seconds")
        trace_id = tracer.trace_id
        for k, seconds in timings:
            hist.observe(seconds,
                         exemplar=({"trace_id": trace_id,
                                    "shard": str(k)}
                                   if trace_id is not None else None))
        if error is not None:
            raise error
        # Disjoint iter groups, each shard already (iter, pos)-sorted:
        # a k-way merge *is* the global order.
        merged = list(heapq.merge(*shard_rows, key=lambda r: (r[0], r[1])))
        return merged, timings

    def _run_shard(self, gen: GeneratedSQL, query: SerializedQuery,
                   catalog: Catalog, k: int, qi: int, tracer):
        """One shard statement, on the shard's pinned thread/connection."""
        conn = self._conns[k]
        if conn is None:
            conn = self.adapter.connect()
            self._conns[k] = conn
        key = (id(catalog), catalog.version)
        if self._loaded[k] != key:
            self._image._ensure_loaded(catalog, conn)
            self._loaded[k] = key
        handle = tracer.detached("execute", query=qi + 1, backend=self.name,
                                 shard=k)
        t0 = time.perf_counter()
        with handle as sp:
            rows = self._image.run_sql(gen, query, conn)
            sp.set(rows=len(rows))
        return rows, handle, time.perf_counter() - t0
