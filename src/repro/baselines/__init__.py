"""Baselines the paper compares against: HaskellDB (query avalanches,
Figure 4 / Table 1) and LINQ (N+1 nesting, no order encoding)."""

from .haskelldb import HaskellDBSession
from .linq import LinqSession

__all__ = ["HaskellDBSession", "LinqSession"]
