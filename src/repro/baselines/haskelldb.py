"""The HaskellDB-style baseline (Figure 4 / Table 1 of the paper).

HaskellDB [17] builds each SQL query declaratively and type-safely, but a
program that *iterates* over one query's results and issues a follow-up
query per row produces a **query avalanche**: the number of SQL statements
grows with the database instance (Section 4.1).  The paper's Figure 4
reformulates the running example exactly that way: ``getCats`` fetches the
distinct categories, then ``sequence $ map (doQuery . getCatFeatures) cs``
fires one query *per category* -- 1 + #categories statements, versus
Ferry/DSH's constant 2.

This module reproduces that programming model: a small relational query
monad (``table`` / ``restrict`` / ``project`` / ``unique``) whose
``do_query`` compiles one ``Query`` to one SQL statement and executes it
immediately on SQLite.  It is intentionally *not* avalanche-safe -- it is
the measured baseline.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Any

from ..backends.sql.dbapi import SQLITE_DIALECT
from ..backends.sql.generate import quote_ident, sql_type
from ..errors import ExecutionError
from ..runtime.catalog import Catalog


# ----------------------------------------------------------------------
# expressions (the Expr of HaskellDB)
# ----------------------------------------------------------------------

class Expr:
    """A scalar expression usable in ``restrict``/``project``."""

    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return BinExpr("=", self, constant(other))

    def __and__(self, other: "Expr") -> "Expr":
        return BinExpr("AND", self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return BinExpr("OR", self, other)

    __hash__ = None  # type: ignore[assignment]

    def sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class ColRef(Expr):
    alias: str
    column: str

    def sql(self) -> str:
        return f"{self.alias}.{quote_ident(self.column)}"


@dataclass(frozen=True, eq=False)
class Constant(Expr):
    value: Any

    def sql(self) -> str:
        v = self.value
        if isinstance(v, bool):
            return "1" if v else "0"
        if isinstance(v, (int, float)):
            return repr(v)
        return "'" + str(v).replace("'", "''") + "'"


@dataclass(frozen=True, eq=False)
class BinExpr(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def sql(self) -> str:
        return f"({self.lhs.sql()} {self.op} {self.rhs.sql()})"


def constant(value: Any) -> Expr:
    """Lift a Python value into the expression language (HaskellDB's
    ``constant``)."""
    return value if isinstance(value, Expr) else Constant(value)


class Rel:
    """A table brought into scope by ``Query.table``; HaskellDB's
    ``facs ! cat`` field access becomes attribute access."""

    def __init__(self, alias: str, columns: tuple[str, ...]):
        self._alias = alias
        self._columns = columns

    def __getattr__(self, name: str) -> ColRef:
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in self._columns:
            raise ExecutionError(f"table alias {self._alias!r} has no "
                                 f"column {name!r}")
        return ColRef(self._alias, name)


# ----------------------------------------------------------------------
# the query monad
# ----------------------------------------------------------------------

@dataclass
class Query:
    """One declarative query under construction (HaskellDB's ``Query``)."""

    catalog: Catalog
    tables: list[tuple[str, str]] = field(default_factory=list)
    conditions: list[Expr] = field(default_factory=list)
    projections: list[tuple[str, Expr]] = field(default_factory=list)
    distinct: bool = False

    def table(self, name: str) -> Rel:
        """Bring a database table into scope."""
        columns = tuple(c for c, _ in self.catalog.schema(name))
        alias = f"a{len(self.tables):04d}"
        self.tables.append((alias, name))
        return Rel(alias, columns)

    def restrict(self, condition: Expr) -> None:
        """Add a WHERE condition."""
        self.conditions.append(condition)

    def project(self, **cols: "Expr | Any") -> None:
        """Choose the output columns."""
        for name, expr in cols.items():
            self.projections.append((name, constant(expr)))

    def unique(self) -> None:
        """Request duplicate elimination (HaskellDB's ``unique``)."""
        self.distinct = True

    # ------------------------------------------------------------------
    def sql(self) -> str:
        if not self.projections:
            raise ExecutionError("query projects no columns")
        head = "SELECT DISTINCT" if self.distinct else "SELECT"
        cols = ", ".join(f"{e.sql()} AS {quote_ident(n)}"
                         for n, e in self.projections)
        tables = ", ".join(f"{quote_ident(t)} AS {a}"
                           for a, t in self.tables)
        sql = f"{head} {cols} FROM {tables}"
        if self.conditions:
            sql += " WHERE " + " AND ".join(c.sql() for c in self.conditions)
        return sql


class HaskellDBSession:
    """Executes ``Query`` objects one statement at a time (``doQuery``).

    ``statements_executed`` counts every SQL statement -- the avalanche
    metric of Table 1.
    """

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._conn = sqlite3.connect(":memory:")
        self._load()
        self.statements_executed = 0

    def query(self) -> Query:
        """Start building a new query."""
        return Query(self.catalog)

    def do_query(self, q: Query) -> list[dict[str, Any]]:
        """Compile to one SQL statement, execute, fetch (``doQuery``)."""
        cursor = self._conn.execute(q.sql())
        self.statements_executed += 1
        names = [d[0] for d in cursor.description]
        return [dict(zip(names, row)) for row in cursor.fetchall()]

    def avalanche_diagnostics(self, result_ty: Any) -> list:
        """``F302`` lint: compare ``statements_executed`` against the
        static bound the result type permits (Table 1's shaming row)."""
        from ..analysis import avalanche_lint
        return avalanche_lint(result_ty, self.statements_executed)

    def _load(self) -> None:
        cur = self._conn.cursor()
        for name in self.catalog.table_names():
            schema = self.catalog.schema(name)
            cols = ", ".join(f"{quote_ident(c)} {sql_type(t)}"
                             for c, t in schema)
            cur.execute(f"CREATE TABLE {quote_ident(name)} ({cols})")
            marks = ", ".join("?" for _ in schema)
            cur.executemany(
                f"INSERT INTO {quote_ident(name)} VALUES ({marks})",
                [tuple(SQLITE_DIALECT.to_db_value(v) for v in row)
                 for row in self.catalog.rows(name)])
        self._conn.commit()


# ----------------------------------------------------------------------
# the running example, HaskellDB-style (Figure 4)
# ----------------------------------------------------------------------

def get_cats(session: HaskellDBSession) -> Query:
    """``getCats``: the distinct facility categories."""
    q = session.query()
    facs = q.table("facilities")
    q.project(cat=facs.cat)
    q.unique()
    return q


def get_cat_features(session: HaskellDBSession, cat: str) -> Query:
    """``getCatFeatures cat``: feature meanings for one category."""
    q = session.query()
    facs = q.table("facilities")
    feats = q.table("features")
    means = q.table("meanings")
    q.restrict((feats.feature == means.feature)
               & (facs.cat == cat)
               & (facs.fac == feats.fac))
    q.project(meaning=means.meaning)
    q.unique()
    return q


def run_running_example(session: HaskellDBSession) -> list[tuple[str, list[str]]]:
    """The full Figure 4 program: one query for the categories, then one
    query per category -- the avalanche."""
    cats = session.do_query(get_cats(session))
    out = []
    for row in cats:
        means = session.do_query(get_cat_features(session, row["cat"]))
        out.append((row["cat"], [m["meaning"] for m in means]))
    return out
