"""A LINQ-style baseline: lazy queryables with N+1 nested execution.

Section 4 of the paper: "a LINQ query against database-resident relational
tables is compiled into a sequence of SQL statements, but without DSH's
avalanche safety guarantee.  Also, LINQ does not provide any relational
encoding of order."

This module models those two deficiencies faithfully:

* a :class:`Queryable` pipeline (``where``/``select``/``select_many``/
  ``group_by``) compiles its *flat* part to one SQL statement, but any
  nested queryable produced inside ``select`` re-executes per outer row
  when enumerated -- the classic N+1 avalanche;
* result rows carry **no order guarantee**: enumeration shuffles rows
  deterministically per statement (seeded by the statement text), the way
  an order-oblivious engine is free to return them.
"""

from __future__ import annotations

import hashlib
import random
import sqlite3
from typing import Any, Callable, Iterable

from ..backends.sql.dbapi import SQLITE_DIALECT
from ..backends.sql.generate import quote_ident, sql_type
from ..runtime.catalog import Catalog


class LinqSession:
    """Executes LINQ-style pipelines; counts statements (Table 1)."""

    def __init__(self, catalog: Catalog, shuffle: bool = True):
        self.catalog = catalog
        self.shuffle = shuffle
        self._conn = sqlite3.connect(":memory:")
        self._load()
        self.statements_executed = 0

    def table(self, name: str) -> "Queryable":
        cols = tuple(c for c, _ in self.catalog.schema(name))
        return Queryable(self, name, cols)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        cur = self._conn.cursor()
        for name in self.catalog.table_names():
            schema = self.catalog.schema(name)
            cols = ", ".join(f"{quote_ident(c)} {sql_type(t)}"
                             for c, t in schema)
            cur.execute(f"CREATE TABLE {quote_ident(name)} ({cols})")
            marks = ", ".join("?" for _ in schema)
            cur.executemany(
                f"INSERT INTO {quote_ident(name)} VALUES ({marks})",
                [tuple(SQLITE_DIALECT.to_db_value(v) for v in row)
                 for row in self.catalog.rows(name)])
        self._conn.commit()

    def avalanche_diagnostics(self, result_ty: Any) -> list:
        """``F302`` lint: compare ``statements_executed`` against the
        static bound the result type permits (Table 1's shaming row)."""
        from ..analysis import avalanche_lint
        return avalanche_lint(result_ty, self.statements_executed)

    def execute(self, sql: str, params: tuple = ()) -> list[tuple]:
        cursor = self._conn.execute(sql, params)
        self.statements_executed += 1
        rows = cursor.fetchall()
        if self.shuffle and len(rows) > 1:
            # An order-oblivious backend may deliver rows any way it
            # likes; model that with a statement-seeded shuffle so runs
            # are deterministic but order is meaningless.
            seed = int(hashlib.sha256(
                (sql + repr(params)).encode()).hexdigest()[:8], 16)
            random.Random(seed).shuffle(rows)
        return rows


class Queryable:
    """A lazily evaluated LINQ-ish table pipeline."""

    def __init__(self, session: LinqSession, table: str,
                 columns: tuple[str, ...],
                 wheres: tuple[tuple[str, Any], ...] = ()):
        self.session = session
        self.table = table
        self.columns = columns
        self.wheres = wheres

    # -- pipeline builders ------------------------------------------------
    def where_eq(self, column: str, value: Any) -> "Queryable":
        """``.Where(row => row.column == value)``."""
        return Queryable(self.session, self.table, self.columns,
                         self.wheres + ((column, value),))

    def select(self, fn: Callable[[dict], Any]) -> "SelectedQueryable":
        """``.Select(fn)``; ``fn`` may build nested queryables, which
        execute per row on enumeration (the N+1 pattern)."""
        return SelectedQueryable(self, fn)

    def distinct_values(self, column: str) -> list[Any]:
        sql = (f"SELECT DISTINCT {quote_ident(column)} "
               f"FROM {quote_ident(self.table)}")
        return [r[0] for r in self.session.execute(sql)]

    # -- enumeration ---------------------------------------------------
    def _sql(self) -> tuple[str, tuple]:
        cols = ", ".join(quote_ident(c) for c in self.columns)
        sql = f"SELECT {cols} FROM {quote_ident(self.table)}"
        params: tuple = ()
        if self.wheres:
            sql += " WHERE " + " AND ".join(
                f"{quote_ident(c)} = ?" for c, _ in self.wheres)
            params = tuple(v for _, v in self.wheres)
        return sql, params

    def __iter__(self) -> Iterable[dict]:
        sql, params = self._sql()
        for row in self.session.execute(sql, params):
            yield dict(zip(self.columns, row))

    def to_list(self) -> list[dict]:
        return list(iter(self))


class SelectedQueryable:
    """The result of ``.select``: enumeration applies ``fn`` per row, and
    nested queryables built by ``fn`` each hit the database again."""

    def __init__(self, source: Queryable, fn: Callable[[dict], Any]):
        self.source = source
        self.fn = fn

    def __iter__(self):
        for row in self.source:
            yield self.fn(row)

    def to_list(self) -> list[Any]:
        return list(iter(self))


def run_running_example(session: LinqSession) -> list[tuple[str, list[str]]]:
    """The running example in LINQ style: group facilities by category and
    collect each category's feature meanings -- executed as one query for
    the keys plus one per category (N+1), with no order guarantee."""
    cats = session.table("facilities").distinct_values("cat")
    out = []
    for cat in cats:
        meanings: list[str] = []
        seen: set[str] = set()
        for fac_row in session.table("facilities").where_eq("cat", cat):
            for feat_row in session.table("features").where_eq(
                    "fac", fac_row["fac"]):
                for mean_row in session.table("meanings").where_eq(
                        "feature", feat_row["feature"]):
                    if mean_row["meaning"] not in seen:
                        seen.add(mean_row["meaning"])
                        meanings.append(mean_row["meaning"])
        out.append((cat, meanings))
    return out
