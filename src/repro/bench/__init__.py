"""Benchmark substrate: workload generators, criterion-style statistics,
and the Table 1 harness."""

from .stats import Measurement, measure
from .table1 import (
    Table1Row,
    format_table1,
    run_dsh,
    run_haskelldb,
    run_table1,
    running_example_query,
)
from .workloads import (
    avalanche_dataset,
    numbers_dataset,
    orders_dataset,
    paper_dataset,
    sparse_vector,
)

__all__ = [
    "Measurement", "Table1Row", "avalanche_dataset", "format_table1",
    "measure", "numbers_dataset", "orders_dataset", "paper_dataset",
    "run_dsh", "run_haskelldb", "run_table1", "running_example_query",
    "sparse_vector",
]
