"""Criterion-style measurement: mean runtimes with bootstrap confidence
intervals.

Table 1 reports "average runtimes ... along with upper and lower bounds
with 95% confidence interval, as calculated by the criterion library".
This module reproduces that methodology: run the subject repeatedly,
bootstrap-resample the sample means, and report the 2.5/97.5 percentiles
as relative bounds (criterion's headline numbers).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable


@dataclass
class Measurement:
    """A criterion-style summary of one benchmark subject."""

    mean: float          # seconds
    ci_lower: float      # seconds (2.5th percentile of bootstrap means)
    ci_upper: float      # seconds (97.5th percentile)
    samples: list[float]

    @property
    def upper_pct(self) -> float:
        """Upper bound as a percentage above the mean (the paper prints
        e.g. ``11.712 +0.2% -0.2%``)."""
        return 100.0 * (self.ci_upper - self.mean) / self.mean

    @property
    def lower_pct(self) -> float:
        return 100.0 * (self.mean - self.ci_lower) / self.mean

    def show(self) -> str:
        return (f"{self.mean:.4f}s "
                f"+{self.upper_pct:.1f}% -{self.lower_pct:.1f}%")


def measure(subject: Callable[[], object], runs: int = 10,
            bootstrap_resamples: int = 1000, seed: int = 0) -> Measurement:
    """Run ``subject`` ``runs`` times (the paper executed each program ten
    times) and bootstrap a 95% CI of the mean."""
    samples: list[float] = []
    for _ in range(runs):
        start = time.perf_counter()
        subject()
        samples.append(time.perf_counter() - start)
    mean = sum(samples) / len(samples)
    rng = random.Random(seed)
    means = []
    for _ in range(bootstrap_resamples):
        resample = [samples[rng.randrange(len(samples))] for _ in samples]
        means.append(sum(resample) / len(resample))
    means.sort()
    lo = means[int(0.025 * len(means))]
    hi = means[min(int(0.975 * len(means)), len(means) - 1)]
    return Measurement(mean, lo, hi, samples)
