"""Table 1: query avalanches -- HaskellDB vs. Ferry/DSH.

The paper's only quantitative experiment: for the running example over a
``facilities`` table with 1 000 / 10 000 / 100 000 distinct categories,
HaskellDB issues ``1 + #categories`` SQL statements (and did not finish
within hours at 100 000), while DSH always issues exactly 2.

:func:`run_table1` regenerates the table at configurable category counts
(laptop-scaled by default; the paper's 100 000-category HaskellDB cell is
"DNF" for a reason) and reports, per system: the number of SQL statements
issued and the criterion-style runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.haskelldb import HaskellDBSession
from ..baselines.haskelldb import run_running_example as haskelldb_example
from ..frontend import qc
from ..runtime import Catalog, Connection
from .stats import Measurement, measure
from .workloads import avalanche_dataset


@dataclass
class Table1Row:
    """One row of Table 1."""

    categories: int
    haskelldb_queries: int
    haskelldb_time: Measurement
    dsh_queries: int
    dsh_time: Measurement


def running_example_query(db: Connection):
    """The Section 2 program (the avalanche subject) as a DSH query."""
    facilities = db.table("facilities")
    features = db.table("features")
    meanings = db.table("meanings")

    def descr_facility(f):
        return qc("[mean | (feat, mean) <- meanings,"
                  " (fac, feat2) <- features,"
                  " feat == feat2 and fac == f]",
                  meanings=meanings, features=features, f=f)

    return qc("[(the(cat), nub(concatMap(descr, fac)))"
              " | (cat, fac) <- facilities, then group by cat]",
              facilities=facilities, descr=descr_facility)


def run_dsh(catalog: Catalog, backend: str = "engine"):
    """Execute the running example through the full Ferry stack; returns
    (result, #queries issued)."""
    db = Connection(backend=backend, catalog=catalog)
    query = running_example_query(db)
    compiled = db.compile(query)
    result = db.run(query)
    return result, compiled.query_count


def run_haskelldb(catalog: Catalog):
    """Execute the running example HaskellDB-style; returns
    (result, #statements issued)."""
    session = HaskellDBSession(catalog)
    result = haskelldb_example(session)
    return result, session.statements_executed


def run_table1(category_counts: tuple[int, ...] = (100, 500, 2000),
               runs: int = 3, backend: str = "engine") -> list[Table1Row]:
    """Regenerate Table 1 at the given category counts.

    The defaults scale the paper's 1k/10k/100k down so both systems
    terminate in benchmark time; pass larger counts to watch the
    HaskellDB avalanche blow up quadratically (each of its 1+N statements
    scans tables that grow with N) while the Ferry bundle stays at two
    queries -- the paper's "DNF" cell at 100k.  ``backend`` selects the
    DSH execution backend; "engine" and "mil" scale linearly, while
    "sqlite" is limited by SQLite's nested-loop-only joins over the
    generated CTE pyramid (the paper used PostgreSQL).
    """
    rows = []
    for n in category_counts:
        catalog = avalanche_dataset(n)
        # warm up both stacks (loads the data into SQLite) and record the
        # query counts once.
        _, hq = run_haskelldb(catalog)
        _, dq = run_dsh(catalog, backend)
        ht = measure(lambda: run_haskelldb(catalog), runs=runs)
        dt = measure(lambda: run_dsh(catalog, backend), runs=runs)
        rows.append(Table1Row(n, hq, ht, dq, dt))
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render rows the way the paper prints Table 1."""
    lines = [
        "                 HaskellDB                    DSH",
        "# categories   # queries  time              # queries  time",
        "-" * 68,
    ]
    for row in rows:
        lines.append(
            f"{row.categories:>12,}   {row.haskelldb_queries:>9,}  "
            f"{row.haskelldb_time.show():<16}  {row.dsh_queries:>9}  "
            f"{row.dsh_time.show()}")
    return "\n".join(lines)
