"""Workload generators for the paper's experiments.

* :func:`paper_dataset` -- the Figure 1 demo tables, verbatim;
* :func:`avalanche_dataset` -- the Table 1 workload: ``facilities`` /
  ``features`` / ``meanings`` scaled by the number of *distinct
  categories* (the paper varies exactly this: 1 000 / 10 000 / 100 000);
* :func:`numbers_dataset` / :func:`sparse_vector` -- micro-workloads for
  the Figure 5/6 and ablation benchmarks.
"""

from __future__ import annotations

import random

from ..runtime.catalog import Catalog

#: Figure 1: facilities and their categories.
PAPER_FACILITIES: list[tuple[str, str]] = [
    ("SQL", "QLA"),
    ("ODBC", "API"),
    ("LINQ", "LIN"),
    ("Links", "LIN"),
    ("Rails", "ORM"),
    ("DSH", "LIB"),
    ("ADO.NET", "ORM"),
    ("Kleisli", "QLA"),
    ("HaskellDB", "LIB"),
]

#: Figure 1: feature meanings.
PAPER_MEANINGS: list[tuple[str, str]] = [
    ("list", "respects list order"),
    ("nest", "supports data nesting"),
    ("aval", "avoids query avalanches"),
    ("type", "is statically type-checked"),
    ("SQL!", "guarantees translation to SQL"),
    ("maps", "admits user-defined object mappings"),
    ("comp", "has compositional syntax and semantics"),
]

#: Figure 1: facility features.
PAPER_FEATURES: list[tuple[str, str]] = [
    ("SQL", "aval"), ("SQL", "type"), ("SQL", "SQL!"),
    ("LINQ", "nest"), ("LINQ", "comp"), ("LINQ", "type"),
    ("Links", "comp"), ("Links", "type"), ("Links", "SQL!"),
    ("Rails", "nest"), ("Rails", "maps"),
    ("DSH", "list"), ("DSH", "nest"), ("DSH", "comp"),
    ("DSH", "aval"), ("DSH", "type"), ("DSH", "SQL!"),
    ("ADO.NET", "maps"), ("ADO.NET", "comp"), ("ADO.NET", "type"),
    ("Kleisli", "list"), ("Kleisli", "nest"), ("Kleisli", "comp"),
    ("Kleisli", "type"),
    ("HaskellDB", "comp"), ("HaskellDB", "type"), ("HaskellDB", "SQL!"),
]


def paper_dataset() -> Catalog:
    """The Figure 1 tables, exactly as printed in the paper."""
    catalog = Catalog()
    catalog.create_table("facilities", [("fac", str), ("cat", str)],
                         PAPER_FACILITIES)
    catalog.create_table("features", [("fac", str), ("feature", str)],
                         PAPER_FEATURES)
    catalog.create_table("meanings", [("feature", str), ("meaning", str)],
                         PAPER_MEANINGS)
    return catalog


def avalanche_dataset(n_categories: int, facilities_per_category: int = 1,
                      features_per_facility: int = 2,
                      n_meanings: int = 64, seed: int = 42) -> Catalog:
    """The Table 1 workload, scaled by the population of column ``cat``.

    The paper's Table 1 varies the number of *distinct categories*; the
    HaskellDB baseline then issues ``1 + n_categories`` SQL statements,
    while Ferry/DSH always issues 2.
    """
    rng = random.Random(seed)
    meanings = [(f"feat{i:05d}", f"meaning of feature {i:05d}")
                for i in range(n_meanings)]
    facilities = []
    features = []
    for c in range(n_categories):
        cat = f"cat{c:07d}"
        for f in range(facilities_per_category):
            fac = f"fac{c:07d}_{f}"
            facilities.append((fac, cat))
            for feat, _ in rng.sample(meanings, features_per_facility):
                features.append((fac, feat))
    catalog = Catalog()
    catalog.create_table("facilities", [("fac", str), ("cat", str)],
                         facilities)
    catalog.create_table("features", [("fac", str), ("feature", str)],
                         features)
    catalog.create_table("meanings", [("feature", str), ("meaning", str)],
                         meanings)
    return catalog


def numbers_dataset(n: int, seed: int = 7) -> Catalog:
    """A table of ``n`` shuffled integers (micro-benchmarks/ablations)."""
    rng = random.Random(seed)
    values = list(range(n))
    rng.shuffle(values)
    catalog = Catalog()
    catalog.create_table("nums", [("n", int)], [(v,) for v in values])
    return catalog


def orders_dataset(n_customers: int, max_orders: int = 5,
                   max_items: int = 4, seed: int = 13) -> Catalog:
    """A customers/orders/lineitems schema for the nested-data example
    and the nesting-representation ablation."""
    rng = random.Random(seed)
    customers, orders, items = [], [], []
    oid = 0
    for c in range(n_customers):
        customers.append((c, f"customer{c:05d}", rng.choice(
            ["EU", "US", "APAC"])))
        for _ in range(rng.randint(0, max_orders)):
            orders.append((oid, c, rng.randint(1, 12)))
            for line in range(rng.randint(1, max_items)):
                items.append((oid, line,
                              round(rng.uniform(1.0, 500.0), 2)))
            oid += 1
    catalog = Catalog()
    catalog.create_table("customers",
                         [("cid", int), ("name", str), ("region", str)],
                         customers)
    catalog.create_table("orders",
                         [("oid", int), ("cid", int), ("month", int)],
                         orders)
    catalog.create_table("lineitems",
                         [("oid", int), ("line", int), ("price", float)],
                         items)
    return catalog


def sparse_vector(n: int, density: float = 0.1,
                  seed: int = 99) -> tuple[list[tuple[int, float]], list[float]]:
    """A random sparse vector (index/value pairs) and a dense vector of
    length ``n`` (the Figure 5 workload, scaled)."""
    rng = random.Random(seed)
    dense = [round(rng.uniform(-1.0, 1.0), 6) for _ in range(n)]
    sparse = [(i, round(rng.uniform(-1.0, 1.0), 6))
              for i in range(n) if rng.random() < density]
    return sparse, dense
