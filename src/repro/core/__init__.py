"""The paper's primary contribution: loop-lifting compilation into
avalanche-safe query bundles."""

from .bundle import (
    AtomRef,
    Bundle,
    NestRef,
    Ref,
    SerializedQuery,
    TupleRef,
    compile_exp,
    serialize,
)
from .layout import (
    AtomLay,
    Layout,
    NameGen,
    NestLay,
    TupleLay,
    Vec,
    is_flat_layout,
    layout_col_types,
    layout_cols,
    nest_positions,
    relabel,
    shape_matches,
)
from .lift import Env, LiftCompiler, Loop
from .lift_builtins import RULE_NAMES

__all__ = [
    "AtomLay", "AtomRef", "Bundle", "Env", "Layout", "LiftCompiler",
    "Loop", "NameGen", "NestLay", "NestRef", "RULE_NAMES", "Ref",
    "SerializedQuery", "TupleLay", "TupleRef", "Vec", "compile_exp",
    "is_flat_layout", "layout_col_types", "layout_cols", "nest_positions",
    "relabel", "serialize", "shape_matches",
]
