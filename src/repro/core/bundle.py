"""Query bundles: the compiler's final artefact.

A compiled program is a *bundle* of relational queries -- one per list
constructor in the result type (avalanche safety, Section 3.2): the outer
query Q1 delivers the relational encoding of the outer list with
surrogates standing in for nested lists, Q2 the encodings of all inner
lists, and so on (Figure 3(b)).

Each :class:`SerializedQuery` is an algebra plan projected onto the
standard column order ``iter | pos | item...``; the :class:`Ref` tree
records how item columns (and further queries) assemble back into nested
Python values (``repro.runtime.stitch``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra import Node, Project
from ..errors import CompilationError
from ..ftypes import AtomT, ListT, Type, count_list_constructors
from .layout import AtomLay, Layout, NestLay, TupleLay, Vec, layout_cols
from .lift import LiftCompiler


class Ref:
    """How to build a value from a result row (and further queries)."""


@dataclass(frozen=True)
class AtomRef(Ref):
    """Item column ``index`` (0-based among the query's item columns)."""

    index: int
    ty: AtomT


@dataclass(frozen=True)
class TupleRef(Ref):
    parts: tuple[Ref, ...]


@dataclass(frozen=True)
class NestRef(Ref):
    """Item column ``index`` holds surrogates into query ``query``."""

    index: int
    query: int
    inner: Ref


@dataclass
class SerializedQuery:
    """One member of the bundle, in standard ``iter|pos|item...`` form."""

    plan: Node
    iter_col: str
    pos_col: str
    item_cols: tuple[str, ...]
    item_types: tuple[AtomT, ...]


@dataclass
class Bundle:
    """The complete compiled program."""

    result_ty: Type
    queries: list[SerializedQuery]
    root_ref: Ref
    root_is_list: bool
    #: Stamped by ``repro.analysis.verify_bundle`` once every verifier
    #: stage passed; backends then skip re-verification at prepare time.
    verified: bool = False
    #: Compile-time cost estimate (a ``repro.analysis.cost.BundleCost``)
    #: stamped by ``optimize_bundle``; runtime dispatch and the
    #: estimate-drift lint consume it.  ``None`` until stamped.
    cost: "object | None" = None

    @property
    def size(self) -> int:
        """Number of relational queries -- the paper's avalanche-safety
        metric."""
        return len(self.queries)

    @property
    def expected_size(self) -> int:
        """Bundle size predicted by the static result type: one query per
        ``[.]`` constructor (Section 3.2), plus one carrier query when the
        root is not itself a list."""
        n = count_list_constructors(self.result_ty)
        return n if self.root_is_list else n + 1

    @property
    def avalanche_ok(self) -> bool:
        """Runtime check of the avalanche invariant: does the emitted
        bundle match the size the result type dictates?"""
        return self.size == self.expected_size


def serialize(vec: Vec, result_ty: Type) -> Bundle:
    """Lower a compiled root vector into a query bundle."""
    queries: list[SerializedQuery] = []
    memo: dict[int, int] = {}

    def emit(v: Vec) -> int:
        qid = memo.get(id(v))
        if qid is not None:
            return qid
        from ..core.layout import layout_col_types
        cols = tuple(layout_cols(v.layout))
        types = tuple(layout_col_types(v.layout))
        proj = tuple([(v.iter_col, v.iter_col), (v.pos_col, v.pos_col)]
                     + [(c, c) for c in cols])
        qid = len(queries)
        memo[id(v)] = qid
        # Inner queries are emitted after this slot is reserved, so the
        # outer list is Q1, its inner lists Q2, ... as in the paper.
        queries.append(SerializedQuery(Project(v.plan, proj), v.iter_col,
                                       v.pos_col, cols, types))
        return qid

    def build_ref(lay: Layout, base: int, counter: list[int]) -> Ref:
        if isinstance(lay, AtomLay):
            idx = counter[0]
            counter[0] += 1
            return AtomRef(idx, lay.ty)
        if isinstance(lay, NestLay):
            idx = counter[0]
            counter[0] += 1
            inner_qid = emit(lay.inner)
            inner_ref = build_ref(lay.inner.layout, inner_qid, [0])
            return NestRef(idx, inner_qid, inner_ref)
        if isinstance(lay, TupleLay):
            return TupleRef(tuple(build_ref(p, base, counter)
                                  for p in lay.parts))
        raise CompilationError(f"unknown layout {lay!r}")  # pragma: no cover

    root_qid = emit(vec)
    root_ref = build_ref(vec.layout, root_qid, [0])
    return Bundle(result_ty, queries, root_ref,
                  isinstance(result_ty, ListT))


def compile_exp(exp, decorrelate: bool = True) -> Bundle:
    """Loop-lift a closed expression and serialize the resulting vectors
    (the complete compile pipeline minus optimization)."""
    compiler = LiftCompiler(decorrelate=decorrelate)
    vec = compiler.compile_top(exp)
    return serialize(vec, exp.ty)
