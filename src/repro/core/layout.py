"""Vectors and layouts: the compiler's non-parametric data representation.

Loop-lifting compiles every expression, relative to a *loop* relation (one
row per live iteration), into a :class:`Vec`: an algebra plan with columns

    iter | pos | item ...

plus a :class:`Layout` describing how the item columns encode the value's
type (Section 3.2):

* atoms live in-line, one column each (:class:`AtomLay`);
* tuples concatenate their components' columns (:class:`TupleLay`);
* a *nested list* occupies a single surrogate-key column
  (:class:`NestLay`); the surrogates link to the ``iter`` column of a
  separate *inner* vector -- van den Bussche's simulation of the nested
  algebra via the flat relational algebra [27].

A vector of list type has one row per element (``pos`` numbers them
densely 1..n within each ``iter``); a vector of scalar/tuple type has
exactly one row per live iteration with ``pos = 1`` ("a singleton list
[x] and its element x are represented alike").

The choice of *which* subexpressions are inline vs. surrogate-boxed is the
paper's (un)boxing analysis; here it is fully type-directed: lists box,
everything else inlines (see :func:`repro.core.lift.LiftCompiler.box` and
``unbox``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import CompilationError
from ..ftypes import AtomT, IntT, ListT, TupleT, Type
from ..algebra import Node


class Layout:
    """Base class of item-column layouts."""


@dataclass(frozen=True)
class AtomLay(Layout):
    """An atomic value stored in-line in column ``col``."""

    col: str
    ty: AtomT


@dataclass(frozen=True)
class TupleLay(Layout):
    """A tuple spread over its components' columns."""

    parts: tuple[Layout, ...]


@dataclass(frozen=True)
class NestLay(Layout):
    """A nested list: ``col`` holds surrogate keys into ``inner.iter``."""

    col: str
    inner: "Vec"


@dataclass(frozen=True)
class Vec:
    """A compiled vector: plan + column roles + item layout."""

    plan: Node
    iter_col: str
    pos_col: str
    layout: Layout


class NameGen:
    """Generator of globally unique column names for one compilation."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def fresh(self, prefix: str = "c") -> str:
        return f"{prefix}{next(self._counter)}"


def layout_cols(lay: Layout) -> list[str]:
    """Item columns of a layout, left to right (surrogate columns count)."""
    if isinstance(lay, AtomLay):
        return [lay.col]
    if isinstance(lay, NestLay):
        return [lay.col]
    if isinstance(lay, TupleLay):
        out: list[str] = []
        for part in lay.parts:
            out.extend(layout_cols(part))
        return out
    raise CompilationError(f"unknown layout {lay!r}")  # pragma: no cover


def layout_col_types(lay: Layout) -> list[AtomT]:
    """Column types matching :func:`layout_cols` (surrogates are Int)."""
    if isinstance(lay, AtomLay):
        return [lay.ty]
    if isinstance(lay, NestLay):
        return [IntT]
    if isinstance(lay, TupleLay):
        out: list[AtomT] = []
        for part in lay.parts:
            out.extend(layout_col_types(part))
        return out
    raise CompilationError(f"unknown layout {lay!r}")  # pragma: no cover


def relabel(lay: Layout, mapping: dict[str, str]) -> Layout:
    """Rename the layout's own columns (inner vectors are untouched --
    their plans are independent of the outer column names)."""
    if isinstance(lay, AtomLay):
        return AtomLay(mapping.get(lay.col, lay.col), lay.ty)
    if isinstance(lay, NestLay):
        return NestLay(mapping.get(lay.col, lay.col), lay.inner)
    if isinstance(lay, TupleLay):
        return TupleLay(tuple(relabel(p, mapping) for p in lay.parts))
    raise CompilationError(f"unknown layout {lay!r}")  # pragma: no cover


def nest_positions(lay: Layout) -> list[NestLay]:
    """All nested-list positions of a layout, left to right."""
    if isinstance(lay, NestLay):
        return [lay]
    if isinstance(lay, TupleLay):
        out: list[NestLay] = []
        for part in lay.parts:
            out.extend(nest_positions(part))
        return out
    return []


def is_flat_layout(lay: Layout) -> bool:
    """Does the layout contain no surrogate columns?"""
    return not nest_positions(lay)


def shape_matches(lay: Layout, ty: Type) -> bool:
    """Sanity check (used by tests): does the layout's shape match the
    element type it claims to encode?"""
    if isinstance(ty, AtomT):
        return isinstance(lay, AtomLay) and lay.ty == ty
    if isinstance(ty, TupleT):
        return (isinstance(lay, TupleLay)
                and len(lay.parts) == len(ty.elts)
                and all(shape_matches(p, t)
                        for p, t in zip(lay.parts, ty.elts)))
    if isinstance(ty, ListT):
        return isinstance(lay, NestLay) and shape_matches(lay.inner.layout,
                                                          ty.elt)
    return False
