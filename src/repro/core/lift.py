"""Loop-lifting: compiling expressions into table-algebra vectors.

This is the paper's primary contribution (Sections 3, 3.2 and [13]): a
syntax-directed, *compositional* translation of list programs into flat,
data-parallel table-algebra plans.

The central idea: an expression is never compiled for a single evaluation,
but for *all* iterations of its enclosing ``map``-nest at once.  The live
iterations form the *loop* relation; every expression compiles to a
:class:`Vec` keyed by ``iter``.  ``map f xs`` (a) assigns each element of
``xs`` a fresh surrogate via row numbering, (b) makes those surrogates the
*inner* loop, (c) re-keys the environment to the inner loop (one equi-join
per free variable), and (d) compiles ``f``'s body once against the inner
loop -- the relational engine is then "free to consider these bindings and
the corresponding evaluations ... in any order it sees fit (or in
parallel)".

The compilation of the individual list-prelude combinators lives in
``repro.core.lift_builtins``; this module owns the expression dispatch
and the vector toolbox (boxing, merging, environment lifting) they share.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import reduce
from typing import Any, Iterator

from ..algebra import (
    Attach,
    BinApp,
    Const,
    Cross,
    EqJoin,
    LitTable,
    Node,
    Project,
    RowNum,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
)
from ..errors import CompilationError
from ..expr import (
    AppE,
    BinOpE,
    Exp,
    IfE,
    LamE,
    ListE,
    LitE,
    TableE,
    TupleE,
    TupleElemE,
    UnOpE,
    VarE,
)
from ..ftypes import AtomT, IntT, ListT, TupleT, Type
from .layout import (
    AtomLay,
    Layout,
    NameGen,
    NestLay,
    TupleLay,
    Vec,
    layout_col_types,
    layout_cols,
    nest_positions,
    relabel,
)


@dataclass(frozen=True)
class Loop:
    """The loop relation: a single-column plan listing live iterations."""

    plan: Node
    col: str


Env = dict[str, Vec]


class LiftCompiler:
    """One compilation run (owns the fresh-name supply).

    ``decorrelate=False`` disables the join-graph-isolation rule (the
    correlated-filter decorrelation), exposing the naive quadratic
    ``loop x source`` plans -- used by the decorrelation ablation.
    """

    def __init__(self, decorrelate: bool = True) -> None:
        self.names = NameGen()
        self.decorrelate = decorrelate

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def compile_top(self, e: Exp) -> Vec:
        """Compile a closed expression under the unit loop (one iteration,
        ``iter = 1``)."""
        return self.compile(e, self.unit_loop(), {})

    def unit_loop(self) -> Loop:
        """The single-iteration loop relation (also the context in which
        loop-invariant subqueries are hoisted and compiled once)."""
        ic = self.fresh()
        return Loop(LitTable(((1,),), ((ic, IntT),)), ic)

    # ------------------------------------------------------------------
    # toolbox
    # ------------------------------------------------------------------
    def fresh(self) -> str:
        return self.names.fresh()

    def project_vec(self, vec: Vec) -> Vec:
        """Narrow a vector's plan to exactly its own columns (keeps plans
        clean after operators that add scratch columns)."""
        cols = [(vec.iter_col, vec.iter_col), (vec.pos_col, vec.pos_col)]
        cols += [(c, c) for c in layout_cols(vec.layout)]
        return Vec(Project(vec.plan, tuple(cols)), vec.iter_col,
                   vec.pos_col, vec.layout)

    def as_fresh(self, vec: Vec) -> Vec:
        """Rename every column of ``vec`` to fresh names (via a Project),
        so it can appear on the right of a join without name clashes --
        also required when the same vector is used twice in one plan."""
        mapping = {vec.iter_col: self.fresh(), vec.pos_col: self.fresh()}
        for c in layout_cols(vec.layout):
            mapping[c] = self.fresh()
        cols = tuple((new, old) for old, new in mapping.items())
        return Vec(Project(vec.plan, cols), mapping[vec.iter_col],
                   mapping[vec.pos_col], relabel(vec.layout, mapping))

    def const_vec(self, loop: Loop, value: Any, ty: AtomT) -> Vec:
        """Compile a literal: attach ``pos = 1`` and the constant column to
        the loop relation (the paper's rule for constants)."""
        pos = self.fresh()
        item = self.fresh()
        plan = Attach(Attach(loop.plan, pos, 1, IntT), item, value, ty)
        return Vec(plan, loop.col, pos, AtomLay(item, ty))

    def empty_vec(self, elem_ty: Type, iter_ty: AtomT = IntT) -> Vec:
        """A typed empty vector (the compilation of ``[]``)."""
        ic, pc = self.fresh(), self.fresh()
        lay = self.layout_for(elem_ty)
        schema = [(ic, iter_ty), (pc, IntT)]
        schema += list(zip(layout_cols(lay), layout_col_types(lay)))
        return Vec(LitTable((), tuple(schema)), ic, pc, lay)

    def layout_for(self, ty: Type) -> Layout:
        """A fresh layout skeleton for ``ty`` (inner vectors are empty)."""
        if isinstance(ty, AtomT):
            return AtomLay(self.fresh(), ty)
        if isinstance(ty, TupleT):
            return TupleLay(tuple(self.layout_for(t) for t in ty.elts))
        if isinstance(ty, ListT):
            return NestLay(self.fresh(), self.empty_vec(ty.elt))
        raise CompilationError(f"no layout for type {ty!r}")

    # -- boxing ---------------------------------------------------------
    def box(self, vec: Vec, loop: Loop) -> Vec:
        """Box a list-valued vector into a scalar vector of surrogates.

        Per live iteration there is exactly one list value, so the
        iteration id itself serves as the surrogate (Section 3.2 / the
        paper's (un)boxing phase)."""
        ic, pc, sc = self.fresh(), self.fresh(), self.fresh()
        plan = Attach(Project(loop.plan, ((ic, loop.col), (sc, loop.col))),
                      pc, 1, IntT)
        return Vec(plan, ic, pc, NestLay(sc, vec))

    def unbox(self, vec: Vec) -> Vec:
        """Inverse of :func:`box`: splice a scalar vector of surrogates
        back into a list vector (one equi-join on the surrogate)."""
        if not isinstance(vec.layout, NestLay):
            raise CompilationError("unbox requires a NestLay vector")
        inner = self.as_fresh(vec.layout.inner)
        joined = EqJoin(vec.plan, inner.plan,
                        ((vec.layout.col, inner.iter_col),))
        out = Vec(joined, vec.iter_col, inner.pos_col, inner.layout)
        return self.project_vec(out)

    def box_if_list(self, vec: Vec, ty: Type, loop: Loop) -> Vec:
        return self.box(vec, loop) if isinstance(ty, ListT) else vec

    # -- loops and environments ------------------------------------------
    def loop_from(self, plan: Node, col: str) -> Loop:
        c = self.fresh()
        return Loop(Project(plan, ((c, col),)), c)

    def restrict_env(self, env: Env, subloop: Loop) -> Env:
        """Restrict every environment entry to the iterations of a
        sub-loop (used by conditionals)."""
        out: Env = {}
        for name, vec in env.items():
            plan = SemiJoin(vec.plan, subloop.plan,
                            ((vec.iter_col, subloop.col),))
            out[name] = Vec(plan, vec.iter_col, vec.pos_col, vec.layout)
        return out

    def lift_env(self, env: Env, map_plan: Node, outer: str,
                 inner: str) -> Env:
        """Re-key every environment entry from the outer loop to the inner
        loop of a ``map``: one equi-join per free variable, guided by the
        ``outer -> inner`` iteration map."""
        out: Env = {}
        for name, vec in env.items():
            v = self.as_fresh(vec)
            joined = EqJoin(map_plan, v.plan, ((outer, v.iter_col),))
            ic = self.fresh()
            cols = [(ic, inner), (v.pos_col, v.pos_col)]
            cols += [(c, c) for c in layout_cols(v.layout)]
            out[name] = Vec(Project(joined, tuple(cols)), ic, v.pos_col,
                            v.layout)
        return out

    # -- the map machinery -------------------------------------------------
    def enter(self, xs_vec: Vec):
        """Set up the inner loop over the elements of ``xs_vec``.

        Returns ``(qv, inner_iter, inner_loop, elem_vec, map_plan)`` where

        * ``qv`` numbers each element with a fresh surrogate (its inner
          iteration id) -- plan columns: ``xs`` columns + ``inner_iter``;
        * ``inner_loop`` is the new loop relation over those surrogates;
        * ``elem_vec`` binds the lambda variable: the element value, one
          row per inner iteration;
        * ``map_plan`` maps outer ``iter`` to ``inner_iter`` (for
          :func:`lift_env`).
        """
        ii = self.fresh()
        qv = RowNum(xs_vec.plan, ii,
                    ((xs_vec.iter_col, "asc"), (xs_vec.pos_col, "asc")))
        inner_loop = self.loop_from(qv, ii)
        ic, pc = self.fresh(), self.fresh()
        cols = [(ic, ii)] + [(c, c) for c in layout_cols(xs_vec.layout)]
        elem_plan = Attach(Project(qv, tuple(cols)), pc, 1, IntT)
        elem_vec = Vec(elem_plan, ic, pc, xs_vec.layout)
        if isinstance(xs_vec.layout, NestLay):
            # The elements are themselves lists (e.g. the groups bound by
            # ``group by``): the lambda variable denotes the *list*, so the
            # environment entry is the unboxed element vector.
            elem_vec = self.unbox(elem_vec)
        oc, nc = self.fresh(), self.fresh()
        map_plan = Project(qv, ((oc, xs_vec.iter_col), (nc, ii)))
        return qv, ii, inner_loop, elem_vec, (map_plan, oc, nc)

    def lift_lambda(self, lam: LamE, xs_vec: Vec, env: Env):
        """Compile a lambda body over all elements of ``xs_vec`` at once.

        Returns ``(qv, inner_iter, inner_loop, body_vec)``.
        """
        qv, ii, inner_loop, elem_vec, (map_plan, oc, nc) = self.enter(xs_vec)
        inner_env = self.lift_env(env, map_plan, oc, nc)
        inner_env[lam.param] = elem_vec
        body_vec = self.compile(lam.body, inner_loop, inner_env)
        return qv, ii, inner_loop, body_vec

    def join_back(self, qv: Node, ii: str, xs_vec: Vec, body_vec: Vec,
                  body_ty: Type, inner_loop: Loop) -> Vec:
        """Attach per-element results back to the outer iteration/order of
        ``xs_vec`` (the tail end of the ``map`` rule)."""
        scalar = self.box_if_list(body_vec, body_ty, inner_loop)
        b = self.as_fresh(scalar)
        ri, rp, rj = self.fresh(), self.fresh(), self.fresh()
        left = Project(qv, ((ri, xs_vec.iter_col), (rp, xs_vec.pos_col),
                            (rj, ii)))
        joined = EqJoin(left, b.plan, ((rj, b.iter_col),))
        out = Vec(joined, ri, rp, b.layout)
        return self.project_vec(out)

    # -- merging (append / literals / conditionals) -----------------------
    def merge_vecs(self, vecs: list[Vec]) -> Vec:
        """Merge same-shaped vectors into one, ordering each iteration's
        rows by (source index, original position).

        This implements ``++`` and list literals, and -- because the
        branches of a conditional live on disjoint iterations -- also the
        merge of ``if/then/else`` results.  Nested layouts require fresh
        surrogates for every output row, with all inner vectors re-keyed
        and recursively merged.
        """
        if len(vecs) == 1:
            return vecs[0]
        shape = vecs[0].layout
        ic, pc, tc = self.fresh(), self.fresh(), self.fresh()
        common = [self.fresh() for _ in layout_cols(shape)]
        parts = []
        for i, v in enumerate(vecs):
            tagged = Attach(v.plan, tc, i, IntT)
            cols = [(ic, v.iter_col), (pc, v.pos_col), (tc, tc)]
            cols += list(zip(common, layout_cols(v.layout)))
            parts.append(Project(tagged, tuple(cols)))
        union = reduce(UnionAll, parts)
        pc2 = self.fresh()
        numbered = RowNum(union, pc2, ((tc, "asc"), (pc, "asc")), (ic,))
        new_layout = relabel(shape, dict(zip(layout_cols(shape), common)))

        nests = nest_positions(new_layout)
        if not nests:
            out = Vec(numbered, ic, pc2, new_layout)
            return self.project_vec(out)

        # Fresh surrogate per output row, shared by all nest columns.
        sc = self.fresh()
        keyed = RowNum(numbered, sc, ((tc, "asc"), (ic, "asc"), (pc, "asc")))
        final_layout = self._remap_nests(keyed, tc, sc, new_layout, vecs)
        # Nest columns take the fresh surrogate value; atoms keep theirs.
        nest_cols = {n.col for n in nest_positions(final_layout)}
        proj_cols = [(col, sc if col in nest_cols else col)
                     for col in layout_cols(final_layout)]
        plan = Project(keyed, tuple([(ic, ic), (pc2, pc2)] + proj_cols))
        return Vec(plan, ic, pc2, final_layout)

    def _remap_nests(self, keyed: Node, tag_col: str, surr_col: str,
                     layout: Layout, vecs: list[Vec]) -> Layout:
        """Re-key the inner vectors behind every nest position of a merged
        layout to the fresh surrogates, merging them recursively."""
        if isinstance(layout, AtomLay):
            return layout
        if isinstance(layout, TupleLay):
            part_layouts = []
            for j, part in enumerate(layout.parts):
                sub_vecs = [self._layout_part(v.layout, j) for v in vecs]
                part_layouts.append(self._remap_nest_part(
                    keyed, tag_col, surr_col, part, sub_vecs))
            return TupleLay(tuple(part_layouts))
        if isinstance(layout, NestLay):
            return self._remap_nest_part(keyed, tag_col, surr_col, layout,
                                         [v.layout for v in vecs])
        raise CompilationError("unknown layout")  # pragma: no cover

    def _layout_part(self, layout: Layout, j: int) -> Layout:
        assert isinstance(layout, TupleLay)
        return layout.parts[j]

    def _remap_nest_part(self, keyed: Node, tag_col: str, surr_col: str,
                         merged_part: Layout,
                         source_parts: list[Layout]) -> Layout:
        if isinstance(merged_part, AtomLay):
            return merged_part
        if isinstance(merged_part, TupleLay):
            parts = []
            for j, sub in enumerate(merged_part.parts):
                subsources = [self._layout_part(sp, j) for sp in source_parts]
                parts.append(self._remap_nest_part(keyed, tag_col, surr_col,
                                                   sub, subsources))
            return TupleLay(tuple(parts))
        assert isinstance(merged_part, NestLay)
        rekeyed: list[Vec] = []
        for i, src in enumerate(source_parts):
            assert isinstance(src, NestLay)
            inner = self.as_fresh(src.inner)
            cond = self.fresh()
            sel = Select(BinApp(keyed, "eq", tag_col, Const(i, IntT), cond),
                         cond)
            kc, sc2 = self.fresh(), self.fresh()
            mapping = Project(sel, ((kc, merged_part.col), (sc2, surr_col)))
            joined = EqJoin(mapping, inner.plan, ((kc, inner.iter_col),))
            ic2 = self.fresh()
            cols = [(ic2, sc2), (inner.pos_col, inner.pos_col)]
            cols += [(c, c) for c in layout_cols(inner.layout)]
            rekeyed.append(Vec(Project(joined, tuple(cols)), ic2,
                               inner.pos_col, inner.layout))
        return NestLay(merged_part.col, self.merge_vecs(rekeyed))

    # -- position renumbering ----------------------------------------------
    def renumber(self, vec: Vec,
                 order: tuple[tuple[str, str], ...] | None = None) -> Vec:
        """Re-establish a dense 1..n ``pos`` per iteration (after filters,
        flattening, sorting...).  Defaults to the current position order."""
        if order is None:
            order = ((vec.pos_col, "asc"),)
        pc = self.fresh()
        plan = RowNum(vec.plan, pc, order, (vec.iter_col,))
        out = Vec(plan, vec.iter_col, pc, vec.layout)
        return self.project_vec(out)

    # ------------------------------------------------------------------
    # expression dispatch
    # ------------------------------------------------------------------
    def compile(self, e: Exp, loop: Loop, env: Env) -> Vec:
        if isinstance(e, LitE):
            return self.const_vec(loop, e.value, e.ty)
        if isinstance(e, VarE):
            try:
                return env[e.name]
            except KeyError:
                raise CompilationError(f"unbound variable {e.name!r}") from None
        if isinstance(e, TupleE):
            return self._compile_tuple(e, loop, env)
        if isinstance(e, ListE):
            return self._compile_list(e, loop, env)
        if isinstance(e, TupleElemE):
            return self._compile_proj(e, loop, env)
        if isinstance(e, TableE):
            return self._compile_table(e, loop)
        if isinstance(e, IfE):
            return self._compile_if(e, loop, env)
        if isinstance(e, BinOpE):
            return self._compile_binop(e, loop, env)
        if isinstance(e, UnOpE):
            return self._compile_unop(e, loop, env)
        if isinstance(e, AppE):
            from .lift_builtins import compile_builtin
            return compile_builtin(self, e, loop, env)
        raise CompilationError(f"cannot loop-lift node {e!r}")

    # -- structural forms ---------------------------------------------------
    def _compile_tuple(self, e: TupleE, loop: Loop, env: Env) -> Vec:
        head = self.compile(e.parts[0], loop, env)
        head = self.box_if_list(head, e.parts[0].ty, loop)
        plan = head.plan
        iter_col, pos_col = head.iter_col, head.pos_col
        layouts = [head.layout]
        for part in e.parts[1:]:
            v = self.compile(part, loop, env)
            v = self.box_if_list(v, part.ty, loop)
            v = self.as_fresh(v)
            plan = EqJoin(plan, v.plan, ((iter_col, v.iter_col),))
            layouts.append(v.layout)
        out = Vec(plan, iter_col, pos_col, TupleLay(tuple(layouts)))
        return self.project_vec(out)

    def _compile_list(self, e: ListE, loop: Loop, env: Env) -> Vec:
        assert isinstance(e.ty, ListT)
        if not e.elems:
            return self.empty_vec(e.ty.elt)
        if _is_pure_literal(e):
            # Shred the literal value straight into literal tables: one
            # per nesting level, linked by surrogates (Figure 3) -- flat
            # plans regardless of the list's length.
            return self._shred_literal(e, loop)
        scalars = []
        for elem in e.elems:
            v = self.compile(elem, loop, env)
            scalars.append(self.box_if_list(v, elem.ty, loop))
        return self.merge_vecs(scalars)

    def _shred_literal(self, e: ListE, loop: Loop) -> Vec:
        assert isinstance(e.ty, ListT)
        value = _literal_value(e)
        surrogates = itertools.count(1)
        inner = self._shred_keyed([(1, value)], e.ty.elt, surrogates)
        # every live iteration sees the same list: cross with the loop
        # (the single level-0 key is constant and projected away)
        pc = self.fresh()
        cols = [(loop.col, loop.col), (pc, inner.pos_col)]
        cols += [(c, c) for c in layout_cols(inner.layout)]
        crossed = Project(Cross(loop.plan, inner.plan), tuple(cols))
        return Vec(crossed, loop.col, pc, inner.layout)

    def _shred_keyed(self, keyed_lists: "list[tuple[int, list]]",
                     elem_ty: Type, surrogates) -> Vec:
        """Encode one nesting level of literal lists as a LitTable whose
        ``iter`` column holds the given surrogate keys; nested elements
        receive fresh surrogates and recurse into further tables."""
        ic, pc = self.fresh(), self.fresh()
        lay = self.layout_for(elem_ty)
        schema = [(ic, IntT), (pc, IntT)]
        schema += list(zip(layout_cols(lay), layout_col_types(lay)))
        rows: list[tuple] = []
        nested: list[list[tuple[int, list]]] = [
            [] for _ in _nested_types(elem_ty)]
        for key, value in keyed_lists:
            for pos, elem in enumerate(value, start=1):
                cells = _flatten_literal(elem, elem_ty, surrogates, nested)
                rows.append((key, pos) + tuple(cells))
        plan = LitTable(tuple(rows), tuple(schema))
        nested_types = _nested_types(elem_ty)
        if nested_types:
            inners = [self._shred_keyed(vals, ty, surrogates)
                      for vals, ty in zip(nested, nested_types)]
            lay = _replace_inners(lay, iter(inners))
        return Vec(plan, ic, pc, lay)

    def _compile_proj(self, e: TupleElemE, loop: Loop, env: Env) -> Vec:
        v = self.compile(e.tup, loop, env)
        if not isinstance(v.layout, TupleLay):
            raise CompilationError("projection from a non-tuple layout")
        part = v.layout.parts[e.index]
        out = Vec(v.plan, v.iter_col, v.pos_col, part)
        out = self.project_vec(out)
        if isinstance(e.ty, ListT):
            return self.unbox(out)
        return out

    def _compile_table(self, e: TableE, loop: Loop) -> Vec:
        cols = tuple((self.fresh(), src, ty) for src, ty in e.columns)
        scan = TableScan(e.name, cols)
        pc = self.fresh()
        numbered = RowNum(scan, pc,
                          tuple((out, "asc") for out, _, _ in cols))
        crossed = Cross(loop.plan, numbered)
        lays = [AtomLay(out, ty) for out, _, ty in cols]
        layout: Layout = lays[0] if len(lays) == 1 else TupleLay(tuple(lays))
        out = Vec(crossed, loop.col, pc, layout)
        return self.project_vec(out)

    # -- conditionals ------------------------------------------------------
    def _compile_if(self, e: IfE, loop: Loop, env: Env) -> Vec:
        cv = self.compile(e.cond, loop, env)
        assert isinstance(cv.layout, AtomLay)
        cond_col = cv.layout.col
        then_loop = self.loop_from(Select(cv.plan, cond_col), cv.iter_col)
        nc = self.fresh()
        negated = UnApp(cv.plan, "not", cond_col, nc)
        else_loop = self.loop_from(Select(negated, nc), cv.iter_col)
        tv = self.compile(e.then_, then_loop,
                          self.restrict_env(env, then_loop))
        ev = self.compile(e.else_, else_loop,
                          self.restrict_env(env, else_loop))
        return self.merge_vecs([tv, ev])

    # -- scalar operators ----------------------------------------------------
    def _compile_binop(self, e: BinOpE, loop: Loop, env: Env) -> Vec:
        lv = self.compile(e.lhs, loop, env)
        rv = self.as_fresh(self.compile(e.rhs, loop, env))
        assert isinstance(lv.layout, AtomLay) and isinstance(rv.layout, AtomLay)
        joined = EqJoin(lv.plan, rv.plan, ((lv.iter_col, rv.iter_col),))
        out_col = self.fresh()
        assert isinstance(e.ty, AtomT)
        applied = BinApp(joined, e.op, lv.layout.col, rv.layout.col, out_col)
        out = Vec(applied, lv.iter_col, lv.pos_col, AtomLay(out_col, e.ty))
        return self.project_vec(out)

    def _compile_unop(self, e: UnOpE, loop: Loop, env: Env) -> Vec:
        v = self.compile(e.operand, loop, env)
        assert isinstance(v.layout, AtomLay)
        out_col = self.fresh()
        assert isinstance(e.ty, AtomT)
        applied = UnApp(v.plan, e.op, v.layout.col, out_col)
        out = Vec(applied, v.iter_col, v.pos_col, AtomLay(out_col, e.ty))
        return self.project_vec(out)


# ----------------------------------------------------------------------
# literal shredding helpers
# ----------------------------------------------------------------------

def _is_pure_literal(e: Exp) -> bool:
    """True iff ``e`` is built from literals only (no variables, tables,
    operators, or combinator applications)."""
    if isinstance(e, LitE):
        return True
    if isinstance(e, (TupleE, ListE)):
        return all(_is_pure_literal(c) for c in e.children())
    return False


def _literal_value(e: Exp):
    """Evaluate a pure-literal expression to its Python value."""
    if isinstance(e, LitE):
        return e.value
    if isinstance(e, TupleE):
        return tuple(_literal_value(p) for p in e.parts)
    if isinstance(e, ListE):
        return [_literal_value(x) for x in e.elems]
    raise CompilationError(f"not a literal: {e!r}")  # pragma: no cover


def _nested_types(ty: Type) -> list[Type]:
    """Element types of the nested-list positions of ``ty``, in layout
    (left-to-right) order."""
    if isinstance(ty, ListT):
        return [ty.elt]
    if isinstance(ty, TupleT):
        out: list[Type] = []
        for part in ty.elts:
            out.extend(_nested_types(part))
        return out
    return []


def _flatten_literal(value, ty: Type, surrogates,
                     nested: "list[list[tuple[int, list]]]",
                     slot: "list[int] | None" = None) -> list:
    """Cells of one element row; nested lists are replaced by fresh
    surrogates and collected into ``nested`` (one bucket per nest slot)."""
    if slot is None:
        slot = [0]
    if isinstance(ty, ListT):
        key = next(surrogates)
        nested[slot[0]].append((key, value))
        slot[0] += 1
        return [key]
    if isinstance(ty, TupleT):
        cells: list = []
        for part_value, part_ty in zip(value, ty.elts):
            cells.extend(_flatten_literal(part_value, part_ty, surrogates,
                                          nested, slot))
        return cells
    return [value]


def _replace_inners(lay: Layout, inners: "Iterator[Vec]") -> Layout:
    """Rebuild a layout, substituting the nested vectors left to right."""
    if isinstance(lay, AtomLay):
        return lay
    if isinstance(lay, NestLay):
        return NestLay(lay.col, next(inners))
    assert isinstance(lay, TupleLay)
    return TupleLay(tuple(_replace_inners(p, inners) for p in lay.parts))
