"""Loop-lifting rules for the list-prelude builtins.

Each rule consumes compiled operand vectors and produces the operator's
result vector using only flat, data-parallel table algebra -- no rule ever
iterates over data; iteration exists solely as the ``iter`` column.

Highlights (cf. Section 3.2 and [13]):

* ``map``/``filter``/``sort_with``/``group_with``/... share the *lifted
  lambda* machinery of :class:`repro.core.lift.LiftCompiler`: the lambda
  body is compiled once against the inner loop of all elements;
* aggregates (``sum``, ``length``, ``and``...) become grouped aggregation
  on ``iter``, with the defaults for *empty* lists supplied explicitly via
  an anti-join against the loop relation (SQL aggregation drops empty
  groups; Haskell's ``sum [] = 0`` must not);
* ``zip`` is the equi-join on ``(iter, pos)`` -- the relational image of
  positional access that Figure 6 highlights (``bpermuteP`` ⇒ join on
  ``pos``);
* order-sensitive operations (``reverse``, ``take``, ``nub``...) read and
  rewrite the ``pos`` order encoding, which is maintained *dense* (1..n
  per iteration) as an invariant.
"""

from __future__ import annotations

from typing import Callable

from ..algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Distinct,
    EqJoin,
    GroupAggr,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    UnApp,
    UnionAll,
)
from ..errors import CompilationError
from ..expr import AppE, LamE
from ..ftypes import AtomT, BoolT, DoubleT, IntT, ListT, Type
from .layout import AtomLay, Layout, NestLay, TupleLay, Vec, layout_cols, relabel
from .lift import Env, LiftCompiler, Loop


def compile_builtin(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    try:
        rule = _RULES[e.fun]
    except KeyError:
        raise CompilationError(f"no loop-lifting rule for builtin "
                               f"{e.fun!r}") from None
    return rule(comp, e, loop, env)


# ----------------------------------------------------------------------
# shared machinery
# ----------------------------------------------------------------------

def _lam_arg(e: AppE, i: int = 0) -> LamE:
    arg = e.args[i]
    assert isinstance(arg, LamE)
    return arg


def _attach_lambda(comp: LiftCompiler, lam: LamE, xv: Vec, env: Env):
    """Evaluate ``lam`` for every element of ``xv`` and join the (scalar,
    flat) results onto the element rows.

    Returns ``(plan, iter_col, pos_col, elem_layout, result_layout)`` --
    the plan carries the element item columns (original names) plus the
    lambda-result columns.
    """
    qv, ii, _inner_loop, body = comp.lift_lambda(lam, xv, env)
    b = comp.as_fresh(body)
    ri, rp, rj = comp.fresh(), comp.fresh(), comp.fresh()
    cols = [(ri, xv.iter_col), (rp, xv.pos_col), (rj, ii)]
    cols += [(c, c) for c in layout_cols(xv.layout)]
    left = Project(qv, tuple(cols))
    joined = EqJoin(left, b.plan, ((rj, b.iter_col),))
    return joined, ri, rp, xv.layout, b.layout


def _atom_col(layout: Layout) -> str:
    assert isinstance(layout, AtomLay)
    return layout.col


def _scalar_result(comp: LiftCompiler, plan: Node, iter_col: str,
                   item_col: str, ty: AtomT) -> Vec:
    """Package (iter, value) rows as a scalar vector (``pos = 1``)."""
    ic, vc = comp.fresh(), comp.fresh()
    pc = comp.fresh()
    projected = Project(plan, ((ic, iter_col), (vc, item_col)))
    return Vec(Attach(projected, pc, 1, IntT), ic, pc, AtomLay(vc, ty))


def _fill_defaults(comp: LiftCompiler, loop: Loop, present: Vec,
                   default, ty: AtomT) -> Vec:
    """Union in ``default`` for iterations absent from ``present``
    (aggregation defaults on empty lists)."""
    pcol = _atom_col(present.layout)
    ic, vc = comp.fresh(), comp.fresh()
    have = Project(present.plan, ((ic, present.iter_col), (vc, pcol)))
    mi = comp.fresh()
    missing_iters = Project(
        AntiJoin(loop.plan, have, ((loop.col, ic),)), ((mi, loop.col),))
    mv = comp.fresh()
    missing = Project(Attach(missing_iters, mv, default, ty),
                      ((ic, mi), (vc, mv)))
    union = UnionAll(have, missing)
    pc = comp.fresh()
    return Vec(Attach(union, pc, 1, IntT), ic, pc, AtomLay(vc, ty))


def _aggregate(comp: LiftCompiler, loop: Loop, xv: Vec, func: str,
               out_ty: AtomT, default=None) -> Vec:
    """Aggregate the (atomic) elements of ``xv`` per iteration."""
    in_col = _atom_col(xv.layout) if func != "count" else None
    oc = comp.fresh()
    agg = GroupAggr(xv.plan, (xv.iter_col,),
                    ((func, in_col, oc),))
    present = _scalar_result(comp, agg, xv.iter_col, oc, out_ty)
    if default is None:
        return present
    return _fill_defaults(comp, loop, present, default, out_ty)


def _select_elem(comp: LiftCompiler, plan: Node, iter_col: str,
                 cond_col: str, layout: Layout, elem_ty: Type) -> Vec:
    """Keep the single row per iteration where ``cond_col`` holds and
    package it as a scalar element (unboxing list elements)."""
    sel = Select(plan, cond_col)
    ic, pc = comp.fresh(), comp.fresh()
    cols = [(ic, iter_col)] + [(c, c) for c in layout_cols(layout)]
    vec = Vec(Attach(Project(sel, tuple(cols)), pc, 1, IntT), ic, pc, layout)
    if isinstance(elem_ty, ListT):
        return comp.unbox(vec)
    return vec


def _concat_vec(comp: LiftCompiler, xv: Vec) -> Vec:
    """Flatten one nesting level: join outer rows to their inner lists and
    renumber positions by (outer pos, inner pos)."""
    if not isinstance(xv.layout, NestLay):
        raise CompilationError("concat requires a nested layout")
    inner = comp.as_fresh(xv.layout.inner)
    joined = EqJoin(xv.plan, inner.plan, ((xv.layout.col, inner.iter_col),))
    pc = comp.fresh()
    numbered = RowNum(joined, pc,
                      ((xv.pos_col, "asc"), (inner.pos_col, "asc")),
                      (xv.iter_col,))
    out = Vec(numbered, xv.iter_col, pc, inner.layout)
    return comp.project_vec(out)


def _compare_pos(comp: LiftCompiler, plan: Node, op: str, pos_col: str,
                 rhs) -> tuple[Node, str]:
    cc = comp.fresh()
    return BinApp(plan, op, pos_col, rhs, cc), cc


# ----------------------------------------------------------------------
# higher-order combinators
# ----------------------------------------------------------------------

def _r_map(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    lam = _lam_arg(e)
    xv = comp.compile(e.args[1], loop, env)
    qv, ii, inner_loop, body = comp.lift_lambda(lam, xv, env)
    return comp.join_back(qv, ii, xv, body, lam.body.ty, inner_loop)


def _r_concat_map(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    return _concat_vec(comp, _r_map(comp, e, loop, env))


def _r_concat(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    return _concat_vec(comp, xv)


def _r_filter(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    lam = _lam_arg(e)
    decorrelated = _try_decorrelated_filter(comp, lam, e.args[1], loop, env)
    if decorrelated is not None:
        return decorrelated
    xv = comp.compile(e.args[1], loop, env)
    return _filter_vec(comp, lam, xv, env)


def _filter_vec(comp: LiftCompiler, lam: LamE, xv: Vec, env: Env) -> Vec:
    plan, ri, rp, lay, blay = _attach_lambda(comp, lam, xv, env)
    sel = Select(plan, _atom_col(blay))
    vec = Vec(sel, ri, rp, lay)
    return comp.renumber(vec)


def _split_and(e) -> list:
    from ..expr import BinOpE
    if isinstance(e, BinOpE) and e.op == "and":
        return _split_and(e.lhs) + _split_and(e.rhs)
    return [e]


def _try_decorrelated_filter(comp: LiftCompiler, lam: LamE, xs_exp,
                             loop: Loop, env: Env) -> "Vec | None":
    """Decorrelation: compile ``filter (\\x -> key x == e && rest) xs``
    -- with a loop-*invariant* source ``xs`` and an equality predicate
    correlating elements with the iteration context -- as one equi-join
    between the per-iteration key values and the source evaluated *once*.

    This is the compiler half of the paper's join-graph isolation [10]:
    without it, ``xs`` materializes as loop x source (quadratic in the
    Table 1 workload, where the running example filters ``features`` by
    the iterated facility); with it, the plan is the join the paper's
    appendix SQL shows (``a0001.item10_str = a0003.facility``).
    """
    from ..expr import BinOpE, Exp, TupleE, free_vars
    if not comp.decorrelate:
        return None  # ablation: rule disabled
    if free_vars(xs_exp):
        return None  # source varies per iteration: no hoisting
    param = lam.param
    keys: list[tuple[Exp, Exp]] = []  # (element side, iteration side)
    rest: list[Exp] = []
    for conj in _split_and(lam.body):
        if isinstance(conj, BinOpE) and conj.op == "eq":
            fv_l, fv_r = free_vars(conj.lhs), free_vars(conj.rhs)
            if fv_l == {param} and param not in fv_r:
                keys.append((conj.lhs, conj.rhs))
                continue
            if fv_r == {param} and param not in fv_l:
                keys.append((conj.rhs, conj.lhs))
                continue
        rest.append(conj)
    if not keys:
        return None

    # The source, compiled once under the unit loop (loop hoisting).
    base = comp.compile(xs_exp, comp.unit_loop(), {})
    # Element-side key columns, computed per source element.
    elem_body = (keys[0][0] if len(keys) == 1
                 else TupleE(tuple(k for k, _ in keys)))
    key_lam = LamE(param, lam.param_ty, elem_body)
    plan, _bi, bp, lay, klay = _attach_lambda(comp, key_lam, base, {})
    key_cols = layout_cols(klay)
    # Iteration-side key values: one row per live iteration.
    free_body = (keys[0][1] if len(keys) == 1
                 else TupleE(tuple(f for _, f in keys)))
    fvec = comp.compile(free_body, loop, env)
    free_cols = layout_cols(fvec.layout)
    joined = EqJoin(fvec.plan, plan, tuple(zip(free_cols, key_cols)))
    vec = comp.renumber(Vec(joined, fvec.iter_col, bp, lay),
                        ((bp, "asc"),))
    if not rest:
        return vec
    rest_body = rest[0]
    for conj in rest[1:]:
        from ..ftypes import BoolT as _B
        from ..expr import BinOpE as _BinOpE
        rest_body = _BinOpE("and", rest_body, conj, _B)
    return _filter_vec(comp, LamE(param, lam.param_ty, rest_body), vec, env)


def _r_sort_with(comp: LiftCompiler, e: AppE, loop: Loop, env: Env,
                 descending: bool = False) -> Vec:
    lam = _lam_arg(e)
    xv = comp.compile(e.args[1], loop, env)
    plan, ri, rp, lay, klay = _attach_lambda(comp, lam, xv, env)
    direction = "desc" if descending else "asc"
    order = tuple((c, direction) for c in layout_cols(klay))
    order += ((rp, "asc"),)  # stability tie-break on the original order
    vec = Vec(plan, ri, rp, lay)
    return comp.renumber(vec, order)


def _r_sort_with_desc(comp: LiftCompiler, e: AppE, loop: Loop,
                      env: Env) -> Vec:
    return _r_sort_with(comp, e, loop, env, descending=True)


def _r_group_with(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    lam = _lam_arg(e)
    xv = comp.compile(e.args[1], loop, env)
    plan, ri, rp, lay, klay = _attach_lambda(comp, lam, xv, env)
    key_cols = layout_cols(klay)
    # Group surrogates: DENSE_RANK over (iter, key) -- the "binding due to
    # rank operator" of the paper's appendix SQL.
    sc = comp.fresh()
    order = ((ri, "asc"),) + tuple((c, "asc") for c in key_cols)
    ranked = RowRank(plan, sc, order)
    # Inner vector: the group members, re-keyed by their group surrogate.
    p2 = comp.fresh()
    members = RowNum(ranked, p2, ((rp, "asc"),), (sc,))
    i2 = comp.fresh()
    inner_cols = [(i2, sc), (p2, p2)] + [(c, c) for c in layout_cols(lay)]
    inner = Vec(Project(members, tuple(inner_cols)), i2, p2, lay)
    # Outer vector: one row per group, ordered by key.
    outer_cols = [(ri, ri)] + [(c, c) for c in key_cols] + [(sc, sc)]
    groups = Distinct(Project(ranked, tuple(outer_cols)))
    op = comp.fresh()
    numbered = RowNum(groups, op, tuple((c, "asc") for c in key_cols), (ri,))
    out = Vec(numbered, ri, op, NestLay(sc, inner))
    return comp.project_vec(out)


def _r_quantifier(comp: LiftCompiler, e: AppE, loop: Loop, env: Env,
                  func: str, default: bool) -> Vec:
    lam = _lam_arg(e)
    xv = comp.compile(e.args[1], loop, env)
    plan, ri, rp, _lay, blay = _attach_lambda(comp, lam, xv, env)
    bools = Vec(plan, ri, rp, blay)
    return _aggregate(comp, loop, bools, func, BoolT, default)


def _r_all(comp, e, loop, env):
    return _r_quantifier(comp, e, loop, env, "all", True)


def _r_any(comp, e, loop, env):
    return _r_quantifier(comp, e, loop, env, "any", False)


def _first_failure(comp: LiftCompiler, e: AppE, loop: Loop, env: Env):
    """Shared prefix of take_while/drop_while: element rows with the
    per-iteration position of the first predicate failure."""
    lam = _lam_arg(e)
    xv = comp.compile(e.args[1], loop, env)
    plan, ri, rp, lay, blay = _attach_lambda(comp, lam, xv, env)
    nc = comp.fresh()
    falses = Select(UnApp(plan, "not", _atom_col(blay), nc), nc)
    fc = comp.fresh()
    fpos = GroupAggr(falses, (ri,), (("min", rp, fc),))
    gi = comp.fresh()
    fmap = Project(fpos, ((gi, ri), (fc, fc)))
    return plan, ri, rp, lay, fmap, gi, fc


def _r_take_while(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    plan, ri, rp, lay, fmap, gi, fc = _first_failure(comp, e, loop, env)
    with_f = EqJoin(plan, fmap, ((ri, gi),))
    c1 = comp.fresh()
    kept = Select(BinApp(with_f, "lt", rp, fc, c1), c1)
    no_failure = AntiJoin(plan, fmap, ((ri, gi),))
    # Align both arms on one fresh column set, then union.
    ic, pc = comp.fresh(), comp.fresh()
    common = [comp.fresh() for _ in layout_cols(lay)]
    proj = tuple([(ic, ri), (pc, rp)]
                 + list(zip(common, layout_cols(lay))))
    union = UnionAll(Project(kept, proj), Project(no_failure, proj))
    new_lay = relabel(lay, dict(zip(layout_cols(lay), common)))
    return Vec(union, ic, pc, new_lay)  # prefixes keep dense positions


def _r_drop_while(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    plan, ri, rp, lay, fmap, gi, fc = _first_failure(comp, e, loop, env)
    with_f = EqJoin(plan, fmap, ((ri, gi),))
    c1 = comp.fresh()
    kept = Select(BinApp(with_f, "ge", rp, fc, c1), c1)
    vec = Vec(kept, ri, rp, lay)
    return comp.renumber(vec)


# ----------------------------------------------------------------------
# element extraction (head / last / the / index)
# ----------------------------------------------------------------------

def _r_head(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    plan, cc = _compare_pos(comp, xv.plan, "eq", xv.pos_col, Const(1, IntT))
    return _select_elem(comp, plan, xv.iter_col, cc, xv.layout, e.ty)


_r_the = _r_head  # group-representative semantics (see frontend docs)


def _max_pos_join(comp: LiftCompiler, xv: Vec):
    mc = comp.fresh()
    maxp = GroupAggr(xv.plan, (xv.iter_col,), (("max", xv.pos_col, mc),))
    gi = comp.fresh()
    fmap = Project(maxp, ((gi, xv.iter_col), (mc, mc)))
    return EqJoin(xv.plan, fmap, ((xv.iter_col, gi),)), mc


def _r_last(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    joined, mc = _max_pos_join(comp, xv)
    plan, cc = _compare_pos(comp, joined, "eq", xv.pos_col, mc)
    return _select_elem(comp, plan, xv.iter_col, cc, xv.layout, e.ty)


def _r_index(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    iv = comp.as_fresh(comp.compile(e.args[1], loop, env))
    joined = EqJoin(xv.plan, iv.plan, ((xv.iter_col, iv.iter_col),))
    t1 = comp.fresh()
    shifted = BinApp(joined, "add", _atom_col(iv.layout), Const(1, IntT), t1)
    plan, cc = _compare_pos(comp, shifted, "eq", xv.pos_col, t1)
    assert isinstance(e.ty, Type)
    return _select_elem(comp, plan, xv.iter_col, cc, xv.layout, e.ty)


def _r_tail(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    plan, cc = _compare_pos(comp, xv.plan, "gt", xv.pos_col, Const(1, IntT))
    vec = Vec(Select(plan, cc), xv.iter_col, xv.pos_col, xv.layout)
    return comp.renumber(_guard_nonempty(comp, vec, xv, "tail"))


def _r_init(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    joined, mc = _max_pos_join(comp, xv)
    plan, cc = _compare_pos(comp, joined, "lt", xv.pos_col, mc)
    vec = Vec(Select(plan, cc), xv.iter_col, xv.pos_col, xv.layout)
    return comp.project_vec(_guard_nonempty(comp, vec, xv, "init"))


def _guard_nonempty(comp: LiftCompiler, vec: Vec, _xv: Vec, _who: str) -> Vec:
    """``tail []``/``init []`` are runtime errors in Haskell; relationally
    the rows simply vanish, which is indistinguishable from a legitimate
    empty result -- the paper's translation shares this behaviour, and the
    reference interpreter (which raises) documents the difference."""
    return vec


# ----------------------------------------------------------------------
# structure
# ----------------------------------------------------------------------

def _r_append(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    yv = comp.compile(e.args[1], loop, env)
    return comp.merge_vecs([xv, yv])


def _r_cons(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    x = comp.compile(e.args[0], loop, env)
    x = comp.box_if_list(x, e.args[0].ty, loop)
    xv = comp.compile(e.args[1], loop, env)
    return comp.merge_vecs([x, xv])


def _r_zip(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    yv = comp.as_fresh(comp.compile(e.args[1], loop, env))
    joined = EqJoin(xv.plan, yv.plan,
                    ((xv.iter_col, yv.iter_col), (xv.pos_col, yv.pos_col)))
    out = Vec(joined, xv.iter_col, xv.pos_col,
              TupleLay((xv.layout, yv.layout)))
    return comp.project_vec(out)


def _r_reverse(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    return comp.renumber(xv, ((xv.pos_col, "desc"),))


def _r_take(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    nv = comp.as_fresh(comp.compile(e.args[0], loop, env))
    xv = comp.compile(e.args[1], loop, env)
    joined = EqJoin(xv.plan, nv.plan, ((xv.iter_col, nv.iter_col),))
    plan, cc = _compare_pos(comp, joined, "le", xv.pos_col,
                            _atom_col(nv.layout))
    out = Vec(Select(plan, cc), xv.iter_col, xv.pos_col, xv.layout)
    return comp.project_vec(out)  # prefixes stay dense


def _r_drop(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    nv = comp.as_fresh(comp.compile(e.args[0], loop, env))
    xv = comp.compile(e.args[1], loop, env)
    joined = EqJoin(xv.plan, nv.plan, ((xv.iter_col, nv.iter_col),))
    plan, cc = _compare_pos(comp, joined, "gt", xv.pos_col,
                            _atom_col(nv.layout))
    out = Vec(Select(plan, cc), xv.iter_col, xv.pos_col, xv.layout)
    return comp.renumber(out)


def _r_nub(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    item_cols = layout_cols(xv.layout)
    mp = comp.fresh()
    firsts = GroupAggr(xv.plan, (xv.iter_col,) + tuple(item_cols),
                       (("min", xv.pos_col, mp),))
    pc = comp.fresh()
    numbered = RowNum(firsts, pc, ((mp, "asc"),), (xv.iter_col,))
    out = Vec(numbered, xv.iter_col, pc, xv.layout)
    return comp.project_vec(out)


def _r_number(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    nc = comp.fresh()
    cols = [(xv.iter_col, xv.iter_col), (xv.pos_col, xv.pos_col)]
    cols += [(c, c) for c in layout_cols(xv.layout)]
    cols.append((nc, xv.pos_col))  # expose the order encoding as data
    plan = Project(xv.plan, tuple(cols))
    return Vec(plan, xv.iter_col, xv.pos_col,
               TupleLay((xv.layout, AtomLay(nc, IntT))))


# ----------------------------------------------------------------------
# aggregates / special folds
# ----------------------------------------------------------------------

def _r_length(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    return _aggregate(comp, loop, xv, "count", IntT, 0)


def _r_null(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    length = _r_length(comp, e, loop, env)
    cc = comp.fresh()
    plan = BinApp(length.plan, "eq", _atom_col(length.layout),
                  Const(0, IntT), cc)
    out = Vec(plan, length.iter_col, length.pos_col, AtomLay(cc, BoolT))
    return comp.project_vec(out)


def _r_sum(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    assert isinstance(e.ty, AtomT)
    zero = 0.0 if e.ty == DoubleT else 0
    return _aggregate(comp, loop, xv, "sum", e.ty, zero)


def _r_avg(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    return _aggregate(comp, loop, xv, "avg", DoubleT)


def _r_maximum(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    assert isinstance(e.ty, AtomT)
    return _aggregate(comp, loop, xv, "max", e.ty)


def _r_minimum(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    assert isinstance(e.ty, AtomT)
    return _aggregate(comp, loop, xv, "min", e.ty)


def _r_and(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    return _aggregate(comp, loop, xv, "all", BoolT, True)


def _r_or(comp: LiftCompiler, e: AppE, loop: Loop, env: Env) -> Vec:
    xv = comp.compile(e.args[0], loop, env)
    return _aggregate(comp, loop, xv, "any", BoolT, False)


# ----------------------------------------------------------------------
# rule table
# ----------------------------------------------------------------------

Rule = Callable[[LiftCompiler, AppE, Loop, Env], Vec]

_RULES: dict[str, Rule] = {
    "map": _r_map,
    "filter": _r_filter,
    "concat_map": _r_concat_map,
    "concat": _r_concat,
    "sort_with": _r_sort_with,
    "sort_with_desc": _r_sort_with_desc,
    "group_with": _r_group_with,
    "all": _r_all,
    "any": _r_any,
    "take_while": _r_take_while,
    "drop_while": _r_drop_while,
    "head": _r_head,
    "last": _r_last,
    "the": _r_the,
    "tail": _r_tail,
    "init": _r_init,
    "length": _r_length,
    "null": _r_null,
    "reverse": _r_reverse,
    "append": _r_append,
    "cons": _r_cons,
    "index": _r_index,
    "take": _r_take,
    "drop": _r_drop,
    "zip": _r_zip,
    "nub": _r_nub,
    "number": _r_number,
    "sum": _r_sum,
    "avg": _r_avg,
    "maximum": _r_maximum,
    "minimum": _r_minimum,
    "and": _r_and,
    "or": _r_or,
}

RULE_NAMES = frozenset(_RULES)
