"""Mini Data Parallel Haskell: parallel arrays, non-parametric
representation, and the Figure 5/6 sparse-vector programs."""

from .parray import (
    FlatArray,
    NestedArray,
    PArray,
    TupleArray,
    add_l,
    bpermute,
    enum_from_to_p,
    from_list,
    fst_l,
    index_p,
    mul_l,
    pack_p,
    replicate_p,
    snd_l,
    sum_p,
    sum_s,
    zip_p,
)
from .vectorise import (
    FIG6_SV,
    FIG6_V,
    dotp_comprehension,
    dotp_query,
    dotp_vectorised,
)

__all__ = [
    "FIG6_SV", "FIG6_V", "FlatArray", "NestedArray", "PArray",
    "TupleArray", "add_l", "bpermute", "dotp_comprehension", "dotp_query",
    "dotp_vectorised", "enum_from_to_p", "from_list", "fst_l", "index_p",
    "mul_l", "pack_p", "replicate_p", "snd_l", "sum_p", "sum_s", "zip_p",
]
