"""Parallel arrays with DPH's non-parametric data representation.

Section 4.2 compares DSH with Data Parallel Haskell [6, 7, 15]; this
module is the miniature DPH needed to regenerate that comparison:

* ``[:Float:]`` -- a flat parallel array (:class:`FlatArray`), strict,
  backed by a Python list (numpy would do as well; the representation is
  what matters here, not the constant factor);
* ``[:(a, b):]`` -- *tuples of arrays* instead of arrays of tuples
  (:class:`TupleArray`), mirroring the paper's "non-parametric data
  representation";
* ``[:[:a:]:]`` -- a nested array as ``(offset, length)`` descriptors
  plus one flat data array (:class:`NestedArray`); compare this with
  DSH's surrogate-key encoding, which trades the descriptor arithmetic
  for foreign-key joins (the paper's Section 4.2 discussion, and the
  subject of the nesting-representation ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence


class PArray:
    """Base class of parallel arrays."""

    def __len__(self) -> int:
        raise NotImplementedError

    def to_list(self) -> list:
        raise NotImplementedError


@dataclass
class FlatArray(PArray):
    """A flat array of atomic values (``[:Float:]``, ``[:Int:]``, ...)."""

    values: list

    def __len__(self) -> int:
        return len(self.values)

    def to_list(self) -> list:
        return list(self.values)


@dataclass
class TupleArray(PArray):
    """An array of n-tuples, stored as n equal-length component arrays."""

    parts: tuple[PArray, ...]

    def __post_init__(self) -> None:
        lengths = {len(p) for p in self.parts}
        if len(lengths) > 1:
            raise ValueError(f"component arrays differ in length: {lengths}")

    def __len__(self) -> int:
        return len(self.parts[0])

    def to_list(self) -> list:
        return list(zip(*(p.to_list() for p in self.parts)))


@dataclass
class NestedArray(PArray):
    """A nested array: per-segment ``(offset, length)`` descriptors over
    one flat ``data`` array (locality-preserving, like DSH's encoding)."""

    offsets: list[int]
    lengths: list[int]
    data: PArray

    def __len__(self) -> int:
        return len(self.offsets)

    def to_list(self) -> list:
        flat = self.data.to_list()
        return [flat[o:o + l] for o, l in zip(self.offsets, self.lengths)]


def from_list(values: Sequence[Any]) -> PArray:
    """Build a parallel array from a Python list, choosing the
    non-parametric representation by element shape."""
    values = list(values)
    if not values:
        return FlatArray([])
    head = values[0]
    if isinstance(head, tuple):
        width = len(head)
        parts = tuple(from_list([v[i] for v in values]) for i in range(width))
        return TupleArray(parts)
    if isinstance(head, list):
        offsets, lengths, flat = [], [], []
        for segment in values:
            offsets.append(len(flat))
            lengths.append(len(segment))
            flat.extend(segment)
        return NestedArray(offsets, lengths, from_list(flat))
    return FlatArray(values)


def fst_l(arr: PArray) -> PArray:
    """``fst^`` -- lifted first projection (Figure 6)."""
    if not isinstance(arr, TupleArray):
        raise TypeError("fst_l expects an array of tuples")
    return arr.parts[0]


def snd_l(arr: PArray) -> PArray:
    """``snd^`` -- lifted second projection (Figure 6)."""
    if not isinstance(arr, TupleArray):
        raise TypeError("snd_l expects an array of tuples")
    return arr.parts[1]


def zip_p(a: PArray, b: PArray) -> TupleArray:
    """``zipP`` -- arrays of tuples are just tuples of arrays."""
    if len(a) != len(b):
        raise ValueError("zip_p expects equal lengths")
    return TupleArray((a, b))


def mul_l(a: PArray, b: PArray) -> FlatArray:
    """``*^`` -- lifted multiplication (Figure 6)."""
    return FlatArray([x * y for x, y in zip(_flat(a), _flat(b))])


def add_l(a: PArray, b: PArray) -> FlatArray:
    """``+^`` -- lifted addition."""
    return FlatArray([x + y for x, y in zip(_flat(a), _flat(b))])


def bpermute(arr: PArray, indexes: PArray) -> FlatArray:
    """``bpermuteP`` -- bulk indexed gather: ``[:arr !: i | i <- idx:]``.

    The operation Figure 6 maps onto DSH's relational equi-join over the
    ``pos`` column.
    """
    data = _flat(arr)
    out = []
    for i in _flat(indexes):
        if not 0 <= i < len(data):
            raise IndexError(f"bpermute index {i} out of bounds")
        out.append(data[i])
    return FlatArray(out)


def index_p(arr: PArray, i: int) -> Any:
    """``!:`` -- positional indexing."""
    return _flat(arr)[i]


def sum_p(arr: PArray):
    """``sumP`` -- parallel sum."""
    return sum(_flat(arr))


def sum_s(arr: NestedArray) -> FlatArray:
    """Segmented sum: one result per inner array (used by vectorised
    nested programs)."""
    flat = _flat(arr.data)
    return FlatArray([sum(flat[o:o + l])
                      for o, l in zip(arr.offsets, arr.lengths)])


def enum_from_to_p(lo: int, hi: int) -> FlatArray:
    """``enumFromToP`` -- the array [lo..hi]."""
    return FlatArray(list(range(lo, hi + 1)))


def replicate_p(n: int, value: Any) -> FlatArray:
    """``replicateP``."""
    return FlatArray([value] * n)


def pack_p(arr: PArray, flags: Iterable[bool]) -> FlatArray:
    """``packP`` -- keep elements whose flag is true."""
    return FlatArray([v for v, f in zip(_flat(arr), flags) if f])


def _flat(arr: PArray) -> list:
    if isinstance(arr, FlatArray):
        return arr.values
    if isinstance(arr, TupleArray):
        return arr.to_list()
    raise TypeError(f"expected a flat array, got {type(arr).__name__}")
