"""The Figure 5/6 programs: sparse-vector multiplication, three ways.

Figure 5 gives the DPH source::

    dotp :: SparseVector -> Vector -> Float
    dotp sv v = sumP [: x * (v !: i) | (i, x) <- sv :]

Figure 6 shows what vectorisation turns it into (left) and the algebra
plan DSH's loop-lifting produces for the same program (right).  This
module provides

* :func:`dotp_comprehension` -- the naive per-element reference,
* :func:`dotp_vectorised` -- the vectorised DPH pipeline
  ``sumP (snd^ sv *^ bpermuteP v (fst^ sv))``, verbatim from Figure 6,
* :func:`dotp_query` -- the same program as a DSH/Ferry query, whose
  compiled plan exhibits the structural correspondences the paper
  tabulates (``bpermuteP`` ⇒ equi-join on ``pos``, ``sumP`` ⇒ grouped
  aggregation, ``*^`` ⇒ column-wise multiplication).
"""

from __future__ import annotations

from ..frontend import Q, fmap, fsum, index, to_q
from .parray import PArray, TupleArray, bpermute, fst_l, mul_l, snd_l, sum_p


def dotp_comprehension(sv: list[tuple[int, float]], v: list[float]) -> float:
    """Reference semantics of Figure 5 (scalar loop)."""
    return sum(x * v[i] for i, x in sv)


def dotp_vectorised(sv: TupleArray, v: PArray) -> float:
    """Figure 6, left: the vectorised DPH pipeline."""
    return sum_p(mul_l(snd_l(sv), bpermute(v, fst_l(sv))))


def dotp_query(sv: list[tuple[int, float]], v: list[float]) -> Q:
    """Figure 6, right: the DSH/Ferry query for the same program.

    ``v !: i`` becomes positional indexing ``v !! i`` (0-based), which
    loop-lifting compiles into an equi-join on the ``pos`` column.
    """
    svq = to_q(sv)
    vq = to_q(v)
    return fsum(fmap(lambda p: p[1] * index(vq, p[0]), svq))


#: The concrete arrays of Figure 6.
FIG6_SV: list[tuple[int, float]] = [(1, 0.1), (3, 1.0), (4, 0.0)]
FIG6_V: list[float] = [10.0, 20.0, 30.0, 40.0, 50.0]
