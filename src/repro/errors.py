"""Exception hierarchy for the FERRY reproduction.

Every error raised by the library derives from :class:`FerryError` so that
applications can catch library failures with a single ``except`` clause.
The subclasses mirror the pipeline stages of Figure 2 in the paper: front-end
construction and typing, comprehension parsing, compilation (loop-lifting),
back-end execution, and result stitching.
"""

from __future__ import annotations


class FerryError(Exception):
    """Base class for all errors raised by the library.

    Compile- and verify-time errors carry a stable diagnostic ``code``
    (``F1xx`` structural, ``F2xx`` order, ``F3xx`` avalanche -- see
    ``repro.analysis``) so tooling can match on the class of failure
    instead of parsing messages; ``None`` when no code applies.
    """

    #: Stable diagnostic code (e.g. ``"F101"``), or ``None``.
    code: "str | None" = None


class QTypeError(FerryError, TypeError):
    """An embedded expression is ill-typed.

    Raised eagerly at query-construction time.  This is the dynamic stand-in
    for the static checks that the paper delegates to Haskell's type checker
    via phantom typing (Section 3.1).
    """


class UnsupportedError(FerryError, NotImplementedError):
    """A feature the paper explicitly excludes was requested.

    The paper's Section 3.1 documents that general folds (``foldr``/``foldl``)
    and user-defined recursion are not compilable to non-recursive SQL:1999;
    requesting them raises this error instead of silently mis-compiling.
    """


class ComprehensionSyntaxError(FerryError, SyntaxError):
    """The ``qc``/``pyq`` comprehension quasi-quoter rejected its input."""


class CompilationError(FerryError):
    """Loop-lifting failed; indicates an internal inconsistency."""


class VerifyError(CompilationError):
    """The staged plan verifier (``repro.analysis``) rejected a plan.

    Carries the stable diagnostic ``code`` of the first failure and the
    full list of :class:`repro.analysis.Diagnostic` records in
    ``diagnostics``; messages include the pretty-printer's ``@n`` ref of
    the offending node so the failure can be located in
    ``plan_text`` / ``conn.explain()`` output.
    """

    def __init__(self, message: str, code: "str | None" = None,
                 diagnostics: "tuple | list" = ()):
        super().__init__(message)
        self.code = code
        self.diagnostics = list(diagnostics)


class SchemaError(FerryError):
    """A referenced table is missing or its declared row type is wrong.

    The paper notes that with DSH "it is the user's responsibility to make
    sure that the referenced table does exist in the database and that [the
    row type] indeed matches the table's row type -- otherwise, an error is
    thrown at runtime".  This is that error.
    """


class ExecutionError(FerryError):
    """A back-end failed while executing a query bundle."""


class ObservabilityError(FerryError):
    """An observability feature was read while disabled.

    Raised, for example, when ``Connection.last_trace`` is accessed on a
    connection constructed with ``trace=False``: instead of silently
    returning ``None`` (or surfacing an ``AttributeError`` deep in user
    code), the misconfiguration is reported where it happened, with the
    flag to flip.
    """


class PartialFunctionError(ExecutionError):
    """A partial list operation was applied outside its domain.

    Examples: ``head``/``the``/``maximum`` of an empty list, ``xs[i]`` with
    ``i`` out of bounds.  Matches the runtime errors the corresponding
    Haskell prelude functions raise.
    """


class ShardError(ExecutionError):
    """A shard of a partition-parallel execution failed.

    ``shard`` identifies the failing partition (0-based).  Semantic
    errors that would equally occur single-image (e.g.
    :class:`PartialFunctionError` from a UDF) are *not* wrapped -- they
    propagate as themselves so sharded and single-image execution raise
    identically; this class marks infrastructure failures of the
    scatter-gather machinery itself.
    """

    def __init__(self, shard: int, message: str):
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard
