"""The deep-embedded expression AST.

This is the Python rendition of the paper's internal ``Exp`` data type
(Section 3.1): the DSH combinators "construct an internal data
representation of the embedded program fragment they represent", annotated
with value-level types.  Exactly as in the paper, this representation is not
itself guaranteed type-correct -- the front end (``repro.frontend``) takes
the role of Haskell's type checker and only ever constructs consistent
trees; the AST is not part of the public API.

Nodes are immutable and hashable so they can be shared, memoised, and used
as dictionary keys by the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..ftypes import AtomT, ListT, TupleT, Type


@dataclass(frozen=True)
class FnT(Type):
    """The type of a combinator-argument function.

    Functions are not first-class Ferry values (the paper lists first-class
    functions as future work); ``FnT`` only ever types ``LamE`` nodes that
    appear directly as arguments of higher-order builtins like ``map``.
    """

    arg: Type
    res: Type

    def show(self) -> str:
        return f"({self.arg.show()} -> {self.res.show()})"


class Exp:
    """Base class of expression nodes; every node carries its Ferry type."""

    ty: Type

    def children(self) -> Iterator["Exp"]:
        """Yield direct sub-expressions (for generic traversals)."""
        return iter(())


@dataclass(frozen=True)
class LitE(Exp):
    """A literal of basic type."""

    value: Any
    ty: AtomT

    def show(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class TupleE(Exp):
    """Tuple construction; ``ty`` is the corresponding ``TupleT``."""

    parts: tuple[Exp, ...]
    ty: TupleT = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ty", TupleT(tuple(p.ty for p in self.parts)))

    def children(self) -> Iterator[Exp]:
        return iter(self.parts)


@dataclass(frozen=True)
class ListE(Exp):
    """A literal list (the image of ``toQ`` on list values).

    The element type is carried explicitly so the empty list is typeable.
    """

    elems: tuple[Exp, ...]
    ty: ListT

    def children(self) -> Iterator[Exp]:
        return iter(self.elems)


@dataclass(frozen=True)
class VarE(Exp):
    """A variable bound by an enclosing ``LamE``."""

    name: str
    ty: Type


@dataclass(frozen=True)
class TableE(Exp):
    """A reference to a database-resident table.

    ``columns`` lists ``(column name, atom type)`` pairs in *alphabetical*
    order -- the paper fixes that "these columns are gathered in a flat
    tuple whose components are ordered alphabetically by column name".
    Referencing a table performs no I/O (Section 3.1).
    """

    name: str
    columns: tuple[tuple[str, AtomT], ...]
    ty: ListT


@dataclass(frozen=True)
class LamE(Exp):
    """A unary lambda; only ever an argument to a higher-order builtin."""

    param: str
    param_ty: Type
    body: Exp
    ty: FnT = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ty", FnT(self.param_ty, self.body.ty))

    def children(self) -> Iterator[Exp]:
        return iter((self.body,))


@dataclass(frozen=True)
class AppE(Exp):
    """Application of a named builtin combinator to its arguments."""

    fun: str
    args: tuple[Exp, ...]
    ty: Type

    def children(self) -> Iterator[Exp]:
        return iter(self.args)


@dataclass(frozen=True)
class TupleElemE(Exp):
    """Projection of the ``index``-th component (0-based) of a tuple."""

    tup: Exp
    index: int
    ty: Type = field(init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.tup.ty, TupleT):
            raise ValueError(f"projection from non-tuple {self.tup.ty!r}")
        object.__setattr__(self, "ty", self.tup.ty.elts[self.index])

    def children(self) -> Iterator[Exp]:
        return iter((self.tup,))


@dataclass(frozen=True)
class IfE(Exp):
    """Conditional; both branches have the same type, the condition is Bool."""

    cond: Exp
    then_: Exp
    else_: Exp
    ty: Type = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ty", self.then_.ty)

    def children(self) -> Iterator[Exp]:
        return iter((self.cond, self.then_, self.else_))


@dataclass(frozen=True)
class BinOpE(Exp):
    """Binary operation on atoms (arithmetic, comparison, boolean, min/max)."""

    op: str
    lhs: Exp
    rhs: Exp
    ty: Type

    def children(self) -> Iterator[Exp]:
        return iter((self.lhs, self.rhs))


@dataclass(frozen=True)
class UnOpE(Exp):
    """Unary operation on atoms (``not``, ``neg``, ``abs``, casts)."""

    op: str
    operand: Exp
    ty: Type

    def children(self) -> Iterator[Exp]:
        return iter((self.operand,))


#: Binary operators over atoms and their classification.  Comparison
#: operators also apply component-wise to flat tuples (lexicographically),
#: which the front end desugars before reaching the AST.
ARITH_OPS = frozenset({"add", "sub", "mul", "div", "idiv", "mod", "min", "max"})
CMP_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
BOOL_OPS = frozenset({"and", "or"})
#: String operators: concatenation and SQL-style pattern matching
#: ('%' any run, '_' any single character).
STR_OPS = frozenset({"cat", "like"})
BIN_OPS = ARITH_OPS | CMP_OPS | BOOL_OPS | STR_OPS

UN_OPS = frozenset({"not", "neg", "abs", "to_double",
                    "upper", "lower", "strlen",
                    "year", "month", "day", "hour", "minute", "second"})
