"""Content-addressed structural fingerprints for expression trees.

A fingerprint is a SHA-256 digest over a canonical serialization of an
``Exp`` tree.  Two programs receive the same fingerprint iff they are
structurally identical *up to the names of bound variables*: the front
end draws lambda parameters from a global fresh-name counter, so the
"same" query constructed twice carries different ``VarE`` names, and a
plain structural hash would never repeat.  Bound variables are therefore
serialized as de Bruijn indices (distance to the binding ``LamE``).

The serialization embeds everything execution depends on:

* node kinds, operator names, literal values *and* their atomic types
  (so ``1 :: Int`` and ``1.0 :: Double`` differ),
* the element type of list literals (so two empty lists of different
  element types differ),
* for ``TableE``, the table name **and the full declared column schema**
  -- a compiled plan is only reusable against a catalog whose tables
  still have the shape the plan was compiled for.

This is the identity under which the runtime's plan cache
(:mod:`repro.runtime.plancache`) stores compiled bundles.
"""

from __future__ import annotations

import hashlib

from .exp import (
    AppE,
    BinOpE,
    Exp,
    IfE,
    LamE,
    ListE,
    LitE,
    TableE,
    TupleE,
    TupleElemE,
    UnOpE,
    VarE,
)

#: Field separator; never appears in operator names or type renderings.
_SEP = "\x1f"
#: Node terminator, so (a, (b, c)) and ((a, b), c) cannot collide.
_END = "\x1e"


def exp_fingerprint(exp: Exp) -> str:
    """Hex SHA-256 fingerprint of ``exp``'s structure (alpha-invariant)."""
    hasher = hashlib.sha256()
    for token in _tokens(exp, ()):
        hasher.update(token.encode("utf-8", "surrogatepass"))
    return hasher.hexdigest()


def _tokens(e: Exp, bound: tuple[str, ...]):
    """Yield the canonical token stream of ``e``.

    ``bound`` lists enclosing lambda parameters, innermost last; a bound
    ``VarE`` is emitted as its de Bruijn index into that list.
    """
    if isinstance(e, LitE):
        yield f"lit{_SEP}{e.ty.name}{_SEP}{e.value!r}{_END}"
    elif isinstance(e, VarE):
        for depth, name in enumerate(reversed(bound)):
            if name == e.name:
                yield f"var{_SEP}{depth}{_END}"
                return
        # Free variables cannot occur in a closed top-level program, but
        # fingerprinting stays total: fall back to the literal name.
        yield f"freevar{_SEP}{e.name}{_SEP}{e.ty.show()}{_END}"
    elif isinstance(e, TableE):
        cols = ",".join(f"{n}:{t.name}" for n, t in e.columns)
        yield f"table{_SEP}{e.name}{_SEP}{cols}{_END}"
    elif isinstance(e, TupleE):
        yield f"tuple{_SEP}{len(e.parts)}"
        for p in e.parts:
            yield from _tokens(p, bound)
        yield _END
    elif isinstance(e, ListE):
        yield f"list{_SEP}{e.ty.show()}{_SEP}{len(e.elems)}"
        for x in e.elems:
            yield from _tokens(x, bound)
        yield _END
    elif isinstance(e, LamE):
        yield f"lam{_SEP}{e.param_ty.show()}"
        yield from _tokens(e.body, bound + (e.param,))
        yield _END
    elif isinstance(e, AppE):
        yield f"app{_SEP}{e.fun}{_SEP}{len(e.args)}"
        for a in e.args:
            yield from _tokens(a, bound)
        yield _END
    elif isinstance(e, TupleElemE):
        yield f"elem{_SEP}{e.index}"
        yield from _tokens(e.tup, bound)
        yield _END
    elif isinstance(e, IfE):
        yield "if"
        yield from _tokens(e.cond, bound)
        yield from _tokens(e.then_, bound)
        yield from _tokens(e.else_, bound)
        yield _END
    elif isinstance(e, BinOpE):
        yield f"binop{_SEP}{e.op}"
        yield from _tokens(e.lhs, bound)
        yield from _tokens(e.rhs, bound)
        yield _END
    elif isinstance(e, UnOpE):
        yield f"unop{_SEP}{e.op}"
        yield from _tokens(e.operand, bound)
        yield _END
    else:  # pragma: no cover - the front end only builds the nodes above
        raise TypeError(f"cannot fingerprint {e!r}")
