"""Pretty printer for the expression AST (debugging / the pipeline tour)."""

from __future__ import annotations

from .exp import (
    AppE,
    BinOpE,
    Exp,
    IfE,
    LamE,
    ListE,
    LitE,
    TableE,
    TupleE,
    TupleElemE,
    UnOpE,
    VarE,
)

_OP_SYMBOL = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "idiv": "//",
    "mod": "%", "eq": "==", "ne": "/=", "lt": "<", "le": "<=",
    "gt": ">", "ge": ">=", "and": "&&", "or": "||",
    "min": "`min`", "max": "`max`",
}


def pretty(e: Exp) -> str:
    """Render ``e`` in a compact Haskell-flavoured notation."""
    if isinstance(e, LitE):
        return repr(e.value)
    if isinstance(e, VarE):
        return e.name
    if isinstance(e, TableE):
        return f'table "{e.name}"'
    if isinstance(e, TupleE):
        return "(" + ", ".join(pretty(p) for p in e.parts) + ")"
    if isinstance(e, ListE):
        return "[" + ", ".join(pretty(x) for x in e.elems) + "]"
    if isinstance(e, TupleElemE):
        return f"{pretty(e.tup)}.{e.index}"
    if isinstance(e, LamE):
        return f"(\\{e.param} -> {pretty(e.body)})"
    if isinstance(e, AppE):
        args = " ".join(_atomic(a) for a in e.args)
        return f"{e.fun} {args}" if args else e.fun
    if isinstance(e, IfE):
        return (f"if {pretty(e.cond)} then {pretty(e.then_)} "
                f"else {pretty(e.else_)}")
    if isinstance(e, BinOpE):
        return f"({pretty(e.lhs)} {_OP_SYMBOL[e.op]} {pretty(e.rhs)})"
    if isinstance(e, UnOpE):
        return f"{e.op} {_atomic(e.operand)}"
    raise TypeError(f"unknown Exp node {e!r}")  # pragma: no cover


def _atomic(e: Exp) -> str:
    s = pretty(e)
    if isinstance(e, (AppE, IfE)) or (isinstance(e, UnOpE) and " " in s):
        return f"({s})"
    return s
