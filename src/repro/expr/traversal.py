"""Generic traversals over the expression AST."""

from __future__ import annotations

from typing import Callable, Iterator

from .exp import Exp, LamE, TableE, VarE


def walk(e: Exp) -> Iterator[Exp]:
    """Yield ``e`` and every sub-expression, pre-order."""
    stack = [e]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def free_vars(e: Exp) -> frozenset[str]:
    """Names of variables occurring free in ``e``."""

    def go(node: Exp, bound: frozenset[str]) -> frozenset[str]:
        if isinstance(node, VarE):
            return frozenset() if node.name in bound else frozenset({node.name})
        if isinstance(node, LamE):
            return go(node.body, bound | {node.param})
        acc: frozenset[str] = frozenset()
        for child in node.children():
            acc |= go(child, bound)
        return acc

    return go(e, frozenset())


def tables_referenced(e: Exp) -> dict[str, TableE]:
    """All database tables the expression mentions, keyed by name."""
    out: dict[str, TableE] = {}
    for node in walk(e):
        if isinstance(node, TableE):
            out[node.name] = node
    return out


def count_nodes(e: Exp) -> int:
    """Size of the AST (used by tests and plan-size ablations)."""
    return sum(1 for _ in walk(e))


def fold(e: Exp, f: Callable[[Exp, tuple], object]) -> object:
    """Bottom-up fold: ``f`` receives each node and its folded children."""
    return f(e, tuple(fold(c, f) for c in e.children()))
