"""The queryable list prelude.

The paper's library supports "most of the Haskell list prelude functions,
modified to work with queries that return lists" (Section 2); general folds
(``foldr``/``foldl``) and user-defined recursion are explicitly *not*
supported because their compilation would require recursive SQL (Section
3.1) -- requesting them raises :class:`UnsupportedError`.

Every combinator here behaves like its list-prelude namesake, but operates
on :class:`Q`-wrapped queryable values, checks its operand types eagerly
(the dynamic stand-in for the ``QA`` constraints), and merely *constructs*
a deep-embedded expression -- nothing executes until the query is run on a
:class:`repro.runtime.Connection`.

Combinators are available both as module functions (``fmap(f, xs)``) and as
fluent methods on ``Q`` (``xs.map(f)``).
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import QTypeError, UnsupportedError
from ..expr import AppE, LamE
from ..ftypes import (
    BoolT,
    DoubleT,
    IntT,
    ListT,
    TupleT,
    Type,
    is_atom,
    is_flat,
    is_numeric,
    is_orderable,
)
from .q import Q, lam, nil, to_q, tup

__all__ = [
    "fmap", "ffilter", "concat_map", "concat", "sort_with",
    "sort_with_desc", "group_with",
    "all_q", "any_q", "take_while", "drop_while", "span_q", "break_q",
    "zip_with", "head", "last", "the", "tail", "init", "length", "null",
    "reverse", "append", "cons", "snoc", "index", "take", "drop",
    "split_at", "zip_q", "zip3_q", "unzip_q", "nub", "number", "elem",
    "not_elem", "fsum", "favg", "maximum_q", "minimum_q", "and_q", "or_q",
    "singleton", "foldr", "foldl",
]


# ----------------------------------------------------------------------
# internal checks
# ----------------------------------------------------------------------

def _as_list(x: Any, who: str) -> Q:
    q = to_q(x)
    if not isinstance(q.ty, ListT):
        raise QTypeError(f"{who}: expected a list query, got {q.ty.show()}")
    return q


def _elem_rec(xs: Q) -> type | None:
    """Record class of the elements, if the list carries one."""
    return xs.rec


def _mk_lam(f: Callable[..., Any], xs: Q, who: str) -> LamE:
    assert isinstance(xs.ty, ListT)
    try:
        return lam(f, xs.ty.elt, rec=_elem_rec(xs))
    except QTypeError as err:
        raise QTypeError(f"{who}: {err}") from None


def _require_flat_key(ty: Type, who: str) -> None:
    if not (is_flat(ty) and is_orderable(ty)):
        raise QTypeError(f"{who}: key must be a flat orderable type "
                         f"(atoms / tuples of atoms), got {ty.show()}")


# ----------------------------------------------------------------------
# higher-order combinators
# ----------------------------------------------------------------------

def fmap(f: Callable[..., Any], xs: Any) -> Q:
    """``map f xs`` -- apply ``f`` to every element, preserving order.

    Loop-lifting compiles this into a single data-parallel plan: all
    iterated evaluations of ``f``'s body happen in one pass over a table
    (Section 3.2, "Operations").
    """
    xsq = _as_list(xs, "map")
    body = _mk_lam(f, xsq, "map")
    res_ty = ListT(body.body.ty)
    rec = getattr(f, "_result_record", None)
    return Q(AppE("map", (body, xsq.exp), res_ty), rec=rec)


def ffilter(p: Callable[..., Any], xs: Any) -> Q:
    """``filter p xs`` -- keep elements satisfying the Boolean predicate."""
    xsq = _as_list(xs, "filter")
    pl = _mk_lam(p, xsq, "filter")
    if pl.body.ty != BoolT:
        raise QTypeError(f"filter: predicate must return Bool, got "
                         f"{pl.body.ty.show()}")
    return Q(AppE("filter", (pl, xsq.exp), xsq.ty), rec=xsq.rec)


def concat_map(f: Callable[..., Any], xs: Any) -> Q:
    """``concatMap f xs`` -- map a list-returning ``f`` and flatten."""
    xsq = _as_list(xs, "concat_map")
    fl = _mk_lam(f, xsq, "concat_map")
    if not isinstance(fl.body.ty, ListT):
        raise QTypeError(f"concat_map: function must return a list, got "
                         f"{fl.body.ty.show()}")
    return Q(AppE("concat_map", (fl, xsq.exp), fl.body.ty))


def concat(xss: Any) -> Q:
    """``concat xss`` -- flatten one level of list nesting."""
    q = _as_list(xss, "concat")
    assert isinstance(q.ty, ListT)
    if not isinstance(q.ty.elt, ListT):
        raise QTypeError(f"concat: expected a list of lists, got "
                         f"{q.ty.show()}")
    return Q(AppE("concat", (q.exp,), q.ty.elt))


def sort_with(f: Callable[..., Any], xs: Any) -> Q:
    """``sortWith f xs`` -- stable sort by the (flat, orderable) key ``f``."""
    xsq = _as_list(xs, "sort_with")
    fl = _mk_lam(f, xsq, "sort_with")
    _require_flat_key(fl.body.ty, "sort_with")
    return Q(AppE("sort_with", (fl, xsq.exp), xsq.ty), rec=xsq.rec)


def sort_with_desc(f: Callable[..., Any], xs: Any) -> Q:
    """Stable *descending* sort by key ``f`` (backs ``order by ... desc``;
    ties keep their original relative order, like ``sorted(reverse=True)``)."""
    xsq = _as_list(xs, "sort_with_desc")
    fl = _mk_lam(f, xsq, "sort_with_desc")
    _require_flat_key(fl.body.ty, "sort_with_desc")
    return Q(AppE("sort_with_desc", (fl, xsq.exp), xsq.ty), rec=xsq.rec)


def group_with(f: Callable[..., Any], xs: Any) -> Q:
    """``groupWith f xs`` -- group by key ``f``; groups are ordered by key,
    elements inside each group keep their original order (GHC.Exts
    semantics, used by the ``group by`` comprehension extension)."""
    xsq = _as_list(xs, "group_with")
    fl = _mk_lam(f, xsq, "group_with")
    _require_flat_key(fl.body.ty, "group_with")
    return Q(AppE("group_with", (fl, xsq.exp), ListT(xsq.ty)))


def all_q(p: Callable[..., Any], xs: Any) -> Q:
    """``all p xs`` -- do all elements satisfy ``p``? (``True`` on ``[]``)."""
    return _quantifier("all", p, xs)


def any_q(p: Callable[..., Any], xs: Any) -> Q:
    """``any p xs`` -- does some element satisfy ``p``? (``False`` on ``[]``)."""
    return _quantifier("any", p, xs)


def _quantifier(which: str, p: Callable[..., Any], xs: Any) -> Q:
    xsq = _as_list(xs, which)
    pl = _mk_lam(p, xsq, which)
    if pl.body.ty != BoolT:
        raise QTypeError(f"{which}: predicate must return Bool, got "
                         f"{pl.body.ty.show()}")
    return Q(AppE(which, (pl, xsq.exp), BoolT))


def take_while(p: Callable[..., Any], xs: Any) -> Q:
    """``takeWhile p xs`` -- longest prefix of elements satisfying ``p``."""
    return _while("take_while", p, xs)


def drop_while(p: Callable[..., Any], xs: Any) -> Q:
    """``dropWhile p xs`` -- remainder after :func:`take_while`."""
    return _while("drop_while", p, xs)


def _while(which: str, p: Callable[..., Any], xs: Any) -> Q:
    xsq = _as_list(xs, which)
    pl = _mk_lam(p, xsq, which)
    if pl.body.ty != BoolT:
        raise QTypeError(f"{which}: predicate must return Bool, got "
                         f"{pl.body.ty.show()}")
    return Q(AppE(which, (pl, xsq.exp), xsq.ty), rec=xsq.rec)


def span_q(p: Callable[..., Any], xs: Any) -> Q:
    """``span p xs = (takeWhile p xs, dropWhile p xs)``."""
    return tup(take_while(p, xs), drop_while(p, xs))


def break_q(p: Callable[..., Any], xs: Any) -> Q:
    """``break p = span (not . p)``."""
    return span_q(lambda x: ~to_q(p(x), hint=BoolT), xs)


def zip_with(f: Callable[..., Any], xs: Any, ys: Any) -> Q:
    """``zipWith f xs ys`` -- desugars to ``map (uncurry f) (zip xs ys)``."""
    return fmap(lambda pair: f(pair[0], pair[1]), zip_q(xs, ys))


# ----------------------------------------------------------------------
# first-order combinators
# ----------------------------------------------------------------------

def head(xs: Any) -> Q:
    """``head xs`` -- first element; partial (errors at runtime on ``[]``)."""
    q = _as_list(xs, "head")
    return Q(AppE("head", (q.exp,), q.ty.elt), rec=q.rec)


def last(xs: Any) -> Q:
    """``last xs`` -- final element; partial on ``[]``."""
    q = _as_list(xs, "last")
    return Q(AppE("last", (q.exp,), q.ty.elt), rec=q.rec)


def the(xs: Any) -> Q:
    """``the xs`` -- the common value of a non-empty all-equal list.

    Used on group keys after ``group by`` (Section 2).  The relational
    implementation returns the group representative (the first element);
    as in GHC.Exts, applying ``the`` to a list with differing elements is a
    programming error -- the reference interpreter checks it, compiled
    plans do not.
    """
    q = _as_list(xs, "the")
    if not is_flat(q.ty.elt):
        raise QTypeError(f"the: requires flat elements, got "
                         f"{q.ty.elt.show()}")
    return Q(AppE("the", (q.exp,), q.ty.elt), rec=q.rec)


def tail(xs: Any) -> Q:
    """``tail xs`` -- all but the first element; partial on ``[]``."""
    q = _as_list(xs, "tail")
    return Q(AppE("tail", (q.exp,), q.ty), rec=q.rec)


def init(xs: Any) -> Q:
    """``init xs`` -- all but the last element; partial on ``[]``."""
    q = _as_list(xs, "init")
    return Q(AppE("init", (q.exp,), q.ty), rec=q.rec)


def length(xs: Any) -> Q:
    """``length xs``."""
    q = _as_list(xs, "length")
    return Q(AppE("length", (q.exp,), IntT))


def null(xs: Any) -> Q:
    """``null xs`` -- is the list empty?"""
    q = _as_list(xs, "null")
    return Q(AppE("null", (q.exp,), BoolT))


def reverse(xs: Any) -> Q:
    """``reverse xs`` (order-sensitive: relies on the ``pos`` encoding)."""
    q = _as_list(xs, "reverse")
    return Q(AppE("reverse", (q.exp,), q.ty), rec=q.rec)


def append(xs: Any, ys: Any) -> Q:
    """``xs ++ ys`` -- order-preserving concatenation of two lists."""
    xsq = _as_list(xs, "append")
    ysq = to_q(ys, hint=xsq.ty)
    return Q(AppE("append", (xsq.exp, ysq.exp), xsq.ty), rec=xsq.rec)


def cons(x: Any, xs: Any) -> Q:
    """``x : xs`` -- prepend an element."""
    xsq = _as_list(xs, "cons")
    xq = to_q(x, hint=xsq.ty.elt)
    return Q(AppE("cons", (xq.exp, xsq.exp), xsq.ty), rec=xsq.rec)


def snoc(xs: Any, x: Any) -> Q:
    """Append a single element at the end (``xs ++ [x]``)."""
    xsq = _as_list(xs, "snoc")
    return append(xsq, singleton(to_q(x, hint=xsq.ty.elt)))


def singleton(x: Any) -> Q:
    """``[x]`` -- the one-element list."""
    xq = to_q(x)
    empty = nil(xq.ty)
    return cons(xq, empty)


def index(xs: Any, i: Any) -> Q:
    """``xs !! i`` -- 0-based positional access; partial out of bounds."""
    q = _as_list(xs, "index")
    iq = to_q(i, hint=IntT)
    if iq.ty != IntT:
        raise QTypeError(f"index: expected Int index, got {iq.ty.show()}")
    return Q(AppE("index", (q.exp, iq.exp), q.ty.elt), rec=q.rec)


def take(n: Any, xs: Any) -> Q:
    """``take n xs`` -- first ``n`` elements (total; clamps like Haskell)."""
    return _slice("take", n, xs)


def drop(n: Any, xs: Any) -> Q:
    """``drop n xs`` -- all but the first ``n`` elements (total)."""
    return _slice("drop", n, xs)


def _slice(which: str, n: Any, xs: Any) -> Q:
    q = _as_list(xs, which)
    nq = to_q(n, hint=IntT)
    if nq.ty != IntT:
        raise QTypeError(f"{which}: expected Int count, got {nq.ty.show()}")
    return Q(AppE(which, (nq.exp, q.exp), q.ty), rec=q.rec)


def split_at(n: Any, xs: Any) -> Q:
    """``splitAt n xs = (take n xs, drop n xs)``."""
    return tup(take(n, xs), drop(n, xs))


def zip_q(xs: Any, ys: Any) -> Q:
    """``zip xs ys`` -- positional pairing, truncating to the shorter list."""
    xsq = _as_list(xs, "zip")
    ysq = _as_list(ys, "zip")
    res = ListT(TupleT((xsq.ty.elt, ysq.ty.elt)))
    return Q(AppE("zip", (xsq.exp, ysq.exp), res))


def zip3_q(xs: Any, ys: Any, zs: Any) -> Q:
    """``zip3`` -- desugars to two binary zips."""
    pairs = zip_q(zip_q(xs, ys), zs)
    return fmap(lambda p: tup(p[0][0], p[0][1], p[1]), pairs)


def unzip_q(xys: Any) -> Q:
    """``unzip xys = (map fst xys, map snd xys)``."""
    q = _as_list(xys, "unzip")
    if not (isinstance(q.ty.elt, TupleT) and len(q.ty.elt.elts) == 2):
        raise QTypeError(f"unzip: expected a list of pairs, got "
                         f"{q.ty.show()}")
    return tup(fmap(lambda p: p[0], q), fmap(lambda p: p[1], q))


def nub(xs: Any) -> Q:
    """``nub xs`` -- remove duplicates, keeping first occurrences in order."""
    q = _as_list(xs, "nub")
    if not is_flat(q.ty.elt):
        raise QTypeError(f"nub: requires flat elements, got "
                         f"{q.ty.elt.show()}")
    return Q(AppE("nub", (q.exp,), q.ty), rec=q.rec)


def number(xs: Any) -> Q:
    """``number xs`` -- pair every element with its 1-based position.

    A DSH extension that exposes the relational ``pos`` column directly.
    """
    q = _as_list(xs, "number")
    return Q(AppE("number", (q.exp,), ListT(TupleT((q.ty.elt, IntT)))))


def elem(x: Any, xs: Any) -> Q:
    """``x `elem` xs`` -- membership test (flat element types)."""
    xsq = _as_list(xs, "elem")
    xq = to_q(x, hint=xsq.ty.elt)
    if not is_flat(xq.ty):
        raise QTypeError(f"elem: requires flat elements, got {xq.ty.show()}")
    return any_q(lambda y: y == xq, xsq)


def not_elem(x: Any, xs: Any) -> Q:
    """``x `notElem` xs``."""
    return ~elem(x, xs)


# ----------------------------------------------------------------------
# special folds (the only folds the paper supports, Section 3.1)
# ----------------------------------------------------------------------

def fsum(xs: Any) -> Q:
    """``sum xs`` -- total; ``0`` on the empty list."""
    q = _as_list(xs, "sum")
    _require_numeric_list(q, "sum")
    return Q(AppE("sum", (q.exp,), q.ty.elt))


def favg(xs: Any) -> Q:
    """``avg xs`` -- arithmetic mean as ``Double``; partial on ``[]``
    (a DSH extension mirroring SQL's ``AVG``)."""
    q = _as_list(xs, "avg")
    _require_numeric_list(q, "avg")
    return Q(AppE("avg", (q.exp,), DoubleT))


def maximum_q(xs: Any) -> Q:
    """``maximum xs`` -- partial on ``[]``; orderable atoms."""
    return _extremum("maximum", xs)


def minimum_q(xs: Any) -> Q:
    """``minimum xs`` -- partial on ``[]``; orderable atoms."""
    return _extremum("minimum", xs)


def _extremum(which: str, xs: Any) -> Q:
    q = _as_list(xs, which)
    if not (is_atom(q.ty.elt) and is_orderable(q.ty.elt)):
        raise QTypeError(f"{which}: requires orderable atom elements, got "
                         f"{q.ty.elt.show()}")
    return Q(AppE(which, (q.exp,), q.ty.elt))


def and_q(xs: Any) -> Q:
    """``and xs`` -- conjunction of a Bool list; ``True`` on ``[]``."""
    return _bool_fold("and", xs)


def or_q(xs: Any) -> Q:
    """``or xs`` -- disjunction of a Bool list; ``False`` on ``[]``."""
    return _bool_fold("or", xs)


def _bool_fold(which: str, xs: Any) -> Q:
    q = _as_list(xs, which)
    if q.ty.elt != BoolT:
        raise QTypeError(f"{which}: expected [Bool], got {q.ty.show()}")
    return Q(AppE(which, (q.exp,), BoolT))


def _require_numeric_list(q: Q, who: str) -> None:
    assert isinstance(q.ty, ListT)
    if not (is_atom(q.ty.elt) and is_numeric(q.ty.elt)):
        raise QTypeError(f"{who}: requires numeric elements, got "
                         f"{q.ty.elt.show()}")


# ----------------------------------------------------------------------
# documented limitations (Section 3.1)
# ----------------------------------------------------------------------

def foldr(*_args: Any, **_kwargs: Any) -> Q:
    """General folds are not supported -- their compilation would require
    recursive queries (common table expressions with recursion), which the
    paper leaves as future work."""
    raise UnsupportedError(
        "general folds (foldr/foldl) cannot be compiled to non-recursive "
        "SQL:1999; the paper's Section 3.1 documents this limitation.  Use "
        "the special folds (sum, maximum, and_q, ...) instead.")


foldl = foldr


# ----------------------------------------------------------------------
# fluent methods on Q
# ----------------------------------------------------------------------

def _method(f: Callable[..., Q], flip: bool = False) -> Callable[..., Q]:
    if flip:
        def m(self: Q, arg: Any) -> Q:
            return f(arg, self)
    else:
        def m(self: Q, *args: Any) -> Q:
            return f(self, *args)
    m.__doc__ = f.__doc__
    return m


Q.map = _method(fmap, flip=True)                # type: ignore[attr-defined]
Q.filter = _method(ffilter, flip=True)          # type: ignore[attr-defined]
Q.concat_map = _method(concat_map, flip=True)   # type: ignore[attr-defined]
Q.sort_with = _method(sort_with, flip=True)     # type: ignore[attr-defined]
Q.group_with = _method(group_with, flip=True)   # type: ignore[attr-defined]
Q.all = _method(all_q, flip=True)               # type: ignore[attr-defined]
Q.any = _method(any_q, flip=True)               # type: ignore[attr-defined]
Q.take_while = _method(take_while, flip=True)   # type: ignore[attr-defined]
Q.drop_while = _method(drop_while, flip=True)   # type: ignore[attr-defined]
Q.concat = _method(concat)                      # type: ignore[attr-defined]
Q.head = _method(head)                          # type: ignore[attr-defined]
Q.last = _method(last)                          # type: ignore[attr-defined]
Q.the = _method(the)                            # type: ignore[attr-defined]
Q.tail = _method(tail)                          # type: ignore[attr-defined]
Q.init = _method(init)                          # type: ignore[attr-defined]
Q.length = _method(length)                      # type: ignore[attr-defined]
Q.null = _method(null)                          # type: ignore[attr-defined]
Q.reverse = _method(reverse)                    # type: ignore[attr-defined]
Q.append = _method(append)                      # type: ignore[attr-defined]
Q.nub = _method(nub)                            # type: ignore[attr-defined]
Q.number = _method(number)                      # type: ignore[attr-defined]
Q.sum = _method(fsum)                           # type: ignore[attr-defined]
Q.avg = _method(favg)                           # type: ignore[attr-defined]
Q.maximum = _method(maximum_q)                  # type: ignore[attr-defined]
Q.minimum = _method(minimum_q)                  # type: ignore[attr-defined]
Q.take = _method(take, flip=True)               # type: ignore[attr-defined]
Q.drop = _method(drop, flip=True)               # type: ignore[attr-defined]
