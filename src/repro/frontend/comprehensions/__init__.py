"""Comprehension quasi-quoters: Haskell-style ``qc`` and Python-ast ``pyq``."""

from .pyfrontend import pye, pyq
from .qc import qc, qe

__all__ = ["pye", "pyq", "qc", "qe"]
