"""Desugaring comprehensions into list-prelude combinators.

This implements the "well-known desugaring approach" the paper cites for
its quasi-quoter (step 1 of Figure 2), extended with the ``group by`` /
``order by`` clauses of Peyton Jones & Wadler's *Comprehensive
Comprehensions* [16]:

* a generator extends the *binding stream* via ``concat_map``;
* a guard filters the stream;
* ``let`` pairs every stream element with the bound value;
* ``then group by k`` applies ``group_with`` and *rebinds every variable
  to the list of its values within the group* (which is why the paper's
  running example writes ``the cat`` and treats ``fac`` as a list);
* ``then sortWith by k`` / ``order by k [desc]`` applies a stable sort;
* the head expression is finally mapped over the stream.

The stream is represented as a left-nested pair chain; binders are
extractor functions from the stream element to the bound value, so the
whole translation stays compositional.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ...errors import ComprehensionSyntaxError, QTypeError
from ...ftypes import ListT
from .. import combinators as C
from ..q import Q, cond, max_q, min_q, nil, to_q, tup
from . import parser as P

#: Builtins callable by name inside a comprehension, with Haskell-style
#: aliases alongside the snake_case names.
_BUILTIN_FNS: dict[str, Callable[..., Any]] = {
    "map": lambda f, xs: C.fmap(f, xs),
    "filter": lambda f, xs: C.ffilter(f, xs),
    "concatMap": C.concat_map, "concat_map": C.concat_map,
    "concat": C.concat,
    "sortWith": C.sort_with, "sort_with": C.sort_with,
    "groupWith": C.group_with, "group_with": C.group_with,
    "takeWhile": C.take_while, "take_while": C.take_while,
    "dropWhile": C.drop_while, "drop_while": C.drop_while,
    "zipWith": C.zip_with, "zip_with": C.zip_with,
    "all": C.all_q, "any": C.any_q,
    "and": C.and_q, "or": C.or_q,
    "head": C.head, "last": C.last, "the": C.the,
    "tail": C.tail, "init": C.init,
    "length": C.length, "null": C.null, "reverse": C.reverse,
    "append": C.append, "cons": C.cons, "snoc": C.snoc,
    "singleton": C.singleton,
    "index": C.index, "take": C.take, "drop": C.drop,
    "splitAt": C.split_at, "split_at": C.split_at,
    "zip": C.zip_q, "zip3": C.zip3_q, "unzip": C.unzip_q,
    "nub": C.nub, "number": C.number,
    "elem": C.elem, "notElem": C.not_elem, "not_elem": C.not_elem,
    "sum": C.fsum, "avg": C.favg,
    "maximum": C.maximum_q, "minimum": C.minimum_q,
    "min": min_q, "max": max_q,
    "fst": lambda q: q[0], "snd": lambda q: q[1],
    "abs": abs,
    "toDouble": lambda q: to_q(q).to_double(),
    "to_double": lambda q: to_q(q).to_double(),
    "cond": cond,
    "span": C.span_q, "break": C.break_q,
    "foldr": C.foldr, "foldl": C.foldl,
}

Scope = Mapping[str, Any]
Extractor = Callable[[Q], Q]


def desugar_comprehension(comp: P.PComp, env: Scope) -> Q:
    """Lower a parsed comprehension to a combinator query."""
    stream, binders = None, {}
    for qual in _schedule_guards(comp.quals):
        stream, binders = _step(qual, stream, binders, env)
    if stream is None:
        # No generator at all: [e | guards] behaves like a 0/1-element list.
        stream = to_q([0])
        binders = {}
    return C.fmap(lambda t: _eval(comp.head, _scope(binders, t, env)), stream)


def _conjuncts(e: P.PExpr) -> list[P.PExpr]:
    """Split a guard into its top-level ``and`` conjuncts."""
    if isinstance(e, P.PBin) and e.op == "and":
        return _conjuncts(e.lhs) + _conjuncts(e.rhs)
    return [e]


def _schedule_guards(quals: tuple[P.PQual, ...]) -> list[P.PQual]:
    """Attach each guard conjunct at the earliest qualifier that binds its
    variables (classic comprehension guard pushdown).

    Filtering early keeps generator cross products small -- the
    comprehension-level half of the paper's "join graph isolation" [10];
    the compiler's decorrelation rule (``repro.core``) is the other half.
    Guards never move across a ``group by`` (it rebinds every variable);
    moving across sorts and unrelated generators is semantics-preserving
    for the pure predicates the query language admits.
    """
    slots: list[tuple[P.PQual, list[P.PExpr]]] = []  # (qual, guards after)
    bound_after: list[set[str]] = []  # names bound once slot i has run
    bound: set[str] = set()
    barrier = 0  # first slot index a guard may attach to (post group-by)

    def attach(conj: P.PExpr) -> None:
        deps = _names(conj)
        target = None
        for i in range(barrier, len(slots)):
            if deps & bound <= bound_after[i]:
                target = i
                break
        if target is None and slots:
            target = len(slots) - 1
        if target is None:
            slots.append((P.PGuard(conj), []))
            bound_after.append(set(bound))
            return
        qual, _ = slots[target]
        if (isinstance(qual, FusedGen)
                and deps & bound <= _pat_names(qual.pat)):
            qual.fused.append(conj)
        else:
            slots[target][1].append(conj)

    for qual in quals:
        if isinstance(qual, P.PGuard):
            for conj in _conjuncts(qual.cond):
                attach(conj)
            continue
        if isinstance(qual, P.PGen):
            qual = FusedGen(qual.pat, qual.src, [])
            bound |= _pat_names(qual.pat)
        elif isinstance(qual, P.PLet):
            bound.add(qual.name)
        slots.append((qual, []))
        bound_after.append(set(bound))
        if isinstance(qual, P.PGroup):
            barrier = len(slots)

    out: list[P.PQual] = []
    for qual, guards in slots:
        out.append(qual)
        out.extend(P.PGuard(g) for g in guards)
    return out


class FusedGen(P.PQual):
    """A generator with guard conjuncts fused into its source: the source
    list is filtered *before* it is paired with the outer stream."""

    def __init__(self, pat: P.PPat, src: P.PExpr, fused: list[P.PExpr]):
        self.pat = pat
        self.src = src
        self.fused = fused


def _step(qual: P.PQual, stream: Q | None,
          binders: dict[str, Extractor], env: Scope):
    if isinstance(qual, (P.PGen, FusedGen)):
        return _add_generator(qual, stream, binders, env)
    if stream is None and not isinstance(qual, P.PGen):
        # Guards/lets before any generator run over the unit stream.
        stream, binders = to_q([0]), dict(binders)
    if isinstance(qual, P.PGuard):
        new = C.ffilter(
            lambda t: _eval(qual.cond, _scope(binders, t, env)), stream)
        return new, binders
    if isinstance(qual, P.PLet):
        new = C.fmap(
            lambda t: tup(t, _eval(qual.value, _scope(binders, t, env))),
            stream)
        shifted = {n: _compose(ex, 0) for n, ex in binders.items()}
        shifted[qual.name] = _compose(_identity, 1)
        return new, shifted
    if isinstance(qual, P.PGroup):
        new = C.group_with(
            lambda t: _eval(qual.key, _scope(binders, t, env)), stream)
        grouped = {
            n: _group_binder(ex) for n, ex in binders.items()
        }
        return new, grouped
    if isinstance(qual, P.PSort):
        if qual.descending:
            new = C.sort_with_desc(
                lambda t: _eval(qual.key, _scope(binders, t, env)), stream)
        else:
            new = C.sort_with(
                lambda t: _eval(qual.key, _scope(binders, t, env)), stream)
        return new, binders
    raise ComprehensionSyntaxError(f"unknown qualifier {qual!r}")


def _add_generator(gen: "P.PGen | FusedGen", stream: Q | None,
                   binders: dict[str, Extractor], env: Scope):
    pat = gen.pat
    if stream is None:
        src = _generator_source(gen, dict(env))
        new_binders: dict[str, Extractor] = {}
        _bind_pattern(pat, _identity, new_binders)
        return src, new_binders
    # Dependent generators: the source may mention earlier variables, so it
    # is (re-)evaluated inside the iteration -- loop-lifting turns this into
    # a single data-parallel plan regardless.
    new = C.concat_map(
        lambda t: C.fmap(
            lambda y: tup(t, y),
            _generator_source(gen, _scope(binders, t, env))),
        stream)
    shifted = {n: _compose(ex, 0) for n, ex in binders.items()}
    _bind_pattern(pat, _compose(_identity, 1), shifted)
    return new, shifted


def _generator_source(gen: "P.PGen | FusedGen", scope: dict) -> Q:
    """Evaluate a generator source, applying fused guard conjuncts as a
    filter over the source *before* it is paired with the stream."""
    src = _as_list_source(_eval(gen.src, scope))
    fused = getattr(gen, "fused", None)
    if not fused:
        return src

    def pred(y: Q) -> Q:
        inner = dict(scope)
        _destructure(gen.pat, y, inner)
        out = to_q(_eval(fused[0], inner))
        for conj in fused[1:]:
            out = out & to_q(_eval(conj, inner))
        return out

    return C.ffilter(pred, src)


def _as_list_source(value: Any) -> Q:
    src = to_q(value)
    if not isinstance(src.ty, ListT):
        raise QTypeError(f"generator source must be a list query, got "
                         f"{src.ty.show()}")
    return src


def _bind_pattern(pat: P.PPat, extract: Extractor,
                  binders: dict[str, Extractor]) -> None:
    if isinstance(pat, P.PWildPat):
        return
    if isinstance(pat, P.PVarPat):
        binders[pat.name] = extract
        return
    if isinstance(pat, P.PTuplePat):
        for i, sub in enumerate(pat.parts):
            _bind_pattern(sub, _index_extract(extract, i), binders)
        return
    raise ComprehensionSyntaxError(f"unsupported pattern {pat!r}")


def _identity(t: Q) -> Q:
    return t


def _compose(ex: Extractor, idx: int) -> Extractor:
    return lambda t: ex(t[idx])


def _index_extract(ex: Extractor, idx: int) -> Extractor:
    return lambda t: ex(t)[idx]


def _group_binder(ex: Extractor) -> Extractor:
    """After ``group by``, a variable denotes the list of its values within
    the group."""
    return lambda g: C.fmap(lambda t: ex(t), g)


def _scope(binders: Mapping[str, Extractor], t: Q, env: Scope) -> dict:
    scope = dict(env)
    for name, ex in binders.items():
        scope[name] = ex(t)
    return scope


def _names(e: P.PExpr) -> set[str]:
    out: set[str] = set()
    stack: list[Any] = [e]
    while stack:
        node = stack.pop()
        if isinstance(node, P.PVar):
            out.add(node.name)
        elif isinstance(node, P.PLam):
            out |= _names(node.body) - _pat_names(node.pat)
        elif isinstance(node, P.PComp):
            out |= _comp_free_names(node)
        elif hasattr(node, "__dataclass_fields__"):
            for field in node.__dataclass_fields__:
                val = getattr(node, field)
                if isinstance(val, (P.PExpr, P.PQual, P.PPat)):
                    stack.append(val)
                elif isinstance(val, tuple):
                    stack.extend(v for v in val
                                 if isinstance(v, (P.PExpr, P.PQual, P.PPat)))
    return out


def _pat_names(pat: P.PPat) -> set[str]:
    if isinstance(pat, P.PVarPat):
        return {pat.name}
    if isinstance(pat, P.PTuplePat):
        names: set[str] = set()
        for sub in pat.parts:
            names |= _pat_names(sub)
        return names
    return set()


def _comp_free_names(comp: P.PComp) -> set[str]:
    bound: set[str] = set()
    free: set[str] = set()
    for qual in comp.quals:
        if isinstance(qual, P.PGen):
            free |= _names(qual.src) - bound
            bound |= _pat_names(qual.pat)
        elif isinstance(qual, P.PGuard):
            free |= _names(qual.cond) - bound
        elif isinstance(qual, P.PLet):
            free |= _names(qual.value) - bound
            bound.add(qual.name)
        elif isinstance(qual, (P.PGroup, P.PSort)):
            free |= _names(qual.key) - bound
    free |= _names(comp.head) - bound
    return free


# ----------------------------------------------------------------------
# expression evaluation
# ----------------------------------------------------------------------

def _eval(e: P.PExpr, scope: dict) -> Any:
    if isinstance(e, P.PLit):
        return to_q(e.value)
    if isinstance(e, P.PVar):
        return _lookup(e.name, scope)
    if isinstance(e, P.PTuple):
        return tup(*(_eval(p, scope) for p in e.parts))
    if isinstance(e, P.PList):
        if not e.elems:
            raise ComprehensionSyntaxError(
                "the element type of a bare [] cannot be inferred; use "
                "nil(ty) passed through the environment")
        elems = [to_q(_eval(x, scope)) for x in e.elems]
        out = nil(elems[0].ty)
        for elem in reversed(elems):
            out = C.cons(elem, out)
        return out
    if isinstance(e, P.PProj):
        operand = to_q(_eval(e.operand, scope))
        if isinstance(e.field, int):
            return operand[e.field]
        return getattr(operand, e.field)
    if isinstance(e, P.PBin):
        return _eval_bin(e, scope)
    if isinstance(e, P.PUn):
        operand = to_q(_eval(e.operand, scope))
        return ~operand if e.op == "not" else -operand
    if isinstance(e, P.PIf):
        return cond(_eval(e.cond, scope), _eval(e.then_, scope),
                    _eval(e.else_, scope))
    if isinstance(e, P.PLam):
        def fn(arg: Q) -> Any:
            inner = dict(scope)
            _destructure(e.pat, arg, inner)
            return _eval(e.body, inner)
        return fn
    if isinstance(e, P.PCall):
        fn = _eval_callee(e.fn, scope)
        args = [_eval(a, scope) for a in e.args]
        return fn(*args)
    if isinstance(e, P.PComp):
        return desugar_comprehension(e, scope)
    raise ComprehensionSyntaxError(f"cannot evaluate {e!r}")


def _destructure(pat: P.PPat, value: Q, scope: dict) -> None:
    if isinstance(pat, P.PWildPat):
        return
    if isinstance(pat, P.PVarPat):
        scope[pat.name] = value
        return
    if isinstance(pat, P.PTuplePat):
        for i, sub in enumerate(pat.parts):
            _destructure(sub, to_q(value)[i], scope)
        return
    raise ComprehensionSyntaxError(f"unsupported pattern {pat!r}")


def _eval_bin(e: P.PBin, scope: dict) -> Any:
    lhs = _eval(e.lhs, scope)
    rhs = _eval(e.rhs, scope)
    if e.op in ("append", "cons"):
        return {"append": C.append, "cons": C.cons}[e.op](lhs, rhs)
    lq = to_q(lhs)
    ops: dict[str, Callable[[Q, Any], Q]] = {
        "or": lambda a, b: a | b,
        "and": lambda a, b: a & b,
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b,
        "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b,
        "ge": lambda a, b: a >= b,
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "mul": lambda a, b: a * b,
        "div": lambda a, b: a / b,
        "idiv": lambda a, b: a // b,
        "mod": lambda a, b: a % b,
    }
    return ops[e.op](lq, rhs)


def _eval_callee(e: P.PExpr, scope: dict) -> Callable[..., Any]:
    if isinstance(e, P.PVar):
        if e.name in scope:
            fn = scope[e.name]
            if not callable(fn):
                raise ComprehensionSyntaxError(
                    f"{e.name!r} is not callable")
            return fn
        if e.name in _BUILTIN_FNS:
            return _BUILTIN_FNS[e.name]
        raise ComprehensionSyntaxError(f"unknown function {e.name!r}")
    fn = _eval(e, scope)
    if not callable(fn):
        raise ComprehensionSyntaxError(f"expression is not callable: {e!r}")
    return fn


def _lookup(name: str, scope: dict) -> Any:
    if name in scope:
        val = scope[name]
        return val if callable(val) else to_q(val)
    if name in _BUILTIN_FNS:
        return _BUILTIN_FNS[name]
    raise ComprehensionSyntaxError(
        f"unbound name {name!r}; bind it via a generator, 'let', or pass "
        f"it as a keyword argument to qc()")
