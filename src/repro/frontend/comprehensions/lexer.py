"""Tokenizer for the ``qc`` comprehension quasi-quoter.

The surface syntax follows the paper's examples: Haskell list
comprehensions ``[e | quals]`` extended with the SQL-inspired ``then group
by`` / ``then sortWith by`` / ``order by`` clauses of the "Comprehensive
Comprehensions" extension [16], with Pythonic function application
``f(x, y)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...errors import ComprehensionSyntaxError

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = [
    "<-", "==", "/=", "!=", "<=", ">=", "++", "//", "&&", "||", "->",
    "[", "]", "(", ")", ",", "|", "<", ">", "+", "-", "*", "/", "%",
    ".", "=", ":", "\\", "_",
]

_KEYWORDS = {
    "let", "then", "group", "by", "order", "using", "if", "else",
    "and", "or", "not", "in", "True", "False", "desc", "asc",
}

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>--[^\n]*)
    | (?P<float>\d+\.\d+([eE][+-]?\d+)?|\d+[eE][+-]?\d+)
    | (?P<int>\d+)
    | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
    | (?P<name>[A-Za-z][A-Za-z0-9_']*|_[A-Za-z0-9_']+)
    | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str          # 'name', 'kw', 'int', 'float', 'string', 'op', 'eof'
    text: str
    pos: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text!r}@{self.pos}"


def tokenize(src: str) -> list[Token]:
    """Scan ``src`` into tokens; raises on unknown characters."""
    out: list[Token] = []
    i = 0
    while i < len(src):
        m = _TOKEN_RE.match(src, i)
        if m is None:
            raise ComprehensionSyntaxError(
                f"unexpected character {src[i]!r} at offset {i} in "
                f"comprehension: {src!r}")
        i = m.end()
        kind = m.lastgroup
        if kind in ("ws", "comment"):
            continue
        text = m.group()
        if kind == "name" and text in _KEYWORDS:
            kind = "kw"
        if kind == "string":
            text = _unescape(text)
        out.append(Token(kind, text, m.start()))
    out.append(Token("eof", "", len(src)))
    return out


def _unescape(quoted: str) -> str:
    body = quoted[1:-1]
    return (body.replace("\\\\", "\x00")
                .replace("\\n", "\n").replace("\\t", "\t")
                .replace('\\"', '"').replace("\\'", "'")
                .replace("\x00", "\\"))
