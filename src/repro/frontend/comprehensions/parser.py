"""Recursive-descent parser for the ``qc`` quasi-quoter.

Produces a small surface AST (``PExpr``/``PQual``/``PPat``) that the
desugarer lowers onto the combinator library.  Operator precedence follows
Haskell's (boolean < comparison < ``++``/``:`` < additive < multiplicative
< unary < application/projection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...errors import ComprehensionSyntaxError
from .lexer import Token, tokenize


# ----------------------------------------------------------------------
# surface AST
# ----------------------------------------------------------------------

class PExpr:
    pass


@dataclass(frozen=True)
class PLit(PExpr):
    value: object


@dataclass(frozen=True)
class PVar(PExpr):
    name: str


@dataclass(frozen=True)
class PTuple(PExpr):
    parts: tuple[PExpr, ...]


@dataclass(frozen=True)
class PList(PExpr):
    elems: tuple[PExpr, ...]


@dataclass(frozen=True)
class PBin(PExpr):
    op: str
    lhs: PExpr
    rhs: PExpr


@dataclass(frozen=True)
class PUn(PExpr):
    op: str
    operand: PExpr


@dataclass(frozen=True)
class PCall(PExpr):
    fn: PExpr
    args: tuple[PExpr, ...]


@dataclass(frozen=True)
class PProj(PExpr):
    operand: PExpr
    field: "int | str"


@dataclass(frozen=True)
class PIf(PExpr):
    cond: PExpr
    then_: PExpr
    else_: PExpr


@dataclass(frozen=True)
class PLam(PExpr):
    pat: "PPat"
    body: PExpr


@dataclass(frozen=True)
class PComp(PExpr):
    head: PExpr
    quals: tuple["PQual", ...]


# patterns ---------------------------------------------------------------

class PPat:
    pass


@dataclass(frozen=True)
class PVarPat(PPat):
    name: str


@dataclass(frozen=True)
class PWildPat(PPat):
    pass


@dataclass(frozen=True)
class PTuplePat(PPat):
    parts: tuple[PPat, ...]


# qualifiers -------------------------------------------------------------

class PQual:
    pass


@dataclass(frozen=True)
class PGen(PQual):
    pat: PPat
    src: PExpr


@dataclass(frozen=True)
class PGuard(PQual):
    cond: PExpr


@dataclass(frozen=True)
class PLet(PQual):
    name: str
    value: PExpr


@dataclass(frozen=True)
class PGroup(PQual):
    key: PExpr


@dataclass(frozen=True)
class PSort(PQual):
    key: PExpr
    descending: bool


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: Sequence[Token], src: str):
        self.tokens = tokens
        self.src = src
        self.i = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.i + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.i]
        if tok.kind != "eof":
            self.i += 1
        return tok

    def at(self, kind: str, text: str | None = None, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        return tok.kind == kind and (text is None or tok.text == text)

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.at(kind, text):
            tok = self.peek()
            want = text or kind
            raise ComprehensionSyntaxError(
                f"expected {want!r} but found {tok.text or 'end of input'!r} "
                f"at offset {tok.pos} in: {self.src!r}")
        return self.next()

    def fail(self, msg: str) -> None:
        tok = self.peek()
        raise ComprehensionSyntaxError(
            f"{msg} at offset {tok.pos} (near {tok.text!r}) in: {self.src!r}")

    # -- entry points -----------------------------------------------------
    def parse_comprehension(self) -> PComp:
        self.expect("op", "[")
        head = self.parse_expr()
        self.expect("op", "|")
        quals = [self.parse_qual()]
        while self.at("op", ","):
            self.next()
            quals.append(self.parse_qual())
        self.expect("op", "]")
        self.expect("eof")
        return PComp(head, tuple(quals))

    def parse_standalone_expr(self) -> PExpr:
        e = self.parse_expr()
        self.expect("eof")
        return e

    # -- qualifiers -------------------------------------------------------
    def parse_qual(self) -> PQual:
        if self.at("kw", "let"):
            self.next()
            name = self.expect("name").text
            self.expect("op", "=")
            return PLet(name, self.parse_expr())
        if self.at("kw", "then"):
            return self._parse_then_clause()
        if self.at("kw", "group") and self.at("kw", "by", ahead=1):
            self.next(), self.next()
            return PGroup(self.parse_expr())
        if self.at("kw", "order") and self.at("kw", "by", ahead=1):
            self.next(), self.next()
            return self._parse_order_key()
        mark = self.i
        pat = self._try_pattern()
        if pat is not None and self.at("op", "<-"):
            self.next()
            return PGen(pat, self.parse_expr())
        self.i = mark
        return PGuard(self.parse_expr())

    def _parse_then_clause(self) -> PQual:
        self.expect("kw", "then")
        if self.at("kw", "group"):
            self.next()
            self.expect("kw", "by")
            key = self.parse_expr()
            if self.at("kw", "using"):  # 'using groupWith' is the default
                self.next()
                self.expect("name")
            return PGroup(key)
        if self.at("name", "sortWith"):
            self.next()
            self.expect("kw", "by")
            return self._parse_order_key()
        self.fail("expected 'group by' or 'sortWith by' after 'then'")
        raise AssertionError  # pragma: no cover

    def _parse_order_key(self) -> PSort:
        key = self.parse_expr()
        descending = False
        if self.at("kw", "desc"):
            self.next()
            descending = True
        elif self.at("kw", "asc"):
            self.next()
        return PSort(key, descending)

    # -- patterns -----------------------------------------------------------
    def _try_pattern(self) -> PPat | None:
        try:
            mark = self.i
            pat = self.parse_pattern()
        except ComprehensionSyntaxError:
            self.i = mark
            return None
        return pat

    def parse_pattern(self) -> PPat:
        if self.at("op", "_"):
            self.next()
            return PWildPat()
        if self.at("name"):
            return PVarPat(self.next().text)
        if self.at("op", "("):
            self.next()
            parts = [self.parse_pattern()]
            while self.at("op", ","):
                self.next()
                parts.append(self.parse_pattern())
            self.expect("op", ")")
            if len(parts) == 1:
                return parts[0]
            return PTuplePat(tuple(parts))
        self.fail("expected a pattern")
        raise AssertionError  # pragma: no cover

    # -- expressions ----------------------------------------------------
    def parse_expr(self) -> PExpr:
        if self.at("kw", "if"):
            self.next()
            cond = self.parse_expr()
            self.expect("kw", "then")
            then_ = self.parse_expr()
            self.expect("kw", "else")
            return PIf(cond, then_, self.parse_expr())
        if self.at("op", "\\"):
            self.next()
            pat = self.parse_pattern()
            self.expect("op", "->")
            return PLam(pat, self.parse_expr())
        return self.parse_or()

    def parse_or(self) -> PExpr:
        e = self.parse_and()
        while self.at("kw", "or") or self.at("op", "||"):
            self.next()
            e = PBin("or", e, self.parse_and())
        return e

    def parse_and(self) -> PExpr:
        e = self.parse_not()
        while self.at("kw", "and") or self.at("op", "&&"):
            self.next()
            e = PBin("and", e, self.parse_not())
        return e

    def parse_not(self) -> PExpr:
        if self.at("kw", "not"):
            self.next()
            return PUn("not", self.parse_not())
        return self.parse_comparison()

    _CMP = {"==": "eq", "/=": "ne", "!=": "ne", "<": "lt", "<=": "le",
            ">": "gt", ">=": "ge"}

    def parse_comparison(self) -> PExpr:
        e = self.parse_listops()
        if self.at("op") and self.peek().text in self._CMP:
            op = self._CMP[self.next().text]
            return PBin(op, e, self.parse_listops())
        return e

    def parse_listops(self) -> PExpr:
        # ++ and : are right-associative, same precedence (Haskell level 5)
        e = self.parse_additive()
        if self.at("op", "++"):
            self.next()
            return PBin("append", e, self.parse_listops())
        if self.at("op", ":"):
            self.next()
            return PBin("cons", e, self.parse_listops())
        return e

    def parse_additive(self) -> PExpr:
        e = self.parse_multiplicative()
        while self.at("op") and self.peek().text in ("+", "-"):
            op = "add" if self.next().text == "+" else "sub"
            e = PBin(op, e, self.parse_multiplicative())
        return e

    def parse_multiplicative(self) -> PExpr:
        e = self.parse_unary()
        ops = {"*": "mul", "/": "div", "//": "idiv", "%": "mod"}
        while self.at("op") and self.peek().text in ops:
            op = ops[self.next().text]
            e = PBin(op, e, self.parse_unary())
        return e

    def parse_unary(self) -> PExpr:
        if self.at("op", "-"):
            self.next()
            return PUn("neg", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> PExpr:
        e = self.parse_atom()
        while True:
            if self.at("op", "("):
                self.next()
                args: list[PExpr] = []
                if not self.at("op", ")"):
                    args.append(self.parse_expr())
                    while self.at("op", ","):
                        self.next()
                        args.append(self.parse_expr())
                self.expect("op", ")")
                e = PCall(e, tuple(args))
            elif self.at("op", "."):
                self.next()
                if self.at("int"):
                    e = PProj(e, int(self.next().text))
                elif self.at("name"):
                    e = PProj(e, self.next().text)
                else:
                    self.fail("expected a tuple index or field name after '.'")
            else:
                return e

    def parse_atom(self) -> PExpr:
        if self.at("int"):
            return PLit(int(self.next().text))
        if self.at("float"):
            return PLit(float(self.next().text))
        if self.at("string"):
            return PLit(self.next().text)
        if self.at("kw", "True"):
            self.next()
            return PLit(True)
        if self.at("kw", "False"):
            self.next()
            return PLit(False)
        if self.at("name"):
            return PVar(self.next().text)
        if self.at("op", "("):
            self.next()
            parts = [self.parse_expr()]
            while self.at("op", ","):
                self.next()
                parts.append(self.parse_expr())
            self.expect("op", ")")
            if len(parts) == 1:
                return parts[0]
            return PTuple(tuple(parts))
        if self.at("op", "["):
            return self._parse_bracket()
        self.fail("expected an expression")
        raise AssertionError  # pragma: no cover

    def _parse_bracket(self) -> PExpr:
        """Either a list literal ``[a, b]`` or a nested comprehension
        ``[e | quals]``."""
        self.expect("op", "[")
        if self.at("op", "]"):
            self.next()
            return PList(())
        first = self.parse_expr()
        if self.at("op", "|"):
            self.next()
            quals = [self.parse_qual()]
            while self.at("op", ","):
                self.next()
                quals.append(self.parse_qual())
            self.expect("op", "]")
            return PComp(first, tuple(quals))
        elems = [first]
        while self.at("op", ","):
            self.next()
            elems.append(self.parse_expr())
        self.expect("op", "]")
        return PList(tuple(elems))


def parse_comprehension(src: str) -> PComp:
    """Parse a full ``[e | quals]`` comprehension."""
    return _Parser(tokenize(src), src).parse_comprehension()


def parse_expression(src: str) -> PExpr:
    """Parse a bare expression in the qc surface syntax."""
    return _Parser(tokenize(src), src).parse_standalone_expr()
