"""``pyq`` -- Python-native comprehension syntax via ``ast`` introspection.

Where :func:`qc` gives the paper's Haskell-flavoured surface syntax,
``pyq`` accepts a *Python* list comprehension (as source text) and
desugars it through the standard ``ast`` module::

    pyq('[m for (f, m) in meanings for (fac, f2) in features'
        ' if f == f2 and fac == x]',
        meanings=..., features=..., x=...)

Supported constructs: multiple (dependent) generators with tuple targets,
``if`` guards, conditional expressions, boolean/arith/comparison operators,
nested comprehensions, lambdas, calls to environment functions, and a
mapping of Python builtins onto the query prelude (``len`` -> ``length``,
``sum``, ``max``/``min``, ``any``/``all``, ``sorted(key=...)``,
``reversed``, ``enumerate``, ``zip``, ``abs``, ``float``).

Python has no ``group by`` comprehension syntax; grouping is reached via
``group_with`` / the ``qc`` quoter.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Mapping

from ...errors import ComprehensionSyntaxError, QTypeError
from ...ftypes import ListT
from .. import combinators as C
from ..q import Q, cond, max_q, min_q, to_q, tup


def pyq(source: str, **env: Any) -> Q:
    """Desugar a Python comprehension string into a query."""
    try:
        tree = ast.parse(source.strip(), mode="eval")
    except SyntaxError as err:
        raise ComprehensionSyntaxError(f"invalid Python syntax: {err}") from None
    body = tree.body
    if not isinstance(body, (ast.ListComp, ast.GeneratorExp)):
        raise ComprehensionSyntaxError(
            "pyq expects a list comprehension or generator expression")
    return _comp(body, dict(env))


def pye(source: str, **env: Any) -> Q:
    """Translate a bare Python expression string into a query."""
    try:
        tree = ast.parse(source.strip(), mode="eval")
    except SyntaxError as err:
        raise ComprehensionSyntaxError(f"invalid Python syntax: {err}") from None
    return to_q(_expr(tree.body, dict(env)))


# ----------------------------------------------------------------------
# comprehension desugaring (same stream/binder scheme as qc)
# ----------------------------------------------------------------------

def _comp(node: "ast.ListComp | ast.GeneratorExp", env: dict) -> Q:
    stream: Q | None = None
    binders: dict[str, Callable[[Q], Q]] = {}
    for gen in node.generators:
        if gen.is_async:
            raise ComprehensionSyntaxError("async comprehensions are not queries")
        stream, binders = _add_gen(gen.target, gen.iter, stream, binders, env)
        for guard in gen.ifs:
            stream = C.ffilter(
                lambda t, g=guard: _expr(g, _scope(binders, t, env)), stream)
    assert stream is not None  # Python grammar guarantees >= 1 generator
    return C.fmap(lambda t: _expr(node.elt, _scope(binders, t, env)), stream)


def _add_gen(target: ast.expr, src: ast.expr, stream: Q | None,
             binders: dict, env: dict):
    if stream is None:
        srcq = _as_list(_expr(src, dict(env)))
        fresh: dict[str, Callable[[Q], Q]] = {}
        _bind(target, lambda t: t, fresh)
        return srcq, fresh
    new = C.concat_map(
        lambda t: C.fmap(
            lambda y: tup(t, y),
            _as_list(_expr(src, _scope(binders, t, env)))),
        stream)
    shifted = {n: (lambda t, ex=ex: ex(t[0])) for n, ex in binders.items()}
    _bind(target, lambda t: t[1], shifted)
    return new, shifted


def _bind(target: ast.expr, extract: Callable[[Q], Q], binders: dict) -> None:
    if isinstance(target, ast.Name):
        binders[target.id] = extract
        return
    if isinstance(target, ast.Tuple):
        for i, sub in enumerate(target.elts):
            _bind(sub, lambda t, ex=extract, i=i: ex(t)[i], binders)
        return
    raise ComprehensionSyntaxError(
        f"unsupported comprehension target {ast.dump(target)}")


def _scope(binders: Mapping[str, Callable[[Q], Q]], t: Q, env: dict) -> dict:
    scope = dict(env)
    for name, ex in binders.items():
        scope[name] = ex(t)
    return scope


def _as_list(value: Any) -> Q:
    q = to_q(value)
    if not isinstance(q.ty, ListT):
        raise QTypeError(f"generator source must be a list query, got "
                         f"{q.ty.show()}")
    return q


# ----------------------------------------------------------------------
# expression translation
# ----------------------------------------------------------------------

_CMP_OPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}

_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.BitAnd: lambda a, b: a & b,
    ast.BitOr: lambda a, b: a | b,
}


def _expr(node: ast.expr, scope: dict) -> Any:
    if isinstance(node, ast.Constant):
        return to_q(node.value)
    if isinstance(node, ast.Name):
        return _name(node.id, scope)
    if isinstance(node, ast.Tuple):
        return tup(*(_expr(e, scope) for e in node.elts))
    if isinstance(node, ast.List):
        elems = [to_q(_expr(e, scope)) for e in node.elts]
        if not elems:
            raise ComprehensionSyntaxError(
                "cannot infer the element type of []; pass nil(ty) via the "
                "environment")
        from ..q import nil
        out = nil(elems[0].ty)
        for elem in reversed(elems):
            out = C.cons(elem, out)
        return out
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        return _comp(node, scope)
    if isinstance(node, ast.Compare):
        return _compare(node, scope)
    if isinstance(node, ast.BoolOp):
        vals = [to_q(_expr(v, scope)) for v in node.values]
        acc = vals[0]
        for v in vals[1:]:
            acc = (acc & v) if isinstance(node.op, ast.And) else (acc | v)
        return acc
    if isinstance(node, ast.BinOp):
        handler = _BIN_OPS.get(type(node.op))
        if handler is None:
            raise ComprehensionSyntaxError(
                f"unsupported operator {type(node.op).__name__}")
        return handler(to_q(_expr(node.left, scope)), _expr(node.right, scope))
    if isinstance(node, ast.UnaryOp):
        operand = to_q(_expr(node.operand, scope))
        if isinstance(node.op, ast.Not):
            return ~operand
        if isinstance(node.op, ast.USub):
            return -operand
        raise ComprehensionSyntaxError(
            f"unsupported unary operator {type(node.op).__name__}")
    if isinstance(node, ast.IfExp):
        return cond(_expr(node.test, scope), _expr(node.body, scope),
                    _expr(node.orelse, scope))
    if isinstance(node, ast.Subscript):
        operand = to_q(_expr(node.value, scope))
        idx = node.slice
        if isinstance(idx, ast.Constant) and isinstance(idx.value, int):
            return operand[idx.value]
        return operand[to_q(_expr(idx, scope))]
    if isinstance(node, ast.Attribute):
        return getattr(to_q(_expr(node.value, scope)), node.attr)
    if isinstance(node, ast.Call):
        return _call(node, scope)
    if isinstance(node, ast.Lambda):
        return _lambda(node, scope)
    if isinstance(node, ast.Starred):
        raise ComprehensionSyntaxError("starred expressions are not queries")
    raise ComprehensionSyntaxError(
        f"unsupported Python construct {type(node).__name__}")


def _compare(node: ast.Compare, scope: dict) -> Q:
    left = to_q(_expr(node.left, scope))
    result: Q | None = None
    for op, comparator in zip(node.ops, node.comparators):
        right = to_q(_expr(comparator, scope))
        if isinstance(op, ast.In):
            clause = C.elem(left, right)
        elif isinstance(op, ast.NotIn):
            clause = C.not_elem(left, right)
        else:
            handler = _CMP_OPS.get(type(op))
            if handler is None:
                raise ComprehensionSyntaxError(
                    f"unsupported comparison {type(op).__name__}")
            clause = handler(left, right)
        result = clause if result is None else (result & clause)
        left = right
    assert result is not None
    return result


def _lambda(node: ast.Lambda, scope: dict) -> Callable[..., Any]:
    params = [a.arg for a in node.args.args]
    if (node.args.vararg or node.args.kwarg or node.args.kwonlyargs
            or node.args.defaults):
        raise ComprehensionSyntaxError(
            "query lambdas take plain positional parameters only")

    def fn(*args: Any) -> Any:
        if len(args) != len(params):
            raise QTypeError(f"lambda expects {len(params)} arguments, "
                             f"got {len(args)}")
        inner = dict(scope)
        inner.update(zip(params, args))
        return _expr(node.body, inner)

    return fn


def _call(node: ast.Call, scope: dict) -> Any:
    if node.keywords and not (isinstance(node.func, ast.Name)
                              and node.func.id == "sorted"):
        raise ComprehensionSyntaxError("keyword arguments are only supported "
                                       "on sorted(xs, key=...)")
    args = [_expr(a, scope) for a in node.args]
    if isinstance(node.func, ast.Name):
        name = node.func.id
        if name in scope and callable(scope[name]):
            return scope[name](*args)
        builtin = _PY_BUILTINS.get(name)
        if builtin is not None:
            return builtin(node, args, scope)
        raise ComprehensionSyntaxError(f"unknown function {name!r}")
    fn = _expr(node.func, scope)
    if not callable(fn):
        raise ComprehensionSyntaxError("expression is not callable")
    return fn(*args)


def _py_sorted(node: ast.Call, args: list, scope: dict) -> Q:
    key: Callable[..., Any] = lambda x: x
    reverse = False
    for kw in node.keywords:
        if kw.arg == "key":
            key = _expr(kw.value, scope)
        elif kw.arg == "reverse":
            if not (isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, bool)):
                raise ComprehensionSyntaxError(
                    "sorted(..., reverse=) must be a literal bool")
            reverse = kw.value.value
        else:
            raise ComprehensionSyntaxError(f"sorted: unknown keyword {kw.arg!r}")
    which = C.sort_with_desc if reverse else C.sort_with
    return which(key, args[0])


def _py_max(node: ast.Call, args: list, scope: dict) -> Q:
    if len(args) == 1:
        return C.maximum_q(args[0])
    if len(args) == 2:
        return max_q(args[0], args[1])
    raise ComprehensionSyntaxError("max takes a list or two scalars")


def _py_min(node: ast.Call, args: list, scope: dict) -> Q:
    if len(args) == 1:
        return C.minimum_q(args[0])
    if len(args) == 2:
        return min_q(args[0], args[1])
    raise ComprehensionSyntaxError("min takes a list or two scalars")


def _py_enumerate(node: ast.Call, args: list, scope: dict) -> Q:
    # Python yields (index, element) starting at 0; number is 1-based (x, i).
    return C.fmap(lambda p: tup(p[1] - 1, p[0]), C.number(args[0]))


_PY_BUILTINS: dict[str, Callable[[ast.Call, list, dict], Any]] = {
    "len": lambda n, a, s: C.length(a[0]),
    "sum": lambda n, a, s: C.fsum(a[0]),
    "abs": lambda n, a, s: abs(to_q(a[0])),
    "float": lambda n, a, s: to_q(a[0]).to_double(),
    "any": lambda n, a, s: C.or_q(a[0]),
    "all": lambda n, a, s: C.and_q(a[0]),
    "reversed": lambda n, a, s: C.reverse(a[0]),
    "list": lambda n, a, s: to_q(a[0]),
    "zip": lambda n, a, s: C.zip_q(a[0], a[1]) if len(a) == 2
                           else C.zip3_q(a[0], a[1], a[2]),
    "sorted": _py_sorted,
    "max": _py_max,
    "min": _py_min,
    "enumerate": _py_enumerate,
}


def _name(name: str, scope: dict) -> Any:
    if name in scope:
        val = scope[name]
        return val if callable(val) else to_q(val)
    if name in ("True", "False"):  # pragma: no cover - Constants in py3
        return to_q(name == "True")
    raise ComprehensionSyntaxError(
        f"unbound name {name!r}; bind it in the comprehension or pass it "
        f"as a keyword argument to pyq()")
