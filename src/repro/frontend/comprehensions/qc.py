"""``qc`` -- the comprehension quasi-quoter (public entry point).

The paper embeds comprehensions via Haskell quasi-quoting::

    [qc| mean | (feat, mean) <- table "meanings", ... |]

In Python the equivalent is a function taking the comprehension source as
a string plus the environment as keyword arguments::

    qc('[mean | (feat, mean) <- meanings, (fac, feat2) <- features,'
       ' feat == feat2 and fac == f]',
       meanings=table("meanings", ...), features=table("features", ...),
       f=f)

Environment values may be queries (``Q``), plain Python values (embedded
via ``toQ``), or callables mapping queries to queries (user-defined query
functions such as the running example's ``descrFacility``).  The full
surface syntax supports generators with (nested) tuple patterns, guards,
``let``, the SQL-inspired ``then group by`` / ``then sortWith by`` /
``order by ... [desc]`` clauses [16], ``if/then/else``, lambdas
``\\x -> e``, nested comprehensions, and the whole combinator library by
name.
"""

from __future__ import annotations

from typing import Any

from ..q import Q, to_q
from .desugar import _eval, desugar_comprehension
from .parser import parse_comprehension, parse_expression


def qc(source: str, **env: Any) -> Q:
    """Quasi-quote a list comprehension; returns a query of list type."""
    comp = parse_comprehension(source)
    return desugar_comprehension(comp, env)


def qe(source: str, **env: Any) -> Q:
    """Quasi-quote a bare expression in the same surface syntax.

    Handy for scalar queries: ``qe('sum([x | (x, y) <- t, y > 0])', t=t)``.
    """
    expr = parse_expression(source)
    return to_q(_eval(expr, dict(env)))
