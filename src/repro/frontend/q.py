"""The ``Q`` wrapper: phantom-typed queryable values.

The paper defines ``data Q a = Q Exp`` and gives every DSH combinator a
type in terms of ``Q`` so that Haskell's type checker validates embedded
programs (Section 3.1, "phantom typing").  Python has no static checker, so
``Q`` instead carries the Ferry type of its wrapped expression and every
operation checks its operands *eagerly*, raising :class:`QTypeError` at
query-construction time.  The net guarantee is the same: an ``Exp`` tree
that reaches the compiler is well-typed.

``Q`` overloads Python's operators so embedded programs read like ordinary
code: ``==``/``<`` build comparisons, ``+`` arithmetic, ``&``/``|``/``~``
boolean connectives (``and``/``or``/``not`` cannot be overloaded in
Python), ``q[i]`` projects tuple components, and tuple-typed queries can be
unpacked with ``a, b = q``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator

from ..errors import QTypeError
from ..expr import (
    BinOpE,
    Exp,
    IfE,
    LamE,
    ListE,
    LitE,
    TupleE,
    TupleElemE,
    UnOpE,
    VarE,
)
from ..ftypes import (
    AtomT,
    BoolT,
    DateT as _DATE,
    DoubleT,
    IntT,
    ListT,
    StringT,
    TimeT as _TIME,
    TupleT,
    Type,
    infer_type,
    is_atom,
    is_flat,
    is_numeric,
    is_orderable,
    normalize_value,
)

_fresh_counter = itertools.count()


def fresh_var(prefix: str = "x") -> str:
    """A globally fresh variable name for lambda parameters."""
    return f"{prefix}{next(_fresh_counter)}"


class Q:
    """A queryable value of some Ferry type (the paper's ``Q a``).

    Instances are immutable handles on a deep-embedded expression; no
    database communication happens until the query is run through a
    :class:`repro.runtime.Connection`.
    """

    __slots__ = ("exp", "rec")

    def __init__(self, exp: Exp, rec: type | None = None):
        self.exp = exp
        #: Optional record class whose fields name this tuple's components
        #: (the View-instance equivalent for records, Section 3.1).
        self.rec = rec

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def ty(self) -> Type:
        """The Ferry type of this query."""
        return self.exp.ty

    def __repr__(self) -> str:
        from ..expr import pretty
        return f"<Q {self.ty.show()}: {pretty(self.exp)}>"

    def fingerprint(self) -> str:
        """Content-addressed structural identity of this query.

        Two queries share a fingerprint iff they are the same program up
        to bound-variable naming -- the key under which compiled plans
        are cached (:mod:`repro.runtime.plancache`).  Unlike ``hash()``,
        this is stable across processes.
        """
        from ..expr import exp_fingerprint
        return exp_fingerprint(self.exp)

    # Q is a DSL value; identity-based hashing would be misleading next to
    # the overloaded ``==``, so Q is unhashable by design (structural
    # identity is available explicitly via :meth:`fingerprint`).
    __hash__ = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # comparisons (Eq/Ord on atoms and flat tuples, lexicographic)
    # ------------------------------------------------------------------
    def __eq__(self, other: Any) -> "Q":  # type: ignore[override]
        return _compare("eq", self, other)

    def __ne__(self, other: Any) -> "Q":  # type: ignore[override]
        return _compare("ne", self, other)

    def __lt__(self, other: Any) -> "Q":
        return _compare("lt", self, other)

    def __le__(self, other: Any) -> "Q":
        return _compare("le", self, other)

    def __gt__(self, other: Any) -> "Q":
        return _compare("gt", self, other)

    def __ge__(self, other: Any) -> "Q":
        return _compare("ge", self, other)

    # ------------------------------------------------------------------
    # arithmetic (numeric atoms)
    # ------------------------------------------------------------------
    def __add__(self, other: Any) -> "Q":
        if self.ty == StringT:
            return self.str_cat(other)
        return _arith("add", self, other)

    def __radd__(self, other: Any) -> "Q":
        if self.ty == StringT:
            return to_q(other, hint=StringT).str_cat(self)
        return _arith("add", to_q(other, hint=self.ty), self)

    def __sub__(self, other: Any) -> "Q":
        return _arith("sub", self, other)

    def __rsub__(self, other: Any) -> "Q":
        return _arith("sub", to_q(other, hint=self.ty), self)

    def __mul__(self, other: Any) -> "Q":
        return _arith("mul", self, other)

    def __rmul__(self, other: Any) -> "Q":
        return _arith("mul", to_q(other, hint=self.ty), self)

    def __truediv__(self, other: Any) -> "Q":
        if self.ty == IntT:
            raise QTypeError("'/' is Double division; use '//' for Int "
                             "division or .to_double() to widen")
        return _arith("div", self, other)

    def __rtruediv__(self, other: Any) -> "Q":
        return to_q(other, hint=self.ty).__truediv__(self)

    def __floordiv__(self, other: Any) -> "Q":
        if self.ty != IntT:
            raise QTypeError("'//' is Int division")
        return _arith("idiv", self, other)

    def __mod__(self, other: Any) -> "Q":
        if self.ty != IntT:
            raise QTypeError("'%' requires Int operands")
        return _arith("mod", self, other)

    def __neg__(self) -> "Q":
        _require_numeric(self, "unary '-'")
        return Q(UnOpE("neg", self.exp, self.ty))

    def __abs__(self) -> "Q":
        _require_numeric(self, "abs")
        return Q(UnOpE("abs", self.exp, self.ty))

    # -- string operations (text is a basic type, Section 3.1) ----------
    def str_cat(self, other: Any) -> "Q":
        """String concatenation (also reachable as ``+`` on String)."""
        a, b = _coerce_pair(self, other)
        if a.ty != StringT:
            raise QTypeError(f"str_cat requires String operands, got "
                             f"{a.ty.show()}")
        return Q(BinOpE("cat", a.exp, b.exp, StringT))

    def like(self, pattern: Any) -> "Q":
        """SQL-style pattern match: ``%`` matches any run, ``_`` any one
        character (case-sensitive)."""
        a, b = _coerce_pair(self, pattern)
        if a.ty != StringT:
            raise QTypeError(f"like requires String operands, got "
                             f"{a.ty.show()}")
        return Q(BinOpE("like", a.exp, b.exp, BoolT))

    def upper(self) -> "Q":
        """Uppercase a String."""
        return self._str_unop("upper", StringT)

    def lower(self) -> "Q":
        """Lowercase a String."""
        return self._str_unop("lower", StringT)

    def strlen(self) -> "Q":
        """Character count of a String."""
        return self._str_unop("strlen", IntT)

    def _str_unop(self, op: str, res) -> "Q":
        if self.ty != StringT:
            raise QTypeError(f"{op} requires a String, got {self.ty.show()}")
        return Q(UnOpE(op, self.exp, res))

    # -- date/time accessors ---------------------------------------------
    def year(self) -> "Q":
        """Calendar year of a Date."""
        return self._date_part("year", _DATE)

    def month(self) -> "Q":
        """Calendar month (1-12) of a Date."""
        return self._date_part("month", _DATE)

    def day(self) -> "Q":
        """Day of month of a Date."""
        return self._date_part("day", _DATE)

    def hour(self) -> "Q":
        """Hour (0-23) of a Time."""
        return self._date_part("hour", _TIME)

    def minute(self) -> "Q":
        """Minute of a Time."""
        return self._date_part("minute", _TIME)

    def second(self) -> "Q":
        """Second of a Time."""
        return self._date_part("second", _TIME)

    def _date_part(self, op: str, expected) -> "Q":
        if self.ty != expected:
            raise QTypeError(f"{op} requires a {expected.show()}, got "
                             f"{self.ty.show()}")
        return Q(UnOpE(op, self.exp, IntT))

    def to_double(self) -> "Q":
        """Widen an ``Int`` query to ``Double`` (explicit cast; Ferry has no
        implicit numeric coercions)."""
        if self.ty == DoubleT:
            return self
        if self.ty != IntT:
            raise QTypeError(f"to_double: expected Int, got {self.ty.show()}")
        return Q(UnOpE("to_double", self.exp, DoubleT))

    # ------------------------------------------------------------------
    # boolean connectives
    # ------------------------------------------------------------------
    def __and__(self, other: Any) -> "Q":
        return _boolop("and", self, other)

    def __rand__(self, other: Any) -> "Q":
        return _boolop("and", to_q(other, hint=BoolT), self)

    def __or__(self, other: Any) -> "Q":
        return _boolop("or", self, other)

    def __ror__(self, other: Any) -> "Q":
        return _boolop("or", to_q(other, hint=BoolT), self)

    def __invert__(self) -> "Q":
        if self.ty != BoolT:
            raise QTypeError(f"'~' requires Bool, got {self.ty.show()}")
        return Q(UnOpE("not", self.exp, BoolT))

    # ------------------------------------------------------------------
    # structure access
    # ------------------------------------------------------------------
    def __getitem__(self, index: Any) -> "Q":
        """Tuple projection (``q[0]`` on a tuple query, Python ``int``) or
        list indexing (``xs[i]`` on a list query, Haskell's ``!!``)."""
        if isinstance(self.ty, TupleT):
            if not isinstance(index, int):
                raise QTypeError("tuple projection requires a literal int index")
            n = len(self.ty.elts)
            if not -n <= index < n:
                raise QTypeError(f"tuple index {index} out of range for "
                                 f"{self.ty.show()}")
            return Q(TupleElemE(self.tup_exp(), index % n))
        if isinstance(self.ty, ListT):
            from .combinators import index as list_index
            return list_index(self, index)
        raise QTypeError(f"{self.ty.show()} is neither a tuple nor a list")

    def tup_exp(self) -> Exp:
        return self.exp

    def __iter__(self) -> Iterator["Q"]:
        """Unpack a tuple-typed query: ``feat, mean = row``."""
        if not isinstance(self.ty, TupleT):
            raise QTypeError(f"cannot unpack {self.ty.show()}; only tuple "
                             f"queries support destructuring")
        return iter(tuple(self[i] for i in range(len(self.ty.elts))))

    def __getattr__(self, name: str) -> "Q":
        if name.startswith("_") or self.rec is None:
            raise AttributeError(name)
        from .records import field_index
        idx = field_index(self.rec, name)
        if idx is None:
            raise AttributeError(f"{self.rec.__name__} has no field {name!r}")
        return self[idx]

    def __bool__(self) -> bool:
        raise QTypeError(
            "a Q value has no Python truth value; queries are not evaluated "
            "until run on a Connection.  Use '&', '|', '~' instead of "
            "'and', 'or', 'not', and cond(c, t, e) instead of 'if'.")


# ----------------------------------------------------------------------
# conversions (the QA type class, Section 3.1)
# ----------------------------------------------------------------------

def to_q(value: Any, hint: Type | None = None) -> Q:
    """Embed a Python heap value as a query (the paper's ``toQ``).

    Supports atoms, tuples, and arbitrarily nested lists thereof.  ``hint``
    is required for empty lists and permits ``int`` literals at ``Double``.
    """
    if isinstance(value, Q):
        if hint is not None and value.ty != hint:
            raise QTypeError(f"expected {hint.show()}, got a query of type "
                             f"{value.ty.show()}")
        return value
    from .records import is_queryable, record_to_tuple
    if is_queryable(type(value)):
        rec_cls = type(value)
        q = to_q(record_to_tuple(value), hint)
        return Q(q.exp, rec=rec_cls)
    ty = infer_type(value, hint)
    if hint is None:
        # inference through partially unknown (empty-list) structure must
        # still validate the whole value against the unified type
        from ..ftypes import check_value
        check_value(value, ty)
    value = normalize_value(value, ty)
    return Q(_embed(value, ty))


def _embed(value: Any, ty: Type) -> Exp:
    if isinstance(ty, AtomT):
        return LitE(value, ty)
    if isinstance(ty, TupleT):
        return TupleE(tuple(_embed(v, t) for v, t in zip(value, ty.elts)))
    if isinstance(ty, ListT):
        return ListE(tuple(_embed(v, ty.elt) for v in value), ty)
    raise QTypeError(f"unsupported type {ty!r}")  # pragma: no cover


def nil(elem_ty: Type) -> Q:
    """The empty list at a given element type (``toQ []`` needs the hint)."""
    return Q(ListE((), ListT(elem_ty)))


def tup(*parts: Any) -> Q:
    """Build a tuple query from component queries or Python values."""
    qs = [to_q(p) for p in parts]
    if len(qs) == 1:
        return qs[0]
    return Q(TupleE(tuple(q.exp for q in qs)))


def fst(q: Q) -> Q:
    """First component of a pair query."""
    return q[0]


def snd(q: Q) -> Q:
    """Second component of a pair query."""
    return q[1]


def cond(c: Any, t: Any, e: Any) -> Q:
    """``if c then t else e`` lifted to queries (any result type)."""
    cq = to_q(c, hint=BoolT)
    tq = to_q(t)
    eq_ = to_q(e, hint=tq.ty)
    if cq.ty != BoolT:
        raise QTypeError(f"cond: condition must be Bool, got {cq.ty.show()}")
    if tq.ty != eq_.ty:
        raise QTypeError(f"cond: branch types differ: {tq.ty.show()} vs "
                         f"{eq_.ty.show()}")
    return Q(IfE(cq.exp, tq.exp, eq_.exp), rec=tq.rec or eq_.rec)


# ----------------------------------------------------------------------
# lambda embedding
# ----------------------------------------------------------------------

def lam(f: Callable[..., Any], arg_ty: Type, rec: type | None = None) -> LamE:
    """Reify a Python callable into a ``LamE``.

    The callable receives a fresh variable wrapped in :class:`Q`; if the
    argument type is an n-tuple and the callable takes n parameters, the
    components are unpacked positionally (the view-pattern convenience of
    Section 3.1).
    """
    name = fresh_var()
    var = Q(VarE(name, arg_ty), rec=rec)
    args: tuple[Any, ...]
    nparams = _arity(f)
    if (nparams is not None and nparams > 1
            and isinstance(arg_ty, TupleT) and len(arg_ty.elts) == nparams):
        args = tuple(var[i] for i in range(nparams))
    else:
        args = (var,)
    body = f(*args)
    body_q = to_q(body)
    return LamE(name, arg_ty, body_q.exp)


def _arity(f: Callable[..., Any]) -> int | None:
    try:
        code = f.__code__
    except AttributeError:
        return None
    if code.co_flags & 0x04:  # *args
        return None
    return code.co_argcount - len(f.__defaults__ or ())


# ----------------------------------------------------------------------
# operator helpers
# ----------------------------------------------------------------------

def _coerce_pair(a: Q, b: Any) -> tuple[Q, Q]:
    bq = to_q(b, hint=a.ty) if not isinstance(b, Q) else b
    if a.ty != bq.ty:
        raise QTypeError(f"operand types differ: {a.ty.show()} vs "
                         f"{bq.ty.show()}")
    return a, bq


def _compare(op: str, a: Q, b: Any) -> Q:
    a, bq = _coerce_pair(a, b)
    if op in ("eq", "ne"):
        if not is_flat(a.ty):
            raise QTypeError(f"(==) requires a flat type (atoms / tuples of "
                             f"atoms), got {a.ty.show()}")
    else:
        if not is_orderable(a.ty):
            raise QTypeError(f"ordering comparison requires an orderable "
                             f"type, got {a.ty.show()}")
    return _compare_exp(op, a, bq)


def _compare_exp(op: str, a: Q, b: Q) -> Q:
    """Compile comparisons; tuple comparisons unfold component-wise so that
    ``BinOpE`` only ever relates atoms."""
    if isinstance(a.ty, AtomT):
        return Q(BinOpE(op, a.exp, b.exp, BoolT))
    assert isinstance(a.ty, TupleT)
    n = len(a.ty.elts)
    if op in ("eq", "ne"):
        acc = _compare_exp("eq", a[0], b[0])
        for i in range(1, n):
            acc = acc & _compare_exp("eq", a[i], b[i])
        return ~acc if op == "ne" else acc
    # lexicographic: strict ops delegate to (head-strict | head-eq & rest)
    strict = {"lt": "lt", "le": "lt", "gt": "gt", "ge": "gt"}[op]
    rest_op = {"lt": "lt", "le": "le", "gt": "gt", "ge": "ge"}[op]
    head_strict = _compare_exp(strict, a[0], b[0])
    head_eq = _compare_exp("eq", a[0], b[0])
    if n == 2:
        rest = _compare_exp(rest_op, a[1], b[1])
    else:
        a_rest = tup(*(a[i] for i in range(1, n)))
        b_rest = tup(*(b[i] for i in range(1, n)))
        rest = _compare_exp(rest_op, a_rest, b_rest)
    return head_strict | (head_eq & rest)


def _arith(op: str, a: Q, b: Any) -> Q:
    a, bq = _coerce_pair(a, b)
    _require_numeric(a, f"'{op}'")
    return Q(BinOpE(op, a.exp, bq.exp, a.ty))


def _boolop(op: str, a: Q, b: Any) -> Q:
    a, bq = _coerce_pair(a, b)
    if a.ty != BoolT:
        raise QTypeError(f"'{op}' requires Bool operands, got {a.ty.show()}")
    return Q(BinOpE(op, a.exp, bq.exp, BoolT))


def _require_numeric(q: Q, who: str) -> None:
    if not (is_atom(q.ty) and is_numeric(q.ty)):
        raise QTypeError(f"{who} requires a numeric operand, got "
                         f"{q.ty.show()}")


def min_q(a: Any, b: Any) -> Q:
    """Binary minimum of two orderable atom queries (Haskell's ``min``)."""
    return _minmax("min", a, b)


def max_q(a: Any, b: Any) -> Q:
    """Binary maximum of two orderable atom queries (Haskell's ``max``)."""
    return _minmax("max", a, b)


def _minmax(op: str, a: Any, b: Any) -> Q:
    aq = to_q(a)
    aq, bq = _coerce_pair(aq, b)
    if not (is_atom(aq.ty) and is_orderable(aq.ty)):
        raise QTypeError(f"{op} requires orderable atoms, got {aq.ty.show()}")
    return Q(BinOpE(op, aq.exp, bq.exp, aq.ty))
