"""Record (dataclass) support -- the Template Haskell derivation equivalent.

The paper derives ``QA`` and ``View`` instances for user-defined product
types (Haskell records) via Template Haskell, and can generate records from
database schemas (Section 3.1).  In Python the natural product type is the
``@dataclass``; the :func:`queryable` decorator registers one for use in
queries:

* instances embed into queries (``to_q(point)``) as tuples,
* field access on ``Q`` values works by name (``q.x``),
* :func:`table_for` references a database table whose columns are the
  record's fields,
* :func:`rows_as` converts fetched tuples back into record instances.

Relationally a record is erased to the flat tuple of its fields in
*alphabetical* field order -- the same convention the ``table`` combinator
uses for columns, so records and table rows line up.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence, TypeVar

from ..errors import QTypeError
from ..ftypes import AtomT, atom_type_for
from .q import Q
from .tables import table

T = TypeVar("T")

_REGISTRY: dict[type, tuple[str, ...]] = {}


def queryable(cls: type[T]) -> type[T]:
    """Class decorator registering a dataclass for query embedding.

    All fields must be annotated with basic-type Python classes (``bool``,
    ``int``, ``float``, ``str``, ``datetime.date``, ``datetime.time``).
    """
    if not dataclasses.is_dataclass(cls):
        raise QTypeError(f"@queryable requires a dataclass, got {cls!r}")
    fields = sorted(f.name for f in dataclasses.fields(cls))
    if len(fields) < 2:
        raise QTypeError("@queryable records need at least two fields")
    _REGISTRY[cls] = tuple(fields)
    return cls


def is_queryable(cls: type) -> bool:
    """Has ``cls`` been registered with :func:`queryable`?"""
    return cls in _REGISTRY


def field_names(cls: type) -> tuple[str, ...]:
    """The registered fields of ``cls`` in alphabetical (storage) order."""
    return _REGISTRY[cls]


def field_index(cls: type, name: str) -> int | None:
    """Position of field ``name`` in the record's tuple erasure."""
    try:
        return _REGISTRY[cls].index(name)
    except (KeyError, ValueError):
        return None


def record_to_tuple(value: Any) -> tuple:
    """Erase a record instance to its alphabetical field tuple."""
    cls = type(value)
    if cls not in _REGISTRY:
        raise QTypeError(f"{cls.__name__} is not @queryable")
    return tuple(getattr(value, f) for f in _REGISTRY[cls])


def record_schema(cls: type) -> tuple[tuple[str, AtomT], ...]:
    """Derive a table schema from a record class's type annotations."""
    if cls not in _REGISTRY:
        raise QTypeError(f"{cls.__name__} is not @queryable")
    cols = []
    hints = {f.name: f.type for f in dataclasses.fields(cls)}
    for name in _REGISTRY[cls]:
        hint = hints[name]
        if isinstance(hint, str):
            hint = _resolve_annotation(cls, hint)
        try:
            cols.append((name, hint if isinstance(hint, AtomT)
                         else atom_type_for(hint)))
        except KeyError:
            raise QTypeError(f"field {name!r} of {cls.__name__} has no "
                             f"basic Ferry type: {hint!r}") from None
    return tuple(cols)


def _resolve_annotation(cls: type, hint: str) -> type:
    import datetime
    namespace = {"bool": bool, "int": int, "float": float, "str": str,
                 "date": datetime.date, "time": datetime.time,
                 "datetime": datetime}
    try:
        return eval(hint, namespace)  # noqa: S307 - controlled namespace
    except Exception:
        raise QTypeError(f"cannot resolve annotation {hint!r} on "
                         f"{cls.__name__}") from None


def table_for(cls: type, name: str | None = None) -> Q:
    """Reference the database table backing record class ``cls``.

    The table name defaults to the lowercased class name; elements of the
    resulting list query support field access by name.
    """
    q = table(name or cls.__name__.lower(), record_schema(cls))
    return Q(q.exp, rec=cls)


def rows_as(cls: type[T], rows: Iterable[Sequence[Any]]) -> list[T]:
    """Rebuild record instances from fetched row tuples (``fromQ`` for
    records)."""
    names = field_names(cls)
    out = []
    for row in rows:
        if not isinstance(row, tuple):
            row = (row,)
        out.append(cls(**dict(zip(names, row))))
    return out
