"""Sum types: ``Maybe`` and ``Either`` as queryable values.

Section 5 lists "support for sum types" as future work and mentions that
"in related work (which remains to be published), we have already devised
a relational representation for sum types and compilation rules for
functions on sum types".  This module implements the natural such
representation -- a *tag column plus padded payload columns*:

    Maybe a   ~  (Bool, a)       -- tag: is the value present?
    Either a b ~ (Bool, a, b)    -- tag: is it a Left?

The absent payload is padded with a canonical default inhabitant of its
type, so every row stays rectangular; all observers go through the tag,
so the padding is never visible.  Because the encoding bottoms out in
tuples the existing loop-lifting rules compile sum-typed programs without
any compiler changes -- conditionals restrict the live iterations, so the
padding never reaches partial operations.

The combinator set mirrors ``Data.Maybe``/``Data.Either``: ``just``,
``nothing``, ``is_just``, ``from_maybe``, ``maybe_q``, ``cat_maybes``,
``map_maybe``, ``find_q``, ``lookup_q``; ``left``, ``right``,
``is_left``, ``either_q``, ``lefts``, ``rights``, ``partition_eithers``.
"""

from __future__ import annotations

import datetime
from typing import Any, Callable

from ..errors import QTypeError
from ..ftypes import (
    AtomT,
    BoolT,
    DateT,
    DoubleT,
    IntT,
    ListT,
    StringT,
    TimeT,
    TupleT,
    Type,
)
from . import combinators as C
from .q import Q, cond, to_q, tup

#: Canonical default inhabitants used to pad absent payloads.
_DEFAULTS = {
    BoolT: False,
    IntT: 0,
    DoubleT: 0.0,
    StringT: "",
    DateT: datetime.date(1970, 1, 1),
    TimeT: datetime.time(0, 0),
}


def default_value(ty: Type) -> Any:
    """A canonical inhabitant of ``ty`` (payload padding)."""
    if isinstance(ty, AtomT):
        return _DEFAULTS[ty]
    if isinstance(ty, TupleT):
        return tuple(default_value(t) for t in ty.elts)
    if isinstance(ty, ListT):
        return []
    raise QTypeError(f"no default inhabitant for {ty!r}")


def default_q(ty: Type) -> Q:
    """The default inhabitant as a query (handles empty lists)."""
    return to_q(default_value(ty), hint=ty)


# ----------------------------------------------------------------------
# Maybe
# ----------------------------------------------------------------------

def maybe_type(payload: Type) -> Type:
    """The encoded Ferry type of ``Maybe payload``."""
    return TupleT((BoolT, payload))


def just(x: Any) -> Q:
    """``Just x``."""
    xq = to_q(x)
    return tup(to_q(True), xq)


def nothing(payload_ty: Type) -> Q:
    """``Nothing`` at a given payload type (the tag is ``False`` and the
    payload is padded)."""
    return tup(to_q(False), default_q(payload_ty))


def _as_maybe(m: Any) -> Q:
    mq = to_q(m)
    if not (isinstance(mq.ty, TupleT) and len(mq.ty.elts) == 2
            and mq.ty.elts[0] == BoolT):
        raise QTypeError(f"expected an encoded Maybe (Bool, a), got "
                         f"{mq.ty.show()}")
    return mq


def is_just(m: Any) -> Q:
    """``isJust``."""
    return _as_maybe(m)[0]


def is_nothing(m: Any) -> Q:
    """``isNothing``."""
    return ~is_just(m)


def from_maybe(d: Any, m: Any) -> Q:
    """``fromMaybe d m`` -- the payload, or ``d`` when absent."""
    mq = _as_maybe(m)
    return cond(mq[0], mq[1], d)


def maybe_q(d: Any, f: Callable[[Q], Any], m: Any) -> Q:
    """``maybe d f m``."""
    mq = _as_maybe(m)
    return cond(mq[0], f(mq[1]), d)


def cat_maybes(ms: Any) -> Q:
    """``catMaybes`` -- the payloads of the present values, in order."""
    msq = to_q(ms)
    if not isinstance(msq.ty, ListT):
        raise QTypeError("cat_maybes expects a list of Maybes")
    _as_maybe_elem(msq)
    return C.fmap(lambda m: m[1], C.ffilter(lambda m: m[0], msq))


def map_maybe(f: Callable[[Q], Any], xs: Any) -> Q:
    """``mapMaybe f xs = catMaybes (map f xs)``."""
    return cat_maybes(C.fmap(f, xs))


def find_q(p: Callable[[Q], Any], xs: Any) -> Q:
    """``find p xs`` -- ``Just`` the first match, else ``Nothing``.

    The classic partial/total split: ``head`` is only evaluated on the
    iterations where a match exists (the conditional restricts the loop),
    so this is total.
    """
    xsq = to_q(xs)
    if not isinstance(xsq.ty, ListT):
        raise QTypeError("find expects a list")
    hits = C.ffilter(p, xsq)
    return cond(C.null(hits), nothing(xsq.ty.elt), just(C.head(hits)))


def lookup_q(key: Any, pairs: Any) -> Q:
    """``lookup k kvs`` over a list of pairs."""
    pq = to_q(pairs)
    if not (isinstance(pq.ty, ListT) and isinstance(pq.ty.elt, TupleT)
            and len(pq.ty.elt.elts) == 2):
        raise QTypeError("lookup expects a list of pairs")
    kq = to_q(key, hint=pq.ty.elt.elts[0])
    hits = C.fmap(lambda kv: kv[1], C.ffilter(lambda kv: kv[0] == kq, pq))
    return cond(C.null(hits), nothing(pq.ty.elt.elts[1]),
                just(C.head(hits)))


def _as_maybe_elem(msq: Q) -> None:
    elt = msq.ty.elt
    if not (isinstance(elt, TupleT) and len(elt.elts) == 2
            and elt.elts[0] == BoolT):
        raise QTypeError(f"expected a list of encoded Maybes, got "
                         f"{msq.ty.show()}")


# ----------------------------------------------------------------------
# Either
# ----------------------------------------------------------------------

def either_type(left_ty: Type, right_ty: Type) -> Type:
    """The encoded Ferry type of ``Either left right``."""
    return TupleT((BoolT, left_ty, right_ty))


def left(x: Any, right_ty: Type) -> Q:
    """``Left x`` (the right payload is padded)."""
    return tup(to_q(True), to_q(x), default_q(right_ty))


def right(x: Any, left_ty: Type) -> Q:
    """``Right x`` (the left payload is padded)."""
    return tup(to_q(False), default_q(left_ty), to_q(x))


def _as_either(e: Any) -> Q:
    eq_ = to_q(e)
    if not (isinstance(eq_.ty, TupleT) and len(eq_.ty.elts) == 3
            and eq_.ty.elts[0] == BoolT):
        raise QTypeError(f"expected an encoded Either (Bool, a, b), got "
                         f"{eq_.ty.show()}")
    return eq_


def is_left(e: Any) -> Q:
    """``isLeft``."""
    return _as_either(e)[0]


def is_right(e: Any) -> Q:
    """``isRight``."""
    return ~is_left(e)


def either_q(f: Callable[[Q], Any], g: Callable[[Q], Any], e: Any) -> Q:
    """``either f g e`` -- case analysis."""
    eq_ = _as_either(e)
    return cond(eq_[0], f(eq_[1]), g(eq_[2]))


def lefts(es: Any) -> Q:
    """``lefts`` -- the Left payloads, in order."""
    esq = to_q(es)
    return C.fmap(lambda e: e[1], C.ffilter(lambda e: e[0], esq))


def rights(es: Any) -> Q:
    """``rights`` -- the Right payloads, in order."""
    esq = to_q(es)
    return C.fmap(lambda e: e[2], C.ffilter(lambda e: ~e[0], esq))


def partition_eithers(es: Any) -> Q:
    """``partitionEithers = (lefts, rights)``."""
    return tup(lefts(es), rights(es))


def from_python_maybe(value: Any, payload_ty: Type) -> Q:
    """Embed ``None``-or-value (Python's idiom) as an encoded Maybe."""
    if value is None:
        return nothing(payload_ty)
    return just(to_q(value, hint=payload_ty))


def to_python_maybe(encoded: tuple) -> Any:
    """Decode a fetched ``(tag, payload)`` pair to ``None``-or-value."""
    tag, payload = encoded
    return payload if tag else None
