"""The ``table`` combinator: referencing database-resident data.

Section 3.1: "Use of the table combinator does not result in I/O ...: it
just references the database-resident table by its unique name.  In the
case that the table has multiple columns, these columns are gathered in a
flat tuple whose components are ordered alphabetically by column name."

The ``TA`` constraint (rows are atoms or flat tuples of atoms) is enforced
here; whether the table actually exists with the declared row type is -- as
in the paper -- checked only when the query is run.
"""

from __future__ import annotations

import datetime
from typing import Mapping, Sequence

from ..errors import QTypeError
from ..expr import TableE
from ..ftypes import AtomT, ListT, Type, atom_type_for, tuple_t
from .q import Q

#: Python classes accepted as column type declarations.
_COLUMN_CLASSES = (bool, int, float, str, datetime.date, datetime.time)

SchemaLike = Mapping[str, "type | AtomT"] | Sequence[tuple[str, "type | AtomT"]]


def _atomize(decl: "type | AtomT", column: str) -> AtomT:
    if isinstance(decl, AtomT):
        return decl
    if isinstance(decl, type) and decl in _COLUMN_CLASSES:
        return atom_type_for(decl)
    raise QTypeError(
        f"column {column!r}: table columns must have basic types (the TA "
        f"constraint); got {decl!r}")


def normalize_schema(schema: SchemaLike) -> tuple[tuple[str, AtomT], ...]:
    """Validate a schema declaration and fix the alphabetical column order."""
    items = list(schema.items()) if isinstance(schema, Mapping) else list(schema)
    if not items:
        raise QTypeError("a table needs at least one column")
    seen: set[str] = set()
    cols: list[tuple[str, AtomT]] = []
    for name, decl in items:
        if not isinstance(name, str) or not name:
            raise QTypeError(f"invalid column name {name!r}")
        if name in seen:
            raise QTypeError(f"duplicate column name {name!r}")
        seen.add(name)
        cols.append((name, _atomize(decl, name)))
    cols.sort(key=lambda c: c[0])
    return tuple(cols)


def row_type(columns: tuple[tuple[str, AtomT], ...]) -> Type:
    """The Ferry row type of a table: the alphabetically-ordered flat tuple
    of its column types (a single column is the atom itself)."""
    return tuple_t(*(ty for _, ty in columns))


def table(name: str, schema: SchemaLike) -> Q:
    """Reference the database table ``name`` with the declared ``schema``.

    Returns a query of type ``[row]`` where ``row`` is the alphabetically
    ordered tuple of column values.  Rows are delivered in the table's
    canonical order (sorted by all columns), giving the deterministic list
    semantics that the relational order encoding preserves thereafter.
    """
    cols = normalize_schema(schema)
    ty = ListT(row_type(cols))
    return Q(TableE(name, cols, ty))


def table_of(q: Q) -> TableE | None:
    """The ``TableE`` node of a plain table reference, else ``None``."""
    return q.exp if isinstance(q.exp, TableE) else None
