"""The Ferry type system.

The paper supports "queries of basic types ... as well as arbitrarily nested
lists and tuples of these basic types" (Section 3.1).  We model exactly that
universe:

* atomic types: ``BoolT``, ``IntT``, ``DoubleT``, ``StringT``, ``DateT``,
  ``TimeT`` (the paper lists Boolean, character, integer, real, text, date
  and time; Python has no separate character type, so characters are text);
* ``TupleT`` -- n-ary product types, arbitrarily nested;
* ``ListT`` -- ordered lists, arbitrarily nested.

Types are immutable values with structural equality, so they can be used as
dictionary keys and compared cheaply during eager type checking.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterator


class Type:
    """Base class of all Ferry types."""

    def __repr__(self) -> str:  # pragma: no cover - subclasses override
        return self.show()

    def show(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class AtomT(Type):
    """An atomic (basic) type, identified by name."""

    name: str

    def show(self) -> str:
        return self.name


#: The six basic types of the paper's data model.
BoolT = AtomT("Bool")
IntT = AtomT("Int")
DoubleT = AtomT("Double")
StringT = AtomT("String")
DateT = AtomT("Date")
TimeT = AtomT("Time")

ATOM_TYPES = (BoolT, IntT, DoubleT, StringT, DateT, TimeT)

#: Atom types with a total order (all of them: bool < ordering mirrors
#: Haskell's ``Ord`` instances; dates and times order chronologically).
ORDERED_ATOMS = ATOM_TYPES

#: Atom types closed under ``+``/``-``/``*`` arithmetic.
NUMERIC_ATOMS = (IntT, DoubleT)


@dataclass(frozen=True)
class TupleT(Type):
    """An n-ary tuple type (n >= 2); components may be any Ferry type."""

    elts: tuple[Type, ...]

    def __post_init__(self) -> None:
        if len(self.elts) < 2:
            raise ValueError("TupleT requires at least two components; "
                             "a 1-tuple is represented by the component itself")

    def show(self) -> str:
        return "(" + ", ".join(t.show() for t in self.elts) + ")"

    def __len__(self) -> int:
        return len(self.elts)

    def __iter__(self) -> Iterator[Type]:
        return iter(self.elts)


@dataclass(frozen=True)
class ListT(Type):
    """An ordered list type ``[elt]``."""

    elt: Type

    def show(self) -> str:
        return "[" + self.elt.show() + "]"


def tuple_t(*elts: Type) -> Type:
    """Smart constructor: a 1-tuple collapses to its component (Section 3.2:
    "a singleton tuple (v) and value v are treated alike")."""
    if len(elts) == 1:
        return elts[0]
    return TupleT(tuple(elts))


def is_atom(ty: Type) -> bool:
    """True iff ``ty`` is one of the six basic types."""
    return isinstance(ty, AtomT)


def is_flat(ty: Type) -> bool:
    """True iff ``ty`` is an atom or a (possibly nested) tuple of atoms.

    Flat types are exactly the types with a purely in-line relational
    representation -- one table row, no surrogates (Section 3.2).  The
    ``TA`` constraint of the ``table`` combinator restricts rows to flat
    types.
    """
    if is_atom(ty):
        return True
    if isinstance(ty, TupleT):
        return all(is_flat(t) for t in ty.elts)
    return False


def is_orderable(ty: Type) -> bool:
    """True iff values of ``ty`` have a total order usable as a sort or
    grouping key (atoms, and tuples of orderable components, compared
    lexicographically -- mirroring Haskell's derived ``Ord``)."""
    if isinstance(ty, AtomT):
        return ty in ORDERED_ATOMS
    if isinstance(ty, TupleT):
        return all(is_orderable(t) for t in ty.elts)
    return False


def is_numeric(ty: Type) -> bool:
    """True iff ``ty`` supports arithmetic."""
    return ty in NUMERIC_ATOMS


def list_depth(ty: Type) -> int:
    """Number of list type constructors on the *spine* of ``ty``.

    Used in tests and docs; note this is not the bundle size -- see
    :func:`count_list_constructors`.
    """
    depth = 0
    while isinstance(ty, ListT):
        depth += 1
        ty = ty.elt
    return depth


def count_list_constructors(ty: Type) -> int:
    """Total number of ``[ . ]`` constructors anywhere in ``ty``.

    The paper's avalanche-safety guarantee: "it is exclusively the number of
    list constructors [.] in the program's result type that determines the
    number of queries contained in the emitted relational query bundle"
    (Section 3.2).  This function computes that number.
    """
    if isinstance(ty, ListT):
        return 1 + count_list_constructors(ty.elt)
    if isinstance(ty, TupleT):
        return sum(count_list_constructors(t) for t in ty.elts)
    return 0


def atom_width(ty: Type) -> int:
    """Number of item columns the relational encoding of ``ty`` occupies.

    Atoms take one column; tuples concatenate their components' columns
    ("a nested tuple ... is represented like its flat variant", Section 3.2);
    a nested list takes a single surrogate-key column.
    """
    if isinstance(ty, TupleT):
        return sum(atom_width(t) for t in ty.elts)
    return 1


_PY_TO_ATOM = {
    bool: BoolT,
    int: IntT,
    float: DoubleT,
    str: StringT,
    datetime.date: DateT,
    datetime.time: TimeT,
}

_ATOM_TO_PY = {
    BoolT: bool,
    IntT: int,
    DoubleT: float,
    StringT: str,
    DateT: datetime.date,
    TimeT: datetime.time,
}


def atom_type_for(py_type: type) -> AtomT:
    """Map a Python class to the corresponding basic Ferry type."""
    try:
        return _PY_TO_ATOM[py_type]
    except KeyError:
        raise KeyError(f"no Ferry basic type corresponds to {py_type!r}; "
                       f"supported: {sorted(c.__name__ for c in _PY_TO_ATOM)}") from None


def python_class_for(ty: AtomT) -> type:
    """Map a basic Ferry type back to its Python carrier class."""
    return _ATOM_TO_PY[ty]
