"""Mapping between Python heap values and the Ferry type system.

This module provides the value-level half of the paper's ``QA`` type class
(Section 3.1): inferring a Ferry type from a Python value (``toQ``
direction) and validating that a value inhabits a given type (used when
loading tables and when stitching results back).
"""

from __future__ import annotations

import datetime
from typing import Any

from ..errors import QTypeError
from .kinds import (
    AtomT,
    BoolT,
    DateT,
    DoubleT,
    IntT,
    ListT,
    StringT,
    TimeT,
    TupleT,
    Type,
)


def infer_type(value: Any, hint: Type | None = None) -> Type:
    """Infer the Ferry type of a Python ``value``.

    ``hint`` resolves the two inherent ambiguities of the value syntax:
    the element type of an empty list, and ``int`` literals used where a
    ``Double`` is expected.  Raises :class:`QTypeError` for values outside
    the supported universe (sets, dicts, ``None``, ...).
    """
    if hint is not None:
        check_value(value, hint)
        return hint
    # bool must precede int: bool is a subclass of int in Python.
    if isinstance(value, bool):
        return BoolT
    if isinstance(value, int):
        return IntT
    if isinstance(value, float):
        return DoubleT
    if isinstance(value, str):
        if "\x00" in value:
            raise QTypeError("NUL characters are not representable in "
                             "database text values")
        return StringT
    # datetime.datetime is a subclass of datetime.date; reject it explicitly
    # so date columns stay pure calendar dates.
    if isinstance(value, datetime.datetime):
        raise QTypeError("datetime.datetime is not a Ferry basic type; "
                         "use datetime.date or datetime.time")
    if isinstance(value, datetime.date):
        return DateT
    if isinstance(value, datetime.time):
        return TimeT
    if isinstance(value, tuple):
        if len(value) == 0:
            raise QTypeError("empty tuples are not representable")
        if len(value) == 1:
            return infer_type(value[0])
        return TupleT(tuple(infer_type(v) for v in value))
    if isinstance(value, list):
        partial = _infer_partial(value)
        if _has_unknown(partial):
            raise QTypeError(f"cannot fully infer the type of {value!r}: "
                             f"an empty list leaves it at "
                             f"{partial.show()}; supply a type hint")
        return partial
    raise QTypeError(f"value {value!r} of class {type(value).__name__} has "
                     f"no Ferry type (supported: bool, int, float, str, "
                     f"date, time, tuples, lists)")


#: Marker for a type component an empty list leaves undetermined.
_UNKNOWN = AtomT("?")


def _has_unknown(ty: Type) -> bool:
    if ty == _UNKNOWN:
        return True
    if isinstance(ty, ListT):
        return _has_unknown(ty.elt)
    if isinstance(ty, TupleT):
        return any(_has_unknown(t) for t in ty.elts)
    return False


def _infer_partial(value: Any) -> Type:
    """Infer with unknowns: empty lists type as ``[?]``, to be refined by
    unification against sibling elements."""
    if isinstance(value, list):
        elt: Type = _UNKNOWN
        for v in value:
            elt = _merge(elt, _infer_partial(v), value)
        return ListT(elt)
    if isinstance(value, tuple):
        if len(value) == 1:
            return _infer_partial(value[0])
        if len(value) == 0:
            raise QTypeError("empty tuples are not representable")
        return TupleT(tuple(_infer_partial(v) for v in value))
    return infer_type(value)


def _merge(a: Type, b: Type, context: Any) -> Type:
    """Unify two partially known types (``?`` matches anything)."""
    if a == _UNKNOWN:
        return b
    if b == _UNKNOWN:
        return a
    if a == b:
        return a
    if isinstance(a, ListT) and isinstance(b, ListT):
        return ListT(_merge(a.elt, b.elt, context))
    if (isinstance(a, TupleT) and isinstance(b, TupleT)
            and len(a.elts) == len(b.elts)):
        return TupleT(tuple(_merge(x, y, context)
                            for x, y in zip(a.elts, b.elts)))
    raise QTypeError(f"heterogeneous list {context!r}: cannot unify "
                     f"{a.show()} with {b.show()}")


def check_value(value: Any, ty: Type) -> None:
    """Validate that ``value`` inhabits ``ty``; raise :class:`QTypeError`
    otherwise.  ``int`` values are additionally accepted at ``DoubleT``
    (they are widened by :func:`normalize_value`)."""
    if isinstance(ty, AtomT):
        ok = {
            BoolT: lambda v: isinstance(v, bool),
            IntT: lambda v: isinstance(v, int) and not isinstance(v, bool),
            DoubleT: lambda v: (isinstance(v, float)
                                or (isinstance(v, int)
                                    and not isinstance(v, bool))),
            StringT: lambda v: isinstance(v, str) and "\x00" not in v,
            DateT: lambda v: (isinstance(v, datetime.date)
                              and not isinstance(v, datetime.datetime)),
            TimeT: lambda v: isinstance(v, datetime.time),
        }[ty]
        if not ok(value):
            raise QTypeError(f"value {value!r} does not inhabit {ty.show()}")
        return
    if isinstance(ty, TupleT):
        if not isinstance(value, tuple) or len(value) != len(ty.elts):
            raise QTypeError(f"value {value!r} does not inhabit {ty.show()}")
        for v, t in zip(value, ty.elts):
            check_value(v, t)
        return
    if isinstance(ty, ListT):
        if not isinstance(value, list):
            raise QTypeError(f"value {value!r} does not inhabit {ty.show()}")
        for v in value:
            check_value(v, ty.elt)
        return
    raise QTypeError(f"unsupported type {ty!r}")


def normalize_value(value: Any, ty: Type) -> Any:
    """Return ``value`` with ``int``-at-``Double`` occurrences widened to
    ``float``, recursively.  Assumes :func:`check_value` has passed."""
    if ty == DoubleT:
        return float(value)
    if isinstance(ty, TupleT):
        return tuple(normalize_value(v, t) for v, t in zip(value, ty.elts))
    if isinstance(ty, ListT):
        return [normalize_value(v, ty.elt) for v in value]
    return value
