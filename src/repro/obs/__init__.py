"""Observability: traces, EXPLAIN (ANALYZE), metrics, logs, and export.

The pipeline's instrumentation layer, shared by the runtime, the
optimizer, and every backend:

* :mod:`repro.obs.trace` -- per-execution span trees (``conn.last_trace``)
  with pluggable sinks (JSON-lines export);
* :mod:`repro.obs.explain` -- the structured report behind
  ``Connection.explain``, including the runtime avalanche check;
* :mod:`repro.obs.analyze` -- EXPLAIN ANALYZE: per-operator (engine) /
  per-query (SQL, MIL) execution profiles and annotated plan trees;
* :mod:`repro.obs.querylog` -- the flight recorder (N most recent + N
  slowest executions) and trace sampling policies;
* :mod:`repro.obs.metrics` -- the process-wide :data:`METRICS` registry
  of counters and latency histograms with a ``snapshot()`` API;
* :mod:`repro.obs.export` -- OpenMetrics/Prometheus text and JSON
  exposition (``dump_metrics``) plus an opt-in stdlib HTTP server
  (``/metrics``, ``/statements``, ``/dashboard``);
* :mod:`repro.obs.stats` -- per-fingerprint workload statistics
  (``pg_stat_statements`` for FERRY), bounded and thread-safe;
* :mod:`repro.obs.report` -- workload reports with baseline regression
  gating (stable R-codes, ``python -m repro.obs.report``).
"""

from .analyze import (
    AnalyzeCollector,
    AnalyzeReport,
    OpProfile,
    QueryProfile,
    build_analyze,
)
from .explain import ExplainReport, QueryExplain, build_report
from .export import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsServer,
    dump_metrics,
    parse_openmetrics,
    render_openmetrics,
    serve_metrics,
    snapshot_json,
    statements_json,
)
from .metrics import METRICS, Counter, Histogram, MetricsRegistry
from .stats import EVICTED, UNFINGERPRINTED, StatementStats
from .querylog import (
    AlwaysSample,
    QueryLog,
    QueryLogEntry,
    RatioSample,
    SamplingPolicy,
    SlowOnlySample,
    make_entry,
    resolve_sampling,
)
from .trace import (
    NULL_TRACER,
    CollectingSink,
    JsonLinesSink,
    NullTracer,
    Sink,
    Span,
    Trace,
    Tracer,
    new_trace_id,
)

__all__ = [
    "EVICTED",
    "METRICS",
    "NULL_TRACER",
    "OPENMETRICS_CONTENT_TYPE",
    "UNFINGERPRINTED",
    "AlwaysSample",
    "AnalyzeCollector",
    "AnalyzeReport",
    "CollectingSink",
    "Counter",
    "ExplainReport",
    "Finding",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "MetricsServer",
    "NullTracer",
    "OpProfile",
    "QueryExplain",
    "QueryLog",
    "QueryLogEntry",
    "QueryProfile",
    "RatioSample",
    "SamplingPolicy",
    "Sink",
    "SlowOnlySample",
    "Span",
    "StatementStats",
    "Trace",
    "Tracer",
    "build_analyze",
    "build_report",
    "compare",
    "dump_metrics",
    "load_snapshot",
    "make_entry",
    "new_trace_id",
    "parse_openmetrics",
    "render_openmetrics",
    "render_report",
    "resolve_sampling",
    "serve_metrics",
    "snapshot_json",
    "statements_json",
]

#: Report symbols resolve lazily so ``python -m repro.obs.report`` does
#: not re-execute a module the package import already loaded (runpy's
#: "found in sys.modules" warning).
_REPORT_EXPORTS = ("Finding", "compare", "load_snapshot", "render_report")


def __getattr__(name: str):
    if name in _REPORT_EXPORTS:
        from . import report
        return getattr(report, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
