"""Observability: trace spans, EXPLAIN reports, and a metrics registry.

The pipeline's instrumentation layer, shared by the runtime, the
optimizer, and every backend:

* :mod:`repro.obs.trace` -- per-execution span trees (``conn.last_trace``)
  with pluggable sinks (JSON-lines export);
* :mod:`repro.obs.explain` -- the structured report behind
  ``Connection.explain``, including the runtime avalanche check;
* :mod:`repro.obs.metrics` -- the process-wide :data:`METRICS` registry
  of counters and latency histograms with a ``snapshot()`` API.
"""

from .explain import ExplainReport, QueryExplain, build_report
from .metrics import METRICS, Counter, Histogram, MetricsRegistry
from .trace import (
    NULL_TRACER,
    CollectingSink,
    JsonLinesSink,
    NullTracer,
    Sink,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "METRICS",
    "NULL_TRACER",
    "CollectingSink",
    "Counter",
    "ExplainReport",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "NullTracer",
    "QueryExplain",
    "Sink",
    "Span",
    "Trace",
    "Tracer",
    "build_report",
]
