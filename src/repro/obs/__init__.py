"""Observability: traces, EXPLAIN (ANALYZE), metrics, logs, and export.

The pipeline's instrumentation layer, shared by the runtime, the
optimizer, and every backend:

* :mod:`repro.obs.trace` -- per-execution span trees (``conn.last_trace``)
  with pluggable sinks (JSON-lines export);
* :mod:`repro.obs.explain` -- the structured report behind
  ``Connection.explain``, including the runtime avalanche check;
* :mod:`repro.obs.analyze` -- EXPLAIN ANALYZE: per-operator (engine) /
  per-query (SQL, MIL) execution profiles and annotated plan trees;
* :mod:`repro.obs.querylog` -- the flight recorder (N most recent + N
  slowest executions) and trace sampling policies;
* :mod:`repro.obs.metrics` -- the process-wide :data:`METRICS` registry
  of counters and latency histograms with a ``snapshot()`` API;
* :mod:`repro.obs.export` -- OpenMetrics/Prometheus text and JSON
  exposition (``dump_metrics``) plus an opt-in stdlib HTTP server.
"""

from .analyze import (
    AnalyzeCollector,
    AnalyzeReport,
    OpProfile,
    QueryProfile,
    build_analyze,
)
from .explain import ExplainReport, QueryExplain, build_report
from .export import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsServer,
    dump_metrics,
    parse_openmetrics,
    render_openmetrics,
    serve_metrics,
    snapshot_json,
)
from .metrics import METRICS, Counter, Histogram, MetricsRegistry
from .querylog import (
    AlwaysSample,
    QueryLog,
    QueryLogEntry,
    RatioSample,
    SamplingPolicy,
    SlowOnlySample,
    make_entry,
    resolve_sampling,
)
from .trace import (
    NULL_TRACER,
    CollectingSink,
    JsonLinesSink,
    NullTracer,
    Sink,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "METRICS",
    "NULL_TRACER",
    "OPENMETRICS_CONTENT_TYPE",
    "AlwaysSample",
    "AnalyzeCollector",
    "AnalyzeReport",
    "CollectingSink",
    "Counter",
    "ExplainReport",
    "Histogram",
    "JsonLinesSink",
    "MetricsRegistry",
    "MetricsServer",
    "NullTracer",
    "OpProfile",
    "QueryExplain",
    "QueryLog",
    "QueryLogEntry",
    "QueryProfile",
    "RatioSample",
    "SamplingPolicy",
    "Sink",
    "SlowOnlySample",
    "Span",
    "Trace",
    "Tracer",
    "build_analyze",
    "build_report",
    "dump_metrics",
    "make_entry",
    "parse_openmetrics",
    "render_openmetrics",
    "resolve_sampling",
    "serve_metrics",
    "snapshot_json",
]
