"""EXPLAIN ANALYZE: execution-time profiles of compiled bundles.

``conn.explain(q, analyze=True)`` actually *runs* the bundle (like
PostgreSQL's ``EXPLAIN ANALYZE``) and attaches an :class:`AnalyzeReport`
to the :class:`~repro.obs.ExplainReport`.  Granularity follows what each
backend can observe:

* the in-memory **engine** interprets the algebra DAG node by node, so it
  records one :class:`OpProfile` per operator -- exclusive wall time,
  input/output cardinalities, and output width -- keyed by the same
  ``@n`` postorder reference the pretty-printer uses;
* **SQLite** and the **MIL** VM execute each bundle member as one opaque
  statement/program, so they record per-query wall time and row counts
  (one :class:`QueryProfile` each, with no per-operator breakdown).

The annotated plan rendering (op -> time%, rows, cumulative time) is the
profiling image of the paper's Figure 3(b) bundles: a fixed number of
queries whose per-operator cost, not count, varies with the data.

The same :class:`AnalyzeCollector` doubles as the flight recorder's
cheap per-query stopwatch: connections with a slow-query threshold pass
a ``per_op=False`` collector on every execution and promote the
resulting report into :class:`~repro.obs.querylog.QueryLog` when the
threshold trips.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any


@dataclass
class OpProfile:
    """One algebra operator's execution profile (engine backend only)."""

    #: Postorder index of the node in its plan DAG -- matches the ``@n``
    #: references of :func:`repro.algebra.plan_text`.
    ref: int
    #: One-line operator description (``repro.algebra.describe``).
    op: str
    #: Exclusive wall-clock seconds spent evaluating this operator.
    time: float
    #: Total input rows (sum over the operator's children).
    rows_in: int
    #: Output rows produced.
    rows_out: int
    #: Output width (number of columns) -- peak intermediate width is the
    #: max of these over a query.
    width: int

    def to_dict(self) -> dict[str, Any]:
        return {"ref": self.ref, "op": self.op, "time": self.time,
                "rows_in": self.rows_in, "rows_out": self.rows_out,
                "width": self.width}


@dataclass
class QueryProfile:
    """Execution profile of one bundle member."""

    #: 1-based position in the bundle (Q1 is the outermost list).
    index: int
    #: Wall-clock seconds for the whole query (codegen excluded).
    time: float = 0.0
    #: Result rows delivered.
    rows: int = 0
    #: Per-operator profiles (engine backend; empty elsewhere).
    ops: list[OpProfile] = field(default_factory=list)

    @property
    def peak_width(self) -> "int | None":
        """Widest intermediate relation, or ``None`` without per-op data."""
        return max((op.width for op in self.ops), default=None)

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "time": self.time, "rows": self.rows,
                "peak_width": self.peak_width,
                "ops": [op.to_dict() for op in self.ops]}


class AnalyzeCollector:
    """Gathers :class:`QueryProfile`\\ s during one bundle execution.

    Passed to ``Backend.execute_bundle(collector=...)``.  ``per_op=True``
    asks the engine backend for the per-operator breakdown (the other
    backends ignore the flag -- their granularity is per query).

    Registration is thread-safe (parallel bundle execution may open
    profiles from worker threads), and :attr:`queries` is kept sorted by
    bundle-query index so reports stay aligned with ``bundle.queries``
    regardless of completion order.  The backends additionally
    pre-register profiles in submission order before fanning out, so the
    sort is a no-op on the built-in paths.
    """

    __slots__ = ("per_op", "queries", "_lock")

    def __init__(self, per_op: bool = False):
        self.per_op = per_op
        self.queries: list[QueryProfile] = []
        self._lock = threading.Lock()

    def query(self, index: int) -> QueryProfile:
        """Open (and register) the profile for bundle query ``index``."""
        profile = QueryProfile(index)
        with self._lock:
            self.queries.append(profile)
            self.queries.sort(key=lambda q: q.index)
        return profile

    @property
    def total_rows(self) -> int:
        return sum(q.rows for q in self.queries)


@dataclass
class AnalyzeReport:
    """Everything ``explain(analyze=True)`` measured while executing."""

    backend: str
    #: Wall-clock seconds for the whole bundle execution.
    total_time: float
    queries: list[QueryProfile] = field(default_factory=list)
    #: Annotated plan renderings, one per query: the ``-- Qn`` header
    #: tagged with rows/time/share, then (on the engine) the plan tree
    #: with per-operator time%, rows, and cumulative time.
    annotated: list[str] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        return sum(q.rows for q in self.queries)

    def to_dict(self) -> dict[str, Any]:
        return {"backend": self.backend, "total_time": self.total_time,
                "total_rows": self.total_rows,
                "queries": [q.to_dict() for q in self.queries]}

    def render(self) -> str:
        lines = [f"== analyze (backend={self.backend}, "
                 f"total={self.total_time * 1e3:.3f} ms, "
                 f"rows={self.total_rows}) =="]
        lines.extend(self.annotated)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _subtree_time(root, times: dict[int, float]) -> float:
    """Inclusive time of ``root``'s subtree, counting shared DAG nodes
    once (they are evaluated once -- the engine memoizes per node)."""
    seen: set[int] = set()

    def go(node) -> float:
        if id(node) in seen:
            return 0.0
        seen.add(id(node))
        return (times.get(id(node), 0.0)
                + sum(go(child) for child in node.children))

    return go(root)


def build_analyze(bundle, collector: AnalyzeCollector, backend: str,
                  total_time: float,
                  table_rows: "dict[str, int] | None" = None
                  ) -> AnalyzeReport:
    """Assemble an :class:`AnalyzeReport` (with annotated plans) from a
    collector filled by ``Backend.execute_bundle``.

    ``table_rows`` (exact catalog statistics) enables the static
    ``est_rows=`` annotations next to the measured actuals -- the
    side-by-side view the estimate-drift lint (``D500``) automates.
    """
    from ..algebra import plan_text, postorder
    from ..analysis.cost import CostModel

    model = CostModel(backend, table_rows=table_rows)
    total = total_time or sum(q.time for q in collector.queries) or 1.0
    annotated: list[str] = []
    for profile, query in zip(collector.queries, bundle.queries):
        share = 100.0 * profile.time / total if total else 0.0
        est = model.estimate(query.plan)
        header = (f"-- Q{profile.index} (iter={query.iter_col}, "
                  f"pos={query.pos_col}, "
                  f"items={', '.join(query.item_cols)})"
                  f"  [rows={profile.rows} est_rows={est.rows:g} "
                  f"time={profile.time * 1e3:.3f} ms "
                  f"({share:.1f}% of bundle)]")
        chunk = [header]
        if profile.ops:
            nodes = list(postorder(query.plan))
            times = {id(node): op.time
                     for node, op in zip(nodes, profile.ops)}
            ops_by_ref = {op.ref: op for op in profile.ops}
            qtime = profile.time or sum(op.time for op in profile.ops) or 1.0
            annotations = {}
            for i, node in enumerate(nodes):
                op = ops_by_ref.get(i)
                if op is None:
                    continue
                cum = _subtree_time(node, times)
                node_est = model.memo[id(node)]
                annotations[i] = (
                    f"[{op.time * 1e3:.3f} ms {100.0 * op.time / qtime:.1f}% "
                    f"| in={op.rows_in} out={op.rows_out} "
                    f"est_rows={node_est.rows:g} w={op.width} "
                    f"cum={cum * 1e3:.3f} ms]")
            chunk.append(plan_text(query.plan, annotations=annotations))
        annotated.append("\n".join(chunk))
    return AnalyzeReport(backend=backend, total_time=total_time,
                         queries=list(collector.queries),
                         annotated=annotated)
