"""The live workload dashboard: one self-contained HTML page.

Served by :class:`~repro.obs.export.MetricsServer` at ``/dashboard``.
The page is zero-dependency (no CDN, no framework): plain HTML/CSS/SVG
that polls the sibling ``/statements`` JSON endpoint every two seconds
and re-renders

* **stat tiles** -- executions, cache hit rate, errors, tracked
  fingerprints;
* a **top-N statement table** sortable by total / mean / p99 time, with
  calls, rows, cache hits, error codes, and the worst-case trace id per
  fingerprint;
* a **throughput sparkline** built from deltas between successive
  snapshots (executions per poll interval), drawn as inline SVG.

Colors follow the repo's chart conventions: recessive surfaces and ink
for text, one blue series color (``#2a78d6`` light / ``#3987e5`` dark --
validated for CVD separation and contrast on both surfaces), single
series so no legend is needed.  ``prefers-color-scheme`` selects the
dark variant.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>FERRY workload</title>
<style>
  :root {
    --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
    --line: #e4e3df; --series: #2a78d6; --bad: #b42318;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
      --line: #3a3935; --series: #3987e5; --bad: #f97066;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 24px; background: var(--surface);
    color: var(--ink);
    font: 14px/1.45 ui-sans-serif, system-ui, sans-serif;
  }
  h1 { font-size: 18px; font-weight: 600; margin: 0 0 4px; }
  .sub { color: var(--ink-2); font-size: 12px; margin-bottom: 20px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
  .tile {
    border: 1px solid var(--line); border-radius: 8px;
    padding: 12px 16px; min-width: 150px;
  }
  .tile .label {
    color: var(--ink-2); font-size: 11px;
    text-transform: uppercase; letter-spacing: .04em;
  }
  .tile .value {
    font-size: 24px; font-weight: 600;
    font-variant-numeric: tabular-nums;
  }
  .spark { margin-bottom: 20px; }
  .spark .label { color: var(--ink-2); font-size: 12px; margin-bottom: 4px; }
  .controls { margin-bottom: 8px; color: var(--ink-2); font-size: 12px; }
  .controls button {
    background: none; border: 1px solid var(--line); border-radius: 6px;
    color: var(--ink-2); font: inherit; padding: 2px 10px; margin-left: 4px;
    cursor: pointer;
  }
  .controls button.on { color: var(--ink); border-color: var(--ink-2); }
  table { border-collapse: collapse; width: 100%; }
  th, td {
    text-align: right; padding: 6px 10px; white-space: nowrap;
    border-bottom: 1px solid var(--line);
    font-variant-numeric: tabular-nums;
  }
  th {
    color: var(--ink-2); font-size: 11px; font-weight: 500;
    text-transform: uppercase; letter-spacing: .04em;
  }
  th:first-child, td:first-child { text-align: left; }
  td.fp {
    font: 12px ui-monospace, monospace; max-width: 260px;
    overflow: hidden; text-overflow: ellipsis;
  }
  td .err { color: var(--bad); }
  td .trace { font: 11px ui-monospace, monospace; color: var(--ink-2); }
  #offline { color: var(--bad); font-size: 12px; display: none; }
</style>
</head>
<body>
<h1>FERRY workload</h1>
<div class="sub">
  live view over <a href="/statements">/statements</a>, refreshed every
  2&thinsp;s &middot; <span id="stamp">&ndash;</span>
  <span id="offline">&middot; endpoint unreachable, retrying&hellip;</span>
</div>

<div class="tiles">
  <div class="tile"><div class="label">Executions</div>
    <div class="value" id="t-calls">&ndash;</div></div>
  <div class="tile"><div class="label">Cache hit rate</div>
    <div class="value" id="t-hits">&ndash;</div></div>
  <div class="tile"><div class="label">Errors</div>
    <div class="value" id="t-errors">&ndash;</div></div>
  <div class="tile"><div class="label">Fingerprints</div>
    <div class="value" id="t-fps">&ndash;</div></div>
</div>

<div class="spark">
  <div class="label">Executions per interval</div>
  <svg id="spark" width="560" height="48" role="img"
       aria-label="executions per refresh interval"></svg>
</div>

<div class="controls">
  sort by
  <button data-key="total_time" class="on">total</button>
  <button data-key="mean_time">mean</button>
  <button data-key="p99">p99</button>
</div>
<table>
  <thead><tr>
    <th>fingerprint</th><th>calls</th><th>errors</th><th>rows</th>
    <th>hit&nbsp;%</th><th>total&nbsp;ms</th><th>mean&nbsp;ms</th>
    <th>p99&nbsp;ms</th><th>worst&nbsp;trace</th>
  </tr></thead>
  <tbody id="rows"><tr><td colspan="9">loading&hellip;</td></tr></tbody>
</table>

<script>
"use strict";
const POLL_MS = 2000, TOP_N = 20, SPARK_N = 60;
let sortKey = "total_time";
let lastCalls = null;
const deltas = [];

const fmtMs = s => s == null ? "\\u2013" : (s * 1e3).toFixed(2);
const fmtN = n => n == null ? "\\u2013" : n.toLocaleString("en-US");
const esc = t => String(t).replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));

function drawSpark(values) {
  const svg = document.getElementById("spark");
  const w = svg.getAttribute("width"), h = svg.getAttribute("height");
  if (values.length < 2) { svg.innerHTML = ""; return; }
  const max = Math.max(...values, 1);
  const step = w / (SPARK_N - 1);
  const pts = values.map((v, i) =>
    `${(i * step).toFixed(1)},${(h - 2 - (v / max) * (h - 6)).toFixed(1)}`);
  const css = getComputedStyle(document.documentElement);
  svg.innerHTML =
    `<polyline points="${pts.join(" ")}" fill="none"` +
    ` stroke="${css.getPropertyValue("--series").trim()}"` +
    ` stroke-width="2" stroke-linejoin="round"/>`;
}

function render(doc) {
  const t = doc.totals || {};
  const attempts = (t.calls || 0) + (t.errors || 0);
  document.getElementById("t-calls").textContent = fmtN(t.calls || 0);
  document.getElementById("t-hits").textContent =
    attempts ? ((t.cache_hits || 0) / attempts * 100).toFixed(1) + "%"
             : "\\u2013";
  document.getElementById("t-errors").textContent = fmtN(t.errors || 0);
  document.getElementById("t-fps").textContent =
    fmtN((doc.statements || []).length);
  document.getElementById("stamp").textContent =
    new Date(doc.generated_at * 1000).toLocaleTimeString();

  if (lastCalls !== null) {
    deltas.push(Math.max(0, attempts - lastCalls));
    if (deltas.length > SPARK_N) deltas.shift();
  }
  lastCalls = attempts;
  drawSpark(deltas);

  const rows = (doc.statements || []).slice()
    .sort((a, b) => (b[sortKey] || 0) - (a[sortKey] || 0))
    .slice(0, TOP_N)
    .map(s => {
      const att = s.calls + s.errors;
      const codes = Object.entries(s.error_codes || {})
        .map(([c, n]) => `${c}\\u00d7${n}`).join(" ");
      return `<tr>
        <td class="fp" title="${esc(s.fingerprint)}">${esc(s.fingerprint)}</td>
        <td>${fmtN(s.calls)}</td>
        <td>${s.errors ? `<span class="err">${fmtN(s.errors)}` +
              (codes ? ` (${esc(codes)})` : "") + "</span>" : "0"}</td>
        <td>${fmtN(s.rows)}</td>
        <td>${att ? (s.cache_hits / att * 100).toFixed(0) : "\\u2013"}</td>
        <td>${fmtMs(s.total_time)}</td>
        <td>${fmtMs(s.mean_time)}</td>
        <td>${fmtMs(s.p99)}</td>
        <td><span class="trace">${esc(s.worst_trace_id || "\\u2013")}</span></td>
      </tr>`;
    });
  document.getElementById("rows").innerHTML =
    rows.join("") || '<tr><td colspan="9">no statements yet</td></tr>';
}

async function poll() {
  try {
    const res = await fetch("/statements", {cache: "no-store"});
    render(await res.json());
    document.getElementById("offline").style.display = "none";
  } catch (err) {
    document.getElementById("offline").style.display = "inline";
  }
}

for (const btn of document.querySelectorAll(".controls button")) {
  btn.addEventListener("click", () => {
    sortKey = btn.dataset.key;
    for (const b of document.querySelectorAll(".controls button"))
      b.classList.toggle("on", b === btn);
    poll();
  });
}
poll();
setInterval(poll, POLL_MS);
</script>
</body>
</html>
"""
