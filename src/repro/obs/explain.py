"""Structured EXPLAIN: what a compiled bundle is, and why it is safe.

:meth:`Connection.explain` produces an :class:`ExplainReport` instead of
opaque text: the program's fingerprint and plan-cache status, the bundle
size checked *at run time* against the number of ``[·]`` constructors in
the static result type (the paper's Section 3.2 avalanche invariant),
the pretty-printed algebra DAG of every bundle member, and the backend's
generated artifact (SQL text, MIL program, or engine schedule).  The
report is JSON-able via :meth:`ExplainReport.to_dict` and renders to the
familiar ``-- Q1 ...`` text via ``str()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class QueryExplain:
    """One bundle member, fully described."""

    #: 1-based position in the bundle (Q1 is the outermost list).
    index: int
    iter_col: str
    pos_col: str
    item_cols: tuple[str, ...]
    item_types: tuple[str, ...]
    #: Indented algebra-DAG rendering (``repro.algebra.plan_text``).
    plan: str
    #: Operator label -> node count for the plan DAG.
    operators: dict[str, int]
    #: Backend-generated artifact (SQL text / MIL program / engine
    #: schedule), or ``None`` if the backend produced nothing.
    artifact: str | None = None
    #: Were inferred plan properties baked into ``plan``?
    #: (``conn.explain(q, properties=True)``.)
    properties: bool = False
    #: Shard decision for this query (sharded SQL backend only):
    #: ``{"shardable", "code", "reason", "coverage", "fanout"}``.
    shard: "dict[str, Any] | None" = None

    @property
    def header(self) -> str:
        return (f"-- Q{self.index} (iter={self.iter_col}, "
                f"pos={self.pos_col}, "
                f"items={', '.join(self.item_cols)})")


@dataclass
class ExplainReport:
    """Everything :meth:`Connection.explain` knows about a query."""

    backend: str
    result_type: str
    fingerprint: str | None
    cache_hit: bool
    #: Number of relational queries in the bundle.
    bundle_size: int
    #: Number of ``[·]`` constructors in the static result type.
    list_constructors: int
    #: Bundle size the avalanche-safety theorem predicts from the type.
    expected_bundle_size: int
    queries: list[QueryExplain] = field(default_factory=list)
    #: Wall-clock seconds per compile phase (from the compilation that
    #: produced this report; empty keys mean the plan cache served it).
    timings: dict[str, float] = field(default_factory=dict)
    #: Optimizer pass statistics (``None`` on cache hits / optimize=False).
    pass_stats: Any = None
    #: Execution-time profile (``conn.explain(q, analyze=True)`` only):
    #: an :class:`~repro.obs.analyze.AnalyzeReport` with per-operator
    #: stats on the engine backend, per-query stats on SQL/MIL.
    analyze: Any = None
    #: Staged-verifier verdict over the compiled bundle
    #: (a :class:`repro.analysis.VerifyReport`), or ``None``.
    verify: Any = None
    #: Compile-time cost estimate of the bundle (a
    #: :class:`repro.analysis.cost.BundleCost`), or ``None``.
    cost: Any = None
    #: Estimate-drift lint findings (``D500``/``D501``/``D502``
    #: :class:`repro.analysis.Diagnostic` records; only populated by
    #: ``conn.explain(q, analyze=True)``), or ``None``.
    drift: Any = None

    @property
    def avalanche_ok(self) -> bool:
        """Does the bundle size match the statically predicted size?
        (The paper's headline guarantee, checked on the live artifact.)"""
        return self.bundle_size == self.expected_bundle_size

    def to_dict(self) -> dict[str, Any]:
        """JSON-able view of the report."""
        return {
            "backend": self.backend,
            "result_type": self.result_type,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "bundle_size": self.bundle_size,
            "list_constructors": self.list_constructors,
            "expected_bundle_size": self.expected_bundle_size,
            "avalanche_ok": self.avalanche_ok,
            "timings": dict(self.timings),
            "queries": [{
                "index": q.index,
                "iter": q.iter_col,
                "pos": q.pos_col,
                "items": list(q.item_cols),
                "item_types": list(q.item_types),
                "operators": dict(q.operators),
                "plan": q.plan,
                "artifact": q.artifact,
                "shard": q.shard,
            } for q in self.queries],
            "analyze": (self.analyze.to_dict()
                        if self.analyze is not None else None),
            "verify": (self.verify.to_dict()
                       if self.verify is not None else None),
            "cost": (self.cost.to_dict()
                     if self.cost is not None else None),
            "drift": ([d.to_dict() for d in self.drift]
                      if self.drift is not None else None),
        }

    def render(self, plans: bool = True, artifacts: bool = True) -> str:
        """Human-readable report (what ``print(conn.explain(q))`` shows)."""
        fp = self.fingerprint[:16] + "…" if self.fingerprint else "?"
        invariant = "OK" if self.avalanche_ok else "VIOLATED"
        lines = [
            f"== explain (backend={self.backend}) ==",
            f"result type   : {self.result_type}",
            f"fingerprint   : {fp}",
            f"plan cache    : {'hit' if self.cache_hit else 'miss'}",
            f"bundle size   : {self.bundle_size} "
            f"(result type has {self.list_constructors} [.] constructors; "
            f"expected {self.expected_bundle_size} -- "
            f"avalanche invariant {invariant})",
        ]
        if self.verify is not None:
            if self.verify.ok:
                lines.append(f"verifier      : ok "
                             f"({', '.join(self.verify.stages)})")
            else:
                lines.append(f"verifier      : "
                             f"{len(self.verify.diagnostics)} diagnostic(s)")
                lines.extend(f"  {d}" for d in self.verify.diagnostics)
        if self.cost is not None:
            calib = ("calibrated" if self.cost.calibrated
                     else "uncalibrated fallback")
            lines.append(f"cost estimate : {self.cost.total_cost:,.0f} "
                         f"units, {self.cost.est_rows:g} rows "
                         f"({calib} v{self.cost.calibration_version})")
        if self.drift is not None:
            if self.drift:
                lines.append(f"drift lint    : "
                             f"{len(self.drift)} finding(s)")
                lines.extend(f"  {d}" for d in self.drift)
            else:
                lines.append("drift lint    : clean")
        for q in self.queries:
            lines.append(q.header)
            if q.shard is not None:
                fanout = (f"fan-out {q.shard['fanout']}"
                          if q.shard["shardable"] else
                          "single-image fallback")
                lines.append(f"-- shard decision for Q{q.index}: "
                             f"{q.shard['code']} {q.shard['reason']}; "
                             f"{fanout}")
            if plans:
                lines.append(q.plan)
            if artifacts and q.artifact is not None:
                lines.append(f"-- {self.backend} artifact for Q{q.index}")
                lines.append(q.artifact)
        if self.analyze is not None:
            lines.append(self.analyze.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def build_report(compiled: Any, backend: Any, artifacts: list[str | None],
                 analyze: Any = None, properties: bool = False,
                 verify: Any = None,
                 table_rows: "dict[str, int] | None" = None,
                 drift: Any = None) -> ExplainReport:
    """Assemble an :class:`ExplainReport` from a ``CompiledQuery``, its
    backend, the backend's per-query artifact renderings, and (for
    ``analyze=True`` explains) the execution profile.

    ``properties=True`` renders each plan with per-node property *and*
    cost-estimate annotations (``repro.analysis.annotate_plan`` +
    ``repro.analysis.cost.annotate_costs``, sharpened by ``table_rows``
    catalog statistics) next to the ``@n`` refs; ``verify`` attaches the
    staged verifier's report, ``drift`` the estimate-drift lint's
    findings.
    """
    from ..algebra import operator_histogram, plan_text
    from ..ftypes import count_list_constructors

    bundle = compiled.bundle
    queries = []
    props_memo: dict = {}
    schemas: dict = {}
    cost_model = None
    if properties:
        from ..analysis.cost import CostModel
        from ..analysis.properties import PropsCache
        cache = PropsCache()
        cache.props = props_memo  # share the annotate_plan walk
        cache.schemas = schemas
        cost_model = CostModel(backend.name, table_rows=table_rows,
                               cache=cache)
    # Backends exposing shard_decisions (the sharded SQL executor) get
    # their per-query verdicts attached to the report.
    decide = getattr(backend, "shard_decisions", None)
    decisions = decide(bundle) if decide is not None else None
    fanout = getattr(backend, "shards", None)
    for i, query in enumerate(bundle.queries):
        artifact = artifacts[i] if i < len(artifacts) else None
        annotations = None
        if properties:
            from ..analysis import annotate_plan
            from ..analysis.cost import annotate_costs
            annotations = annotate_plan(query.plan, props_memo, schemas)
            for ref, note in annotate_costs(query.plan,
                                            cost_model).items():
                annotations[ref] = f"{annotations[ref]} {note}"
        queries.append(QueryExplain(
            index=i + 1,
            iter_col=query.iter_col,
            pos_col=query.pos_col,
            item_cols=query.item_cols,
            item_types=tuple(t.show() for t in query.item_types),
            plan=plan_text(query.plan, annotations),
            operators=operator_histogram(query.plan),
            artifact=artifact,
            properties=properties,
            shard=(None if decisions is None else {
                "shardable": decisions[i].shardable,
                "code": decisions[i].code,
                "reason": decisions[i].reason,
                "coverage": round(decisions[i].coverage, 4),
                "est_cost": round(decisions[i].est_cost, 1),
                "fanout": fanout,
            }),
        ))
    return ExplainReport(
        backend=backend.name,
        result_type=bundle.result_ty.show(),
        fingerprint=compiled.fingerprint,
        cache_hit=compiled.cache_hit,
        bundle_size=bundle.size,
        list_constructors=count_list_constructors(bundle.result_ty),
        expected_bundle_size=bundle.expected_size,
        queries=queries,
        timings=dict(compiled.timings),
        pass_stats=compiled.pass_stats,
        analyze=analyze,
        verify=verify,
        cost=getattr(bundle, "cost", None),
        drift=drift,
    )
