"""Metric exposition: OpenMetrics/Prometheus text, JSON, and HTTP.

Three export surfaces over the same data -- the process-wide
:data:`~repro.obs.metrics.METRICS` registry plus, per connection, its
plan-cache stats and flight-recorder summary:

* :func:`render_openmetrics` -- OpenMetrics 1.0 text (the Prometheus
  pull format): counters as ``<name>_total``, histograms as cumulative
  ``_bucket{le=...}``/``_count``/``_sum`` families, per-connection
  gauges labelled by backend, terminated by ``# EOF``;
* :func:`snapshot_json` / ``dump_metrics(fmt="json")`` -- one JSON
  document for ad-hoc scraping and the benchmark trajectory;
* :func:`statements_json` -- the workload-intelligence document: every
  connection's per-fingerprint :class:`~repro.obs.stats.StatementStats`
  snapshot, merged across connections and sorted busiest-first;
* :class:`MetricsServer` -- an opt-in, stdlib-only
  (``http.server.ThreadingHTTPServer``) exposition endpoint serving
  ``/metrics`` (OpenMetrics), ``/metrics.json``, ``/statements``
  (workload JSON), and ``/dashboard`` (a zero-dependency live HTML
  view over ``/statements``).

:func:`parse_openmetrics` is a small validating parser for the subset
this module emits; the test suite and CI round-trip every exposition
through it, so a scrape endpoint that Prometheus would reject fails the
build instead of the deployment.
"""

from __future__ import annotations

import http.server
import json
import re
import threading
import time
from typing import Any, Iterable

from .metrics import METRICS, MetricsRegistry

#: Content type mandated by the OpenMetrics 1.0 spec for text exposition.
OPENMETRICS_CONTENT_TYPE = ("application/openmetrics-text; "
                            "version=1.0.0; charset=utf-8")

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _metric_name(name: str) -> str:
    """Registry names are dotted (``plancache.hits``); OpenMetrics names
    are underscore-separated with a namespace prefix."""
    return "ferry_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _fmt(value: float) -> str:
    """Canonical sample value: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """OpenMetrics label-value escaping: backslash, double quote, and
    line feed must be escaped (ABNF ``escaped-string``); everything else
    passes through verbatim."""
    return (value.replace("\\", r"\\")
                 .replace('"', r"\"")
                 .replace("\n", r"\n"))


def _unescape_label(value: str) -> str:
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def _labels(pairs: dict[str, str]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"'
                    for k, v in sorted(pairs.items()))
    return "{" + body + "}"


def _exemplar(ex: dict[str, Any]) -> str:
    """Render one exemplar (OpenMetrics 1.0: `` # {labels} value ts``)."""
    out = f" # {_labels(ex['labels']) or '{}'} {_fmt(ex['value'])}"
    ts = ex.get("timestamp")
    if ts is not None:
        out += f" {_fmt(float(ts))}"
    return out


def render_openmetrics(registry: MetricsRegistry | None = None,
                       connections: Iterable[Any] = ()) -> str:
    """The OpenMetrics text exposition of ``registry`` (default: the
    process-wide :data:`METRICS`) plus plan-cache and query-log gauges
    for each connection in ``connections``."""
    registry = METRICS if registry is None else registry
    lines: list[str] = []

    for counter in registry.counters():
        name = _metric_name(counter.name)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}_total {_fmt(float(counter.value))}")

    for hist in registry.histograms():
        name = _metric_name(hist.name)
        snap = hist.snapshot()
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        bucket_counts = list(snap["buckets"].values())
        exemplars = snap.get("exemplars") or [None] * len(bucket_counts)
        for i, (bound, count) in enumerate(zip(hist.bounds, bucket_counts)):
            cumulative += count
            line = f'{name}_bucket{{le="{bound:g}"}} {cumulative}'
            if exemplars[i] is not None:
                # Exemplar: the bucket's worst observation, naming the
                # trace id that produced it (one hop from /metrics to
                # the flight recorder's span tree).
                line += _exemplar(exemplars[i])
            lines.append(line)
        cumulative += bucket_counts[-1]
        line = f'{name}_bucket{{le="+Inf"}} {cumulative}'
        if exemplars[-1] is not None:
            line += _exemplar(exemplars[-1])
        lines.append(line)
        lines.append(f"{name}_count {snap['count']}")
        lines.append(f"{name}_sum {_fmt(snap['sum'])}")

    gauges: dict[str, list[tuple[dict[str, str], float]]] = {}
    for i, conn in enumerate(connections):
        labels = {"connection": str(i), "backend": conn.backend.name}
        stats = conn.cache_stats
        log = conn.query_log.snapshot()
        for gauge, value in (
                ("plancache_entries", len(conn.plan_cache)),
                ("plancache_capacity", conn.plan_cache.capacity),
                ("plancache_hits", stats.hits),
                ("plancache_misses", stats.misses),
                ("plancache_evictions", stats.evictions),
                ("querylog_recorded", log["recorded"]),
                ("querylog_slow", log["slow"]),
                ("querylog_errors", log["errors"]),
                ("queries_issued", conn.queries_issued),
                ("executions", conn.executions)):
            gauges.setdefault(gauge, []).append((labels, float(value)))
    for gauge, samples in gauges.items():
        # ferry_conn_, not ferry_connection_: the registry's global
        # connection.* counters already own that prefix.
        name = f"ferry_conn_{gauge}"
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            lines.append(f"{name}{_labels(labels)} {_fmt(value)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def snapshot_json(registry: MetricsRegistry | None = None,
                  connections: Iterable[Any] = ()) -> dict[str, Any]:
    """One JSON-able document: registry snapshot + per-connection
    plan-cache stats and query-log summaries."""
    registry = METRICS if registry is None else registry
    conns = []
    for conn in connections:
        stats = conn.cache_stats
        conns.append({
            "backend": conn.backend.name,
            "executions": conn.executions,
            "queries_issued": conn.queries_issued,
            "plan_cache": {
                "entries": len(conn.plan_cache),
                "capacity": conn.plan_cache.capacity,
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "hit_rate": stats.hit_rate,
            },
            "query_log": conn.query_log.snapshot(),
        })
    return {
        "generated_at": time.time(),
        "metrics": registry.snapshot(),
        "connections": conns,
    }


def statements_json(connections: Iterable[Any] = ()) -> dict[str, Any]:
    """The ``/statements`` document: per-connection workload statistics
    plus a cross-connection merge.

    Each connection contributes its :class:`~repro.obs.stats.StatementStats`
    snapshot (when statement stats are enabled) and the flight recorder's
    error-code counts.  The ``statements`` list merges aggregates for the
    same fingerprint across connections (sums are exact; quantiles and
    worst-case exemplars take the slower side), sorted busiest-first by
    total time -- the shape :mod:`repro.obs.report` and the dashboard
    consume."""
    conns = []
    merged: dict[str, dict[str, Any]] = {}
    totals = {key: 0 for key in ("calls", "errors", "cache_hits", "rows",
                                 "queries")}
    time_totals = {key: 0.0 for key in ("compile_time", "execute_time",
                                        "total_time")}
    for conn in connections:
        stats = getattr(conn, "stats", None)
        snap = stats.snapshot() if stats is not None else None
        log = conn.query_log.snapshot()
        conns.append({
            "backend": conn.backend.name,
            "statement_stats": snap,
            "error_codes": log["error_codes"],
            "recorded": log["recorded"],
        })
        if snap is None:
            continue
        for key, value in snap["totals"].items():
            if key in totals:
                totals[key] += value
            else:
                time_totals[key] += value
        pool = snap["statements"] + \
            ([snap["evicted"]] if snap["evicted"] else [])
        for entry in pool:
            seen = merged.get(entry["fingerprint"])
            if seen is None:
                merged[entry["fingerprint"]] = {
                    **entry, "error_codes": dict(entry["error_codes"])}
                continue
            for key in ("calls", "errors", "cache_hits", "rows",
                        "queries", "compile_time", "execute_time",
                        "total_time", "folded"):
                seen[key] += entry[key]
            for code, n in entry["error_codes"].items():
                seen["error_codes"][code] = \
                    seen["error_codes"].get(code, 0) + n
            attempts = seen["calls"] + seen["errors"]
            seen["mean_time"] = (seen["total_time"] / attempts
                                 if attempts else 0.0)
            for key, pick in (("min_time", min), ("max_time", max),
                              ("p50", max), ("p95", max), ("p99", max)):
                a, b = seen.get(key), entry.get(key)
                seen[key] = (pick(a, b) if a is not None and b is not None
                             else (a if a is not None else b))
            if entry.get("max_time") is not None and \
                    entry["max_time"] == seen["max_time"]:
                seen["worst_trace_id"] = entry["worst_trace_id"] or \
                    seen["worst_trace_id"]
            seen["first_seen"] = min(seen["first_seen"],
                                     entry["first_seen"])
            seen["last_seen"] = max(seen["last_seen"], entry["last_seen"])
            # Per-connection breakdowns don't merge meaningfully.
            seen.pop("by_backend", None)
            seen.pop("by_shard", None)
    statements = sorted(merged.values(), key=lambda e: -e["total_time"])
    attempts = totals["calls"] + totals["errors"]
    return {
        "generated_at": time.time(),
        "connections": conns,
        "statements": statements,
        "totals": {**totals, **time_totals},
        "cache_hit_rate": (totals["cache_hits"] / attempts
                           if attempts else None),
    }


def dump_metrics(fmt: str = "openmetrics",
                 registry: MetricsRegistry | None = None,
                 connections: Iterable[Any] = ()) -> str:
    """The one-call export entry point.

    ``fmt="openmetrics"`` returns the Prometheus text exposition,
    ``fmt="json"`` the JSON snapshot (pretty-printed).
    """
    connections = list(connections)
    if fmt == "openmetrics":
        return render_openmetrics(registry, connections)
    if fmt == "json":
        return json.dumps(snapshot_json(registry, connections),
                          indent=2, sort_keys=True, default=str)
    raise ValueError(f"unknown metrics format {fmt!r}; "
                     f"expected 'openmetrics' or 'json'")


# ----------------------------------------------------------------------
# parsing (validation for tests / CI)
# ----------------------------------------------------------------------

# One label: ``name="value"`` where the value is an escaped string --
# backslash escapes pass through, so quotes/newlines/backslashes (and
# even ``}`` or ``,``) inside values cannot break the tokenization.
_LABEL_ITEM = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
_LABELS_BODY = rf"(?:{_LABEL_ITEM}(?:,{_LABEL_ITEM})*)?"
_SAMPLE = re.compile(
    rf"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    rf"(?:\{{(?P<labels>{_LABELS_BODY})\}})?"
    rf" (?P<value>[^ ]+)"
    rf"(?: # \{{(?P<exlabels>{_LABELS_BODY})\}}"
    rf" (?P<exvalue>[^ ]+)(?: (?P<exts>[^ ]+))?)?$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\.)*)"')


def _parse_labels(body: "str | None") -> dict[str, str]:
    labels: dict[str, str] = {}
    if not body:
        return labels
    for m in _LABEL.finditer(body):
        labels[m.group(1)] = _unescape_label(m.group(2))
    return labels


def parse_openmetrics(text: str) -> dict[str, dict[str, Any]]:
    """Parse (and validate) the exposition subset :func:`render_openmetrics`
    emits.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)],
    "exemplars": {sample_index: (labels, value, ts | None)}}}``.
    Raises :class:`ValueError` on structural violations: missing ``# EOF``
    terminator, samples before any ``# TYPE``, counter samples not ending
    in ``_total``, non-cumulative histogram buckets, a histogram whose
    ``+Inf`` bucket disagrees with its ``_count``, or an exemplar on a
    sample that may not carry one / outside its bucket's range.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    families: dict[str, dict[str, Any]] = {}
    current: str | None = None
    for line in lines[:-1]:
        if not line:
            raise ValueError("blank lines are not allowed")
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if not _NAME_OK.match(name):
                raise ValueError(f"bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "unknown"):
                raise ValueError(f"bad metric type {kind!r}")
            if name in families:
                raise ValueError(f"duplicate family {name!r}")
            families[name] = {"type": kind, "samples": [], "exemplars": {}}
            current = name
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT comments
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"malformed sample line {line!r}")
        name = m.group("name")
        if current is None or not name.startswith(current):
            raise ValueError(f"sample {name!r} outside its family")
        labels = _parse_labels(m.group("labels"))
        try:
            value = float(m.group("value"))
        except ValueError:
            raise ValueError(f"malformed value in {line!r}") from None
        if m.group("exvalue") is not None:
            # Exemplars are legal only on counter ``_total`` and
            # histogram ``_bucket`` samples (OpenMetrics 1.0).
            if not (name.endswith("_bucket") or name.endswith("_total")):
                raise ValueError(f"exemplar on non-bucket/total sample "
                                 f"{name!r}")
            ex_labels = _parse_labels(m.group("exlabels"))
            runes = sum(len(k) + len(v) for k, v in ex_labels.items())
            if runes > 128:
                raise ValueError(f"exemplar label set on {name!r} exceeds "
                                 f"128 characters")
            try:
                ex_value = float(m.group("exvalue"))
                ex_ts = (float(m.group("exts"))
                         if m.group("exts") is not None else None)
            except ValueError:
                raise ValueError(f"malformed exemplar in {line!r}") from None
            le = labels.get("le")
            if name.endswith("_bucket") and le not in (None, "+Inf") \
                    and ex_value > float(le):
                raise ValueError(f"exemplar value {ex_value} outside its "
                                 f"le={le} bucket on {name!r}")
            families[current]["exemplars"][
                len(families[current]["samples"])] = \
                (ex_labels, ex_value, ex_ts)
        families[current]["samples"].append((name, labels, value))

    for family, data in families.items():
        kind, samples = data["type"], data["samples"]
        if kind == "counter":
            for name, _, value in samples:
                if not (name == family + "_total"
                        or name.startswith(family + "_created")):
                    raise ValueError(
                        f"counter sample {name!r} must end in '_total'")
                if value < 0:
                    raise ValueError(f"negative counter {name!r}")
        if kind == "histogram":
            buckets = [(labels.get("le"), value) for name, labels, value
                       in samples if name == family + "_bucket"]
            counts = [v for _, v in buckets]
            if counts != sorted(counts):
                raise ValueError(f"histogram {family!r} buckets must be "
                                 f"cumulative")
            if not buckets or buckets[-1][0] != "+Inf":
                raise ValueError(f"histogram {family!r} lacks an "
                                 f"le=\"+Inf\" bucket")
            total = [v for name, _, v in samples
                     if name == family + "_count"]
            if total and buckets[-1][1] != total[0]:
                raise ValueError(f"histogram {family!r} +Inf bucket "
                                 f"disagrees with _count")
    return families


# ----------------------------------------------------------------------
# HTTP exposition (opt-in, stdlib-only)
# ----------------------------------------------------------------------

class MetricsServer:
    """A background thread serving the exposition over HTTP.

    ``port=0`` (the default) picks a free port -- read it back from
    :attr:`port`.  The server is a daemon thread and never blocks
    interpreter exit; call :meth:`close` (or use the instance as a
    context manager) for a deterministic shutdown.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 registry: MetricsRegistry | None = None,
                 connections: Iterable[Any] = ()):
        self._registry = registry
        self._connections = list(connections)
        server = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path in ("/", "/metrics"):
                    body = render_openmetrics(
                        server._registry, server._connections
                    ).encode("utf-8")
                    ctype = OPENMETRICS_CONTENT_TYPE
                elif self.path == "/metrics.json":
                    body = dump_metrics(
                        "json", server._registry, server._connections
                    ).encode("utf-8")
                    ctype = "application/json; charset=utf-8"
                elif self.path == "/statements":
                    body = json.dumps(
                        statements_json(server._connections),
                        indent=2, sort_keys=True, default=str
                    ).encode("utf-8")
                    ctype = "application/json; charset=utf-8"
                elif self.path == "/dashboard":
                    from .dashboard import DASHBOARD_HTML
                    body = DASHBOARD_HTML.encode("utf-8")
                    ctype = "text/html; charset=utf-8"
                else:
                    self.send_error(404, "try /metrics, /metrics.json, "
                                         "/statements, or /dashboard")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr
                pass

        self._httpd = http.server.ThreadingHTTPServer((host, port), Handler)
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="ferry-metrics",
                                        daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def add_connection(self, conn: Any) -> None:
        """Expose another connection's cache/query-log gauges."""
        self._connections.append(conn)

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_metrics(host: str = "127.0.0.1", port: int = 0,
                  registry: MetricsRegistry | None = None,
                  connections: Iterable[Any] = ()) -> MetricsServer:
    """Start (and return) a :class:`MetricsServer`; purely opt-in."""
    return MetricsServer(host, port, registry, connections)
