"""Metric exposition: OpenMetrics/Prometheus text, JSON, and HTTP.

Three export surfaces over the same data -- the process-wide
:data:`~repro.obs.metrics.METRICS` registry plus, per connection, its
plan-cache stats and flight-recorder summary:

* :func:`render_openmetrics` -- OpenMetrics 1.0 text (the Prometheus
  pull format): counters as ``<name>_total``, histograms as cumulative
  ``_bucket{le=...}``/``_count``/``_sum`` families, per-connection
  gauges labelled by backend, terminated by ``# EOF``;
* :func:`snapshot_json` / ``dump_metrics(fmt="json")`` -- one JSON
  document for ad-hoc scraping and the benchmark trajectory;
* :class:`MetricsServer` -- an opt-in, stdlib-only
  (``http.server.ThreadingHTTPServer``) exposition endpoint serving
  ``/metrics`` (OpenMetrics) and ``/metrics.json``.

:func:`parse_openmetrics` is a small validating parser for the subset
this module emits; the test suite and CI round-trip every exposition
through it, so a scrape endpoint that Prometheus would reject fails the
build instead of the deployment.
"""

from __future__ import annotations

import http.server
import json
import re
import threading
import time
from typing import Any, Iterable

from .metrics import METRICS, MetricsRegistry

#: Content type mandated by the OpenMetrics 1.0 spec for text exposition.
OPENMETRICS_CONTENT_TYPE = ("application/openmetrics-text; "
                            "version=1.0.0; charset=utf-8")

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _metric_name(name: str) -> str:
    """Registry names are dotted (``plancache.hits``); OpenMetrics names
    are underscore-separated with a namespace prefix."""
    return "ferry_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _fmt(value: float) -> str:
    """Canonical sample value: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _labels(pairs: dict[str, str]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(pairs.items()))
    return "{" + body + "}"


def render_openmetrics(registry: MetricsRegistry | None = None,
                       connections: Iterable[Any] = ()) -> str:
    """The OpenMetrics text exposition of ``registry`` (default: the
    process-wide :data:`METRICS`) plus plan-cache and query-log gauges
    for each connection in ``connections``."""
    registry = METRICS if registry is None else registry
    lines: list[str] = []

    for counter in registry.counters():
        name = _metric_name(counter.name)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}_total {_fmt(float(counter.value))}")

    for hist in registry.histograms():
        name = _metric_name(hist.name)
        snap = hist.snapshot()
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        bucket_counts = list(snap["buckets"].values())
        for bound, count in zip(hist.bounds, bucket_counts):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += bucket_counts[-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_count {snap['count']}")
        lines.append(f"{name}_sum {_fmt(snap['sum'])}")

    gauges: dict[str, list[tuple[dict[str, str], float]]] = {}
    for i, conn in enumerate(connections):
        labels = {"connection": str(i), "backend": conn.backend.name}
        stats = conn.cache_stats
        log = conn.query_log.snapshot()
        for gauge, value in (
                ("plancache_entries", len(conn.plan_cache)),
                ("plancache_capacity", conn.plan_cache.capacity),
                ("plancache_hits", stats.hits),
                ("plancache_misses", stats.misses),
                ("plancache_evictions", stats.evictions),
                ("querylog_recorded", log["recorded"]),
                ("querylog_slow", log["slow"]),
                ("querylog_errors", log["errors"]),
                ("queries_issued", conn.queries_issued),
                ("executions", conn.executions)):
            gauges.setdefault(gauge, []).append((labels, float(value)))
    for gauge, samples in gauges.items():
        # ferry_conn_, not ferry_connection_: the registry's global
        # connection.* counters already own that prefix.
        name = f"ferry_conn_{gauge}"
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            lines.append(f"{name}{_labels(labels)} {_fmt(value)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def snapshot_json(registry: MetricsRegistry | None = None,
                  connections: Iterable[Any] = ()) -> dict[str, Any]:
    """One JSON-able document: registry snapshot + per-connection
    plan-cache stats and query-log summaries."""
    registry = METRICS if registry is None else registry
    conns = []
    for conn in connections:
        stats = conn.cache_stats
        conns.append({
            "backend": conn.backend.name,
            "executions": conn.executions,
            "queries_issued": conn.queries_issued,
            "plan_cache": {
                "entries": len(conn.plan_cache),
                "capacity": conn.plan_cache.capacity,
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "hit_rate": stats.hit_rate,
            },
            "query_log": conn.query_log.snapshot(),
        })
    return {
        "generated_at": time.time(),
        "metrics": registry.snapshot(),
        "connections": conns,
    }


def dump_metrics(fmt: str = "openmetrics",
                 registry: MetricsRegistry | None = None,
                 connections: Iterable[Any] = ()) -> str:
    """The one-call export entry point.

    ``fmt="openmetrics"`` returns the Prometheus text exposition,
    ``fmt="json"`` the JSON snapshot (pretty-printed).
    """
    connections = list(connections)
    if fmt == "openmetrics":
        return render_openmetrics(registry, connections)
    if fmt == "json":
        return json.dumps(snapshot_json(registry, connections),
                          indent=2, sort_keys=True, default=str)
    raise ValueError(f"unknown metrics format {fmt!r}; "
                     f"expected 'openmetrics' or 'json'")


# ----------------------------------------------------------------------
# parsing (validation for tests / CI)
# ----------------------------------------------------------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$')


def parse_openmetrics(text: str) -> dict[str, dict[str, Any]]:
    """Parse (and validate) the exposition subset :func:`render_openmetrics`
    emits.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``.
    Raises :class:`ValueError` on structural violations: missing ``# EOF``
    terminator, samples before any ``# TYPE``, counter samples not ending
    in ``_total``, non-cumulative histogram buckets, or a histogram whose
    ``+Inf`` bucket disagrees with its ``_count``.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    families: dict[str, dict[str, Any]] = {}
    current: str | None = None
    for line in lines[:-1]:
        if not line:
            raise ValueError("blank lines are not allowed")
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if not _NAME_OK.match(name):
                raise ValueError(f"bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "unknown"):
                raise ValueError(f"bad metric type {kind!r}")
            if name in families:
                raise ValueError(f"duplicate family {name!r}")
            families[name] = {"type": kind, "samples": []}
            current = name
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT comments
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"malformed sample line {line!r}")
        name = m.group("name")
        if current is None or not name.startswith(current):
            raise ValueError(f"sample {name!r} outside its family")
        labels: dict[str, str] = {}
        if m.group("labels"):
            for part in m.group("labels").split(","):
                lm = _LABEL.match(part)
                if lm is None:
                    raise ValueError(f"malformed label {part!r}")
                labels[lm.group(1)] = lm.group(2)
        try:
            value = float(m.group("value"))
        except ValueError:
            raise ValueError(f"malformed value in {line!r}") from None
        families[current]["samples"].append((name, labels, value))

    for family, data in families.items():
        kind, samples = data["type"], data["samples"]
        if kind == "counter":
            for name, _, value in samples:
                if not (name == family + "_total"
                        or name.startswith(family + "_created")):
                    raise ValueError(
                        f"counter sample {name!r} must end in '_total'")
                if value < 0:
                    raise ValueError(f"negative counter {name!r}")
        if kind == "histogram":
            buckets = [(labels.get("le"), value) for name, labels, value
                       in samples if name == family + "_bucket"]
            counts = [v for _, v in buckets]
            if counts != sorted(counts):
                raise ValueError(f"histogram {family!r} buckets must be "
                                 f"cumulative")
            if not buckets or buckets[-1][0] != "+Inf":
                raise ValueError(f"histogram {family!r} lacks an "
                                 f"le=\"+Inf\" bucket")
            total = [v for name, _, v in samples
                     if name == family + "_count"]
            if total and buckets[-1][1] != total[0]:
                raise ValueError(f"histogram {family!r} +Inf bucket "
                                 f"disagrees with _count")
    return families


# ----------------------------------------------------------------------
# HTTP exposition (opt-in, stdlib-only)
# ----------------------------------------------------------------------

class MetricsServer:
    """A background thread serving the exposition over HTTP.

    ``port=0`` (the default) picks a free port -- read it back from
    :attr:`port`.  The server is a daemon thread and never blocks
    interpreter exit; call :meth:`close` (or use the instance as a
    context manager) for a deterministic shutdown.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 registry: MetricsRegistry | None = None,
                 connections: Iterable[Any] = ()):
        self._registry = registry
        self._connections = list(connections)
        server = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path in ("/", "/metrics"):
                    body = render_openmetrics(
                        server._registry, server._connections
                    ).encode("utf-8")
                    ctype = OPENMETRICS_CONTENT_TYPE
                elif self.path == "/metrics.json":
                    body = dump_metrics(
                        "json", server._registry, server._connections
                    ).encode("utf-8")
                    ctype = "application/json; charset=utf-8"
                else:
                    self.send_error(404, "try /metrics or /metrics.json")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr
                pass

        self._httpd = http.server.ThreadingHTTPServer((host, port), Handler)
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="ferry-metrics",
                                        daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def add_connection(self, conn: Any) -> None:
        """Expose another connection's cache/query-log gauges."""
        self._connections.append(conn)

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_metrics(host: str = "127.0.0.1", port: int = 0,
                  registry: MetricsRegistry | None = None,
                  connections: Iterable[Any] = ()) -> MetricsServer:
    """Start (and return) a :class:`MetricsServer`; purely opt-in."""
    return MetricsServer(host, port, registry, connections)
