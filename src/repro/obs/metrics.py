"""Process-wide metrics: named counters and latency histograms.

A :class:`MetricsRegistry` is a flat namespace of instruments.  The
runtime ships one process-wide default registry (:data:`METRICS`) that
:class:`~repro.runtime.connection.Connection`, the plan cache, and all
three backends write into, so a long-running service can answer "how
many bundles ran, at what hit rate, with what per-phase latency?" from a
single :meth:`MetricsRegistry.snapshot` call.

Instrument names are dotted strings grouped by subsystem:

========================== ===========================================
``connection.compiles``     ``compile()`` calls (cold or cached)
``connection.executions``   ``run()``/``PreparedQuery.execute()`` calls
``connection.queries``      relational queries issued (Table 1 metric)
``connection.rows_stitched`` rows transferred back into Python values
``plancache.hits`` / ``.misses`` / ``.evictions`` / ``.inserts``
``backend.<name>.queries``  per-backend queries executed
``backend.<name>.rows``     per-backend result rows fetched
``phase.<phase>``           latency histogram per pipeline phase
========================== ===========================================

Everything is thread-safe; instruments are cheap enough to update on the
hot path (one lock acquisition and a few float ops).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


#: Log-spaced latency bucket upper bounds, in seconds (+inf is implicit).
LATENCY_BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Histogram:
    """A fixed-bucket histogram tracking count/sum/min/max of samples.

    Buckets default to :data:`LATENCY_BOUNDS` (seconds); the registry
    uses one histogram per pipeline phase.

    ``observe`` optionally takes an **exemplar** -- a small dict of
    labels (canonically ``{"trace_id": ...}``) identifying the concrete
    execution behind the observation.  Each bucket retains the exemplar
    of its *worst* (largest) observation so far, so the OpenMetrics
    exposition can link a latency bucket straight to the flight-recorder
    entry and span tree that produced its worst case.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total",
                 "min", "max", "exemplars", "_lock")

    def __init__(self, name: str, bounds: tuple[float, ...] = LATENCY_BOUNDS):
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        self._zero()

    def _zero(self) -> None:
        self.buckets = [0] * (len(self.bounds) + 1)
        #: Per-bucket ``(labels, value, unix_ts)`` of the worst
        #: observation that carried an exemplar (``None`` when none did).
        self.exemplars: list[tuple[dict[str, str], float, float] | None] = \
            [None] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float,
                exemplar: "dict[str, str] | None" = None) -> None:
        with self._lock:
            # bisect_left gives inclusive-upper (``le``) semantics: an
            # observation exactly at a bound lands in that bound's
            # bucket, matching the ``<=`` labels and OpenMetrics ``le``.
            idx = bisect_left(self.bounds, value)
            self.buckets[idx] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if exemplar is not None:
                worst = self.exemplars[idx]
                if worst is None or value >= worst[1]:
                    self.exemplars[idx] = (dict(exemplar), value,
                                           time.time())

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self._zero()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "buckets": dict(zip(
                    [f"<={b:g}" for b in self.bounds] + ["+inf"],
                    list(self.buckets))),
                "exemplars": [
                    None if ex is None
                    else {"labels": dict(ex[0]), "value": ex[1],
                          "timestamp": ex[2]}
                    for ex in self.exemplars],
            }


class MetricsRegistry:
    """A named collection of counters and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get (or lazily create) the counter called ``name``."""
        with self._lock:
            if name in self._histograms:
                raise ValueError(f"{name!r} is already a histogram")
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = LATENCY_BOUNDS) -> Histogram:
        """Get (or lazily create) the histogram called ``name``."""
        with self._lock:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name, bounds)
            return h

    def counters(self) -> "list[Counter]":
        """Every registered counter, sorted by name (export order)."""
        with self._lock:
            return sorted(self._counters.values(), key=lambda c: c.name)

    def histograms(self) -> "list[Histogram]":
        """Every registered histogram, sorted by name (export order)."""
        with self._lock:
            return sorted(self._histograms.values(), key=lambda h: h.name)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able view of every instrument: counters map to their
        integer value, histograms to a count/sum/mean/min/max/buckets
        dict."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        out: dict[str, Any] = {c.name: c.value for c in counters}
        out.update({h.name: h.snapshot() for h in histograms})
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        with self._lock:
            instruments = (list(self._counters.values())
                           + list(self._histograms.values()))
        for instrument in instruments:
            instrument.reset()


#: The process-wide default registry the runtime writes into.
METRICS = MetricsRegistry()
