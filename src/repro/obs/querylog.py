"""The flight recorder: a bounded in-memory log of executions.

Every :class:`~repro.runtime.connection.Connection` owns a
:class:`QueryLog` that retains the N *most recent* and the N *slowest*
executions it has seen -- fingerprints, durations, cache hit/miss,
bundle sizes, and (when retained by the sampling policy) the full span
tree.  Executions slower than the connection's ``slow_query_threshold``
are flagged ``slow`` and promoted with a full
:class:`~repro.obs.analyze.AnalyzeReport` built from the per-query
stopwatch the connection runs whenever a threshold is set, so a
production incident leaves behind *profiles*, not just a latency number.

Memory is strictly bounded: the recent side is a ``deque(maxlen=N)``,
the slow side a size-N min-heap keyed on duration, so a long-running
service never grows the log past ``2N`` entries regardless of traffic.
All mutation happens under one lock; reads return snapshots.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .analyze import AnalyzeReport
from .trace import Trace


@dataclass
class QueryLogEntry:
    """One recorded execution."""

    #: Structural fingerprint of the executed program (``None`` if the
    #: execution failed before fingerprinting).
    fingerprint: str | None
    backend: str
    #: ``"run"`` or ``"execute-prepared"``.
    kind: str
    #: Epoch seconds when the execution started.
    started_at: float
    #: End-to-end wall-clock seconds (compile + execute + stitch).
    duration: float
    cache_hit: bool
    bundle_size: int
    #: Stitched result rows, or ``None`` when the execution failed
    #: before stitching.
    rows: int | None
    #: Did the execution exceed the connection's slow-query threshold?
    slow: bool = False
    #: ``repr`` of the raised exception, for failed executions.
    error: str | None = None
    #: The error's stable diagnostic code (``F101``, ``S400``, ...) when
    #: the exception carried one; ``None`` otherwise.
    code: str | None = None
    #: Stable execution id correlating this entry with its span tree,
    #: JSONL sink records, and metric exemplars (``None`` untraced).
    trace_id: str | None = None
    #: The full span tree, when tracing + sampling retained one.
    trace: Trace | None = field(default=None, repr=False)
    #: Per-query profile, promoted for slow executions.
    analyze: AnalyzeReport | None = field(default=None, repr=False)

    def summary(self) -> dict[str, Any]:
        """JSON-able digest (traces/profiles reduced to their totals)."""
        return {
            "fingerprint": self.fingerprint,
            "backend": self.backend,
            "kind": self.kind,
            "started_at": self.started_at,
            "duration": self.duration,
            "cache_hit": self.cache_hit,
            "bundle_size": self.bundle_size,
            "rows": self.rows,
            "slow": self.slow,
            "error": self.error,
            "code": self.code,
            "trace_id": self.trace_id,
            "traced": self.trace is not None,
            "analyzed": self.analyze is not None,
        }


class QueryLog:
    """Bounded dual-view execution log (N most recent + N slowest)."""

    def __init__(self, recent: int = 32, slowest: int = 32):
        if recent < 1 or slowest < 1:
            raise ValueError("query log bounds must be >= 1, "
                             f"got recent={recent}, slowest={slowest}")
        self._lock = threading.Lock()
        self._recent: deque[QueryLogEntry] = deque(maxlen=recent)
        self._slow_bound = slowest
        #: min-heap of ``(duration, seq, entry)``; the root is the
        #: fastest of the retained slowest, evicted first.
        self._slow_heap: list[tuple[float, int, QueryLogEntry]] = []
        self._seq = itertools.count()
        #: Total executions ever recorded (not bounded by the buffers).
        self.recorded = 0
        #: Executions that tripped the slow-query threshold.
        self.slow_count = 0
        #: Executions that raised.
        self.error_count = 0
        #: Failed executions per stable diagnostic code (cumulative,
        #: unbounded in *count* but keyed on the small fixed code set).
        self.error_codes: dict[str, int] = {}

    def record(self, entry: QueryLogEntry) -> None:
        with self._lock:
            self.recorded += 1
            if entry.slow:
                self.slow_count += 1
            if entry.error is not None:
                self.error_count += 1
                if entry.code is not None:
                    self.error_codes[entry.code] = \
                        self.error_codes.get(entry.code, 0) + 1
            self._recent.append(entry)
            item = (entry.duration, next(self._seq), entry)
            if len(self._slow_heap) < self._slow_bound:
                heapq.heappush(self._slow_heap, item)
            elif item[0] > self._slow_heap[0][0]:
                heapq.heapreplace(self._slow_heap, item)

    @property
    def recent(self) -> list[QueryLogEntry]:
        """Retained executions, most recent first."""
        with self._lock:
            return list(reversed(self._recent))

    @property
    def slowest(self) -> list[QueryLogEntry]:
        """Retained executions, slowest first."""
        with self._lock:
            items = sorted(self._slow_heap,
                           key=lambda t: (-t[0], -t[1]))
        return [entry for _, _, entry in items]

    def find_trace(self, trace_id: str) -> "QueryLogEntry | None":
        """The retained entry recorded under ``trace_id``, or ``None``.

        This is the exemplar back-link: an OpenMetrics exemplar names a
        trace id, and this lookup resolves it to the flight-recorder
        entry (span tree, profile, fingerprint) -- as long as the entry
        is still inside one of the two bounded views."""
        with self._lock:
            for entry in reversed(self._recent):
                if entry.trace_id == trace_id:
                    return entry
            for _, _, entry in self._slow_heap:
                if entry.trace_id == trace_id:
                    return entry
        return None

    def clear(self) -> None:
        """Drop every retained entry (cumulative counts are kept)."""
        with self._lock:
            self._recent.clear()
            self._slow_heap.clear()

    def snapshot(self) -> dict[str, Any]:
        """JSON-able summary: counts plus both retained views."""
        with self._lock:
            recent = [e.summary() for e in reversed(self._recent)]
            slowest = [entry.summary() for _, _, entry in
                       sorted(self._slow_heap,
                              key=lambda t: (-t[0], -t[1]))]
            return {
                "recorded": self.recorded,
                "slow": self.slow_count,
                "errors": self.error_count,
                "error_codes": dict(self.error_codes),
                "recent": recent,
                "slowest": slowest,
            }


# ----------------------------------------------------------------------
# trace sampling policies
# ----------------------------------------------------------------------

class SamplingPolicy:
    """Decides which executions get span trees recorded and retained.

    ``sample()`` is the *head* decision, taken before the run: ``False``
    routes the whole execution through ``NULL_TRACER`` (zero recording
    cost).  ``keep(slow)`` is the *tail* decision, taken after the run
    with the slow-query verdict in hand: ``False`` drops the finished
    trace instead of exposing it via ``last_trace``/sinks.
    """

    name = "abstract"

    def sample(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def keep(self, slow: bool) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AlwaysSample(SamplingPolicy):
    """Trace and retain every execution (the default)."""

    name = "always"

    def sample(self) -> bool:
        return True


class RatioSample(SamplingPolicy):
    """Trace roughly ``rate`` of executions (head sampling).

    Deterministic low-discrepancy skipping (a running accumulator rather
    than a PRNG): exactly ``ceil(rate * n)`` of any ``n`` consecutive
    executions are traced, so tests and rate math stay exact.
    """

    name = "ratio"

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling ratio must be in [0, 1], got {rate}")
        self.rate = rate
        self._acc = 0.0
        self._lock = threading.Lock()

    def sample(self) -> bool:
        with self._lock:
            self._acc += self.rate
            if self._acc >= 1.0 - 1e-12:
                self._acc -= 1.0
                return True
            return False

    def __repr__(self) -> str:
        return f"RatioSample({self.rate})"


class SlowOnlySample(SamplingPolicy):
    """Record spans for every execution but *retain* only slow ones.

    Tail-based sampling: whether an execution is slow is only known
    after it finishes, so spans are recorded (cheap, sink-free) and the
    finished trace is kept -- exposed via ``last_trace``, emitted to
    sinks, attached to the query log -- only when the slow-query
    threshold tripped.
    """

    name = "slow-only"

    def sample(self) -> bool:
        return True

    def keep(self, slow: bool) -> bool:
        return slow


def resolve_sampling(policy: "str | float | SamplingPolicy"
                     ) -> SamplingPolicy:
    """Coerce a user-facing spec (``"always"``, ``"slow-only"``, a float
    ratio, or a policy instance) into a :class:`SamplingPolicy`."""
    if isinstance(policy, SamplingPolicy):
        return policy
    if isinstance(policy, (int, float)) and not isinstance(policy, bool):
        return RatioSample(float(policy))
    if policy == "always":
        return AlwaysSample()
    if policy == "slow-only":
        return SlowOnlySample()
    raise ValueError(f"unknown sampling policy {policy!r}; expected "
                     f"'always', 'slow-only', a ratio in [0, 1], or a "
                     f"SamplingPolicy instance")


def make_entry(kind: str, backend: str, started_at: float, duration: float,
               info: dict[str, Any], slow: bool,
               trace: "Trace | None" = None,
               analyze: "AnalyzeReport | None" = None) -> QueryLogEntry:
    """Build a :class:`QueryLogEntry` from a connection's execution info
    dict (keys: ``fingerprint``/``cache_hit``/``bundle_size``/``rows``/
    ``error``/``error_code``/``trace_id``, all optional -- executions
    may fail early)."""
    return QueryLogEntry(
        fingerprint=info.get("fingerprint"),
        backend=backend,
        kind=kind,
        started_at=started_at,
        duration=duration,
        cache_hit=bool(info.get("cache_hit", False)),
        bundle_size=int(info.get("bundle_size", 0)),
        rows=info.get("rows"),
        slow=slow,
        error=info.get("error"),
        code=info.get("error_code"),
        trace_id=info.get("trace_id"),
        trace=trace,
        analyze=analyze,
    )
