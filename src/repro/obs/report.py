"""Workload reports and baseline regression gating.

``python -m repro.obs.report`` renders a text report over a workload
snapshot -- the document :func:`repro.obs.export.statements_json`
produces, read from a dumped JSON file or scraped live from a running
:class:`~repro.obs.export.MetricsServer`'s ``/statements`` endpoint --
and, given a baseline snapshot, diffs the two per fingerprint.

Findings carry stable R-codes so CI and humans grep for the same thing:

====== ========== ==========================================
code   severity   meaning
====== ========== ==========================================
R100   info       statement is new (absent from the baseline)
R101   info       statement vanished (absent from the report)
R200   failing    latency regression: p50 or p99 grew past
                  its ``--p50-ratio``/``--p99-ratio`` budget
R300   failing    row-count drift: mean rows per call moved
                  beyond ``--rows-tolerance``
====== ========== ==========================================

With ``--fail-on-regress`` the process exits ``1`` when any *failing*
finding is present, so the report doubles as a CI gate: check in a
golden baseline, run the workload, and a silent 2x latency regression
or a result-shape change fails the build with a named code instead of
shipping.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from dataclasses import dataclass
from typing import Any, Iterable

#: Findings with these codes fail the gate; the rest are informational.
FAILING_CODES = frozenset({"R200", "R300"})


@dataclass(frozen=True)
class Finding:
    """One baseline-comparison observation."""

    code: str
    fingerprint: str
    message: str

    @property
    def failing(self) -> bool:
        return self.code in FAILING_CODES

    def render(self) -> str:
        mark = "FAIL" if self.failing else "info"
        return f"[{self.code}] {mark}  {self.fingerprint}: {self.message}"


def load_snapshot(path: "str | None" = None,
                  url: "str | None" = None) -> dict[str, Any]:
    """Read a workload snapshot from a JSON file or a live
    ``/statements`` endpoint (exactly one source must be given)."""
    if (path is None) == (url is None):
        raise ValueError("exactly one of path/url must be given")
    if path is not None:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    else:
        with urllib.request.urlopen(url, timeout=10) as resp:
            doc = json.load(resp)
    if not isinstance(doc, dict) or "statements" not in doc:
        raise ValueError("snapshot lacks a 'statements' list; expected "
                         "the statements_json / --dump document shape")
    return doc


def _by_fingerprint(doc: dict[str, Any]) -> dict[str, dict[str, Any]]:
    return {s["fingerprint"]: s for s in doc.get("statements", [])}


def _mean_rows(stmt: dict[str, Any]) -> "float | None":
    calls = stmt.get("calls") or 0
    if not calls:
        return None
    return (stmt.get("rows") or 0) / calls


def compare(current: dict[str, Any], baseline: dict[str, Any], *,
            p50_ratio: float = 1.5, p99_ratio: float = 1.5,
            rows_tolerance: float = 0.0,
            min_time: float = 0.0) -> list[Finding]:
    """Diff two snapshots into a list of :class:`Finding`.

    ``p50_ratio``/``p99_ratio`` are multiplicative latency budgets: the
    current quantile may grow to ``baseline * ratio`` before R200 fires.
    Quantiles below ``min_time`` seconds never fire R200 -- a floor that
    keeps microsecond-scale noise from tripping the gate.
    ``rows_tolerance`` is the allowed relative drift in mean rows per
    call before R300 fires (``0.0`` = exact)."""
    cur, base = _by_fingerprint(current), _by_fingerprint(baseline)
    findings: list[Finding] = []
    for fp in sorted(set(cur) | set(base)):
        if fp not in base:
            findings.append(Finding(
                "R100", fp,
                f"new statement ({cur[fp].get('calls', 0)} calls)"))
            continue
        if fp not in cur:
            findings.append(Finding("R101", fp, "statement vanished "
                                    "(present in baseline only)"))
            continue
        c, b = cur[fp], base[fp]
        for key, ratio in (("p50", p50_ratio), ("p99", p99_ratio)):
            cv, bv = c.get(key), b.get(key)
            if cv is None or bv is None or cv < min_time:
                continue
            budget = bv * ratio
            if cv > budget:
                findings.append(Finding(
                    "R200", fp,
                    f"{key} regressed: {cv * 1e3:.3f}ms > "
                    f"{bv * 1e3:.3f}ms * {ratio:g} budget"))
        cr, br = _mean_rows(c), _mean_rows(b)
        if cr is not None and br is not None:
            drift = (abs(cr - br) / br) if br else (1.0 if cr else 0.0)
            if drift > rows_tolerance:
                findings.append(Finding(
                    "R300", fp,
                    f"mean rows/call drifted: {cr:g} vs baseline {br:g} "
                    f"(drift {drift:.1%} > {rows_tolerance:.1%})"))
    return findings


def render_report(doc: dict[str, Any], top: int = 10) -> str:
    """A human-readable top-N table over one snapshot."""
    lines = ["FERRY workload report", "=" * 21]
    totals = doc.get("totals", {})
    attempts = (totals.get("calls", 0) or 0) + (totals.get("errors", 0) or 0)
    hit_rate = doc.get("cache_hit_rate")
    lines.append(
        f"statements={len(doc.get('statements', []))} "
        f"calls={totals.get('calls', 0)} errors={totals.get('errors', 0)} "
        f"rows={totals.get('rows', 0)} "
        f"cache_hit_rate={'n/a' if hit_rate is None else f'{hit_rate:.1%}'}")
    lines.append("")
    header = (f"{'fingerprint':<34} {'calls':>7} {'errors':>6} "
              f"{'rows':>9} {'total ms':>10} {'mean ms':>9} "
              f"{'p99 ms':>9}  worst trace")
    lines.append(header)
    lines.append("-" * len(header))
    for stmt in doc.get("statements", [])[:top]:
        fp = stmt["fingerprint"]
        fp = fp if len(fp) <= 34 else fp[:31] + "..."
        p99 = stmt.get("p99")
        lines.append(
            f"{fp:<34} {stmt.get('calls', 0):>7} {stmt.get('errors', 0):>6} "
            f"{stmt.get('rows', 0):>9} {stmt.get('total_time', 0) * 1e3:>10.3f} "
            f"{stmt.get('mean_time', 0) * 1e3:>9.3f} "
            f"{'n/a' if p99 is None else f'{p99 * 1e3:.3f}':>9}  "
            f"{stmt.get('worst_trace_id') or '-'}")
    if attempts and not doc.get("statements"):
        lines.append("(no per-statement aggregates -- stats disabled?)")
    return "\n".join(lines)


def render_findings(findings: Iterable[Finding]) -> str:
    findings = list(findings)
    if not findings:
        return "baseline comparison: no findings"
    lines = [f"baseline comparison: {len(findings)} finding(s)"]
    lines += [f.render() for f in findings]
    failing = sum(1 for f in findings if f.failing)
    lines.append(f"{failing} failing, {len(findings) - failing} "
                 f"informational")
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a workload report from a statements snapshot "
                    "and optionally gate against a baseline.")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("snapshot", nargs="?",
                        help="path to a dumped statements JSON document")
    source.add_argument("--url",
                        help="scrape a live /statements endpoint instead "
                             "(e.g. http://127.0.0.1:9100/statements)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline snapshot to diff against")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any failing finding (R200/R300) "
                             "is present")
    parser.add_argument("--p50-ratio", type=float, default=1.5,
                        help="p50 latency budget multiplier (default 1.5)")
    parser.add_argument("--p99-ratio", type=float, default=1.5,
                        help="p99 latency budget multiplier (default 1.5)")
    parser.add_argument("--rows-tolerance", type=float, default=0.0,
                        help="allowed relative mean-rows drift "
                             "(default 0.0 = exact)")
    parser.add_argument("--min-time", type=float, default=0.0,
                        help="quantiles below this many seconds never "
                             "fire R200 (noise floor)")
    parser.add_argument("--top", type=int, default=10,
                        help="statements to show in the report table")
    parser.add_argument("--dump", metavar="PATH",
                        help="also write the loaded snapshot to PATH "
                             "(canonical JSON; usable as a baseline)")
    args = parser.parse_args(argv)

    try:
        doc = load_snapshot(args.snapshot, args.url)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"error: cannot load snapshot: {err}", file=sys.stderr)
        return 2

    if args.dump:
        with open(args.dump, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")

    print(render_report(doc, top=args.top))

    if args.baseline is None:
        return 0
    try:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot load baseline: {err}", file=sys.stderr)
        return 2
    findings = compare(doc, baseline,
                       p50_ratio=args.p50_ratio,
                       p99_ratio=args.p99_ratio,
                       rows_tolerance=args.rows_tolerance,
                       min_time=args.min_time)
    print()
    print(render_findings(findings))
    if args.fail_on_regress and any(f.failing for f in findings):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
