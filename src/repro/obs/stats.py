"""Per-statement workload statistics: a ``pg_stat_statements`` for FERRY.

FERRY's operational unit is the *compiled query fingerprint*: whole
program fragments become a bounded bundle of queries (the avalanche
guarantee), and the plan cache already content-addresses every program.
:class:`StatementStats` aggregates execution telemetry on exactly that
key, so a long-running service can answer "which statement is hot, slow,
erroring, or regressing?" without retaining per-run records:

* **calls / errors / cache hits / rows / queries issued** -- exact,
  monotone counts per fingerprint;
* **compile vs. execute time** -- per-phase second totals, so a
  cache-miss storm and a data regression look different;
* **latency** -- a log-bucket :class:`~repro.obs.metrics.Histogram` per
  backend plus a bounded reservoir of recent durations for p50/p95/p99;
* **per-shard latency** -- one histogram per shard index, fed by the
  scatter-gather executor's per-shard timings;
* **error codes** -- counts per stable ``F``/``S`` diagnostic code;
* **worst-case exemplar** -- the ``trace_id`` of the slowest call, one
  hop from the flight recorder's span tree and AnalyzeReport.

Memory is strictly bounded: at most ``capacity`` fingerprints are
tracked (LRU on last call), and evicted entries *fold into an overflow
bucket* instead of vanishing -- the totals across ``statements`` plus
``evicted`` reconcile exactly with the process-wide METRICS counters no
matter how hostile the workload's fingerprint cardinality is.

All mutation happens under one lock; reads return plain-dict snapshots.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Iterable

from .metrics import Histogram

#: Fingerprint bucket for executions that failed before fingerprinting.
UNFINGERPRINTED = "<unfingerprinted>"
#: Synthetic fingerprint naming the eviction overflow bucket.
EVICTED = "<evicted>"


def _quantile(sorted_values: "list[float]", q: float) -> "float | None":
    """Nearest-rank quantile of an already-sorted sample (None if empty)."""
    if not sorted_values:
        return None
    idx = round(q * (len(sorted_values) - 1))
    return sorted_values[idx]


class StatementEntry:
    """Aggregate telemetry for one fingerprint (internal; snapshot to
    read)."""

    __slots__ = (
        "fingerprint", "calls", "errors", "cache_hits", "rows", "queries",
        "compile_time", "execute_time", "total_time", "min_time",
        "max_time", "error_codes", "by_backend", "by_shard", "durations",
        "first_seen", "last_seen", "worst_trace_id", "folded",
        "est_rows",
    )

    def __init__(self, fingerprint: str, reservoir: int):
        self.fingerprint = fingerprint
        self.calls = 0
        self.errors = 0
        self.cache_hits = 0
        self.rows = 0
        self.queries = 0
        self.compile_time = 0.0
        self.execute_time = 0.0
        self.total_time = 0.0
        self.min_time = float("inf")
        self.max_time = 0.0
        #: Errors per stable diagnostic code (``F101``, ``S400``, ...).
        self.error_codes: dict[str, int] = {}
        #: End-to-end latency histogram per backend name.
        self.by_backend: dict[str, Histogram] = {}
        #: Per-shard execute-latency histogram (sharded SQL executor).
        self.by_shard: dict[int, Histogram] = {}
        #: Recent durations (bounded) backing the p50/p95/p99 estimates.
        self.durations: deque[float] = deque(maxlen=reservoir)
        self.first_seen = 0.0
        self.last_seen = 0.0
        #: ``trace_id`` of the slowest call seen (exemplar linkage).
        self.worst_trace_id: "str | None" = None
        #: Distinct fingerprints folded into this entry (overflow bucket).
        self.folded = 0
        #: Latest static row estimate per execution (``bundle.cost``);
        #: the drift lint compares it against ``rows / calls`` (D500).
        self.est_rows: "float | None" = None

    # ------------------------------------------------------------------
    def record(self, *, duration: float, started_at: float,
               backend: "str | None", rows: "int | None",
               queries: int, cache_hit: bool, compile_time: float,
               execute_time: float, error: bool,
               error_code: "str | None",
               shard_timings: Iterable[tuple[int, float]],
               trace_id: "str | None",
               est_rows: "float | None" = None) -> None:
        if est_rows is not None:
            self.est_rows = est_rows
        if error:
            self.errors += 1
            if error_code:
                self.error_codes[error_code] = \
                    self.error_codes.get(error_code, 0) + 1
        else:
            self.calls += 1
        if cache_hit:
            self.cache_hits += 1
        if rows:
            self.rows += rows
        self.queries += queries
        self.compile_time += compile_time
        self.execute_time += execute_time
        self.total_time += duration
        if duration < self.min_time:
            self.min_time = duration
        if duration >= self.max_time:
            self.max_time = duration
            if trace_id is not None:
                self.worst_trace_id = trace_id
        self.durations.append(duration)
        if not self.first_seen:
            self.first_seen = started_at
        self.last_seen = started_at
        if backend is not None:
            hist = self.by_backend.get(backend)
            if hist is None:
                hist = self.by_backend[backend] = Histogram(backend)
            exemplar = {"trace_id": trace_id} if trace_id else None
            hist.observe(duration, exemplar=exemplar)
        for shard, seconds in shard_timings:
            hist = self.by_shard.get(shard)
            if hist is None:
                hist = self.by_shard[shard] = Histogram(f"shard{shard}")
            hist.observe(seconds)

    def fold(self, other: "StatementEntry") -> None:
        """Absorb an evicted entry's *exact* totals (identity is lost,
        arithmetic is not)."""
        self.calls += other.calls
        self.errors += other.errors
        self.cache_hits += other.cache_hits
        self.rows += other.rows
        self.queries += other.queries
        self.compile_time += other.compile_time
        self.execute_time += other.execute_time
        self.total_time += other.total_time
        self.min_time = min(self.min_time, other.min_time)
        if other.max_time >= self.max_time:
            self.max_time = other.max_time
            self.worst_trace_id = other.worst_trace_id or \
                self.worst_trace_id
        for code, n in other.error_codes.items():
            self.error_codes[code] = self.error_codes.get(code, 0) + n
        if not self.first_seen or (other.first_seen and
                                   other.first_seen < self.first_seen):
            self.first_seen = other.first_seen
        self.last_seen = max(self.last_seen, other.last_seen)
        self.folded += 1 + other.folded
        if self.est_rows is None:
            self.est_rows = other.est_rows

    # ------------------------------------------------------------------
    @property
    def attempts(self) -> int:
        return self.calls + self.errors

    def snapshot(self) -> dict[str, Any]:
        sample = sorted(self.durations)
        mean = self.total_time / self.attempts if self.attempts else 0.0
        return {
            "fingerprint": self.fingerprint,
            "calls": self.calls,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "rows": self.rows,
            "queries": self.queries,
            "compile_time": self.compile_time,
            "execute_time": self.execute_time,
            "total_time": self.total_time,
            "mean_time": mean,
            "min_time": self.min_time if self.attempts else None,
            "max_time": self.max_time if self.attempts else None,
            "p50": _quantile(sample, 0.50),
            "p95": _quantile(sample, 0.95),
            "p99": _quantile(sample, 0.99),
            "error_codes": dict(self.error_codes),
            "by_backend": {name: hist.snapshot()
                           for name, hist in self.by_backend.items()},
            "by_shard": {str(shard): hist.snapshot()
                         for shard, hist in sorted(self.by_shard.items())},
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "worst_trace_id": self.worst_trace_id,
            "folded": self.folded,
            "est_rows": self.est_rows,
        }


class StatementStats:
    """Thread-safe, bounded per-fingerprint aggregator.

    ``capacity`` bounds the number of *tracked* fingerprints: when a new
    one would exceed it, the least-recently-called entry folds into the
    :data:`EVICTED` overflow bucket, keeping workload-wide totals exact.
    ``reservoir`` bounds the per-entry duration sample backing the
    quantile estimates (totals are never sampled).
    """

    def __init__(self, capacity: int = 512, reservoir: int = 128):
        if capacity < 1:
            raise ValueError(f"stats capacity must be >= 1, got {capacity}")
        if reservoir < 1:
            raise ValueError(f"stats reservoir must be >= 1, "
                             f"got {reservoir}")
        self.capacity = capacity
        self.reservoir = reservoir
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, StatementEntry]" = OrderedDict()
        self._evicted: "StatementEntry | None" = None
        #: Distinct fingerprints ever folded into the overflow bucket.
        self.evicted_statements = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def record(self, fingerprint: "str | None", *, duration: float,
               started_at: "float | None" = None,
               backend: "str | None" = None, rows: "int | None" = None,
               queries: int = 0, cache_hit: bool = False,
               compile_time: float = 0.0, execute_time: float = 0.0,
               error: "str | None" = None,
               error_code: "str | None" = None,
               shard_timings: Iterable[tuple[int, float]] = (),
               trace_id: "str | None" = None,
               est_rows: "float | None" = None) -> None:
        """Fold one execution into the aggregate for ``fingerprint``."""
        key = fingerprint if fingerprint is not None else UNFINGERPRINTED
        if started_at is None:
            started_at = time.time()
        with self._lock:
            entry = self._touch(key)
            entry.record(duration=duration, started_at=started_at,
                         backend=backend, rows=rows, queries=queries,
                         cache_hit=cache_hit, compile_time=compile_time,
                         execute_time=execute_time,
                         error=error is not None, error_code=error_code,
                         shard_timings=shard_timings, trace_id=trace_id,
                         est_rows=est_rows)

    def record_compile(self, fingerprint: "str | None",
                       compile_time: float, cache_hit: bool) -> None:
        """Account a compile-only touch (``Connection.prepare``): phase
        time and cache traffic, without counting a call."""
        key = fingerprint if fingerprint is not None else UNFINGERPRINTED
        with self._lock:
            entry = self._touch(key)
            entry.compile_time += compile_time
            if cache_hit:
                entry.cache_hits += 1

    def _touch(self, key: str) -> StatementEntry:
        """Get-or-create ``key``'s entry, maintaining LRU order and the
        eviction-into-overflow invariant.  Callers hold the lock."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        entry = StatementEntry(key, self.reservoir)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            _, victim = self._entries.popitem(last=False)
            if self._evicted is None:
                self._evicted = StatementEntry(EVICTED, self.reservoir)
            self._evicted.fold(victim)
            self.evicted_statements += 1
        return entry

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> "dict[str, Any] | None":
        """Snapshot of one fingerprint's aggregate (``None`` if not
        tracked; it may have been folded into the overflow bucket)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            return entry.snapshot() if entry is not None else None

    def snapshot(self) -> dict[str, Any]:
        """JSON-able view: per-statement aggregates (busiest first by
        total time), the eviction overflow bucket, and exact workload
        totals across both."""
        with self._lock:
            entries = [entry.snapshot()
                       for entry in self._entries.values()]
            evicted = (self._evicted.snapshot()
                       if self._evicted is not None else None)
            evicted_statements = self.evicted_statements
        entries.sort(key=lambda e: -e["total_time"])
        pool = entries + ([evicted] if evicted else [])
        totals = {
            key: sum(e[key] for e in pool)
            for key in ("calls", "errors", "cache_hits", "rows",
                        "queries", "compile_time", "execute_time",
                        "total_time")
        }
        return {
            "capacity": self.capacity,
            "tracked": len(entries),
            "evicted_statements": evicted_statements,
            "statements": entries,
            "evicted": evicted,
            "totals": totals,
        }

    def reset(self) -> None:
        """Drop every aggregate (capacity/reservoir are kept)."""
        with self._lock:
            self._entries.clear()
            self._evicted = None
            self.evicted_statements = 0
