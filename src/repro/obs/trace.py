"""Trace spans: a lightweight per-execution tree of timed pipeline steps.

Every ``Connection.run`` / ``PreparedQuery.execute`` records a span tree

    run
    ├─ check
    ├─ cache-lookup
    ├─ lift
    ├─ optimize
    │   ├─ cse / constfold / icols / projmerge   (per rewrite-pass call)
    ├─ codegen            (per backend, attrs: backend, cached)
    ├─ execute            (one per bundle query, attrs: query, rows)
    └─ stitch

retrievable afterwards via ``conn.last_trace`` and exportable through
pluggable sinks (e.g. :class:`JsonLinesSink`).  Spans carry wall-clock
*and* CPU time plus free-form attributes, so the avalanche claim — a
fixed number of ``execute`` spans regardless of data size — is directly
visible in any trace.

Overhead is kept near zero: spans are ``__slots__`` objects, entering
one costs two clock reads, and a :data:`NULL_TRACER` singleton turns the
whole machinery into no-ops when tracing is disabled.
"""

from __future__ import annotations

import io
import itertools
import json
import math
import threading
import time
from typing import Any, Iterator


class Span:
    """One timed step; a node of the trace tree."""

    __slots__ = ("name", "attrs", "start", "duration", "cpu_time",
                 "children", "_cpu_start")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.start = time.perf_counter()
        self._cpu_start = time.process_time()
        self.duration = 0.0
        self.cpu_time = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)

    def _finish(self) -> None:
        wall = time.perf_counter() - self.start
        cpu = time.process_time() - self._cpu_start
        # Children are strictly nested and sequential (stack discipline),
        # so their totals can only exceed the parent's own reading through
        # clock granularity -- process_time in particular ticks coarsely
        # on some platforms.  Clamp the parent up to the children's sum so
        # the containment invariant holds exactly, bottom-up.  (Detached
        # children from parallel bundle execution may overlap in wall
        # time; the clamp then reads as "total child work", still an
        # upper-bounded containment.)
        if self.children:
            wall = max(wall, math.fsum(c.duration for c in self.children))
            cpu = max(cpu, math.fsum(c.cpu_time for c in self.children))
        self.duration = wall
        self.cpu_time = cpu

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
                f"attrs={self.attrs}, children={len(self.children)})")


class _SpanHandle:
    """Context manager that closes a span and pops the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._span._finish()
        self._tracer._stack.pop()


class _DetachedSpanHandle:
    """Context manager over a span that is *not* on the tracer stack.

    Used by parallel bundle execution: worker threads cannot share the
    tracer's stack discipline, so each opens a detached span, times its
    work, and the coordinating thread attaches the finished spans to the
    tree afterwards (in deterministic bundle-query order)."""

    __slots__ = ("span",)

    def __init__(self, span: Span):
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> None:
        self.span._finish()


class Trace:
    """A finished span tree (the result of one traced execution)."""

    __slots__ = ("root", "started_at", "trace_id")

    def __init__(self, root: Span, started_at: float,
                 trace_id: "str | None" = None):
        self.root = root
        #: Wall-clock (epoch seconds) when the root span opened.
        self.started_at = started_at
        #: Process-unique id correlating this execution end-to-end: the
        #: same id appears on detached worker/shard spans, the flight
        #: recorder entry, JSONL sink records, and metric exemplars.
        self.trace_id = trace_id

    @property
    def duration(self) -> float:
        return self.root.duration

    def iter_spans(self) -> Iterator[tuple[Span, "Span | None"]]:
        """Yield ``(span, parent)`` pairs in depth-first order."""
        def walk(span: Span, parent: "Span | None"):
            yield span, parent
            for child in span.children:
                yield from walk(child, span)
        yield from walk(self.root, None)

    def find(self, name: str) -> "Span | None":
        """The first span called ``name`` (depth-first), or ``None``."""
        for span, _ in self.iter_spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list[Span]:
        """Every span called ``name``, in depth-first order."""
        return [s for s, _ in self.iter_spans() if s.name == name]

    def to_records(self) -> list[dict[str, Any]]:
        """Flatten into JSON-able records (one per span).

        Each record carries a per-trace span id and its parent's id, the
        offset from the trace start, and wall/CPU durations in seconds.
        """
        ids: dict[int, int] = {}
        records: list[dict[str, Any]] = []
        for i, (span, parent) in enumerate(self.iter_spans()):
            ids[id(span)] = i
            records.append({
                "span": i,
                "parent": ids[id(parent)] if parent is not None else None,
                "name": span.name,
                "offset": span.start - self.root.start,
                "duration": span.duration,
                "cpu": span.cpu_time,
                "attrs": span.attrs,
            })
        return records

    def render(self) -> str:
        """Human-readable indented tree with millisecond timings."""
        lines: list[str] = []

        def go(span: Span, depth: int) -> None:
            attrs = "".join(f" {k}={v!r}" for k, v in span.attrs.items())
            lines.append(f"{'  ' * depth}{span.name}  "
                         f"[{span.duration * 1e3:.3f} ms]{attrs}")
            for child in span.children:
                go(child, depth + 1)

        go(self.root, 0)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


_TRACE_IDS = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id (stable, monotone, cheap)."""
    return f"{next(_TRACE_IDS):08x}"


class Tracer:
    """Builds one :class:`Trace`: a stack of open spans.

    Every tracer owns a stable :attr:`trace_id` from birth, so code that
    runs *during* the execution (backends, metric exemplars, worker
    threads) can reference the id the finished trace will carry."""

    __slots__ = ("root", "trace_id", "_stack", "_started_at")

    def __init__(self, name: str, **attrs: Any):
        self._started_at = time.time()
        self.trace_id = new_trace_id()
        self.root = Span(name, attrs)
        self._stack = [self.root]

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a child span of the innermost open span."""
        span = Span(name, attrs)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def detached(self, name: str, **attrs: Any) -> _DetachedSpanHandle:
        """Open a span *off* the stack (safe to use from worker threads);
        attach the handle later -- from the coordinating thread -- with
        :meth:`attach`.  Detached spans are stamped with the tracer's
        ``trace_id`` so rows produced on worker threads (parallel bundle
        queries, SQL shards) stay correlated with their execution."""
        attrs.setdefault("trace_id", self.trace_id)
        return _DetachedSpanHandle(Span(name, attrs))

    def attach(self, handle: _DetachedSpanHandle) -> None:
        """Adopt a finished detached span as a child of the innermost
        open span (call from the thread that owns this tracer)."""
        self._stack[-1].children.append(handle.span)

    def finish(self) -> Trace:
        """Close the root span and return the finished trace."""
        self.root._finish()
        return Trace(self.root, self._started_at, self.trace_id)


class _NullSpan:
    """Absorbs attribute writes when tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def _finish(self) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer whose every operation is a no-op (tracing disabled)."""

    __slots__ = ()

    #: Attribute writes on the (absent) root are absorbed too.
    root = NULL_SPAN
    #: No execution id when tracing is off (callers read this uniformly).
    trace_id = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def detached(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def attach(self, handle: Any) -> None:
        pass

    def finish(self) -> None:
        return None
#: Shared do-nothing tracer; the default for every ``tracer=`` parameter.
NULL_TRACER = NullTracer()


class Sink:
    """Interface for trace exporters: receives every finished trace."""

    def emit(self, trace: Trace) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class CollectingSink(Sink):
    """Keeps finished traces in a list (tests, interactive inspection)."""

    def __init__(self) -> None:
        self.traces: list[Trace] = []

    def emit(self, trace: Trace) -> None:
        self.traces.append(trace)


class JsonLinesSink(Sink):
    """Writes one JSON object per span, one per line (JSONL).

    ``target`` is a file path or any text file-like object.  Records
    carry the trace's process-unique ``trace`` id (the same
    ``trace_id`` exemplars and the flight recorder reference) and its
    epoch start timestamp, so lines from interleaved connections remain
    groupable and joinable against the other observability surfaces.

    Appends are thread-safe: each trace is serialized outside the lock
    and written as one contiguous block, so concurrent writers never
    interleave lines mid-record.
    """

    def __init__(self, target: "str | io.TextIOBase"):
        if isinstance(target, str):
            self._file = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self._lock = threading.Lock()

    def emit(self, trace: Trace) -> None:
        trace_id = (trace.trace_id if trace.trace_id is not None
                    else new_trace_id())
        records = trace.to_records()
        for record in records:
            record["trace"] = trace_id
            record["ts"] = trace.started_at
        block = "".join(json.dumps(record, default=str) + "\n"
                        for record in records)
        with self._lock:
            self._file.write(block)
            self._file.flush()

    def close(self) -> None:
        if self._owns:
            self._file.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
