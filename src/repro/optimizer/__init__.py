"""Pathfinder-style algebra optimizer (rewrite pipeline)."""

from .pipeline import PassStats, optimize_bundle, optimize_plan

__all__ = ["PassStats", "optimize_bundle", "optimize_plan"]
