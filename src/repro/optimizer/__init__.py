"""Pathfinder-style algebra optimizer (rewrite pipeline)."""

from .pipeline import optimize_bundle, optimize_plan

__all__ = ["optimize_bundle", "optimize_plan"]
