"""The optimizer pipeline: Pathfinder's role in step 3 of Figure 2.

Applies the rewrite passes in a short fixpoint loop:

1. common subexpression elimination (share the compiler's duplicates),
2. constant folding,
3. icols needed-columns pruning,
4. projection merging,

repeating until the plan stops shrinking (bounded by ``MAX_ROUNDS``).
Every query of a bundle is optimized; the resulting plans are validated
by full schema inference before they reach a backend.

Each run can record :class:`PassStats` -- per-pass node-count deltas and
fixpoint round counts -- which the runtime attaches to compiled queries
so cache tests and benchmarks can prove whether the (expensive) rewrite
fixpoint actually ran for a given execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra import Node, node_count, validate
from ..core.bundle import Bundle, SerializedQuery
from ..obs.trace import NULL_TRACER
from .rewrites import (
    eliminate_common_subexpressions,
    fold_constants,
    merge_projections,
    prune_unneeded_columns,
)

MAX_ROUNDS = 5

#: Pipeline order; names index :attr:`PassStats.nodes_removed`.
_PASSES = (
    ("cse", eliminate_common_subexpressions),
    ("constfold", fold_constants),
    ("icols", prune_unneeded_columns),
    ("projmerge", merge_projections),
)


@dataclass
class PassStats:
    """Accounting for one optimizer run (possibly over a whole bundle)."""

    #: Plans pushed through the pipeline.
    plans: int = 0
    #: Total fixpoint rounds across all plans.
    rounds: int = 0
    #: DAG nodes before/after, summed over plans.
    nodes_before: int = 0
    nodes_after: int = 0
    #: Net node-count reduction attributed to each pass.
    nodes_removed: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name, _ in _PASSES})

    @property
    def shrinkage(self) -> float:
        """Fraction of plan nodes eliminated (0.0 for an empty run)."""
        if not self.nodes_before:
            return 0.0
        return 1.0 - self.nodes_after / self.nodes_before


def optimize_plan(plan: Node, stats: PassStats | None = None,
                  tracer=NULL_TRACER) -> Node:
    """Run the rewrite pipeline on one plan DAG.

    ``tracer`` (a :class:`repro.obs.Tracer`) receives one span per
    rewrite-pass invocation, tagged with the fixpoint round and the
    node-count delta the pass achieved.
    """
    if stats is None:
        stats = PassStats()
    size = node_count(plan)
    stats.plans += 1
    stats.nodes_before += size
    for round_no in range(MAX_ROUNDS):
        stats.rounds += 1
        round_start = size
        for name, rewrite in _PASSES:
            with tracer.span(name, round=round_no) as sp:
                plan = rewrite(plan)
                new_size = node_count(plan)
                sp.set(removed=size - new_size)
            stats.nodes_removed[name] += size - new_size
            size = new_size
        if size >= round_start:
            break
    stats.nodes_after += size
    validate(plan)
    return plan


def optimize_bundle(bundle: Bundle, stats: PassStats | None = None,
                    tracer=NULL_TRACER) -> Bundle:
    """Optimize every query of a bundle.

    After the per-query fixpoints, one hash-consing sweep with a shared
    canonical table runs over all plans.  The per-query rewrites rebuild
    nodes, so the compiler's *cross-query* sharing (the outer query's
    spine feeding each inner query) would otherwise come out as
    structurally equal but distinct objects -- invisible to the engine's
    bundle cache, which memoizes on node identity.  Within each plan
    sharing is already maximal after CSE, so this sweep never changes a
    plan's shape, only object identity across queries.
    """
    plans = [optimize_plan(q.plan, stats, tracer) for q in bundle.queries]
    if len(plans) > 1:
        canonical: dict = {}
        plans = [eliminate_common_subexpressions(plan, canonical)
                 for plan in plans]
    queries = [
        SerializedQuery(plan, q.iter_col, q.pos_col, q.item_cols,
                        q.item_types)
        for plan, q in zip(plans, bundle.queries)
    ]
    return Bundle(bundle.result_ty, queries, bundle.root_ref,
                  bundle.root_is_list)
