"""The optimizer pipeline: Pathfinder's role in step 3 of Figure 2.

Applies the rewrite passes in a short fixpoint loop:

1. common subexpression elimination (share the compiler's duplicates),
2. constant folding,
3. icols needed-columns pruning,
4. projection merging,

repeating until the plan stops shrinking (bounded by ``MAX_ROUNDS``).
Every query of a bundle is optimized; the resulting plans are validated
by full schema inference before they reach a backend.
"""

from __future__ import annotations

from ..algebra import Node, node_count, validate
from ..core.bundle import Bundle, SerializedQuery
from .rewrites import (
    eliminate_common_subexpressions,
    fold_constants,
    merge_projections,
    prune_unneeded_columns,
)

MAX_ROUNDS = 5


def optimize_plan(plan: Node) -> Node:
    """Run the rewrite pipeline on one plan DAG."""
    size = node_count(plan)
    for _ in range(MAX_ROUNDS):
        plan = eliminate_common_subexpressions(plan)
        plan = fold_constants(plan)
        plan = prune_unneeded_columns(plan)
        plan = merge_projections(plan)
        new_size = node_count(plan)
        if new_size >= size:
            break
        size = new_size
    validate(plan)
    return plan


def optimize_bundle(bundle: Bundle) -> Bundle:
    """Optimize every query of a bundle."""
    queries = [
        SerializedQuery(optimize_plan(q.plan), q.iter_col, q.pos_col,
                        q.item_cols, q.item_types)
        for q in bundle.queries
    ]
    return Bundle(bundle.result_ty, queries, bundle.root_ref,
                  bundle.root_is_list)
