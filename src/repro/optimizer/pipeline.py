"""The optimizer pipeline: Pathfinder's role in step 3 of Figure 2.

Applies the syntactic rewrite passes in a short fixpoint loop:

1. common subexpression elimination (share the compiler's duplicates),
2. constant folding,
3. icols needed-columns pruning,
4. projection merging,

repeating until the plan stops shrinking (bounded by ``MAX_ROUNDS``).
On the stabilized plan one *property-driven* sweep runs (key-based
Distinct elimination, RowNum over an already-dense order column,
constant-true Select -- driven by ``repro.analysis`` inference); if it
fires, a single syntactic tidy-up round absorbs the leftovers.
Running inference once on the *smallest* plan -- and
sharing its :class:`~repro.analysis.PropsCache` with the final
verifier -- keeps the analysis layer's compile-time cost to a single
memoized walk per compile.

Every query of a bundle is verified by the staged plan verifier
(``repro.analysis``) before it reaches a backend; under verifier debug
mode (``FERRY_VERIFY=1`` / ``set_verify_debug``) the structural stage
additionally runs after *every* pass invocation, so a mis-rewriting
pass is caught at the pass boundary that introduced the damage.

Each run can record :class:`PassStats` -- per-pass node-count deltas,
fixpoint round counts, and per-rewrite fire counts -- which the runtime
attaches to compiled queries so cache tests and benchmarks can prove
whether the (expensive) rewrite fixpoint actually ran for a given
execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Mapping

from ..algebra import Node, node_count
from ..analysis import PropsCache, check_plan, verify_bundle, verify_debug_enabled
from ..analysis.cost import CostModel, estimate_bundle
from ..core.bundle import Bundle, SerializedQuery
from ..obs.trace import NULL_TRACER
from .rewrites import (
    apply_property_rewrites,
    eliminate_common_subexpressions,
    fold_constants,
    merge_projections,
    prune_unneeded_columns,
)

MAX_ROUNDS = 5

#: The syntactic fixpoint, in pipeline order.
_SYNTACTIC = (
    ("cse", eliminate_common_subexpressions),
    ("constfold", fold_constants),
    ("icols", prune_unneeded_columns),
    ("projmerge", merge_projections),
)

#: All pass names (stats keys): the syntactic loop plus the
#: property-driven sweep.
_PASSES = _SYNTACTIC + (("properties", apply_property_rewrites),)


@dataclass
class PassStats:
    """Accounting for one optimizer run (possibly over a whole bundle)."""

    #: Plans pushed through the pipeline.
    plans: int = 0
    #: Total fixpoint rounds across all plans.
    rounds: int = 0
    #: DAG nodes before/after, summed over plans.
    nodes_before: int = 0
    nodes_after: int = 0
    #: Net node-count reduction attributed to each pass.
    nodes_removed: dict[str, int] = field(
        default_factory=lambda: {name: 0 for name, _ in _PASSES})
    #: Fire counts of the property-driven rewrites (``distinct_elim``,
    #: ``rownum_dense``, ``select_true``, ``semijoin_reduce``).
    rewrites_fired: dict[str, int] = field(default_factory=dict)
    #: Candidates that matched but were rejected by the cost gate (the
    #: estimated plan cost did not strictly drop), per rewrite name.
    rewrites_gated: dict[str, int] = field(default_factory=dict)

    @property
    def shrinkage(self) -> float:
        """Fraction of plan nodes eliminated (0.0 for an empty run)."""
        if not self.nodes_before:
            return 0.0
        return 1.0 - self.nodes_after / self.nodes_before


def _syntactic_fixpoint(plan: Node, size: int, stats: PassStats,
                        tracer, debug: bool,
                        max_rounds: int = MAX_ROUNDS,
                        passes: tuple = _SYNTACTIC) -> tuple[Node, int]:
    """The cheap syntactic loop: run until the plan stops shrinking."""
    for round_no in range(max_rounds):
        stats.rounds += 1
        round_start = size
        for name, rewrite in passes:
            with tracer.span(name, round=round_no) as sp:
                plan = rewrite(plan)
                new_size = node_count(plan)
                sp.set(removed=size - new_size)
            if debug:
                check_plan(plan)
            stats.nodes_removed[name] += size - new_size
            size = new_size
        if size >= round_start:
            break
    return plan, size


def optimize_plan(plan: Node, stats: PassStats | None = None,
                  tracer=NULL_TRACER, verify: bool = True,
                  cache: "PropsCache | None" = None,
                  cost_model: "CostModel | None" = None) -> Node:
    """Run the rewrite pipeline on one plan DAG.

    ``tracer`` (a :class:`repro.obs.Tracer`) receives one span per
    rewrite-pass invocation, tagged with the fixpoint round and the
    node-count delta the pass achieved.  ``verify=False`` skips the
    final structural check (``optimize_bundle`` does, running the full
    staged verifier over the whole bundle instead); ``cache`` carries
    the property analysis over to that verifier so nothing is inferred
    twice.  ``cost_model`` (over the same cache) gates the property
    rewrites; without one a stats-free engine-calibrated model is built.
    """
    if stats is None:
        stats = PassStats()
    if cache is None:
        cache = PropsCache()
    if cost_model is None:
        cost_model = CostModel("engine", cache=cache)
    debug = verify_debug_enabled()
    size = node_count(plan)
    stats.plans += 1
    stats.nodes_before += size
    plan, size = _syntactic_fixpoint(plan, size, stats, tracer, debug)
    # One property-driven sweep on the stabilized (smallest) plan; when
    # it fires, the syntactic loop tidies the rewrite outputs (merges
    # the Project a RowNum elimination leaves behind, prunes columns a
    # dropped Distinct no longer needs).  One sweep suffices: each
    # rewrite only *removes* work, so cascades are rare and the next
    # cold compile would catch them -- quiescence is not worth a second
    # full inference walk per compile.
    with tracer.span("properties", round=stats.rounds) as sp:
        rewritten = apply_property_rewrites(plan, stats.rewrites_fired,
                                            cache, model=cost_model,
                                            gated=stats.rewrites_gated)
        new_size = node_count(rewritten)
        sp.set(removed=size - new_size)
    stats.nodes_removed["properties"] += size - new_size
    if rewritten is not plan:
        plan, size = rewritten, new_size
        if debug:
            check_plan(plan)
        # One tidy-up round of icols+projmerge is enough: the sweep only
        # removed operators or turned a RowNum into a rename, so pruning
        # plus merging absorbs the leftovers; re-running the full loop
        # to convergence would mostly pay for rounds that change nothing.
        plan, size = _syntactic_fixpoint(plan, size, stats, tracer, debug,
                                         max_rounds=1,
                                         passes=_SYNTACTIC[2:])
    stats.nodes_after += size
    if verify:
        check_plan(plan, cache.schemas)
    return plan


def optimize_bundle(bundle: Bundle, stats: PassStats | None = None,
                    tracer=NULL_TRACER,
                    table_rows: "Mapping[str, int] | None" = None,
                    backend: str = "engine") -> Bundle:
    """Optimize every query of a bundle.

    After the per-query fixpoints, one hash-consing sweep with a shared
    canonical table runs over all plans.  The per-query rewrites rebuild
    nodes, so the compiler's *cross-query* sharing (the outer query's
    spine feeding each inner query) would otherwise come out as
    structurally equal but distinct objects -- invisible to the engine's
    bundle cache, which memoizes on node identity.  Within each plan
    sharing is already maximal after CSE, so this sweep never changes a
    plan's shape, only object identity across queries.

    The finished bundle -- the exact plans every backend receives --
    then goes through all three verifier stages (structural, order,
    avalanche) and is stamped ``verified``.  The verifier reuses the
    optimizer's :class:`~repro.analysis.PropsCache`: after the
    cross-query sweep most nodes are already analyzed, so verification
    costs one incremental walk, not a second full one.
    """
    cache = PropsCache()
    # The rewrite gate deliberately estimates with the *engine*
    # calibration and *without* catalog row statistics: every backend
    # and every catalog instance must optimize the same program to
    # identical algebra (the goldens and the data-independence property
    # tests assert this).  Instance statistics only sharpen the cost
    # *stamp* below, never the plan shape.
    model = CostModel("engine", cache=cache)
    plans = [optimize_plan(q.plan, stats, tracer, verify=False, cache=cache,
                           cost_model=model)
             for q in bundle.queries]
    if len(plans) > 1:
        canonical: dict = {}
        plans = [eliminate_common_subexpressions(plan, canonical)
                 for plan in plans]
    queries = [
        SerializedQuery(plan, q.iter_col, q.pos_col, q.item_cols,
                        q.item_types)
        for plan, q in zip(plans, bundle.queries)
    ]
    optimized = Bundle(bundle.result_ty, queries, bundle.root_ref,
                       bundle.root_is_list)
    verify_bundle(optimized, label="post-optimize", cache=cache)
    # Stamp the compile-time cost estimate of the *final* plans (this
    # time with the executing backend's calibration): runtime dispatch
    # (S412/S413), /statements drift rows, and the lint all read it.
    optimized.cost = estimate_bundle(optimized, backend=backend,
                                     table_rows=table_rows, cache=cache)
    return optimized
