"""Individual rewrite passes of the algebra optimizer."""

from .cse import eliminate_common_subexpressions, replace_children
from .constfold import fold_constants
from .icols import prune_unneeded_columns
from .projmerge import merge_projections
from .properties import apply_property_rewrites

__all__ = [
    "apply_property_rewrites",
    "eliminate_common_subexpressions",
    "fold_constants",
    "merge_projections",
    "prune_unneeded_columns",
    "replace_children",
]
