"""Constant folding over column-wise scalar applications.

* ``BinApp`` whose operand column is produced by an ``Attach`` of a
  constant reads the constant directly (the dead ``Attach`` then falls to
  icols);
* ``BinApp`` over two constants becomes an ``Attach`` of the folded value;
* ``Select`` on a column attached as constant ``True`` disappears.
"""

from __future__ import annotations

from ...algebra import Attach, BinApp, Const, Node, Select, rewrite_dag
from ...errors import PartialFunctionError
from ...expr.exp import BOOL_OPS, CMP_OPS
from ...ftypes import AtomT, BoolT
from .cse import replace_children


def fold_constants(root: Node) -> Node:
    memo: dict = {}

    def visit(node: Node, children: tuple[Node, ...]) -> Node:
        node = (replace_children(node, children)
                if node.children else node)
        if isinstance(node, BinApp):
            return _fold_binapp(node, memo)
        if isinstance(node, Select):
            child = node.child
            if (isinstance(child, Attach) and child.col == node.col
                    and child.value is True):
                return Attach(child.child, child.col, True, child.ty)
        return node

    return rewrite_dag(root, visit)


def _fold_binapp(node: BinApp, memo) -> Node:
    lhs, rhs = node.lhs, node.rhs
    child = node.child
    # Read operands straight out of constant attachments.
    if isinstance(child, Attach):
        if lhs == child.col:
            lhs = Const(child.value, child.ty)
        if rhs == child.col:
            rhs = Const(child.value, child.ty)
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        try:
            value = _eval(node.op, lhs.value, rhs.value)
        except PartialFunctionError:
            # division by zero must stay a runtime error
            return BinApp(node.child, node.op, lhs, rhs, node.out)
        ty = _result_ty(node.op, lhs.ty)
        return Attach(node.child, node.out, value, ty)
    if lhs is not node.lhs or rhs is not node.rhs:
        return BinApp(node.child, node.op, lhs, rhs, node.out)
    return node


def _eval(op: str, a, b):
    from ...semantics.interp import _binop
    return _binop(op, a, b)


def _result_ty(op: str, operand_ty: AtomT) -> AtomT:
    if op in CMP_OPS or op in BOOL_OPS or op == "like":
        return BoolT
    return operand_ty
