"""Common subexpression elimination (hash-consing plan DAGs).

The loop-lifting compiler freely re-projects and re-derives the same
subplans (environment lifting duplicates joins per variable); this pass
shares structurally identical nodes, shrinking plans and letting the
engine's per-node memoization (and SQL's WITH bindings) evaluate shared
work once.
"""

from __future__ import annotations

from ...algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
    rewrite_dag,
)


def _operand_key(operand):
    if isinstance(operand, Const):
        return ("const", operand.value, operand.ty)
    return ("col", operand)


def _node_key(node: Node, child_ids: tuple[int, ...]):
    if isinstance(node, LitTable):
        return ("lit", node.rows, node.schema)
    if isinstance(node, TableScan):
        return ("scan", node.table, node.columns)
    if isinstance(node, Attach):
        return ("attach", node.col, node.value, node.ty, child_ids)
    if isinstance(node, Project):
        return ("project", node.cols, child_ids)
    if isinstance(node, Select):
        return ("select", node.col, child_ids)
    if isinstance(node, Distinct):
        return ("distinct", child_ids)
    if isinstance(node, RowNum):
        return ("rownum", node.col, node.order, node.part, child_ids)
    if isinstance(node, RowRank):
        return ("rowrank", node.col, node.order, child_ids)
    if isinstance(node, Cross):
        return ("cross", child_ids)
    if isinstance(node, EqJoin):
        return ("eqjoin", node.pairs, child_ids)
    if isinstance(node, SemiJoin):
        return ("semijoin", node.pairs, child_ids)
    if isinstance(node, AntiJoin):
        return ("antijoin", node.pairs, child_ids)
    if isinstance(node, UnionAll):
        return ("union", child_ids)
    if isinstance(node, GroupAggr):
        return ("groupaggr", node.group, node.aggs, child_ids)
    if isinstance(node, BinApp):
        return ("binapp", node.op, _operand_key(node.lhs),
                _operand_key(node.rhs), node.out, child_ids)
    if isinstance(node, UnApp):
        return ("unapp", node.op, node.col, node.out, child_ids)
    return ("opaque", id(node))  # pragma: no cover


def eliminate_common_subexpressions(root: Node,
                                    canonical: "dict | None" = None) -> Node:
    """Share structurally identical subplans.

    ``canonical`` maps structural node keys to their canonical node
    objects.  Passing the same dict across several calls hash-conses
    *across* those plans: structurally equal subplans in different
    bundle queries collapse to one shared object (``optimize_bundle``
    uses this so the engine's cross-query bundle cache -- keyed on node
    identity -- sees the sharing the per-query rewrites destroyed).
    """
    if canonical is None:
        canonical = {}

    def visit(node: Node, children: tuple[Node, ...]) -> Node:
        rebuilt = _rebuild(node, children)
        key = _node_key(rebuilt, tuple(id(c) for c in children))
        existing = canonical.get(key)
        if existing is not None:
            return existing
        canonical[key] = rebuilt
        return rebuilt

    return rewrite_dag(root, visit)


def _rebuild(node: Node, children: tuple[Node, ...]) -> Node:
    """Reconstruct ``node`` over (possibly shared) new children."""
    if not node.children:
        return node
    if tuple(id(c) for c in children) == tuple(id(c) for c in node.children):
        return node
    return replace_children(node, children)


def replace_children(node: Node, children: tuple[Node, ...]) -> Node:
    """Build a copy of ``node`` whose children are ``children``."""
    if isinstance(node, Attach):
        return Attach(children[0], node.col, node.value, node.ty)
    if isinstance(node, Project):
        return Project(children[0], node.cols)
    if isinstance(node, Select):
        return Select(children[0], node.col)
    if isinstance(node, Distinct):
        return Distinct(children[0])
    if isinstance(node, RowNum):
        return RowNum(children[0], node.col, node.order, node.part)
    if isinstance(node, RowRank):
        return RowRank(children[0], node.col, node.order)
    if isinstance(node, Cross):
        return Cross(children[0], children[1])
    if isinstance(node, EqJoin):
        return EqJoin(children[0], children[1], node.pairs)
    if isinstance(node, SemiJoin):
        return SemiJoin(children[0], children[1], node.pairs)
    if isinstance(node, AntiJoin):
        return AntiJoin(children[0], children[1], node.pairs)
    if isinstance(node, UnionAll):
        return UnionAll(children[0], children[1])
    if isinstance(node, GroupAggr):
        return GroupAggr(children[0], node.group, node.aggs)
    if isinstance(node, BinApp):
        return BinApp(children[0], node.op, node.lhs, node.rhs, node.out)
    if isinstance(node, UnApp):
        return UnApp(children[0], node.op, node.col, node.out)
    raise TypeError(f"cannot rebuild {node.label}")  # pragma: no cover
