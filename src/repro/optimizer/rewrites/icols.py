"""icols: needed-columns analysis and pruning.

Pathfinder's classic cleanup pass: the loop-lifting rules conservatively
carry every column along; most are never consumed.  A top-down demand
analysis computes, per DAG node, the set of columns any consumer actually
reads; a bottom-up rebuild then narrows literal tables, scans and
projections, and deletes attachments, scalar applications and row
numbering whose output column is dead.

Care is taken with operators whose *cardinality* depends on column
content:

* ``Distinct`` demands its full input (projecting first would merge rows);
* group-by columns of ``GroupAggr`` always stay (they define the groups);
* pruning never leaves a relation with zero columns (cardinality must
  survive), and ``UnionAll`` children are re-projected onto the identical
  narrowed schema.
"""

from __future__ import annotations

from ...algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
    postorder,
    schema_of,
)
from .cse import replace_children


def prune_unneeded_columns(root: Node) -> Node:
    """Remove columns (and the operators that only compute them) that no
    consumer reads.  The root's full output is demanded."""
    memo: dict = {}
    order = list(postorder(root))
    needed: dict[int, set[str]] = {id(n): set() for n in order}
    needed[id(root)] = set(schema_of(root, memo))
    # Parents precede children in reversed postorder.
    for node in reversed(order):
        _demand(node, needed, memo)

    rebuilt: dict[int, Node] = {}
    for node in order:
        children = tuple(rebuilt[id(c)] for c in node.children)
        rebuilt[id(node)] = _narrow(node, children, needed[id(node)], memo)
    return rebuilt[id(root)]


# ----------------------------------------------------------------------
# demand propagation (top-down)
# ----------------------------------------------------------------------

def _demand(node: Node, needed: dict[int, set[str]], memo) -> None:
    n = needed[id(node)]

    def want(child: Node, cols) -> None:
        needed[id(child)] |= set(cols)

    if isinstance(node, Project):
        want(node.child, {old for new, old in node.cols if new in n})
    elif isinstance(node, Attach):
        want(node.child, n - {node.col})
    elif isinstance(node, Select):
        want(node.child, n | {node.col})
    elif isinstance(node, Distinct):
        want(node.child, schema_of(node.child, memo))
    elif isinstance(node, RowNum):
        want(node.child, (n - {node.col}) | {c for c, _ in node.order}
             | set(node.part))
    elif isinstance(node, RowRank):
        want(node.child, (n - {node.col}) | {c for c, _ in node.order})
    elif isinstance(node, Cross):
        lsch = set(schema_of(node.left, memo))
        want(node.left, n & lsch)
        want(node.right, n - lsch)
    elif isinstance(node, EqJoin):
        lsch = set(schema_of(node.left, memo))
        want(node.left, (n & lsch) | {l for l, _ in node.pairs})
        want(node.right, (n - lsch) | {r for _, r in node.pairs})
    elif isinstance(node, (SemiJoin, AntiJoin)):
        want(node.left, n | {l for l, _ in node.pairs})
        want(node.right, {r for _, r in node.pairs})
    elif isinstance(node, UnionAll):
        want(node.left, n)
        want(node.right, n)
    elif isinstance(node, GroupAggr):
        ins = {in_col for _f, in_col, out in node.aggs
               if in_col is not None and out in n}
        # Aggregates with dead outputs are dropped, but the grouping
        # columns always stay -- they define the groups.
        want(node.child, set(node.group) | ins)
    elif isinstance(node, BinApp):
        cols = {c for c in (node.lhs, node.rhs) if not isinstance(c, Const)}
        want(node.child, (n - {node.out}) | cols)
    elif isinstance(node, UnApp):
        want(node.child, (n - {node.out}) | {node.col})
    # LitTable / TableScan have no children.


# ----------------------------------------------------------------------
# pruning rebuild (bottom-up)
# ----------------------------------------------------------------------

def _narrow(node: Node, children: tuple[Node, ...], n: set[str],
            memo) -> Node:
    if isinstance(node, LitTable):
        keep = [i for i, (name, _) in enumerate(node.schema) if name in n]
        if not keep:  # keep cardinality
            keep = [0]
        if len(keep) == len(node.schema):
            return node
        schema = tuple(node.schema[i] for i in keep)
        rows = tuple(tuple(row[i] for i in keep) for row in node.rows)
        return LitTable(rows, schema)

    if isinstance(node, TableScan):
        keep = [c for c in node.columns if c[0] in n] or [node.columns[0]]
        if len(keep) == len(node.columns):
            return node
        return TableScan(node.table, tuple(keep))

    if isinstance(node, Project):
        cols = tuple((new, old) for new, old in node.cols if new in n)
        if not cols:
            # Nothing demanded: keep cardinality through any one column
            # that survived in the narrowed child.
            child_col = next(iter(schema_of(children[0], {})))
            cols = ((child_col, child_col),)
        return Project(children[0], cols)

    if isinstance(node, Attach) and node.col not in n:
        return children[0]

    if isinstance(node, (RowNum, RowRank)) and node.col not in n:
        return children[0]

    if isinstance(node, BinApp) and node.out not in n:
        return children[0]

    if isinstance(node, UnApp) and node.out not in n:
        return children[0]

    if isinstance(node, GroupAggr):
        aggs = tuple(a for a in node.aggs if a[2] in n)
        return GroupAggr(children[0], node.group, aggs)

    if isinstance(node, UnionAll):
        # Children were narrowed independently; realign them on the
        # demanded schema (sorted for determinism).
        cols = tuple(sorted(n)) if n else None
        if cols is None:  # pragma: no cover - root always demands columns
            return replace_children(node, children)
        left = Project(children[0], tuple((c, c) for c in cols))
        right = Project(children[1], tuple((c, c) for c in cols))
        return UnionAll(left, right)

    return replace_children(node, children) if node.children else node
