"""Projection merging and identity elimination.

Adjacent projections compose into one; a projection that renames nothing
and keeps its child's full schema in order disappears.  Run after icols,
which leaves chains of narrowed projections behind.
"""

from __future__ import annotations

from ...algebra import Node, Project, rewrite_dag, schema_of
from .cse import replace_children


def merge_projections(root: Node) -> Node:
    memo: dict = {}

    def visit(node: Node, children: tuple[Node, ...]) -> Node:
        if not isinstance(node, Project):
            return (replace_children(node, children)
                    if node.children else node)
        child = children[0]
        cols = node.cols
        # Project over Project: compose the rename maps.
        while isinstance(child, Project):
            inner = dict(child.cols)
            cols = tuple((new, inner[old]) for new, old in cols)
            child = child.child
        # Identity projection: same names, same order, no duplication.
        child_cols = list(schema_of(child, memo))
        if (len(cols) == len(child_cols)
                and all(new == old for new, old in cols)
                and [new for new, _ in cols] == child_cols):
            return child
        return Project(child, cols)

    return rewrite_dag(root, visit)
