"""Property-driven rewrites (Pathfinder's peephole style).

Unlike the syntactic passes, these rewrites fire on *inferred* plan
properties (``repro.analysis``), which see through whatever operator
chain produced the fact:

``distinct_elim``
    ``Distinct(q)`` -> ``q`` when ``q`` already has a key (its rows are
    duplicate-free, so duplicate elimination is the identity).
``rownum_dense``
    ``RowNum col := row_number(order by o asc partition by P)(q)`` ->
    ``Project[..., col <= o](q)`` when ``o`` is soundly dense-from-1
    per ``P`` in ``q``: numbering an already-numbered run just copies
    the order column.
``select_true``
    ``Select c (q)`` -> ``q`` when ``c`` is the constant ``True`` in
    ``q`` -- including when the constant travelled through projections,
    joins, or a comparison the constant-folder cannot see
    (``x == x``).

Every application is self-verified: the rewritten plan is re-inferred
and must keep the original root schema (exactly, including column
order) and every inferred root key; a violation raises
:class:`~repro.errors.VerifyError` (``F190``) instead of emitting a
mis-optimized plan.
"""

from __future__ import annotations

from ...algebra.ops import Distinct, Node, Project, RowNum, Select
from ...algebra.schema import schema_of
from ...analysis.properties import Props, PropsCache
from ...errors import VerifyError
from .cse import replace_children

#: Rewrite names, as accounted in ``PassStats.rewrites_fired``.
REWRITES = ("distinct_elim", "rownum_dense", "select_true")


def apply_property_rewrites(root: Node,
                            fired: "dict[str, int] | None" = None,
                            cache: "PropsCache | None" = None) -> Node:
    """One bottom-up sweep of the property-driven rewrites.

    ``fired`` (e.g. ``PassStats.rewrites_fired``) accumulates how often
    each rewrite applied.  Decisions are taken on the properties of the
    *original* DAG; since every rewrite preserves semantics, the facts
    remain valid for the rebuilt children they are applied over.
    ``cache`` -- a :class:`~repro.analysis.PropsCache` shared with the
    rest of the compile -- makes both the sweep's inference and the
    self-check incremental over nodes analyzed earlier.
    """
    if cache is None:
        cache = PropsCache()
    cache.infer(root)
    props = cache.props

    local: dict[str, int] = {}
    result: dict[int, Node] = {}
    from ...algebra.dag import postorder
    changed = False
    for node in postorder(root):
        children = tuple(result[id(c)] for c in node.children)
        replacement = _rewrite_node(node, children, props, local)
        if replacement is None:
            replacement = (node if children == node.children
                           else replace_children(node, children))
        else:
            changed = True
        result[id(node)] = replacement
    new_root = result[id(root)]
    if changed:
        _self_verify(root, new_root, cache)
        if fired is not None:
            for name, n in local.items():
                fired[name] = fired.get(name, 0) + n
    return new_root


def _rewrite_node(node: Node, children: tuple[Node, ...],
                  props: "dict[int, Props]",
                  fired: "dict[str, int]") -> "Node | None":
    """The replacement for ``node`` over its rebuilt ``children``, or
    ``None`` when no rewrite applies."""
    if isinstance(node, Distinct):
        if props[id(node.child)].keys:
            fired["distinct_elim"] = fired.get("distinct_elim", 0) + 1
            return children[0]
        return None

    if isinstance(node, Select):
        if props[id(node.child)].constants.get(node.col) is True:
            fired["select_true"] = fired.get("select_true", 0) + 1
            return children[0]
        return None

    if isinstance(node, RowNum):
        cp = props[id(node.child)]
        # Constant columns order nothing; drop them from the spec.
        order = [(c, d) for c, d in node.order if c not in cp.constants]
        if (len(order) == 1 and order[0][1] == "asc"
                and cp.is_dense(order[0][0], node.part)):
            fired["rownum_dense"] = fired.get("rownum_dense", 0) + 1
            cols = tuple((c, c) for c in cp.schema)
            return Project(children[0], cols + ((node.col, order[0][0]),))
        return None

    return None


def _self_verify(old_root: Node, new_root: Node, cache: PropsCache) -> None:
    """Re-run inference on the rewritten plan and diff it against the
    original: the schema must be identical (names, types, order) and no
    inferred root key may be lost.  ``cache`` already holds the old
    plan's analysis, so only rebuilt nodes are inferred."""
    new_schema = schema_of(new_root, cache.schemas)
    old_schema = cache.schemas[id(old_root)]
    if list(new_schema.items()) != list(old_schema.items()):
        raise VerifyError(
            "F190: property rewrite changed the root schema: "
            f"{list(old_schema)} -> {list(new_schema)}", code="F190")
    new_props = cache.infer(new_root)
    for key in cache.props[id(old_root)].keys:
        if not new_props.has_key(key):
            raise VerifyError(
                "F190: property rewrite lost root key "
                f"{{{', '.join(sorted(key))}}}", code="F190")
