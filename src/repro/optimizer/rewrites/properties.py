"""Property-driven rewrites (Pathfinder's peephole style), cost-gated.

Unlike the syntactic passes, these rewrites fire on *inferred* plan
properties (``repro.analysis``), which see through whatever operator
chain produced the fact:

``distinct_elim``
    ``Distinct(q)`` -> ``q`` when ``q`` already has a key (its rows are
    duplicate-free, so duplicate elimination is the identity).
``rownum_dense``
    ``RowNum col := row_number(order by o asc partition by P)(q)`` ->
    ``Project[..., col <= o](q)`` when ``o`` is soundly dense-from-1
    per ``P`` in ``q``: numbering an already-numbered run just copies
    the order column.
``select_true``
    ``Select c (q)`` -> ``q`` when ``c`` is the constant ``True`` in
    ``q`` -- including when the constant travelled through projections,
    joins, or a comparison the constant-folder cannot see
    (``x == x``).
``semijoin_reduce``
    Two shapes, both rooted in the loop-lifting compiler's
    surrogate-regeneration joins.  (a) ``Project[left cols
    only](EqJoin(l, r, pairs))`` -> ``Project(SemiJoin(l, r, pairs))``
    when the join columns are a key of ``r``: each left row matches at
    most one right partner, so the join contributes *filtering* but no
    payload and no multiplicity; projected join columns of ``r`` are
    remapped to their (pointwise equal) left partners.  (b) the
    self-join identity: ``EqJoin(Project(b), Project(b), pairs)`` ->
    one merged ``Project(b)`` when every pair equates renames of the
    same column of the shared ``b`` and those columns hold a key of
    ``b`` -- joining a relation to itself on its own key matches every
    row with exactly itself.

Every candidate is **cost-gated**: it fires only when the estimated
plan cost (``repro.analysis.cost``, engine calibration -- deliberately
backend-independent so all backends optimize to identical algebra)
strictly drops; rejected candidates are accounted separately
(``PassStats.rewrites_gated``).  Every application is additionally
self-verified: the rewritten plan is re-inferred and must keep the
original root schema (exactly, including column order) and every
inferred root key; a violation raises
:class:`~repro.errors.VerifyError` (``F190``) instead of emitting a
mis-optimized plan.
"""

from __future__ import annotations

from ...algebra.ops import (
    Distinct,
    EqJoin,
    Node,
    Project,
    RowNum,
    Select,
    SemiJoin,
)
from ...algebra.schema import schema_of
from ...analysis.cost import CostModel
from ...analysis.properties import Props, PropsCache, _rename_keys
from ...errors import VerifyError
from .cse import replace_children

#: Rewrite names, as accounted in ``PassStats.rewrites_fired`` /
#: ``PassStats.rewrites_gated``.
REWRITES = ("distinct_elim", "rownum_dense", "select_true",
            "semijoin_reduce")


def apply_property_rewrites(root: Node,
                            fired: "dict[str, int] | None" = None,
                            cache: "PropsCache | None" = None,
                            model: "CostModel | None" = None,
                            gated: "dict[str, int] | None" = None) -> Node:
    """One bottom-up sweep of the cost-gated property rewrites.

    ``fired`` (e.g. ``PassStats.rewrites_fired``) accumulates how often
    each rewrite applied; ``gated`` how often a matching candidate was
    rejected because its estimated cost did not strictly drop.
    Decisions are taken on the properties of the *original* DAG; since
    every rewrite preserves semantics, the facts remain valid for the
    rebuilt children they are applied over.  ``cache`` -- a
    :class:`~repro.analysis.PropsCache` shared with the rest of the
    compile -- makes the sweep's inference, the cost estimates, and the
    self-check incremental over nodes analyzed earlier; ``model`` (a
    :class:`~repro.analysis.cost.CostModel` over the same cache) carries
    catalog row statistics into the gate when the caller has them.
    """
    if cache is None:
        cache = PropsCache()
    if model is None:
        model = CostModel("engine", cache=cache)
    cache.infer(root)
    props = cache.props

    local: dict[str, int] = {}
    result: dict[int, Node] = {}
    from ...algebra.dag import postorder
    changed = False
    for node in postorder(root):
        children = tuple(result[id(c)] for c in node.children)
        default = (node if children == node.children
                   else replace_children(node, children))
        hit = _rewrite_node(node, children, props)
        if hit is not None:
            name, candidate = hit
            # The gate: a candidate must *strictly* lower the estimated
            # plan cost, else the default (un-rewritten) node stands.
            if model.plan_cost(candidate) < model.plan_cost(default):
                local[name] = local.get(name, 0) + 1
                result[id(node)] = candidate
                changed = True
                continue
            if gated is not None:
                gated[name] = gated.get(name, 0) + 1
        result[id(node)] = default
    new_root = result[id(root)]
    if changed:
        _self_verify(root, new_root, cache)
        if fired is not None:
            for name, n in local.items():
                fired[name] = fired.get(name, 0) + n
    return new_root


def _rewrite_node(node: Node, children: tuple[Node, ...],
                  props: "dict[int, Props]"
                  ) -> "tuple[str, Node] | None":
    """The candidate replacement for ``node`` over its rebuilt
    ``children`` -- ``(rewrite name, candidate)`` -- or ``None`` when no
    rewrite matches.  The caller cost-gates the candidate."""
    if isinstance(node, Distinct):
        if props[id(node.child)].keys:
            return "distinct_elim", children[0]
        return None

    if isinstance(node, Select):
        if props[id(node.child)].constants.get(node.col) is True:
            return "select_true", children[0]
        return None

    if isinstance(node, RowNum):
        cp = props[id(node.child)]
        # Constant columns order nothing; drop them from the spec.
        order = [(c, d) for c, d in node.order if c not in cp.constants]
        if (len(order) == 1 and order[0][1] == "asc"
                and cp.is_dense(order[0][0], node.part)):
            cols = tuple((c, c) for c in cp.schema)
            return "rownum_dense", Project(
                children[0], cols + ((node.col, order[0][0]),))
        return None

    if isinstance(node, Project) and isinstance(node.child, EqJoin):
        return _semijoin_reduce(node, children, props)

    if isinstance(node, EqJoin):
        return _selfjoin_elim(node, children, props)

    return None


def _semijoin_reduce(node: Project, children: tuple[Node, ...],
                     props: "dict[int, Props]"
                     ) -> "tuple[str, Node] | None":
    """``Project(EqJoin(l, r))`` -> ``Project(SemiJoin(l, r))`` when the
    join is right-unique and the projection takes nothing from ``r``
    beyond its join columns (remapped to their left partners)."""
    join = children[0]
    if not isinstance(join, EqJoin):  # a lower rewrite replaced it
        return None
    old_join = node.child
    assert isinstance(old_join, EqJoin)
    lp = props[id(old_join.left)]
    rp = props[id(old_join.right)]
    rcols = frozenset(r for _, r in old_join.pairs)
    if not rp.has_key(rcols):
        return None  # the join multiplies rows; it is not a filter
    pair_map = {r: l for l, r in old_join.pairs}
    cols: list[tuple[str, str]] = []
    for new, old in node.cols:
        if old in lp.schema:
            cols.append((new, old))
        elif (old in pair_map
              and rp.schema.get(old) == lp.schema.get(pair_map[old])):
            # The join equates old with its left partner pointwise.
            cols.append((new, pair_map[old]))
        else:
            return None  # a genuine right-side payload column
    # Key-preservation precheck: the self-verifier (F190) demands every
    # inferred root key survive.  The semi-join keeps only the *left*
    # keys (and wipes density facts), so prove each old root key is
    # covered by a remapped left key before committing -- skipping the
    # rewrite beats failing the compile.
    renames: dict[str, list[str]] = {}
    for new, src in cols:
        renames.setdefault(src, []).append(new)
    src_of = dict(zip((new for new, _ in cols), (s for _, s in cols)))
    new_keys = set()
    for key in _rename_keys(lp.keys, renames):
        # mirror Props normalization: constant columns leave keys
        new_keys.add(frozenset(
            c for c in key if src_of[c] not in lp.constants))
    for key in props[id(node)].keys:
        if not any(k <= key for k in new_keys):
            return None
    return "semijoin_reduce", Project(
        SemiJoin(join.left, join.right, old_join.pairs), tuple(cols))


def _selfjoin_elim(node: EqJoin, children: tuple[Node, ...],
                   props: "dict[int, Props]"
                   ) -> "tuple[str, Node] | None":
    """``EqJoin(Project(b), Project(b), pairs)`` -> ``Project(b)`` when
    every pair equates two renames of the *same* column of the shared
    ``b`` and those columns hold a key of ``b``.

    This is the loop-lifting compiler's surrogate-regeneration idiom:
    a ranked subplan is projected twice and self-joined on its own
    surrogate to re-derive iteration columns.  Joining a relation to
    itself on a key matches every row with exactly itself, so the join
    is the identity and the two projections merge into one."""
    old_left, old_right = node.left, node.right
    if not (isinstance(old_left, Project) and isinstance(old_right, Project)
            and old_left.child is old_right.child):
        return None
    left, right = children
    if not (isinstance(left, Project) and isinstance(right, Project)
            and left.child is right.child):
        return None  # a lower rewrite broke the sharing
    base = old_left.child
    bp = props[id(base)]
    lsrc = dict(old_left.cols)
    rsrc = dict(old_right.cols)
    join_src = set()
    for lcol, rcol in node.pairs:
        if lsrc.get(lcol) != rsrc.get(rcol):
            return None  # a genuine join over two different columns
        join_src.add(lsrc[lcol])
    if not bp.has_key(frozenset(join_src)):
        return None  # rows can match foreign partners: not the identity
    cols = old_left.cols + old_right.cols
    # Key preservation for the self-verifier (F190): remap the base keys
    # through the merged projection and require every inferred key of
    # the old join to stay covered.
    renames: dict[str, list[str]] = {}
    for new, src in cols:
        renames.setdefault(src, []).append(new)
    src_of = {new: src for new, src in cols}
    new_keys = set()
    for key in _rename_keys(bp.keys, renames):
        new_keys.add(frozenset(
            c for c in key if src_of[c] not in bp.constants))
    for key in props[id(node)].keys:
        if not any(k <= key for k in new_keys):
            return None
    return "semijoin_reduce", Project(left.child, cols)


def _self_verify(old_root: Node, new_root: Node, cache: PropsCache) -> None:
    """Re-run inference on the rewritten plan and diff it against the
    original: the schema must be identical (names, types, order) and no
    inferred root key may be lost.  ``cache`` already holds the old
    plan's analysis, so only rebuilt nodes are inferred."""
    new_schema = schema_of(new_root, cache.schemas)
    old_schema = cache.schemas[id(old_root)]
    if list(new_schema.items()) != list(old_schema.items()):
        raise VerifyError(
            "F190: property rewrite changed the root schema: "
            f"{list(old_schema)} -> {list(new_schema)}", code="F190")
    new_props = cache.infer(new_root)
    for key in cache.props[id(old_root)].keys:
        if not new_props.has_key(key):
            raise VerifyError(
                "F190: property rewrite lost root key "
                f"{{{', '.join(sorted(key))}}}", code="F190")
