"""Run-time services: catalog, connections, and result stitching."""

from .catalog import Catalog
from .connection import CompiledQuery, Connection
from .stitch import stitch

__all__ = ["Catalog", "CompiledQuery", "Connection", "stitch"]
