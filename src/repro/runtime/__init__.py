"""Run-time services: catalog, connections, plan cache, result stitching."""

from .catalog import Catalog
from .connection import CompiledQuery, Connection, PreparedQuery
from .plancache import CacheEntry, CacheKey, CacheStats, PlanCache
from .stitch import stitch

__all__ = [
    "CacheEntry",
    "CacheKey",
    "CacheStats",
    "Catalog",
    "CompiledQuery",
    "Connection",
    "PlanCache",
    "PreparedQuery",
    "stitch",
]
