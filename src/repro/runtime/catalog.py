"""The table catalog: schemas and heap copies of database-resident data.

A :class:`Catalog` plays the role of the database schema plus its instance.
Backends (the in-memory engine, the SQLite executor, the MIL VM) and the
reference interpreter all read table data from a catalog, which guarantees
that every implementation sees the *same* canonical row order: rows sorted
ascending by the full (alphabetically ordered) column tuple.  This is the
deterministic base order on which the relational ``pos`` encoding of list
order is built (Section 3.2).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..errors import SchemaError
from ..expr import TableE
from ..ftypes import AtomT, check_value, normalize_value
from ..frontend.tables import SchemaLike, normalize_schema


class Catalog:
    """Named tables with declared schemas and validated, canonically
    ordered rows."""

    def __init__(self) -> None:
        self._schemas: dict[str, tuple[tuple[str, AtomT], ...]] = {}
        self._rows: dict[str, list[tuple]] = {}
        #: Incremented on every schema/data change; backends use it to
        #: know when to (re)load the instance.
        self.version = 0
        #: Incremented on every DDL statement (CREATE/DROP TABLE).  The
        #: plan cache bakes this into its keys, so any schema change
        #: invalidates previously compiled plans (repro.runtime.plancache).
        self.schema_generation = 0
        #: Advisory physical-partitioning hints, table -> column.  The
        #: sharded SQL executor currently *replicates* every table and
        #: partitions by predicate instead -- splitting base rows would
        #: renumber the compiler's global surrogates (see DESIGN.md) --
        #: but the hints are validated, survive alongside the schema,
        #: and are surfaced to tooling via :meth:`partition_hint`.
        self._partition_hints: dict[str, str] = {}

    # ------------------------------------------------------------------
    # definition
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: SchemaLike,
                     rows: Iterable[Sequence[Any]] = ()) -> None:
        """Create table ``name``.

        ``rows`` are tuples in the *declared* column order of ``schema``;
        they are validated, reordered to the canonical alphabetical column
        order, and sorted.
        """
        if name in self._schemas:
            raise SchemaError(f"table {name!r} already exists")
        declared = (list(schema.items()) if hasattr(schema, "items")
                    else list(schema))
        cols = normalize_schema(schema)
        order = [
            [n for n, _ in declared].index(col_name) for col_name, _ in cols
        ]
        checked: list[tuple] = []
        for row in rows:
            if not isinstance(row, (tuple, list)):
                row = (row,)
            if len(row) != len(cols):
                raise SchemaError(
                    f"table {name!r}: row {row!r} has {len(row)} fields, "
                    f"schema has {len(cols)} columns")
            reordered = tuple(row[i] for i in order)
            for value, (col_name, ty) in zip(reordered, cols):
                try:
                    check_value(value, ty)
                except Exception as err:
                    raise SchemaError(
                        f"table {name!r}, column {col_name!r}: {err}") from None
            checked.append(tuple(
                normalize_value(v, ty)
                for v, (_, ty) in zip(reordered, cols)))
        checked.sort(key=_sort_key)
        self._schemas[name] = cols
        self._rows[name] = checked
        self.version += 1
        self.schema_generation += 1

    def create_table_from_records(self, cls: type,
                                  instances: Iterable[Any],
                                  name: str | None = None) -> None:
        """Create a table backing a ``@queryable`` record class."""
        from ..frontend.records import record_schema, record_to_tuple
        schema = record_schema(cls)
        self.create_table(name or cls.__name__.lower(), schema,
                          [record_to_tuple(x) for x in instances])

    def drop_table(self, name: str) -> None:
        """Remove a table (and its rows)."""
        self._require(name)
        del self._schemas[name]
        del self._rows[name]
        self._partition_hints.pop(name, None)
        self.version += 1
        self.schema_generation += 1

    def set_partition_hint(self, name: str, column: str) -> None:
        """Declare ``column`` the preferred physical partitioning key of
        ``name`` (advisory; see the attribute docstring)."""
        self._require(name)
        if column not in {c for c, _ in self._schemas[name]}:
            raise SchemaError(
                f"table {name!r} has no column {column!r} to partition on")
        self._partition_hints[name] = column

    def partition_hint(self, name: str) -> "str | None":
        """The declared partition column of ``name``, or ``None``."""
        self._require(name)
        return self._partition_hints.get(name)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    def schema(self, name: str) -> tuple[tuple[str, AtomT], ...]:
        """Columns of ``name`` in canonical (alphabetical) order."""
        self._require(name)
        return self._schemas[name]

    def rows(self, name: str) -> list[tuple]:
        """Rows of ``name`` in canonical order (full-tuple ascending)."""
        self._require(name)
        return self._rows[name]

    def check_reference(self, ref: TableE) -> None:
        """Validate a ``table`` combinator reference against the catalog.

        The paper: a missing table or a row-type mismatch "throws an error
        at runtime" -- this is that check, performed when a query is run.
        """
        if ref.name not in self._schemas:
            raise SchemaError(f"query references unknown table {ref.name!r}")
        actual = self._schemas[ref.name]
        if tuple(ref.columns) != actual:
            raise SchemaError(
                f"table {ref.name!r}: declared row type "
                f"{_show_cols(ref.columns)} does not match the catalog's "
                f"{_show_cols(actual)}")

    def _require(self, name: str) -> None:
        if name not in self._schemas:
            raise SchemaError(f"unknown table {name!r}")


def _sort_key(row: tuple) -> tuple:
    """Canonical ordering key; mixed atom types never meet in one column,
    so plain tuple comparison is safe."""
    return row


def _show_cols(cols: Sequence[tuple[str, AtomT]]) -> str:
    return "(" + ", ".join(f"{n}: {t.show()}" for n, t in cols) + ")"
