"""Connections: the paper's ``fromQ`` -- compile, execute, stitch.

A :class:`Connection` pairs a catalog (schema + data) with a query
backend.  ``run`` performs the full Figure 2 pipeline at run time:
loop-lift the deep-embedded program, optimize the algebra plans, execute
the bundle on the backend, and stitch the tabular results back into a
Python value.  As in the paper, referencing a missing table or declaring a
wrong row type surfaces here, not at query construction.

Compilation is memoized through a content-addressed :class:`PlanCache`:
``run``/``compile`` fingerprint the program (structure + referenced table
schemas), and a repeated program skips loop-lifting, the rewrite fixpoint,
and backend code generation entirely -- avalanche safety guarantees the
cached bundle is valid for any instance with the same schema.
:meth:`Connection.prepare` exposes the same machinery explicitly as a
prepared-query handle.

Every execution is observable (``repro.obs``): ``run`` and
``PreparedQuery.execute`` record a span tree (``check`` → ``cache-lookup``
→ ``lift`` → ``optimize`` per rewrite pass → ``codegen`` → one ``execute``
span per bundle query → ``stitch``) retrievable via
:attr:`Connection.last_trace` and exportable through sinks registered
with :meth:`Connection.add_sink`; :meth:`Connection.explain` returns a
structured :class:`~repro.obs.ExplainReport` including the runtime
avalanche check (and, with ``analyze=True``, an execution-time
:class:`~repro.obs.AnalyzeReport`); the process-wide
:data:`repro.obs.METRICS` registry counts compiles, cache traffic,
queries, and per-phase latencies; and every execution -- traced or not
-- lands in the connection's flight recorder
(:attr:`Connection.query_log`), which retains the N most recent and N
slowest executions and promotes profiles for runs past
``slow_query_threshold``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..analysis import verify_bundle, verify_debug_enabled
from ..analysis.cost import decide_parallel, estimate_bundle
from ..core.bundle import Bundle, compile_exp
from ..errors import ObservabilityError, QTypeError
from ..expr import exp_fingerprint, tables_referenced
from ..frontend.q import Q, to_q
from ..frontend.tables import SchemaLike, table
from ..obs import (
    METRICS,
    NULL_TRACER,
    AnalyzeCollector,
    ExplainReport,
    QueryLog,
    StatementStats,
    Trace,
    Tracer,
    build_analyze,
    build_report,
    make_entry,
    resolve_sampling,
)
from ..optimizer import PassStats
from .catalog import Catalog
from .plancache import CacheEntry, CacheKey, CacheStats, PlanCache
from .stitch import stitch


@dataclass
class CompiledQuery:
    """A compiled program plus compilation accounting (for inspection)."""

    bundle: Bundle
    optimized: bool
    #: Structural fingerprint of the source program (plan-cache identity).
    fingerprint: str | None = None
    #: Did the plan cache serve this compilation?
    cache_hit: bool = False
    #: Wall-clock seconds per compile phase ("check", "lookup", and on a
    #: cold path "lift" / "optimize"; ``run`` adds "codegen" whenever the
    #: backend actually generated code rather than reusing the cached
    #: artifact).
    timings: dict[str, float] = field(default_factory=dict)
    #: Rewrite-pipeline statistics (``None`` when the optimizer did not
    #: run for this call -- disabled, or the plan came from the cache).
    pass_stats: PassStats | None = None
    #: Plan-cache entry backing this compilation (shared codegen store).
    cache_entry: CacheEntry | None = field(default=None, repr=False)

    @property
    def query_count(self) -> int:
        """Bundle size: the avalanche-safety metric of Section 3.2."""
        return self.bundle.size

    @property
    def compile_time(self) -> float:
        """Total wall-clock seconds spent in recorded compile phases."""
        return sum(self.timings.values())


class Connection:
    """A database session: catalog + backend (default: in-memory engine).

    ``cache_size`` bounds the connection's :class:`PlanCache`; pass a
    shared ``plan_cache`` instead to let many connections reuse each
    other's compiled plans (entries are keyed on the compilation flags
    and the catalog's schema generation, so sharing is always safe).

    ``trace=False`` disables span recording entirely (the tracer becomes
    a shared no-op object, and reading :attr:`last_trace` raises
    :class:`~repro.errors.ObservabilityError`); with tracing on but no
    sink installed the cost is a handful of slotted span objects per
    execution.  ``sampling`` keeps tracing cheap under load: ``"always"``
    (default), a ratio in ``[0, 1]`` (head sampling -- untraced runs pay
    the ``NULL_TRACER`` floor), or ``"slow-only"`` (tail sampling --
    traces are recorded but only retained when the run exceeds
    ``slow_query_threshold``).

    ``slow_query_threshold`` (seconds) arms the flight recorder's
    promotion path: every execution then runs a cheap per-query
    stopwatch, and runs past the threshold land in
    :attr:`Connection.query_log` flagged ``slow`` with a full
    :class:`~repro.obs.AnalyzeReport`.  ``query_log_size`` bounds both
    of the recorder's views (N most recent + N slowest).

    ``parallel_bundles=True`` *allows* fanning each bundle's queries out
    over worker threads inside the backend (engine and SQLite; the MIL
    VM stays serial).  Whether a given bundle actually fans out is
    cost-gated: the compile-time estimate (``repro.analysis.cost``) must
    amortize the per-query thread overhead, decided per execution with a
    stable code (``S412`` fan-out / ``S413`` inline; see
    ``conn.explain``).  Bundle queries are independent by construction,
    so results are bit-identical to serial execution -- the knob only
    changes wall-clock time.  Single-query bundles always run inline.

    ``statement_stats`` (default on) aggregates every execution into a
    per-fingerprint :class:`~repro.obs.StatementStats` -- calls, errors,
    cache hits, rows, per-phase compile/execute time, per-backend and
    per-shard latency histograms, and the worst call's trace id -- read
    back via :meth:`statement_stats` (bounded by ``stats_capacity``
    tracked fingerprints; evictions fold into an overflow bucket so
    totals stay exact).

    ``shards=N`` selects the partition-parallel SQL executor
    (:class:`~repro.backends.sql.ShardedSQLiteBackend`): each bundle
    query the analysis layer proves partitionable on its ``iter`` column
    runs as ``N`` disjoint slices on ``N`` pinned SQLite connections and
    is merged back on ``(iter, pos)``; non-shardable queries fall back to
    single-image execution transparently.  Results are always identical
    to ``backend="sqlite"``.  Only meaningful for the SQL backend --
    combining ``shards`` with ``backend="engine"``/``"mil"`` raises
    :class:`~repro.errors.QTypeError`.  ``conn.explain(q)`` shows each
    query's shard decision and reason code.
    """

    def __init__(self, backend: "str | Any | None" = None,
                 catalog: Catalog | None = None, optimize: bool = True,
                 decorrelate: bool = True, cache_size: int = 128,
                 plan_cache: PlanCache | None = None, trace: bool = True,
                 sampling: "str | float | Any" = "always",
                 slow_query_threshold: "float | None" = None,
                 query_log_size: int = 32,
                 parallel_bundles: bool = False,
                 shards: "int | None" = None,
                 statement_stats: bool = True,
                 stats_capacity: int = 512):
        self.catalog = catalog or Catalog()
        self.optimize = optimize
        #: Join-graph isolation (correlated-filter decorrelation); only
        #: ever disabled by the ablation benchmarks.
        self.decorrelate = decorrelate
        self.backend = _resolve_backend(backend, shards)
        self.plan_cache = (plan_cache if plan_cache is not None
                           else PlanCache(cache_size))
        #: Total number of relational queries issued over this connection's
        #: lifetime (Table 1 instrumentation).  Counts *executions*: a
        #: plan served from the cache still issues its queries.
        self.queries_issued = 0
        #: Number of ``run``/``PreparedQuery.execute`` calls.
        self.executions = 0
        #: Record span trees for every execution?
        self.trace_enabled = trace
        #: Trace sampling policy (``repro.obs.SamplingPolicy``).
        self.sampling = resolve_sampling(sampling)
        #: Executions at least this many wall-clock seconds are flagged
        #: slow and promoted (profile + trace) into the query log;
        #: ``None`` disables the stopwatch entirely.
        self.slow_query_threshold = slow_query_threshold
        #: Fan bundle queries out over threads inside the backend?
        self.parallel_bundles = parallel_bundles
        #: The flight recorder: N most recent + N slowest executions.
        self.query_log = QueryLog(recent=query_log_size,
                                  slowest=query_log_size)
        #: Per-fingerprint workload aggregates (``pg_stat_statements``
        #: for FERRY); ``None`` when ``statement_stats=False``.
        self.stats: "StatementStats | None" = (
            StatementStats(capacity=stats_capacity)
            if statement_stats else None)
        self._last_trace: Trace | None = None
        #: Trace exporters (``repro.obs.Sink``); every finished trace is
        #: passed to each.
        self.sinks: list[Any] = []

    # ------------------------------------------------------------------
    # observability plumbing
    # ------------------------------------------------------------------
    @property
    def last_trace(self) -> "Trace | None":
        """The span tree of the most recent retained execution.

        ``None`` before the first traced execution (or when the sampling
        policy dropped every trace so far).  Raises
        :class:`~repro.errors.ObservabilityError` when the connection
        was built with ``trace=False`` -- a loud answer instead of a
        permanently-``None`` surprise.
        """
        if not self.trace_enabled:
            raise ObservabilityError(
                "tracing is disabled on this connection; construct it "
                "with trace=True (the default) to record span trees, "
                "or read the flight recorder via conn.query_log")
        return self._last_trace

    def statement_stats(self) -> dict[str, Any]:
        """Snapshot of the per-fingerprint workload aggregates (the
        ``pg_stat_statements`` view): busiest statements first, the
        eviction overflow bucket, and exact workload totals.  Raises
        :class:`~repro.errors.ObservabilityError` when the connection
        was built with ``statement_stats=False``."""
        if self.stats is None:
            raise ObservabilityError(
                "statement statistics are disabled on this connection; "
                "construct it with statement_stats=True (the default) "
                "to aggregate per-fingerprint workload telemetry")
        return self.stats.snapshot()

    def add_sink(self, sink: Any) -> Any:
        """Register a trace sink (e.g. ``JsonLinesSink``); returns it."""
        self.sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        self.sinks.remove(sink)

    def _start_trace(self, name: str):
        if not self.trace_enabled or not self.sampling.sample():
            return NULL_TRACER
        return Tracer(name, backend=self.backend.name)

    def _record_execution(self, kind: str, tracer, info: dict,
                          started_at: float, duration: float,
                          collector: "AnalyzeCollector | None") -> None:
        """Tail of every ``run``/``execute``: finish the trace, apply the
        sampling keep-decision, detect slow queries, and log the
        execution into the flight recorder and statement stats."""
        slow = (self.slow_query_threshold is not None
                and duration >= self.slow_query_threshold)
        if slow:
            METRICS.counter("connection.slow_queries").inc()
        if info.get("error") is not None:
            METRICS.counter("connection.errors").inc()
        trace = tracer.finish()
        if trace is not None and self.sampling.keep(slow):
            self._last_trace = trace
            for sink in self.sinks:
                sink.emit(trace)
        else:
            trace = None
        analyze = None
        if collector is not None and collector.queries:
            info.setdefault("rows", collector.total_rows)
            if slow and "bundle" in info:
                analyze = build_analyze(info["bundle"], collector,
                                        self.backend.name, duration)
        self.query_log.record(make_entry(
            kind, self.backend.name, started_at, duration, info,
            slow=slow, trace=trace, analyze=analyze))
        if self.stats is not None:
            self.stats.record(
                info.get("fingerprint"), duration=duration,
                started_at=started_at, backend=self.backend.name,
                rows=info.get("rows"),
                queries=info.get("queries", 0),
                cache_hit=bool(info.get("cache_hit", False)),
                compile_time=info.get("compile_time", 0.0),
                execute_time=info.get("execute_time", 0.0),
                error=info.get("error"),
                error_code=info.get("error_code"),
                shard_timings=info.get("shard_timings", ()),
                trace_id=info.get("trace_id"),
                est_rows=info.get("est_rows"))

    # ------------------------------------------------------------------
    # schema definition (delegates to the catalog)
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: SchemaLike,
                     rows: Iterable[Sequence[Any]] = ()) -> None:
        """Create and populate a database table."""
        self.catalog.create_table(name, schema, rows)

    def create_table_from_records(self, cls: type, instances: Iterable[Any],
                                  name: str | None = None) -> None:
        """Create a table backing a ``@queryable`` record class."""
        self.catalog.create_table_from_records(cls, instances, name)

    def table(self, name: str) -> Q:
        """Reference a catalog table, deriving the declared row type from
        the catalog (so the runtime check cannot fail for this query)."""
        return table(name, self.catalog.schema(name))

    # ------------------------------------------------------------------
    # the fromQ pipeline
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        """Plan-cache hit/miss/eviction counters."""
        return self.plan_cache.stats

    def compile(self, q: Any, use_cache: bool = True,
                tracer=NULL_TRACER) -> CompiledQuery:
        """Loop-lift and optimize a query without executing it.

        Consults the plan cache first: a structurally identical program
        compiled before (under the same flags and catalog schema) is
        returned without re-running the pipeline.
        """
        METRICS.counter("connection.compiles").inc()
        timings: dict[str, float] = {}
        with tracer.span("check"):
            t0 = time.perf_counter()
            qq = to_q(q)
            self._check_tables(qq)
            timings["check"] = time.perf_counter() - t0
        METRICS.histogram("phase.check").observe(timings["check"])

        with tracer.span("cache-lookup") as sp:
            t0 = time.perf_counter()
            fp = exp_fingerprint(qq.exp)
            key = CacheKey(fp, self.optimize, self.decorrelate,
                           self.catalog.schema_generation)
            entry = self.plan_cache.lookup(key) if use_cache else None
            timings["lookup"] = time.perf_counter() - t0
            sp.set(hit=entry is not None)
        METRICS.histogram("phase.lookup").observe(timings["lookup"])
        if entry is not None:
            return CompiledQuery(entry.bundle, self.optimize, fingerprint=fp,
                                 cache_hit=True, timings=timings,
                                 cache_entry=entry)

        with tracer.span("lift"):
            t0 = time.perf_counter()
            bundle = compile_exp(qq.exp, decorrelate=self.decorrelate)
            timings["lift"] = time.perf_counter() - t0
        METRICS.histogram("phase.lift").observe(timings["lift"])
        if verify_debug_enabled():
            # Debug mode: staged verification of the raw loop-lifting
            # output, before any rewrite touches it.
            with tracer.span("verify", stage="post-lift"):
                verify_bundle(bundle, label="post-lift", mark=False)
        stats = None
        if self.optimize:
            from ..optimizer import optimize_bundle
            with tracer.span("optimize"):
                t0 = time.perf_counter()
                stats = PassStats()
                bundle = optimize_bundle(bundle, stats, tracer,
                                         table_rows=self._table_stats(),
                                         backend=self.backend.name)
                timings["optimize"] = time.perf_counter() - t0
            METRICS.histogram("phase.optimize").observe(timings["optimize"])
        if not bundle.verified:
            # optimize=False path: the backend still only ever receives
            # verified plans.
            with tracer.span("verify", stage="final"):
                t0 = time.perf_counter()
                verify_bundle(bundle, label="final")
                timings["verify"] = time.perf_counter() - t0
            METRICS.histogram("phase.verify").observe(timings["verify"])
        if bundle.cost is None:
            # optimize=False still gets a cost stamp: dispatch gates and
            # the drift lint work on unoptimized plans too.
            bundle.cost = estimate_bundle(bundle, backend=self.backend.name,
                                          table_rows=self._table_stats())
        entry = CacheEntry(bundle, pass_stats=stats)
        if use_cache:
            self.plan_cache.insert(key, entry)
        return CompiledQuery(bundle, self.optimize, fingerprint=fp,
                             cache_hit=False, timings=timings,
                             pass_stats=stats, cache_entry=entry)

    def prepare(self, q: Any, tracer=NULL_TRACER) -> "PreparedQuery":
        """Compile ``q`` (through the cache) into a reusable handle whose
        :meth:`PreparedQuery.execute` skips straight to backend execution
        and stitching."""
        qq = to_q(q)
        compiled = self.compile(qq, tracer=tracer)
        code = self._codegen(compiled, tracer)
        if self.stats is not None:
            # Account the compile-phase cost and cache traffic against
            # the fingerprint without counting an execution.
            self.stats.record_compile(compiled.fingerprint,
                                      compiled.compile_time,
                                      compiled.cache_hit)
        return PreparedQuery(self, qq, compiled, code,
                             self.catalog.schema_generation)

    def run(self, q: Any) -> Any:
        """Execute a query and return its result as a plain Python value
        (the paper's ``fromQ``)."""
        tracer = self._start_trace("run")
        collector = (AnalyzeCollector()
                     if self.slow_query_threshold is not None else None)
        info: dict[str, Any] = {"trace_id": tracer.trace_id}
        started_at = time.time()
        t0 = time.perf_counter()
        try:
            compiled = self.compile(q, tracer=tracer)
            info.update(fingerprint=compiled.fingerprint,
                        cache_hit=compiled.cache_hit,
                        bundle_size=compiled.bundle.size,
                        bundle=compiled.bundle)
            tracer.root.set(fingerprint=compiled.fingerprint,
                            cache_hit=compiled.cache_hit,
                            bundle_size=compiled.bundle.size)
            code = self._codegen(compiled, tracer)
            info["compile_time"] = compiled.compile_time
            return self._execute(compiled.bundle, code, tracer, collector,
                                 info=info)
        except Exception as err:
            info["error"] = repr(err)
            code = getattr(err, "code", None)
            info["error_code"] = code if isinstance(code, str) else None
            raise
        finally:
            self._record_execution("run", tracer, info, started_at,
                                   time.perf_counter() - t0, collector)

    def explain(self, q: Any, analyze: bool = False,
                properties: bool = False) -> ExplainReport:
        """Structured report on the compiled bundle: fingerprint, plan
        cache status, the runtime avalanche check (bundle size vs. ``[.]``
        constructors in the result type), the staged verifier's verdict,
        pretty-printed algebra plans, and this backend's generated
        artifact per query.

        ``analyze=True`` additionally *executes* the bundle (like SQL's
        ``EXPLAIN ANALYZE`` -- it counts as a real execution) and attaches
        an :class:`~repro.obs.AnalyzeReport`: per-operator wall time,
        cardinalities, and peak intermediate width on the engine backend;
        per-query timings and row counts on SQL/MIL.

        ``properties=True`` annotates every plan operator with its
        inferred properties (``repro.analysis``: cardinality bounds,
        keys, constant columns, density facts) *and* its cost estimate
        (``est N rows .. cost``) next to the ``@n`` refs; combined with
        ``analyze=True`` the report also carries the estimate-drift
        lint's findings (``D500``/``D501``/``D502``).

        Returns an :class:`~repro.obs.ExplainReport`; ``print`` it (or
        call :meth:`~repro.obs.ExplainReport.render`) for the
        human-readable form, :meth:`~repro.obs.ExplainReport.to_dict`
        for a JSON-able one.
        """
        compiled = self.compile(q)
        prepared = self._codegen(compiled)
        artifacts = self.backend.describe_prepared(prepared)
        table_rows = self._table_stats()
        analyze_report = None
        drift = None
        if analyze:
            collector = AnalyzeCollector(per_op=True)
            t0 = time.perf_counter()
            self._execute(compiled.bundle, prepared, NULL_TRACER, collector)
            analyze_report = build_analyze(
                compiled.bundle, collector, self.backend.name,
                time.perf_counter() - t0, table_rows=table_rows)
            from ..analysis.lint import lint_report
            drift = lint_report(compiled.bundle, analyze_report,
                                self.backend.name, table_rows=table_rows)
        verify = verify_bundle(compiled.bundle, label="explain",
                               raise_on_error=False, mark=False)
        return build_report(compiled, self.backend, artifacts,
                            analyze=analyze_report, properties=properties,
                            verify=verify, table_rows=table_rows,
                            drift=drift)

    # ------------------------------------------------------------------
    def _codegen(self, compiled: CompiledQuery, tracer=NULL_TRACER) -> Any:
        """The backend's generated code for ``compiled``, reusing (and
        filling) the plan-cache entry's per-backend codegen store."""
        entry = compiled.cache_entry
        with tracer.span("codegen", backend=self.backend.name) as sp:
            if entry is not None:
                code = entry.codegen.get(self.backend.name)
                if code is not None:
                    sp.set(cached=True)
                    return code
            t0 = time.perf_counter()
            code = self.backend.prepare_bundle(compiled.bundle)
            compiled.timings["codegen"] = time.perf_counter() - t0
            sp.set(cached=False)
        METRICS.histogram("phase.codegen").observe(compiled.timings["codegen"])
        if entry is not None and code is not None:
            entry.codegen[self.backend.name] = code
        return code

    def _execute(self, bundle: Bundle, code: Any, tracer=NULL_TRACER,
                 collector: "AnalyzeCollector | None" = None,
                 info: "dict[str, Any] | None" = None) -> Any:
        parallel = False
        if self.parallel_bundles:
            # The cost gate (S412 fan-out / S413 inline): thread fan-out
            # must be amortized by the bundle's estimated work.
            dispatch = decide_parallel(bundle.cost, bundle.size)
            parallel = dispatch.parallel
            tracer.root.set(dispatch=dispatch.code)
            if info is not None:
                info["dispatch"] = dispatch.code
        t0 = time.perf_counter()
        result = self.backend.execute_bundle(bundle, self.catalog,
                                             prepared=code, tracer=tracer,
                                             collector=collector,
                                             parallel=parallel)
        execute_time = time.perf_counter() - t0
        exemplar = ({"trace_id": tracer.trace_id}
                    if tracer.trace_id is not None else None)
        METRICS.histogram("phase.execute").observe(execute_time,
                                                   exemplar=exemplar)
        # Cached or not, every execution issues the bundle's queries --
        # the Section 3.2 avalanche metric counts executions, not
        # compilations.
        self.queries_issued += result.queries_issued
        self.executions += 1
        METRICS.counter("connection.executions").inc()
        METRICS.counter("connection.queries").inc(result.queries_issued)
        with tracer.span("stitch") as sp:
            t0 = time.perf_counter()
            value = stitch(bundle, result.rows)
            rows = sum(len(r) for r in result.rows)
            sp.set(rows=rows)
        METRICS.histogram("phase.stitch").observe(time.perf_counter() - t0)
        METRICS.counter("connection.rows_stitched").inc(rows)
        if info is not None:
            # Feed the statement-stats reconciliation surface: rows here
            # is the stitched-row count (== connection.rows_stitched
            # delta), queries the avalanche metric, shard timings the
            # scatter-gather executor's per-shard clock readings.
            info["rows"] = rows
            info["queries"] = result.queries_issued
            info["execute_time"] = execute_time
            info["shard_timings"] = result.shard_timings
            if bundle.cost is not None:
                # Static row estimate for the drift lint's per-
                # fingerprint comparison (/statements, D500).
                info["est_rows"] = bundle.cost.est_rows
        return value

    def _check_tables(self, q: Q) -> None:
        for ref in tables_referenced(q.exp).values():
            self.catalog.check_reference(ref)

    def _table_stats(self) -> dict[str, int]:
        """Exact per-table row counts (compile-time statistics).  Tables
        are immutable and DDL bumps the schema generation the plan cache
        keys on, so these counts stay valid for the cached plan."""
        return {name: len(self.catalog.rows(name))
                for name in self.catalog.table_names()}


class PreparedQuery:
    """A compiled, codegen'd program bound to a connection.

    ``execute`` performs only steps 4-6 of Figure 2 (backend execution +
    stitching); compilation happened at :meth:`Connection.prepare` time.
    If the catalog's schema changes between executions, the handle
    transparently re-prepares itself (and the stale plan ages out of the
    cache via LRU).
    """

    def __init__(self, connection: Connection, q: Q,
                 compiled: CompiledQuery, code: Any,
                 schema_generation: int):
        self.connection = connection
        self._q = q
        self.compiled = compiled
        self._code = code
        self._schema_generation = schema_generation

    @property
    def query_count(self) -> int:
        """Bundle size (avalanche metric); fixed across executions."""
        return self.compiled.bundle.size

    @property
    def fingerprint(self) -> str | None:
        return self.compiled.fingerprint

    def execute(self) -> Any:
        """Run the prepared bundle and stitch the result."""
        conn = self.connection
        tracer = conn._start_trace("execute-prepared")
        collector = (AnalyzeCollector()
                     if conn.slow_query_threshold is not None else None)
        info: dict[str, Any] = {"trace_id": tracer.trace_id}
        started_at = time.time()
        t0 = time.perf_counter()
        try:
            if conn.catalog.schema_generation != self._schema_generation:
                # DDL since prepare(): re-validate and recompile.
                fresh = conn.prepare(self._q, tracer=tracer)
                self.compiled = fresh.compiled
                self._code = fresh._code
                self._schema_generation = fresh._schema_generation
            info.update(fingerprint=self.compiled.fingerprint,
                        cache_hit=True,
                        bundle_size=self.compiled.bundle.size,
                        bundle=self.compiled.bundle)
            tracer.root.set(fingerprint=self.compiled.fingerprint,
                            bundle_size=self.compiled.bundle.size)
            return conn._execute(self.compiled.bundle, self._code, tracer,
                                 collector, info=info)
        except Exception as err:
            info["error"] = repr(err)
            code = getattr(err, "code", None)
            info["error_code"] = code if isinstance(code, str) else None
            raise
        finally:
            conn._record_execution("execute-prepared", tracer, info,
                                   started_at,
                                   time.perf_counter() - t0, collector)


def _resolve_backend(backend: "str | Any | None", shards: "int | None" = None):
    if shards is not None:
        # Sharding is a property of the SQL scatter-gather executor; the
        # knob selects it (with backend=None or "sqlite") rather than
        # silently ignoring the fan-out on engines that cannot honor it.
        if backend is None or backend == "sqlite":
            from ..backends.sql import ShardedSQLiteBackend
            return ShardedSQLiteBackend(shards)
        raise QTypeError(
            f"shards={shards} requires the SQL backend; got "
            f"backend={backend!r} (pass backend='sqlite' or omit it)")
    if backend is None:
        backend = "engine"
    if not isinstance(backend, str):
        return backend
    if backend == "engine":
        from ..backends.engine import EngineBackend
        return EngineBackend()
    if backend == "sqlite":
        from ..backends.sql import SQLiteBackend
        return SQLiteBackend()
    if backend == "mil":
        from ..backends.mil import MILBackend
        return MILBackend()
    raise QTypeError(f"unknown backend {backend!r}; "
                     f"expected 'engine', 'sqlite', or 'mil'")
