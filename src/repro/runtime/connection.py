"""Connections: the paper's ``fromQ`` -- compile, execute, stitch.

A :class:`Connection` pairs a catalog (schema + data) with a query
backend.  ``run`` performs the full Figure 2 pipeline at run time:
loop-lift the deep-embedded program, optimize the algebra plans, execute
the bundle on the backend, and stitch the tabular results back into a
Python value.  As in the paper, referencing a missing table or declaring a
wrong row type surfaces here, not at query construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..core.bundle import Bundle, compile_exp
from ..errors import QTypeError
from ..expr import tables_referenced
from ..frontend.q import Q, to_q
from ..frontend.tables import SchemaLike, table
from .catalog import Catalog
from .stitch import stitch


@dataclass
class CompiledQuery:
    """A compiled program plus execution accounting (for inspection)."""

    bundle: Bundle
    optimized: bool

    @property
    def query_count(self) -> int:
        """Bundle size: the avalanche-safety metric of Section 3.2."""
        return self.bundle.size


class Connection:
    """A database session: catalog + backend (default: in-memory engine)."""

    def __init__(self, backend: "str | Any" = "engine",
                 catalog: Catalog | None = None, optimize: bool = True,
                 decorrelate: bool = True):
        self.catalog = catalog or Catalog()
        self.optimize = optimize
        #: Join-graph isolation (correlated-filter decorrelation); only
        #: ever disabled by the ablation benchmarks.
        self.decorrelate = decorrelate
        self.backend = _resolve_backend(backend)
        #: Total number of relational queries issued over this connection's
        #: lifetime (Table 1 instrumentation).
        self.queries_issued = 0

    # ------------------------------------------------------------------
    # schema definition (delegates to the catalog)
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: SchemaLike,
                     rows: Iterable[Sequence[Any]] = ()) -> None:
        """Create and populate a database table."""
        self.catalog.create_table(name, schema, rows)

    def create_table_from_records(self, cls: type, instances: Iterable[Any],
                                  name: str | None = None) -> None:
        """Create a table backing a ``@queryable`` record class."""
        self.catalog.create_table_from_records(cls, instances, name)

    def table(self, name: str) -> Q:
        """Reference a catalog table, deriving the declared row type from
        the catalog (so the runtime check cannot fail for this query)."""
        return table(name, self.catalog.schema(name))

    # ------------------------------------------------------------------
    # the fromQ pipeline
    # ------------------------------------------------------------------
    def compile(self, q: Any) -> CompiledQuery:
        """Loop-lift and optimize a query without executing it."""
        qq = to_q(q)
        self._check_tables(qq)
        bundle = compile_exp(qq.exp, decorrelate=self.decorrelate)
        if self.optimize:
            from ..optimizer import optimize_bundle
            bundle = optimize_bundle(bundle)
        return CompiledQuery(bundle, self.optimize)

    def run(self, q: Any) -> Any:
        """Execute a query and return its result as a plain Python value
        (the paper's ``fromQ``)."""
        compiled = self.compile(q)
        result = self.backend.execute_bundle(compiled.bundle, self.catalog)
        self.queries_issued += result.queries_issued
        return stitch(compiled.bundle, result.rows)

    def explain(self, q: Any) -> str:
        """Human-readable rendering of the compiled bundle."""
        from ..algebra import plan_text
        compiled = self.compile(q)
        chunks = []
        for i, query in enumerate(compiled.bundle.queries, start=1):
            chunks.append(f"-- Q{i} (iter={query.iter_col}, "
                          f"pos={query.pos_col}, "
                          f"items={', '.join(query.item_cols)})")
            chunks.append(plan_text(query.plan))
        return "\n".join(chunks)

    # ------------------------------------------------------------------
    def _check_tables(self, q: Q) -> None:
        for ref in tables_referenced(q.exp).values():
            self.catalog.check_reference(ref)


def _resolve_backend(backend: "str | Any"):
    if not isinstance(backend, str):
        return backend
    if backend == "engine":
        from ..backends.engine import EngineBackend
        return EngineBackend()
    if backend == "sqlite":
        from ..backends.sql import SQLiteBackend
        return SQLiteBackend()
    if backend == "mil":
        from ..backends.mil import MILBackend
        return MILBackend()
    raise QTypeError(f"unknown backend {backend!r}; "
                     f"expected 'engine', 'sqlite', or 'mil'")
