"""Connections: the paper's ``fromQ`` -- compile, execute, stitch.

A :class:`Connection` pairs a catalog (schema + data) with a query
backend.  ``run`` performs the full Figure 2 pipeline at run time:
loop-lift the deep-embedded program, optimize the algebra plans, execute
the bundle on the backend, and stitch the tabular results back into a
Python value.  As in the paper, referencing a missing table or declaring a
wrong row type surfaces here, not at query construction.

Compilation is memoized through a content-addressed :class:`PlanCache`:
``run``/``compile`` fingerprint the program (structure + referenced table
schemas), and a repeated program skips loop-lifting, the rewrite fixpoint,
and backend code generation entirely -- avalanche safety guarantees the
cached bundle is valid for any instance with the same schema.
:meth:`Connection.prepare` exposes the same machinery explicitly as a
prepared-query handle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.bundle import Bundle, compile_exp
from ..errors import QTypeError
from ..expr import exp_fingerprint, tables_referenced
from ..frontend.q import Q, to_q
from ..frontend.tables import SchemaLike, table
from ..optimizer import PassStats
from .catalog import Catalog
from .plancache import CacheEntry, CacheKey, CacheStats, PlanCache
from .stitch import stitch


@dataclass
class CompiledQuery:
    """A compiled program plus compilation accounting (for inspection)."""

    bundle: Bundle
    optimized: bool
    #: Structural fingerprint of the source program (plan-cache identity).
    fingerprint: str | None = None
    #: Did the plan cache serve this compilation?
    cache_hit: bool = False
    #: Wall-clock seconds per compile phase ("check", "lookup", and on a
    #: cold path "lift" / "optimize"; ``run`` adds "codegen").
    timings: dict[str, float] = field(default_factory=dict)
    #: Rewrite-pipeline statistics (``None`` when the optimizer did not
    #: run for this call -- disabled, or the plan came from the cache).
    pass_stats: PassStats | None = None
    #: Plan-cache entry backing this compilation (shared codegen store).
    cache_entry: CacheEntry | None = field(default=None, repr=False)

    @property
    def query_count(self) -> int:
        """Bundle size: the avalanche-safety metric of Section 3.2."""
        return self.bundle.size

    @property
    def compile_time(self) -> float:
        """Total wall-clock seconds spent in recorded compile phases."""
        return sum(self.timings.values())


class Connection:
    """A database session: catalog + backend (default: in-memory engine).

    ``cache_size`` bounds the connection's :class:`PlanCache`; pass a
    shared ``plan_cache`` instead to let many connections reuse each
    other's compiled plans (entries are keyed on the compilation flags
    and the catalog's schema generation, so sharing is always safe).
    """

    def __init__(self, backend: "str | Any" = "engine",
                 catalog: Catalog | None = None, optimize: bool = True,
                 decorrelate: bool = True, cache_size: int = 128,
                 plan_cache: PlanCache | None = None):
        self.catalog = catalog or Catalog()
        self.optimize = optimize
        #: Join-graph isolation (correlated-filter decorrelation); only
        #: ever disabled by the ablation benchmarks.
        self.decorrelate = decorrelate
        self.backend = _resolve_backend(backend)
        self.plan_cache = (plan_cache if plan_cache is not None
                           else PlanCache(cache_size))
        #: Total number of relational queries issued over this connection's
        #: lifetime (Table 1 instrumentation).  Counts *executions*: a
        #: plan served from the cache still issues its queries.
        self.queries_issued = 0
        #: Number of ``run``/``PreparedQuery.execute`` calls.
        self.executions = 0

    # ------------------------------------------------------------------
    # schema definition (delegates to the catalog)
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: SchemaLike,
                     rows: Iterable[Sequence[Any]] = ()) -> None:
        """Create and populate a database table."""
        self.catalog.create_table(name, schema, rows)

    def create_table_from_records(self, cls: type, instances: Iterable[Any],
                                  name: str | None = None) -> None:
        """Create a table backing a ``@queryable`` record class."""
        self.catalog.create_table_from_records(cls, instances, name)

    def table(self, name: str) -> Q:
        """Reference a catalog table, deriving the declared row type from
        the catalog (so the runtime check cannot fail for this query)."""
        return table(name, self.catalog.schema(name))

    # ------------------------------------------------------------------
    # the fromQ pipeline
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        """Plan-cache hit/miss/eviction counters."""
        return self.plan_cache.stats

    def compile(self, q: Any, use_cache: bool = True) -> CompiledQuery:
        """Loop-lift and optimize a query without executing it.

        Consults the plan cache first: a structurally identical program
        compiled before (under the same flags and catalog schema) is
        returned without re-running the pipeline.
        """
        timings: dict[str, float] = {}
        t0 = time.perf_counter()
        qq = to_q(q)
        self._check_tables(qq)
        timings["check"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        fp = exp_fingerprint(qq.exp)
        key = CacheKey(fp, self.optimize, self.decorrelate,
                       self.catalog.schema_generation)
        entry = self.plan_cache.lookup(key) if use_cache else None
        timings["lookup"] = time.perf_counter() - t0
        if entry is not None:
            return CompiledQuery(entry.bundle, self.optimize, fingerprint=fp,
                                 cache_hit=True, timings=timings,
                                 cache_entry=entry)

        t0 = time.perf_counter()
        bundle = compile_exp(qq.exp, decorrelate=self.decorrelate)
        timings["lift"] = time.perf_counter() - t0
        stats = None
        if self.optimize:
            from ..optimizer import optimize_bundle
            t0 = time.perf_counter()
            stats = PassStats()
            bundle = optimize_bundle(bundle, stats)
            timings["optimize"] = time.perf_counter() - t0
        entry = CacheEntry(bundle, pass_stats=stats)
        if use_cache:
            self.plan_cache.insert(key, entry)
        return CompiledQuery(bundle, self.optimize, fingerprint=fp,
                             cache_hit=False, timings=timings,
                             pass_stats=stats, cache_entry=entry)

    def prepare(self, q: Any) -> "PreparedQuery":
        """Compile ``q`` (through the cache) into a reusable handle whose
        :meth:`PreparedQuery.execute` skips straight to backend execution
        and stitching."""
        qq = to_q(q)
        compiled = self.compile(qq)
        code = self._codegen(compiled)
        return PreparedQuery(self, qq, compiled, code,
                             self.catalog.schema_generation)

    def run(self, q: Any) -> Any:
        """Execute a query and return its result as a plain Python value
        (the paper's ``fromQ``)."""
        compiled = self.compile(q)
        code = self._codegen(compiled)
        return self._execute(compiled.bundle, code)

    def explain(self, q: Any) -> str:
        """Human-readable rendering of the compiled bundle."""
        from ..algebra import plan_text
        compiled = self.compile(q)
        chunks = []
        for i, query in enumerate(compiled.bundle.queries, start=1):
            chunks.append(f"-- Q{i} (iter={query.iter_col}, "
                          f"pos={query.pos_col}, "
                          f"items={', '.join(query.item_cols)})")
            chunks.append(plan_text(query.plan))
        return "\n".join(chunks)

    # ------------------------------------------------------------------
    def _codegen(self, compiled: CompiledQuery) -> Any:
        """The backend's generated code for ``compiled``, reusing (and
        filling) the plan-cache entry's per-backend codegen store."""
        entry = compiled.cache_entry
        if entry is not None:
            code = entry.codegen.get(self.backend.name)
            if code is not None:
                return code
        t0 = time.perf_counter()
        code = self.backend.prepare_bundle(compiled.bundle)
        compiled.timings["codegen"] = time.perf_counter() - t0
        if entry is not None and code is not None:
            entry.codegen[self.backend.name] = code
        return code

    def _execute(self, bundle: Bundle, code: Any) -> Any:
        result = self.backend.execute_bundle(bundle, self.catalog,
                                             prepared=code)
        # Cached or not, every execution issues the bundle's queries --
        # the Section 3.2 avalanche metric counts executions, not
        # compilations.
        self.queries_issued += result.queries_issued
        self.executions += 1
        return stitch(bundle, result.rows)

    def _check_tables(self, q: Q) -> None:
        for ref in tables_referenced(q.exp).values():
            self.catalog.check_reference(ref)


class PreparedQuery:
    """A compiled, codegen'd program bound to a connection.

    ``execute`` performs only steps 4-6 of Figure 2 (backend execution +
    stitching); compilation happened at :meth:`Connection.prepare` time.
    If the catalog's schema changes between executions, the handle
    transparently re-prepares itself (and the stale plan ages out of the
    cache via LRU).
    """

    def __init__(self, connection: Connection, q: Q,
                 compiled: CompiledQuery, code: Any,
                 schema_generation: int):
        self.connection = connection
        self._q = q
        self.compiled = compiled
        self._code = code
        self._schema_generation = schema_generation

    @property
    def query_count(self) -> int:
        """Bundle size (avalanche metric); fixed across executions."""
        return self.compiled.bundle.size

    @property
    def fingerprint(self) -> str | None:
        return self.compiled.fingerprint

    def execute(self) -> Any:
        """Run the prepared bundle and stitch the result."""
        conn = self.connection
        if conn.catalog.schema_generation != self._schema_generation:
            # DDL since prepare(): re-validate and recompile.
            fresh = conn.prepare(self._q)
            self.compiled = fresh.compiled
            self._code = fresh._code
            self._schema_generation = fresh._schema_generation
        return conn._execute(self.compiled.bundle, self._code)


def _resolve_backend(backend: "str | Any"):
    if not isinstance(backend, str):
        return backend
    if backend == "engine":
        from ..backends.engine import EngineBackend
        return EngineBackend()
    if backend == "sqlite":
        from ..backends.sql import SQLiteBackend
        return SQLiteBackend()
    if backend == "mil":
        from ..backends.mil import MILBackend
        return MILBackend()
    raise QTypeError(f"unknown backend {backend!r}; "
                     f"expected 'engine', 'sqlite', or 'mil'")
