"""A bounded, content-addressed cache of compiled query plans.

Ferry's avalanche-safety property makes compiled artefacts unusually
cacheable: the shape of a bundle is fixed by the *static* result type of
the program, never by the data, so a bundle compiled once is valid for
every later execution of the same program against any catalog with the
same table schemas (cf. Cheney et al., *Query shredding*, whose shredded
query set is likewise a static artifact prepared once).

:class:`PlanCache` exploits that: it maps a :class:`CacheKey` -- the
program's structural fingerprint plus everything else compilation depends
on (optimizer/decorrelation flags and the catalog's schema generation) --
to a :class:`CacheEntry` holding the post-optimization bundle *and* the
per-backend generated code (SQL text, MIL programs, engine schedules),
with LRU eviction at a configurable capacity.  Hits, misses, and
evictions are counted so benchmarks and operators can observe cache
effectiveness.

A cache may be shared by many connections (it is guarded by a lock);
entries never mix compilation flags because the flags are part of the
key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, NamedTuple

from ..core.bundle import Bundle
from ..obs.metrics import METRICS


class CacheKey(NamedTuple):
    """Everything the compiled artefact depends on."""

    #: Structural fingerprint of the program (includes the declared
    #: schemas of every referenced table).
    fingerprint: str
    #: Was the Pathfinder-style rewrite pipeline applied?
    optimize: bool
    #: Was correlated-filter decorrelation applied?
    decorrelate: bool
    #: The catalog's DDL generation when the plan was compiled; any
    #: CREATE/DROP bumps it, invalidating every prior entry.
    schema_generation: int


@dataclass
class CacheStats:
    """Hit/miss/eviction counters (cumulative over the cache's life)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CacheEntry:
    """A compiled program: the optimized bundle plus generated code."""

    bundle: Bundle
    #: Per-backend generated artefacts, keyed by ``Backend.name``
    #: ("sqlite" -> SQL text, "mil" -> MIL programs, ...), filled in
    #: lazily the first time each backend executes the bundle.
    codegen: dict[str, Any] = field(default_factory=dict)
    #: Optimizer pass statistics recorded when the plan was compiled.
    pass_stats: Any = None


class PlanCache:
    """Bounded LRU cache from :class:`CacheKey` to :class:`CacheEntry`."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def lookup(self, key: CacheKey) -> CacheEntry | None:
        """Return the entry for ``key`` (refreshing its recency), or
        ``None`` -- counting a hit or a miss accordingly."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                METRICS.counter("plancache.misses").inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            METRICS.counter("plancache.hits").inc()
            return entry

    def insert(self, key: CacheKey, entry: CacheEntry) -> CacheEntry:
        """Store ``entry`` under ``key``, evicting the least recently
        used entry if the cache is full."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            METRICS.counter("plancache.inserts").inc()
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                METRICS.counter("plancache.evictions").inc()
            return entry

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
