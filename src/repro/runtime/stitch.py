"""Stitching: tabular query results back into nested Python values.

Steps 5 and 6 of the paper's Figure 2: the bundle's tabular results are
transferred into the heap and transformed into vanilla values.  Nested
lists are re-assembled by following surrogate keys from outer rows into
the inner queries' ``iter`` columns (Figure 3(b)); an inner list whose
surrogate never appears is empty.  Order is restored from the ``pos``
encoding -- backends deliver rows already sorted by ``(iter, pos)``.
"""

from __future__ import annotations

from itertools import groupby
from operator import itemgetter
from typing import Any, Sequence

from ..core.bundle import AtomRef, Bundle, NestRef, Ref, TupleRef
from ..errors import ExecutionError, PartialFunctionError

#: Execution result: for each query of the bundle, its rows sorted by
#: (iter, pos); each row is (iter, pos, item...).
QueryRows = Sequence[Sequence[tuple]]

_ITER = itemgetter(0)


def build_index(rows: Sequence[tuple]) -> dict[Any, list[tuple]]:
    """Group one query's rows by their ``iter`` surrogate.

    Rows arrive sorted by ``(iter, pos)`` -- the backend contract -- so
    equal surrogates form contiguous runs and one :func:`groupby` sweep
    builds the whole index, replacing a per-row ``setdefault`` loop with
    C-level run detection (and the items stay in ``pos`` order within
    each group for free).
    """
    return {it: [row[2:] for row in grp]
            for it, grp in groupby(rows, key=_ITER)}


def stitch(bundle: Bundle, results: QueryRows) -> Any:
    """Assemble the bundle's tabular ``results`` into the final value."""
    if len(results) != len(bundle.queries):
        raise ExecutionError(
            f"backend returned {len(results)} result sets for a bundle of "
            f"{len(bundle.queries)} queries")
    indexes = [build_index(rows) for rows in results]

    def build(ref: Ref, items: tuple) -> Any:
        if isinstance(ref, AtomRef):
            return items[ref.index]
        if isinstance(ref, TupleRef):
            return tuple(build(p, items) for p in ref.parts)
        if isinstance(ref, NestRef):
            surrogate = items[ref.index]
            inner_rows = indexes[ref.query].get(surrogate, [])
            return [build(ref.inner, r) for r in inner_rows]
        raise ExecutionError(f"unknown ref {ref!r}")  # pragma: no cover

    top = indexes[0].get(1, [])
    if bundle.root_is_list:
        return [build(bundle.root_ref, items) for items in top]
    if not top:
        raise PartialFunctionError(
            "the query produced no value: a partial operation (head, the, "
            "maximum, avg, x !! i, ...) was applied to an empty list or "
            "out of bounds")
    if len(top) > 1:
        raise ExecutionError(f"scalar query produced {len(top)} rows")
    return build(bundle.root_ref, top[0])
