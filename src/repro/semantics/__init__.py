"""Reference semantics: the in-heap interpreter used as the test oracle."""

from .interp import BUILTIN_NAMES, Interpreter

__all__ = ["BUILTIN_NAMES", "Interpreter"]
