"""The reference interpreter: in-heap list-prelude semantics for ``Exp``.

This module defines *what embedded programs mean*: plain Haskell-98
list-prelude semantics executed on ordinary Python values.  It is the
oracle against which every compiled backend (in-memory algebra engine,
generated SQL on SQLite, the MIL VM) is differentially tested -- the
paper's correctness claim is exactly that loop-lifted relational plans
"faithfully preserve the DSH semantics on a relational back-end"
(Section 3.2).

The interpreter is deliberately naive (nested loops, no indexes); it is a
specification, not an execution engine.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import PartialFunctionError, QTypeError
from ..expr import (
    AppE,
    BinOpE,
    Exp,
    IfE,
    LamE,
    ListE,
    LitE,
    TableE,
    TupleE,
    TupleElemE,
    UnOpE,
    VarE,
)
from ..ftypes import DoubleT
from ..runtime.catalog import Catalog

Env = dict[str, Any]


class Closure:
    """A reified ``LamE`` together with its defining environment."""

    __slots__ = ("lam", "env", "interp")

    def __init__(self, lam: LamE, env: Env, interp: "Interpreter"):
        self.lam = lam
        self.env = env
        self.interp = interp

    def __call__(self, arg: Any) -> Any:
        inner = dict(self.env)
        inner[self.lam.param] = arg
        return self.interp.eval(self.lam.body, inner)


class Interpreter:
    """Evaluate expressions against a :class:`Catalog`."""

    def __init__(self, catalog: Catalog | None = None):
        self.catalog = catalog or Catalog()

    def run(self, e: Exp) -> Any:
        """Evaluate a closed expression."""
        return self.eval(e, {})

    # ------------------------------------------------------------------
    def eval(self, e: Exp, env: Env) -> Any:
        if isinstance(e, LitE):
            return e.value
        if isinstance(e, VarE):
            try:
                return env[e.name]
            except KeyError:
                raise QTypeError(f"unbound variable {e.name!r}") from None
        if isinstance(e, TupleE):
            return tuple(self.eval(p, env) for p in e.parts)
        if isinstance(e, ListE):
            return [self.eval(x, env) for x in e.elems]
        if isinstance(e, TupleElemE):
            return self.eval(e.tup, env)[e.index]
        if isinstance(e, TableE):
            self.catalog.check_reference(e)
            rows = self.catalog.rows(e.name)
            if len(e.columns) == 1:
                return [r[0] for r in rows]
            return list(rows)
        if isinstance(e, LamE):
            return Closure(e, env, self)
        if isinstance(e, IfE):
            if self.eval(e.cond, env):
                return self.eval(e.then_, env)
            return self.eval(e.else_, env)
        if isinstance(e, BinOpE):
            return _binop(e.op, self.eval(e.lhs, env), self.eval(e.rhs, env))
        if isinstance(e, UnOpE):
            return _unop(e.op, self.eval(e.operand, env))
        if isinstance(e, AppE):
            args = [self.eval(a, env) for a in e.args]
            return _apply_builtin(e, args)
        raise QTypeError(f"cannot interpret node {e!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# scalar operations
# ----------------------------------------------------------------------

def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE semantics, case-sensitive: '%' matches any run, '_' any
    single character (shared by every backend so semantics agree)."""
    import re as _re
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else _re.escape(ch)
        for ch in pattern)
    return _re.fullmatch(regex, value) is not None


def _binop(op: str, a: Any, b: Any) -> Any:
    if op in ("div", "idiv", "mod") and b == 0:
        raise PartialFunctionError("division by zero")
    table: dict[str, Callable[[Any, Any], Any]] = {
        "add": lambda x, y: x + y,
        "sub": lambda x, y: x - y,
        "mul": lambda x, y: x * y,
        "div": lambda x, y: x / y,
        "idiv": lambda x, y: x // y,
        "mod": lambda x, y: x % y,
        "eq": lambda x, y: x == y,
        "ne": lambda x, y: x != y,
        "lt": lambda x, y: x < y,
        "le": lambda x, y: x <= y,
        "gt": lambda x, y: x > y,
        "ge": lambda x, y: x >= y,
        "and": lambda x, y: x and y,
        "or": lambda x, y: x or y,
        "min": min,
        "max": max,
        "cat": lambda x, y: x + y,
        "like": like_match,
    }
    return table[op](a, b)


def _unop(op: str, a: Any) -> Any:
    table: dict[str, Callable[[Any], Any]] = {
        "not": lambda x: not x,
        "neg": lambda x: -x,
        "abs": abs,
        "to_double": float,
        "upper": lambda x: x.upper(),
        "lower": lambda x: x.lower(),
        "strlen": len,
        "year": lambda d: d.year,
        "month": lambda d: d.month,
        "day": lambda d: d.day,
        "hour": lambda t: t.hour,
        "minute": lambda t: t.minute,
        "second": lambda t: t.second,
    }
    return table[op](a)


# ----------------------------------------------------------------------
# list-prelude builtins
# ----------------------------------------------------------------------

def _apply_builtin(e: AppE, args: list[Any]) -> Any:
    name = e.fun
    handler = _BUILTINS.get(name)
    if handler is None:
        raise QTypeError(f"unknown builtin {name!r}")  # pragma: no cover
    return handler(e, args)


def _nonempty(xs: list, who: str) -> list:
    if not xs:
        raise PartialFunctionError(f"{who}: empty list")
    return xs


def _b_map(e: AppE, args: list[Any]) -> Any:
    f, xs = args
    return [f(x) for x in xs]


def _b_filter(e: AppE, args: list[Any]) -> Any:
    p, xs = args
    return [x for x in xs if p(x)]


def _b_concat_map(e: AppE, args: list[Any]) -> Any:
    f, xs = args
    out: list = []
    for x in xs:
        out.extend(f(x))
    return out


def _b_concat(e: AppE, args: list[Any]) -> Any:
    out: list = []
    for xs in args[0]:
        out.extend(xs)
    return out


def _b_sort_with(e: AppE, args: list[Any]) -> Any:
    f, xs = args
    return sorted(xs, key=f)  # Python's sort is stable, like sortWith


def _b_sort_with_desc(e: AppE, args: list[Any]) -> Any:
    f, xs = args
    return sorted(xs, key=f, reverse=True)


def _b_group_with(e: AppE, args: list[Any]) -> Any:
    f, xs = args
    # GHC.Exts.groupWith: sort by key, then group runs of equal keys;
    # groups ordered by key, members in original relative order.
    keyed = sorted(((f(x), i, x) for i, x in enumerate(xs)),
                   key=lambda t: (t[0], t[1]))
    groups: list[list] = []
    current_key: Any = object()
    for key, _, x in keyed:
        if not groups or key != current_key:
            groups.append([])
            current_key = key
        groups[-1].append(x)
    return groups


def _b_all(e: AppE, args: list[Any]) -> Any:
    p, xs = args
    return all(bool(p(x)) for x in xs)


def _b_any(e: AppE, args: list[Any]) -> Any:
    p, xs = args
    return any(bool(p(x)) for x in xs)


def _b_take_while(e: AppE, args: list[Any]) -> Any:
    p, xs = args
    out: list = []
    for x in xs:
        if not p(x):
            break
        out.append(x)
    return out


def _b_drop_while(e: AppE, args: list[Any]) -> Any:
    p, xs = args
    i = 0
    while i < len(xs) and p(xs[i]):
        i += 1
    return xs[i:]


def _b_head(e: AppE, args: list[Any]) -> Any:
    return _nonempty(args[0], "head")[0]


def _b_last(e: AppE, args: list[Any]) -> Any:
    return _nonempty(args[0], "last")[-1]


def _b_the(e: AppE, args: list[Any]) -> Any:
    # Group-representative semantics: the first element (see frontend docs).
    return _nonempty(args[0], "the")[0]


def _b_tail(e: AppE, args: list[Any]) -> Any:
    return _nonempty(args[0], "tail")[1:]


def _b_init(e: AppE, args: list[Any]) -> Any:
    return _nonempty(args[0], "init")[:-1]


def _b_length(e: AppE, args: list[Any]) -> Any:
    return len(args[0])


def _b_null(e: AppE, args: list[Any]) -> Any:
    return not args[0]


def _b_reverse(e: AppE, args: list[Any]) -> Any:
    return list(reversed(args[0]))


def _b_append(e: AppE, args: list[Any]) -> Any:
    return args[0] + args[1]


def _b_cons(e: AppE, args: list[Any]) -> Any:
    x, xs = args
    return [x] + xs


def _b_index(e: AppE, args: list[Any]) -> Any:
    xs, i = args
    if i < 0 or i >= len(xs):
        raise PartialFunctionError(f"index {i} out of bounds for a list "
                                   f"of length {len(xs)}")
    return xs[i]


def _b_take(e: AppE, args: list[Any]) -> Any:
    n, xs = args
    return xs[:max(n, 0)]


def _b_drop(e: AppE, args: list[Any]) -> Any:
    n, xs = args
    return xs[max(n, 0):]


def _b_zip(e: AppE, args: list[Any]) -> Any:
    return [(x, y) for x, y in zip(args[0], args[1])]


def _b_nub(e: AppE, args: list[Any]) -> Any:
    seen: set = set()
    out: list = []
    for x in args[0]:
        if x not in seen:
            seen.add(x)
            out.append(x)
    return out


def _b_number(e: AppE, args: list[Any]) -> Any:
    return [(x, i + 1) for i, x in enumerate(args[0])]


def _b_sum(e: AppE, args: list[Any]) -> Any:
    zero = 0.0 if e.ty == DoubleT else 0
    total = zero
    for x in args[0]:
        total += x
    return total


def _b_avg(e: AppE, args: list[Any]) -> Any:
    xs = _nonempty(args[0], "avg")
    return float(sum(xs)) / len(xs)


def _b_maximum(e: AppE, args: list[Any]) -> Any:
    return max(_nonempty(args[0], "maximum"))


def _b_minimum(e: AppE, args: list[Any]) -> Any:
    return min(_nonempty(args[0], "minimum"))


def _b_and(e: AppE, args: list[Any]) -> Any:
    return all(args[0])


def _b_or(e: AppE, args: list[Any]) -> Any:
    return any(args[0])


_BUILTINS: dict[str, Callable[[AppE, list[Any]], Any]] = {
    "map": _b_map,
    "filter": _b_filter,
    "concat_map": _b_concat_map,
    "concat": _b_concat,
    "sort_with": _b_sort_with,
    "sort_with_desc": _b_sort_with_desc,
    "group_with": _b_group_with,
    "all": _b_all,
    "any": _b_any,
    "take_while": _b_take_while,
    "drop_while": _b_drop_while,
    "head": _b_head,
    "last": _b_last,
    "the": _b_the,
    "tail": _b_tail,
    "init": _b_init,
    "length": _b_length,
    "null": _b_null,
    "reverse": _b_reverse,
    "append": _b_append,
    "cons": _b_cons,
    "index": _b_index,
    "take": _b_take,
    "drop": _b_drop,
    "zip": _b_zip,
    "nub": _b_nub,
    "number": _b_number,
    "sum": _b_sum,
    "avg": _b_avg,
    "maximum": _b_maximum,
    "minimum": _b_minimum,
    "and": _b_and,
    "or": _b_or,
}

#: Builtin names understood by the interpreter (and, symmetrically, by the
#: loop-lifting compiler -- tests assert the two sets coincide).
BUILTIN_NAMES = frozenset(_BUILTINS)
