"""DAG utilities: traversal order, sharing, rewriting, pretty printing."""

from repro.algebra import (
    Attach,
    Cross,
    EqJoin,
    LitTable,
    Project,
    UnionAll,
    contains,
    describe,
    node_count,
    operator_histogram,
    plan_dot,
    plan_text,
    postorder,
    rewrite_dag,
)
from repro.ftypes import IntT


def leaf(name="a"):
    return LitTable(((1,),), ((name, IntT),))


class TestPostorder:
    def test_children_before_parents(self):
        l = leaf()
        p = Project(l, (("b", "a"),))
        order = list(postorder(p))
        assert order.index(l) < order.index(p)

    def test_shared_nodes_visited_once(self):
        l = leaf()
        p1 = Project(l, (("b", "a"),))
        p2 = Project(l, (("c", "a"),))
        u = EqJoin(p1, p2, (("b", "c"),))
        order = list(postorder(u))
        assert order.count(l) == 1
        assert node_count(u) == 4

    def test_deep_plan_iterative(self):
        plan = leaf()
        for i in range(5000):  # recursion would overflow here
            plan = Attach(plan, f"c{i}", i, IntT)
        assert node_count(plan) == 5001


class TestUtilities:
    def test_histogram(self):
        l = leaf("a")
        r = leaf("b")
        plan = Cross(Project(l, (("x", "a"),)), r)
        assert operator_histogram(plan) == {
            "Cross": 1, "LitTable": 2, "Project": 1}

    def test_contains(self):
        plan = Cross(leaf("a"), leaf("b"))
        assert contains(plan, lambda n: isinstance(n, Cross))
        assert not contains(plan, lambda n: isinstance(n, Project))

    def test_rewrite_preserves_sharing(self):
        l = leaf()
        p1 = Project(l, (("b", "a"),))
        p2 = Project(l, (("c", "a"),))
        j = EqJoin(p1, p2, (("b", "c"),))
        rebuilt = rewrite_dag(j, lambda n, kids: n)
        assert rebuilt is j

    def test_rewrite_replaces(self):
        l = leaf()
        p = Project(l, (("b", "a"),))

        def visit(node, kids):
            if isinstance(node, Project):
                return Project(kids[0], (("z", "a"),))
            return node

        new = rewrite_dag(p, visit)
        assert new.cols == (("z", "a"),)


class TestPretty:
    def test_describe_each_operator(self):
        l = leaf()
        assert "LitTable" in describe(l)
        assert "Project" in describe(Project(l, (("b", "a"),)))
        assert "UnionAll" in describe(UnionAll(l, l))

    def test_plan_text_marks_sharing(self):
        l = leaf()
        u = UnionAll(l, l)
        text = plan_text(u)
        assert "shared" in text

    def test_plan_dot_shape(self):
        dot = plan_dot(Cross(leaf("a"), leaf("b")))
        assert dot.startswith("digraph")
        assert dot.count("->") == 2
