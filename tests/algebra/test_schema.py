"""Schema inference and validation over algebra operators."""

import pytest

from repro.algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
    schema_of,
)
from repro.analysis import check_plan
from repro.errors import CompilationError
from repro.ftypes import BoolT, DoubleT, IntT, StringT


def lit(*cols, rows=()):
    return LitTable(tuple(rows), tuple(cols))


T = lit(("a", IntT), ("b", StringT), rows=[(1, "x")])


class TestLeaves:
    def test_littable(self):
        assert schema_of(T) == {"a": IntT, "b": StringT}

    def test_littable_duplicate_column(self):
        with pytest.raises(CompilationError):
            schema_of(lit(("a", IntT), ("a", IntT)))

    def test_littable_row_width(self):
        with pytest.raises(CompilationError):
            schema_of(lit(("a", IntT), rows=[(1, 2)]))

    def test_tablescan(self):
        scan = TableScan("t", (("c1", "x", IntT), ("c2", "y", StringT)))
        assert schema_of(scan) == {"c1": IntT, "c2": StringT}


class TestUnary:
    def test_attach(self):
        assert schema_of(Attach(T, "c", 5, IntT))["c"] == IntT

    def test_attach_existing_column(self):
        with pytest.raises(CompilationError):
            schema_of(Attach(T, "a", 5, IntT))

    def test_project_rename_and_duplicate(self):
        p = Project(T, (("x", "a"), ("y", "a")))
        assert schema_of(p) == {"x": IntT, "y": IntT}

    def test_project_unknown_column(self):
        with pytest.raises(CompilationError):
            schema_of(Project(T, (("x", "nope"),)))

    def test_select_needs_bool(self):
        with pytest.raises(CompilationError):
            schema_of(Select(T, "a"))
        ok = Select(BinApp(T, "gt", "a", Const(0, IntT), "c"), "c")
        assert "c" in schema_of(ok)

    def test_rownum(self):
        r = RowNum(T, "pos", (("a", "asc"),), ("b",))
        assert schema_of(r)["pos"] == IntT

    def test_rownum_bad_direction(self):
        with pytest.raises(CompilationError):
            schema_of(RowNum(T, "pos", (("a", "sideways"),)))

    def test_rowrank(self):
        assert schema_of(RowRank(T, "rk", (("a", "asc"),)))["rk"] == IntT

    def test_distinct_passthrough(self):
        assert schema_of(Distinct(T)) == schema_of(T)


class TestJoins:
    R = lit(("c", IntT), ("d", StringT))

    def test_cross(self):
        assert set(schema_of(Cross(T, self.R))) == {"a", "b", "c", "d"}

    def test_cross_name_clash(self):
        with pytest.raises(CompilationError):
            schema_of(Cross(T, T))

    def test_eqjoin(self):
        j = EqJoin(T, self.R, (("a", "c"),))
        assert set(schema_of(j)) == {"a", "b", "c", "d"}

    def test_eqjoin_type_mismatch(self):
        with pytest.raises(CompilationError):
            schema_of(EqJoin(T, self.R, (("a", "d"),)))

    def test_eqjoin_empty_pairs(self):
        with pytest.raises(CompilationError):
            schema_of(EqJoin(T, self.R, ()))

    def test_semi_anti_keep_left_schema(self):
        assert schema_of(SemiJoin(T, self.R, (("a", "c"),))) == schema_of(T)
        assert schema_of(AntiJoin(T, self.R, (("a", "c"),))) == schema_of(T)

    def test_union_schemas_must_agree(self):
        with pytest.raises(CompilationError):
            schema_of(UnionAll(T, self.R))
        u = UnionAll(T, Project(T, (("a", "a"), ("b", "b"))))
        assert schema_of(u) == schema_of(T)


class TestAggregatesAndScalars:
    def test_group_aggr(self):
        g = GroupAggr(T, ("b",), (("sum", "a", "s"), ("count", None, "n")))
        assert schema_of(g) == {"b": StringT, "s": IntT, "n": IntT}

    def test_avg_is_double(self):
        g = GroupAggr(T, (), (("avg", "a", "m"),))
        assert schema_of(g)["m"] == DoubleT

    def test_all_requires_bool(self):
        with pytest.raises(CompilationError):
            schema_of(GroupAggr(T, (), (("all", "a", "x"),)))

    def test_unknown_aggregate(self):
        with pytest.raises(CompilationError):
            schema_of(GroupAggr(T, (), (("median", "a", "x"),)))

    def test_binapp_comparison_gives_bool(self):
        b = BinApp(T, "lt", "a", Const(3, IntT), "c")
        assert schema_of(b)["c"] == BoolT

    def test_binapp_arith_keeps_type(self):
        b = BinApp(T, "add", "a", "a", "c")
        assert schema_of(b)["c"] == IntT

    def test_binapp_operand_mismatch(self):
        with pytest.raises(CompilationError):
            schema_of(BinApp(T, "add", "a", "b", "c"))

    def test_binapp_bool_op_needs_bools(self):
        with pytest.raises(CompilationError):
            schema_of(BinApp(T, "and", "a", "a", "c"))

    def test_unapp_not(self):
        base = BinApp(T, "gt", "a", Const(0, IntT), "c")
        u = UnApp(base, "not", "c", "d")
        assert schema_of(u)["d"] == BoolT
        with pytest.raises(CompilationError):
            schema_of(UnApp(T, "not", "a", "d"))

    def test_unapp_to_double(self):
        assert schema_of(UnApp(T, "to_double", "a", "d"))["d"] == DoubleT

    def test_unapp_neg_requires_numeric(self):
        with pytest.raises(CompilationError):
            schema_of(UnApp(T, "neg", "b", "d"))


class TestValidate:
    def test_validate_walks_whole_dag(self):
        bad = Project(Select(T, "a"), (("x", "a"),))
        with pytest.raises(CompilationError):
            check_plan(bad)
