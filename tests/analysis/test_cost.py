"""Unit tests of the cardinality-aware cost model (``repro.analysis.cost``).

Pins: per-operator row estimation on hand-built plans, the calibration
table lookup (including the sharded ``sqlite-x4`` alias and the
uncalibrated fallback), bundle estimation, the scatter economics gate
behind ``S400``/``S411``, and the parallel-dispatch gate behind
``S412``/``S413``.
"""

import pytest

from repro.algebra import (
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Project,
    Select,
    SemiJoin,
    TableScan,
    UnionAll,
)
from repro.analysis.cost import (
    CALIBRATION,
    CALIBRATION_VERSION,
    DEFAULT_TABLE_ROWS,
    PARALLEL_OVERHEAD,
    CostModel,
    constants_for,
    decide_parallel,
    estimate_bundle,
    scatter_worthwhile,
)
from repro.ftypes import BoolT, IntT
from repro.runtime import Catalog, Connection


def lit(n, *cols):
    cols = cols or (("i", IntT), ("v", IntT))
    return LitTable(tuple((r,) * len(cols) for r in range(n)), tuple(cols))


class TestCalibration:
    def test_every_backend_is_versioned(self):
        for name, table in CALIBRATION.items():
            assert table["__version__"] == CALIBRATION_VERSION, name
            assert table["__base__"] > 0 and table["__cell__"] > 0, name

    def test_sharded_alias_resolves_to_the_base_backend(self):
        table, calibrated = constants_for("sqlite-x4")
        assert calibrated and table is CALIBRATION["sqlite"]

    def test_unknown_backend_falls_back_uncalibrated(self):
        table, calibrated = constants_for("postgres")
        assert not calibrated and table is CALIBRATION["engine"]


class TestRowEstimates:
    def test_littable_is_exact(self):
        est = CostModel().estimate(lit(7))
        assert (est.rows, est.rows_lo, est.rows_hi) == (7.0, 7.0, 7.0)

    def test_tablescan_without_stats_is_unbounded(self):
        est = CostModel().estimate(
            TableScan("t", (("c1", "a", IntT),)))
        assert est.rows == DEFAULT_TABLE_ROWS
        assert est.rows_lo == 0.0 and est.rows_hi is None

    def test_tablescan_with_stats_is_exact(self):
        est = CostModel(table_rows={"t": 42}).estimate(
            TableScan("t", (("c1", "a", IntT),)))
        assert (est.rows, est.rows_lo, est.rows_hi) == (42.0, 42.0, 42.0)

    def test_cross_multiplies(self):
        est = CostModel().estimate(Cross(lit(3), lit(5, ("w", IntT))))
        assert est.rows == 15.0 and est.rows_hi == 15.0

    def test_key_join_does_not_multiply(self):
        # right side {0..4} is key on i: each left row matches <= once
        right = LitTable(tuple((r, r) for r in range(5)),
                         (("j", IntT), ("w", IntT)))
        est = CostModel().estimate(
            EqJoin(lit(3), right, (("i", "j"),)))
        assert est.rows == 3.0 and est.rows_hi == 3.0

    def test_select_halves_and_union_adds(self):
        sel = Select(
            LitTable(((1, True), (2, False)),
                     (("i", IntT), ("b", BoolT))), "b")
        est = CostModel().estimate(sel)
        assert est.rows == 1.0 and est.rows_lo == 0.0
        est = CostModel().estimate(UnionAll(lit(3), lit(4)))
        assert est.rows == 7.0

    def test_semijoin_never_exceeds_left(self):
        est = CostModel().estimate(
            SemiJoin(lit(6), lit(2, ("j", IntT)), (("i", "j"),)))
        assert est.rows <= 6.0 and est.rows_hi == 6.0

    def test_global_aggregate_is_one_row(self):
        agg = GroupAggr(lit(9), (), (("count", None, "n"),))
        est = CostModel().estimate(agg)
        assert (est.rows, est.rows_hi) == (1.0, 1.0)

    def test_distinct_bounded_by_child(self):
        est = CostModel().estimate(Distinct(lit(10)))
        assert est.rows <= 10.0 and est.rows_hi == 10.0

    def test_width_follows_schema(self):
        est = CostModel().estimate(
            Project(lit(4), (("a", "i"),)))
        assert est.width == 1

    def test_plan_cost_counts_shared_nodes_once(self):
        base = lit(8)
        model = CostModel()
        pa, pb = Project(base, (("a", "i"),)), Project(base, (("b", "v"),))
        shared = Cross(pa, pb)
        model.estimate(shared)
        distinct_sum = sum(model.memo[id(n)].self_cost
                           for n in (base, pa, pb, shared))
        assert model.plan_cost(shared) == pytest.approx(distinct_sum)


class TestBundleCost:
    def test_estimate_bundle_sums_queries(self):
        db = Connection(catalog=Catalog())
        db.create_table("t", [("a", int)], [(1,), (2,)])
        q = db.table("t")
        bundle = db.compile(q).bundle
        cost = estimate_bundle(bundle, backend="engine",
                               table_rows={"t": 2})
        assert cost.backend == "engine" and cost.calibrated
        assert cost.calibration_version == CALIBRATION_VERSION
        assert cost.total_cost == pytest.approx(
            sum(qc.total_cost for qc in cost.queries))
        assert cost.to_dict()["queries"]

    def test_compile_stamps_bundle_cost(self):
        db = Connection(catalog=Catalog())
        db.create_table("t", [("a", int)], [(1,), (2,)])
        compiled = db.compile(db.table("t"))
        assert compiled.bundle.cost is not None
        assert compiled.bundle.cost.total_cost > 0


class TestScatterGate:
    def test_large_plans_amortize_the_overhead(self):
        ok, why = scatter_worthwhile(10_000_000.0, 0.9, 2)
        assert ok and "amortizes" in why

    def test_small_plans_do_not(self):
        ok, why = scatter_worthwhile(1_000.0, 0.9, 2)
        assert not ok and "below scatter overhead" in why

    def test_higher_fanout_needs_more_work(self):
        cost = 600_000.0
        ok2, _ = scatter_worthwhile(cost, 1.0, 2)
        ok16, _ = scatter_worthwhile(cost, 1.0, 16)
        assert ok2 and not ok16


class TestParallelDispatch:
    def _cost(self, per_query, n):
        db = Connection(catalog=Catalog())
        db.create_table("t", [("a", int)], [(1,)])
        bundle = db.compile(db.table("t")).bundle
        cost = estimate_bundle(bundle, backend="engine")
        # forge per-query totals without building a giant plan
        object.__setattr__(cost.queries[0], "total_cost", per_query)
        return cost

    def test_single_query_is_always_inline(self):
        d = decide_parallel(None, 1)
        assert not d.parallel and d.code == "S413"

    def test_missing_estimate_fans_out_by_request(self):
        d = decide_parallel(None, 3)
        assert d.parallel and d.code == "S412"
        assert "no cost estimate" in d.reason

    def test_cheap_bundle_stays_serial(self):
        cost = self._cost(PARALLEL_OVERHEAD * 0.1, 1)
        d = decide_parallel(cost, 2)
        assert not d.parallel and d.code == "S413"
        assert d.to_dict()["code"] == "S413"

    def test_expensive_bundle_fans_out(self):
        cost = self._cost(PARALLEL_OVERHEAD * 50, 1)
        d = decide_parallel(cost, 2)
        assert d.parallel and d.code == "S412"
        assert d.est_cost == pytest.approx(cost.total_cost)
