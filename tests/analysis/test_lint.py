"""Unit tests of the estimate-drift lint (``repro.analysis.lint``).

Every D-code gets a dedicated trigger on forged profiles or
monkeypatched calibration tables, ``_misestimate``'s slack/budget edges
are pinned, and the CLI gate is exercised end to end: clean exit 0 on
the golden workload, exit 1 when ``--assume-rows`` seeds a deliberate
D500 misestimate.
"""

import json

import pytest

from repro.algebra import Cross, LitTable
from repro.analysis import lint
from repro.analysis.cost import CALIBRATION
from repro.analysis.lint import (
    DEFAULT_RATIO_BUDGET,
    ROW_SLACK,
    _misestimate,
    _parse_assume,
    lint_calibration,
    lint_report,
    lint_statements,
)
from repro.ftypes import IntT
from repro.obs.analyze import AnalyzeReport, OpProfile, QueryProfile


def lit(n, *cols):
    cols = cols or (("i", IntT), ("v", IntT))
    return LitTable(tuple((r,) * len(cols) for r in range(n)), tuple(cols))


class FakeQuery:
    def __init__(self, plan):
        self.plan = plan


class FakeBundle:
    def __init__(self, *plans):
        self.queries = [FakeQuery(p) for p in plans]


def analyze_for(*profiles):
    return AnalyzeReport(backend="engine",
                         total_time=sum(p.time for p in profiles),
                         queries=list(profiles))


class TestMisestimate:
    def test_inside_absolute_slack_never_alarms(self):
        assert not _misestimate(0.0, ROW_SLACK, DEFAULT_RATIO_BUDGET)
        assert not _misestimate(1000.0, 1000.0 + ROW_SLACK, 8.0)

    def test_small_counts_past_slack_use_the_floor(self):
        # |0 - 17| > slack and 17 > 8 * max(0, 1.0)
        assert _misestimate(0.0, ROW_SLACK + 1.0, 8.0)

    def test_ratio_budget_is_the_boundary(self):
        assert not _misestimate(100.0, 700.0, 8.0)   # 7x: inside
        assert _misestimate(100.0, 900.0, 8.0)       # 9x: outside
        assert _misestimate(900.0, 100.0, 8.0)       # symmetric


class TestD500:
    def test_per_query_rows_misestimate(self):
        plan = lit(2)
        report = analyze_for(QueryProfile(index=1, time=0.0, rows=5000))
        out = [d for d in lint_report(FakeBundle(plan), report, "engine")
               if d.code == "D500"]
        assert len(out) == 1
        assert out[0].query == 0 and out[0].node_ref is None
        assert "5000" in out[0].message

    def test_accurate_estimate_is_clean(self):
        plan = lit(2)
        report = analyze_for(QueryProfile(index=1, time=0.0, rows=2))
        assert not [d for d in
                    lint_report(FakeBundle(plan), report, "engine")
                    if d.code == "D500"]

    def test_per_operator_misestimate_carries_the_node_ref(self):
        plan = lit(2)
        op = OpProfile(ref=0, op="LitTable 2x2", time=0.0,
                       rows_in=0, rows_out=4000, width=2)
        report = analyze_for(
            QueryProfile(index=1, time=0.0, rows=2, ops=[op]))
        out = [d for d in lint_report(FakeBundle(plan), report, "engine")
               if d.code == "D500" and d.node_ref is not None]
        assert len(out) == 1 and out[0].node_ref == 0

    def test_statements_snapshot_misestimate(self):
        snap = {"statements": [
            {"fingerprint": "deadbeef" * 8, "est_rows": 10.0,
             "rows": 100_000, "calls": 10},          # mean 10k vs 10
            {"fingerprint": "cafebabe" * 8, "est_rows": 10.0,
             "rows": 100, "calls": 10},              # mean 10: exact
            {"fingerprint": "0" * 64, "rows": 99, "calls": 3},  # no est
            {"fingerprint": "1" * 64, "est_rows": 5.0,
             "rows": 0, "calls": 0},                 # never ran
        ]}
        out = lint_statements(snap)
        assert [d.code for d in out] == ["D500"]
        assert "deadbeef" in out[0].message


class TestD501:
    def test_cost_inversion_between_siblings(self):
        cheap, big = lit(2), Cross(
            lit(200, ("a", IntT)), lit(200, ("b", IntT)))
        # Model says `cheap` is ~1500x cheaper, clock says 100x slower.
        report = analyze_for(
            QueryProfile(index=1, time=1.0, rows=2),
            QueryProfile(index=2, time=0.01, rows=40_000))
        out = [d for d in
               lint_report(FakeBundle(cheap, big), report, "engine")
               if d.code == "D501"]
        assert len(out) == 1
        assert out[0].query == 0 and "slower" in out[0].message

    def test_noise_floor_suppresses_fast_queries(self):
        cheap, big = lit(2), Cross(
            lit(200, ("a", IntT)), lit(200, ("b", IntT)))
        report = analyze_for(
            QueryProfile(index=1, time=0.004, rows=2),
            QueryProfile(index=2, time=0.0001, rows=40_000))
        assert not [d for d in
                    lint_report(FakeBundle(cheap, big), report, "engine")
                    if d.code == "D501"]

    def test_consistent_ordering_is_clean(self):
        cheap, big = lit(2), Cross(
            lit(200, ("a", IntT)), lit(200, ("b", IntT)))
        report = analyze_for(
            QueryProfile(index=1, time=0.01, rows=2),
            QueryProfile(index=2, time=1.0, rows=40_000))
        assert not [d for d in
                    lint_report(FakeBundle(cheap, big), report, "engine")
                    if d.code == "D501"]


class TestD502:
    def test_unknown_backend_is_uncalibrated(self):
        out = lint_calibration("postgres")
        assert [d.code for d in out] == ["D502"]
        assert "no calibration table" in out[0].message

    def test_version_mismatch(self, monkeypatch):
        stale = dict(CALIBRATION["engine"], __version__=0)
        monkeypatch.setitem(CALIBRATION, "engine", stale)
        out = lint_calibration("engine")
        assert [d.code for d in out] == ["D502"]
        assert "version 0" in out[0].message

    def test_missing_operator_constant(self, monkeypatch):
        gappy = {k: v for k, v in CALIBRATION["engine"].items()
                 if k != "LitTable"}
        monkeypatch.setitem(CALIBRATION, "engine", gappy)
        out = lint_calibration("engine", plans=[lit(2)])
        assert [d.code for d in out] == ["D502"]
        assert "'LitTable'" in out[0].message

    def test_current_calibration_is_clean(self):
        assert lint_calibration("engine", plans=[lit(2)]) == []


class TestCLI:
    def test_golden_workload_is_clean(self, capsys):
        assert lint.main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_misestimate_trips_the_gate(self, capsys):
        # The ISSUE's acceptance check: a deliberate stats lie must
        # produce D500 findings and a non-zero exit.
        rc = lint.main(["--assume-rows", "facilities=100000"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "D500" in out and "drift finding(s)" in out

    def test_json_output(self, capsys):
        rc = lint.main(["--json",
                        "--assume-rows", "facilities=100000"])
        assert rc == 1
        findings = json.loads(capsys.readouterr().out)
        assert findings and all(f["code"].startswith("D5")
                                for f in findings)
        assert {f["workload"] for f in findings} <= {
            "running_example", "nested_orders"}

    def test_bad_assume_rows_rejected(self):
        with pytest.raises(SystemExit):
            _parse_assume(["facilities"])
        with pytest.raises(ValueError):
            _parse_assume(["facilities=lots"])
