"""Unit tests of the plan-property inference engine on hand-built plans.

Each test pins one inference rule from ``repro.analysis.properties``
(keys, constants, cardinality bounds, density, provenance) on a plan
small enough that the expected property set can be stated by hand; the
hypothesis suite (``tests/properties/test_property_inference.py``)
checks the same judgements against materialized relations at scale.
"""

from repro.algebra import (
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    LitTable,
    Project,
    RowNum,
    Select,
    UnionAll,
)
from repro.analysis import Card, infer_properties
from repro.ftypes import BoolT, IntT, StringT


def lit(*cols, rows=()):
    return LitTable(tuple(rows), tuple(cols))


#: iter-style column constant 1, item column with duplicates.
DUPS = lit(("i", IntT), ("v", IntT), rows=[(1, 10), (1, 20), (1, 10)])
#: duplicate-free item column.
UNIQ = lit(("i", IntT), ("v", IntT), rows=[(1, 10), (1, 20), (1, 30)])


class TestLiterals:
    def test_exact_cardinality(self):
        assert infer_properties(DUPS).card == Card(3, 3)

    def test_scanned_constants(self):
        p = infer_properties(DUPS)
        assert p.constants == {"i": 1}

    def test_scanned_keys_skip_duplicate_columns(self):
        assert not infer_properties(DUPS).has_key({"v"})
        assert infer_properties(UNIQ).has_key({"v"})

    def test_empty_literal_has_empty_key(self):
        p = infer_properties(lit(("a", IntT)))
        assert p.card.empty and p.has_key(frozenset())

    def test_non_null_scan(self):
        p = infer_properties(lit(("a", StringT), rows=[("x",), (None,)]))
        assert "a" not in p.non_null
        assert infer_properties(UNIQ).non_null == {"i", "v"}

    def test_dense_literal_column_counts_as_order(self):
        dense = lit(("p", IntT), ("v", IntT), rows=[(2, 5), (1, 6)])
        p = infer_properties(dense)
        assert p.order_ok("p") and not p.order_ok("v")


class TestUnaryRules:
    def test_distinct_keys_full_schema(self):
        p = infer_properties(Distinct(DUPS))
        # the constant column never splits groups, so the stripped
        # partition {v} is the minimal key
        assert p.has_key({"v"}) and p.has_key({"i", "v"})

    def test_attach_adds_constant(self):
        p = infer_properties(Attach(DUPS, "k", 7, IntT))
        assert p.constants["k"] == 7

    def test_project_renames_properties(self):
        p = infer_properties(Project(UNIQ, (("a", "v"), ("b", "i"))))
        assert p.has_key({"a"}) and p.constants == {"b": 1}

    def test_select_filtered_cardinality_and_learned_constant(self):
        flags = lit(("v", IntT), ("f", BoolT),
                    rows=[(1, True), (2, False), (3, True)])
        p = infer_properties(Select(flags, "f"))
        assert p.constants["f"] is True
        assert p.card == Card(0, 3)

    def test_rownum_key_density_and_provenance(self):
        num = RowNum(DUPS, "p", (("v", "asc"),), ("i",))
        p = infer_properties(num)
        assert p.has_key({"i", "p"}) and p.has_key({"p"})
        assert p.is_dense("p", ("i",))
        assert "p" in p.provenance

    def test_density_transfers_across_constant_partition_columns(self):
        # partition {i} vs {} differ only by the constant column i
        num = RowNum(DUPS, "p", (("v", "asc"),), ("i",))
        assert infer_properties(num).is_dense("p", ())

    def test_constant_one_is_dense_per_superkey(self):
        one = Attach(UNIQ, "p", 1, IntT)
        assert infer_properties(one).is_dense("p", ("v",))


class TestScalarApplications:
    def test_constant_folding_through_binapp(self):
        app = BinApp(DUPS, "add", "i", Const(2, IntT), "s")
        assert infer_properties(app).constants["s"] == 3

    def test_same_column_comparison_is_constant(self):
        eq = BinApp(DUPS, "eq", "v", "v", "t")
        ne = BinApp(DUPS, "ne", "v", "v", "u")
        lt = BinApp(DUPS, "lt", "v", "v", "w")
        assert infer_properties(eq).constants["t"] is True
        assert infer_properties(ne).constants["u"] is False
        # strict comparisons of a column with itself are constant False
        assert infer_properties(lt).constants["w"] is False


class TestBinaryRules:
    def test_cross_multiplies_cards_and_products_keys(self):
        right = lit(("w", IntT), rows=[(7,), (8,)])
        p = infer_properties(Cross(UNIQ, right))
        assert p.card == Card(6, 6)
        assert p.has_key({"v", "w"})
        assert not p.has_key({"v"}) and not p.has_key({"w"})

    def test_eqjoin_propagates_constants_across_pairs(self):
        left = lit(("a", IntT), rows=[(4,), (4,)])
        right = lit(("b", IntT), ("w", IntT), rows=[(4, 1), (5, 2)])
        p = infer_properties(EqJoin(left, right, (("a", "b"),)))
        # a is constant 4 on the left, so b = a is constant too
        assert p.constants["a"] == 4 and p.constants["b"] == 4

    def test_unionall_keeps_agreeing_constants(self):
        a = lit(("x", IntT), rows=[(1,), (1,)])
        b = lit(("x", IntT), rows=[(1,)])
        c = lit(("x", IntT), rows=[(2,)])
        assert infer_properties(UnionAll(a, b)).constants == {"x": 1}
        assert infer_properties(UnionAll(a, c)).constants == {}
        assert infer_properties(UnionAll(a, b)).card == Card(3, 3)


class TestMemoization:
    def test_shared_nodes_inferred_once(self):
        memo, schemas = {}, {}
        shared = Distinct(UNIQ)
        root = Cross(Project(shared, (("a", "v"),)),
                     Project(shared, (("b", "i"),)))
        infer_properties(root, memo, schemas)
        # 5 distinct nodes despite two paths to `shared`
        assert len(memo) == 5
        before = dict(memo)
        infer_properties(root, memo, schemas)
        assert {k: id(v) for k, v in memo.items()} == \
            {k: id(v) for k, v in before.items()}
