"""The property-driven rewrites: firing evidence and self-verification.

Each of the three rewrites (``distinct_elim``, ``rownum_dense``,
``select_true``) is shown firing on a real frontend query --
``PassStats.rewrites_fired`` is the acceptance evidence -- with results
identical across all three backends, and the F190 self-check is pinned
on deliberately broken rewrite outputs.
"""

import pytest

from repro import Connection, ffilter, group_with, nub, number, to_q
from repro.algebra import Distinct, LitTable, Project
from repro.analysis import PropsCache
from repro.bench.table1 import running_example_query
from repro.bench.workloads import paper_dataset
from repro.errors import VerifyError
from repro.optimizer.rewrites.properties import (
    REWRITES,
    _self_verify,
    apply_property_rewrites,
)
from repro.runtime import Catalog

from ..conftest import run_all_ways


def fired(db, q) -> dict:
    return db.compile(q, use_cache=False).pass_stats.rewrites_fired


class TestFiring:
    """Each rewrite demonstrably fires (and the value stays correct)."""

    def test_distinct_elim_on_deduplicated_group_input(self):
        # group_with's outer Distinct is redundant once nub guarantees
        # (iter, item) is duplicate-free -- a property, not a pattern.
        q = group_with(lambda x: x, nub(to_q([3, 1, 3, 2, 1])))
        assert fired(Connection(catalog=Catalog()), q)["distinct_elim"] == 1
        assert run_all_ways(q, Catalog()) == [[1], [2], [3]]

    def test_select_true_on_constant_predicate(self):
        q = ffilter(lambda x: to_q(True), to_q([1, 2, 3]))
        assert fired(Connection(catalog=Catalog()), q)["select_true"] == 1
        assert run_all_ways(q, Catalog()) == [1, 2, 3]

    def test_rownum_dense_on_renumbering(self):
        from repro import fmap

        q = fmap(lambda p: p, number(number(to_q([7, 8]))))
        assert fired(Connection(catalog=Catalog()), q)["rownum_dense"] >= 1
        assert run_all_ways(q, Catalog()) == [((7, 1), 1), ((8, 2), 2)]

    def test_rownum_dense_on_the_running_example(self):
        db = Connection(catalog=paper_dataset())
        counts = fired(db, running_example_query(db))
        assert counts.get("rownum_dense", 0) >= 3

    def test_semantically_required_distinct_survives(self):
        # plain group_with over duplicate-heavy input: the outer Distinct
        # is load-bearing and must NOT be eliminated
        q = group_with(lambda x: x % 2, to_q([1, 1, 2, 1]))
        counts = fired(Connection(catalog=Catalog()), q)
        assert counts.get("distinct_elim", 0) == 0
        assert run_all_ways(q, Catalog()) == [[2], [1, 1, 1]]

    def test_stats_only_name_known_rewrites(self):
        db = Connection(catalog=paper_dataset())
        counts = fired(db, running_example_query(db))
        assert set(counts) <= set(REWRITES)


class TestSelfVerification:
    """F190: a rewrite emitting a wrong plan is caught, not shipped."""

    def lit(self, *cols, rows=()):
        return LitTable(tuple(rows), tuple(cols))

    def test_schema_change_is_rejected(self):
        from repro.ftypes import IntT

        old = self.lit(("a", IntT), ("b", IntT), rows=[(1, 2)])
        cache = PropsCache()
        cache.infer(old)
        new = Project(old, (("a", "a"),))  # drops column b
        with pytest.raises(VerifyError) as exc:
            _self_verify(old, new, cache)
        assert exc.value.code == "F190"

    def test_lost_key_is_rejected(self):
        from repro.ftypes import IntT

        dupes = self.lit(("a", IntT), rows=[(1,), (1,), (2,)])
        old = Distinct(dupes)
        cache = PropsCache()
        cache.infer(old)
        # "rewriting" Distinct away here is wrong: the child has no key
        with pytest.raises(VerifyError) as exc:
            _self_verify(old, dupes, cache)
        assert exc.value.code == "F190"

    def test_identity_sweep_changes_nothing(self):
        db = Connection(catalog=paper_dataset())
        plan = db.compile(running_example_query(db)).bundle.queries[0].plan
        # the optimizer already ran to fixpoint: a second sweep is a no-op
        assert apply_property_rewrites(plan) is plan
