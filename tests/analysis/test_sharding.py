"""Unit tests of the shard-safety analysis on hand-built plans.

Each test pins one decision rule of ``repro.analysis.sharding``: the
stable reason codes (``S400``/``F40x``), the per-operator filter
commutation, and the shared-ranker self-join rewrite with its taint
(no-escape) obligation.  Row identity is checked by evaluating the
original plan and the union of all shard plans through the in-memory
engine -- the two row bags must be equal, and every shard must hold
only its own ``iter mod n = k`` slice.
"""

import pytest

from repro.algebra import (
    BinApp,
    Const,
    EqJoin,
    LitTable,
    Project,
    RowNum,
    RowRank,
    Select,
)
from repro.analysis import build_shard_plan, shardable
from repro.analysis.sharding import _Pushdown
from repro.backends.engine import Engine
from repro.core.bundle import SerializedQuery
from repro.errors import CompilationError
from repro.ftypes import IntT, StringT
from repro.runtime import Catalog


def lit(*cols, rows=()):
    return LitTable(tuple(rows), tuple(cols))


def query(plan, iter_col="i", pos_col="p", item_cols=("v",),
          item_types=(IntT,)):
    return SerializedQuery(plan, iter_col, pos_col, item_cols, item_types)


def rows_of(plan, out_cols):
    """Materialize ``plan`` through the engine as a sorted row list."""
    rel = Engine(Catalog()).execute(plan)
    idx = [rel.cols.index(c) for c in out_cols]
    return sorted(tuple(rel.columns[i][r] for i in idx)
                  for r in range(rel.nrows))


def assert_shards_partition(q, n):
    """The shard plans partition the original result exactly."""
    out = (q.iter_col, q.pos_col) + q.item_cols
    expected = rows_of(q.plan, out)
    union = []
    for k in range(n):
        shard = rows_of(build_shard_plan(q, n, k).plan, out)
        assert all(row[0] % n == k for row in shard), (
            f"shard {k} holds a foreign iter group")
        union.extend(shard)
    assert sorted(union) == expected


# ----------------------------------------------------------------------
# plan builders
# ----------------------------------------------------------------------

def joined_plan(groups=6):
    """A >=8-node plan whose iter flows from a literal through a join,
    a comparison, and a partitioned RowNum -- fully pushdown-friendly.
    ``groups`` scales the literal data (the cost gate needs enough
    estimated work to amortize the scatter overhead)."""
    left = lit(("i", IntT), ("v", IntT),
               rows=[(i, 10 * i + d) for i in range(1, groups + 1)
                     for d in range(2)])
    right = lit(("j", IntT), ("w", IntT),
                rows=[(i, 100 + i) for i in range(1, groups + 1)])
    join = EqJoin(left, right, (("i", "j"),))
    cmp_ = BinApp(join, "gt", "v", Const(0, IntT), "keep")
    sel = Select(cmp_, "keep")
    shifted = BinApp(sel, "add", "w", Const(1, IntT), "w2")
    rn = RowNum(shifted, "p", (("v", "asc"),), ("i",))
    return Project(rn, (("i", "i"), ("p", "p"), ("v", "v")))


def ranker_plan(escape=False, kind="rownum", rank_order=("c", "v")):
    """The compiler's surrogate-regeneration idiom: a shared global
    ranker self-joined through two projections.  ``escape=True`` leaks
    the rank value into the output (the taint check must refuse);
    ``kind``/``rank_order`` select the ranker variant."""
    child = lit(("c", IntT), ("v", IntT),
                rows=[(i, 10 * i + d) for i in range(1, 7)
                      for d in range(2)])
    order = tuple((c, "asc") for c in rank_order)
    if kind == "rownum":
        ranker = RowNum(child, "s", order, ())
    else:
        ranker = RowRank(child, "s", order)
    a_side = Project(ranker, (("i", "c"), ("p", "v"), ("sa", "s")))
    b_side = Project(ranker, (("sb", "s"), ("w", "v")))
    join = EqJoin(a_side, b_side, (("sa", "sb"),))
    cmp_ = BinApp(join, "gt", "w", Const(-1, IntT), "keep")
    sel = Select(cmp_, "keep")
    item = "sa" if escape else "w"
    plan = Project(sel, (("i", "i"), ("p", "p"), ("v", item)))
    return plan, ranker


# ----------------------------------------------------------------------
# decision codes
# ----------------------------------------------------------------------

class TestDecisionCodes:
    def test_shardable_join_plan(self):
        d = shardable(query(joined_plan(groups=800)))
        assert d.shardable and d.code == "S400"
        assert d.coverage >= 0.5
        assert d.est_cost > 0.0
        assert d.code in d.describe()

    def test_constant_iter_refused(self):
        plan = lit(("i", IntT), ("p", IntT), ("v", IntT),
                   rows=[(1, 1, 10), (1, 2, 20)])
        d = shardable(query(plan))
        assert (not d.shardable) and d.code == "F401"

    def test_single_row_result_refused(self):
        from repro.algebra import GroupAggr
        base = lit(("i", IntT), ("v", IntT),
                   rows=[(i, 10 * i) for i in range(1, 7)])
        agg = GroupAggr(base, (), (("max", "i", "i2"),
                                   ("count", None, "p"),
                                   ("sum", "v", "v2")))
        plan = Project(agg, (("i", "i2"), ("p", "p"), ("v", "v2")))
        d = shardable(query(plan))
        assert (not d.shardable) and d.code == "F402"

    def test_cheap_plan_refused(self):
        # A pushdown-friendly plan whose estimated cost cannot amortize
        # the scatter overhead: the cost gate keeps it single-image
        # (S411 supersedes the old F403 node-count heuristic).
        d = shardable(query(joined_plan(groups=6)))
        assert (not d.shardable) and d.code == "S411"
        assert d.est_cost > 0.0
        assert "overhead" in d.reason

    def test_non_integer_iter_refused(self):
        plan = lit(("i", StringT), ("p", IntT), ("v", IntT),
                   rows=[("a", 1, 10), ("b", 1, 20)])
        d = shardable(query(plan))
        assert (not d.shardable) and d.code == "F405"

    def test_blocked_pushdown_refused(self):
        # iter is generated by a global RowNum at the very top: the
        # filter cannot commute past anything that matters.
        base = lit(("v", IntT), rows=[(i,) for i in range(12)])
        chain = base
        for step in range(6):
            chain = BinApp(chain, "add", "v", Const(step, IntT),
                           f"v{step}")
        rn = RowNum(chain, "i", (("v", "asc"),), ())
        pos = RowNum(rn, "p", (("v", "asc"),), ("i",))
        plan = Project(pos, (("i", "i"), ("p", "p"), ("v", "v")))
        d = shardable(query(plan))
        assert (not d.shardable) and d.code == "F404"
        assert 0.0 < d.coverage < 0.25

    def test_shard_index_validated(self):
        q = query(joined_plan())
        with pytest.raises(CompilationError):
            build_shard_plan(q, 4, 4)
        with pytest.raises(CompilationError):
            build_shard_plan(q, 4, -1)


# ----------------------------------------------------------------------
# row identity of the rebuilt shard plans
# ----------------------------------------------------------------------

class TestShardPlans:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_join_plan_partitions_exactly(self, n):
        assert_shards_partition(query(joined_plan()), n)

    @pytest.mark.parametrize("kind", ["rownum", "rowrank"])
    def test_shared_ranker_partitions_exactly(self, kind):
        plan, _ = ranker_plan(kind=kind)
        assert_shards_partition(query(plan), 3)

    def test_escaping_rank_still_partitions_exactly(self):
        # With the rank leaking into the output the ranker rule must not
        # fire, but the fallback commutation rules stay sound.
        plan, _ = ranker_plan(escape=True)
        assert_shards_partition(query(plan), 3)


# ----------------------------------------------------------------------
# the shared-ranker rule and its obligations
# ----------------------------------------------------------------------

def covered_ids(q):
    walk = _Pushdown(q, 2, 0, {})
    _, covered = walk.run(rebuild=False)
    return covered


class TestSharedRanker:
    def test_rule_fires_on_the_idiom(self):
        plan, ranker = ranker_plan()
        assert id(ranker) in covered_ids(query(plan))

    def test_rank_escape_blocks_the_rule(self):
        plan, ranker = ranker_plan(escape=True)
        assert id(ranker) not in covered_ids(query(plan))

    def test_rowrank_requires_filter_column_in_order(self):
        # DENSE_RANK equality is order-key equality; a filter column
        # outside the order keys could split tied pairs across shards.
        plan, ranker = ranker_plan(kind="rowrank", rank_order=("v",))
        assert id(ranker) not in covered_ids(query(plan))

    def test_rowrank_in_order_allows_the_rule(self):
        plan, ranker = ranker_plan(kind="rowrank", rank_order=("c", "v"))
        assert id(ranker) in covered_ids(query(plan))
