"""The staged plan verifier: diagnostic codes, stages, and debug mode.

Every code in the F1xx/F2xx/F3xx table is triggered at least once on a
deliberately broken plan or bundle, and the happy path (a well-formed
bundle in standard ``iter|pos|item`` form) is pinned as diagnostic-free.
"""

import pytest

from repro.algebra import LitTable, Project, RowNum
from repro.analysis import (
    STAGES,
    Diagnostic,
    avalanche_lint,
    check_plan,
    ensure_verified,
    set_verify_debug,
    verify_bundle,
    verify_debug_enabled,
)
from repro.core.bundle import AtomRef, Bundle, SerializedQuery
from repro.errors import VerifyError
from repro.ftypes import IntT, ListT, StringT


def lit(*cols, rows=()):
    return LitTable(tuple(rows), tuple(cols))


def good_bundle() -> Bundle:
    """One well-formed query in standard form with a RowNum'd pos."""
    base = lit(("i", IntT), ("v", IntT), rows=[(1, 20), (1, 10)])
    num = RowNum(base, "p", (("v", "asc"),), ("i",))
    plan = Project(num, (("i", "i"), ("p", "p"), ("v", "v")))
    q = SerializedQuery(plan, "i", "p", ("v",), (IntT,))
    return Bundle(ListT(IntT), [q], AtomRef(0, IntT), True)


class TestStructuralStage:
    def test_unknown_column_is_f101(self):
        bad = Project(lit(("a", IntT)), (("b", "missing"),))
        with pytest.raises(VerifyError) as exc:
            check_plan(bad)
        assert exc.value.code == "F101"
        assert "@" in str(exc.value)  # carries the node ref

    def test_duplicate_name_is_f102(self):
        bad = lit(("a", IntT), ("a", IntT))
        with pytest.raises(VerifyError) as exc:
            check_plan(bad)
        assert exc.value.code == "F102"

    def test_collect_mode_continues_past_failures(self):
        bad = Project(lit(("a", IntT)), (("b", "missing"),))
        diags = []
        check_plan(bad, collect=diags)
        assert [d.code for d in diags] == ["F101"]
        assert diags[0].stage == "structural"

    def test_raise_mode_accepts_a_good_plan(self):
        with pytest.raises(VerifyError):
            check_plan(Project(lit(("a", IntT)), (("b", "missing"),)))
        check_plan(good_bundle().queries[0].plan)


class TestOrderStage:
    def test_well_formed_bundle_is_clean(self):
        report = verify_bundle(good_bundle(), label="test")
        assert report.ok and report.stages == STAGES

    def test_nonstandard_root_schema_is_f202(self):
        bundle = good_bundle()
        q = bundle.queries[0]
        # claim the columns in the wrong order
        bundle.queries[0] = SerializedQuery(q.plan, q.pos_col, q.iter_col,
                                            q.item_cols, q.item_types)
        report = verify_bundle(bundle, label="test", raise_on_error=False)
        assert [d.code for d in report.diagnostics] == ["F202"]

    def test_item_type_mismatch_is_f203(self):
        bundle = good_bundle()
        q = bundle.queries[0]
        bundle.queries[0] = SerializedQuery(q.plan, q.iter_col, q.pos_col,
                                            q.item_cols, (StringT,))
        report = verify_bundle(bundle, label="test", raise_on_error=False)
        assert [d.code for d in report.diagnostics] == ["F203"]

    def test_pos_without_lineage_is_f201(self):
        # pos is a plain data column: no RowNum, not dense, not constant
        plan = lit(("i", IntT), ("p", IntT), ("v", IntT),
                   rows=[(1, 5, 10), (1, 9, 20)])
        bundle = Bundle(ListT(IntT),
                        [SerializedQuery(plan, "i", "p", ("v",), (IntT,))],
                        AtomRef(0, IntT), True)
        report = verify_bundle(bundle, label="test", raise_on_error=False)
        assert [d.code for d in report.diagnostics] == ["F201"]
        with pytest.raises(VerifyError) as exc:
            verify_bundle(bundle, label="test")
        assert exc.value.code == "F201"


class TestAvalancheStage:
    def test_excess_query_is_f301(self):
        bundle = good_bundle()
        bundle.queries.append(bundle.queries[0])
        report = verify_bundle(bundle, label="test", raise_on_error=False)
        assert "F301" in [d.code for d in report.diagnostics]

    def test_observed_statement_lint_is_f302(self):
        ty = ListT(ListT(IntT))  # two [.] constructors: bound 2
        assert avalanche_lint(ty, 2) == []
        diags = avalanche_lint(ty, 7)
        assert [d.code for d in diags] == ["F302"]
        assert "7 statements" in diags[0].message

    def test_scalar_root_gets_one_extra_statement(self):
        assert avalanche_lint(IntT, 1, root_is_list=False) == []
        assert avalanche_lint(IntT, 2, root_is_list=False)


class TestReportAndStamp:
    def test_diagnostic_rendering(self):
        d = Diagnostic("F201", "order", "boom", query=1, node_ref=7)
        assert str(d) == "F201 [order] Q2 @7: boom"

    def test_report_to_dict(self):
        report = verify_bundle(good_bundle(), label="test")
        data = report.to_dict()
        assert data["ok"] is True
        assert data["stages"] == list(STAGES)
        assert data["diagnostics"] == []

    def test_verified_stamp_and_ensure(self):
        bundle = good_bundle()
        assert not bundle.verified
        verify_bundle(bundle, label="test")
        assert bundle.verified
        ensure_verified(bundle, "backend:test")  # no-op, already stamped

    def test_failed_bundle_is_not_stamped(self):
        bundle = good_bundle()
        bundle.queries.append(bundle.queries[0])
        verify_bundle(bundle, label="test", raise_on_error=False)
        assert not bundle.verified


class TestDebugMode:
    def test_programmatic_override_wins(self):
        previous = set_verify_debug(True)
        try:
            assert verify_debug_enabled()
            set_verify_debug(False)
            assert not verify_debug_enabled()
        finally:
            set_verify_debug(previous)

    def test_environment_variable(self, monkeypatch):
        previous = set_verify_debug(None)
        try:
            monkeypatch.delenv("FERRY_VERIFY", raising=False)
            assert not verify_debug_enabled()
            monkeypatch.setenv("FERRY_VERIFY", "1")
            assert verify_debug_enabled()
            monkeypatch.setenv("FERRY_VERIFY", "0")
            assert not verify_debug_enabled()
        finally:
            set_verify_debug(previous)
