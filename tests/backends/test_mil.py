"""The MIL column-at-a-time code generator and virtual machine."""

import pytest

from repro import Connection, fmap, group_with, to_q
from repro.backends.mil import MILGenerator
from repro.backends.mil import program as mil
from repro.bench.table1 import running_example_query
from repro.errors import PartialFunctionError


class TestInstructions:
    def run(self, instrs, out):
        vm = mil.MILVM({})
        program = mil.MILProgram(list(instrs), tuple(out))
        return vm.run(program)

    def test_litcol_and_map2(self):
        (result,) = self.run([
            mil.LitCol("a", (1, 2, 3)),
            mil.LitCol("b", (10, 20, 30)),
            mil.Map2("c", "add", "a", "b"),
        ], ["c"])
        assert result == [11, 22, 33]

    def test_map2const(self):
        (result,) = self.run([
            mil.LitCol("a", (1, 2)),
            mil.Map2Const("c", "sub", "a", 10, const_left=True),
        ], ["c"])
        assert result == [9, 8]

    def test_mask_and_take(self):
        (result,) = self.run([
            mil.LitCol("a", (5, -1, 7)),
            mil.Map2Const("m", "gt", "a", 0),
            mil.MaskIndex("i", "m"),
            mil.Take("out", "a", "i"),
        ], ["out"])
        assert result == [5, 7]

    def test_sortperm_rownumber(self):
        (result,) = self.run([
            mil.LitCol("g", (1, 1, 2)),
            mil.LitCol("v", (9, 3, 5)),
            mil.SortPerm("p", (("v", "asc"),)),
            mil.RowNumber("r", "p", ("g",)),
        ], ["r"])
        assert result == [2, 1, 1]

    def test_dense_rank(self):
        (result,) = self.run([
            mil.LitCol("v", (5, 3, 5)),
            mil.SortPerm("p", (("v", "asc"),)),
            mil.DenseRank("r", "p", ("v",)),
        ], ["r"])
        assert result == [2, 1, 2]

    def test_hash_join_index(self):
        (li, ri) = self.run([
            mil.LitCol("l", (1, 2)),
            mil.LitCol("r", (2, 2, 3)),
            mil.HashJoinIndex("li", "ri", ("l",), ("r",)),
        ], ["li", "ri"])
        assert list(zip(li, ri)) == [(1, 0), (1, 1)]

    def test_semi_and_anti(self):
        (semi, anti) = self.run([
            mil.LitCol("l", (1, 2, 3)),
            mil.LitCol("r", (2,)),
            mil.SemiIndex("s", ("l",), ("r",), anti=False),
            mil.SemiIndex("a", ("l",), ("r",), anti=True),
        ], ["s", "a"])
        assert semi == [1]
        assert anti == [0, 2]

    def test_group_aggregate(self):
        (keys, sums) = self.run([
            mil.LitCol("g", ("b", "a", "b")),
            mil.LitCol("v", (1, 2, 3)),
            mil.GroupAggregate(("g",), (("sum", "v", "s"),), ("k",)),
        ], ["k", "s"])
        assert sorted(zip(keys, sums)) == [("a", 2), ("b", 4)]

    def test_division_errors(self):
        with pytest.raises(PartialFunctionError):
            self.run([
                mil.LitCol("a", (1,)),
                mil.Map2Const("c", "idiv", "a", 0),
            ], ["c"])

    def test_program_show(self):
        program = mil.MILProgram(
            [mil.LitCol("a", (1, 2)), mil.Map2Const("b", "mul", "a", 3)],
            ("b",))
        text = program.show()
        assert "bat.new" in text
        assert "return (b)" in text


class TestBackend:
    def test_artifacts_contain_programs(self, paper_catalog):
        db = Connection(backend="mil", catalog=paper_catalog)
        compiled = db.compile(running_example_query(db))
        result = db.backend.execute_bundle(compiled.bundle, paper_catalog)
        assert len(result.artifacts["mil"]) == 2
        assert "join" in result.artifacts["mil"][1]

    def test_column_programs_match_row_engine(self, paper_catalog):
        q_mil = running_example_query(
            Connection(backend="mil", catalog=paper_catalog))
        mil_db = Connection(backend="mil", catalog=paper_catalog)
        eng_db = Connection(backend="engine", catalog=paper_catalog)
        assert mil_db.run(q_mil) == eng_db.run(q_mil)

    def test_generator_counts_instructions(self):
        db = Connection(backend="mil")
        compiled = db.compile(fmap(lambda x: x + 1, to_q([1, 2])))
        gen = MILGenerator()
        query = compiled.bundle.queries[0]
        program = gen.generate(query.plan,
                               (query.iter_col, query.pos_col)
                               + query.item_cols)
        assert len(program) > 3

    def test_nested_results(self):
        db = Connection(backend="mil")
        db.create_table("t", [("n", int)], [(2,), (1,)])
        q = group_with(lambda n: n % 2, db.table("t"))
        assert db.run(q) == [[2], [1]]
