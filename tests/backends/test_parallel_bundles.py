"""Intra-bundle parallelism: threaded fan-out must be observationally
identical to the serial loop on every backend.

Bundle queries are independent by construction (each is a complete plan
over read-only tables; they only *share* subplans), so ``parallel=True``
may change wall-clock time but nothing else: results, trace shape (one
``execute`` span per query, in bundle order), ANALYZE profiles, error
propagation, and the once-per-bundle materialization of shared subplans
all stay the same.
"""

from __future__ import annotations

import threading

import pytest

from repro import Connection, fmap, fsum, group_with, pyq, the, tup
from repro.backends.engine import EngineBackend
from repro.backends.engine.backend import default_workers
from repro.backends.engine.evaluate import Engine
from repro.bench.workloads import orders_dataset
from repro.errors import PartialFunctionError


def nested_report(db):
    """Region -> customer -> order totals: a 3-query bundle."""
    customers = db.table("customers")
    orders = db.table("orders")
    lineitems = db.table("lineitems")

    def order_totals(cid):
        customer_orders = pyq(
            "[oid for (cid2, month, oid) in orders if cid2 == cid]",
            orders=orders, cid=cid)
        return fmap(
            lambda oid: fsum(pyq(
                "[price for (line, oid2, price) in lineitems"
                " if oid2 == oid]", lineitems=lineitems, oid=oid)),
            customer_orders)

    return fmap(
        lambda g: tup(
            the(fmap(lambda c: c[2], g)),
            fmap(lambda c: tup(c[1], order_totals(c[0])), g)),
        group_with(lambda c: c[2], customers))


@pytest.fixture()
def orders_catalog():
    return orders_dataset(n_customers=25)


class TestResultsIdentical:
    @pytest.mark.parametrize("backend", ["engine", "sqlite", "mil"])
    def test_parallel_matches_serial(self, backend, orders_catalog):
        serial = Connection(backend=backend, catalog=orders_catalog)
        parallel = Connection(backend=backend, catalog=orders_catalog,
                              parallel_bundles=True)
        q_serial = nested_report(serial)
        q_parallel = nested_report(parallel)
        assert serial.compile(q_serial).bundle.size >= 3
        assert parallel.run(q_parallel) == serial.run(q_serial)

    def test_single_query_bundle_runs_inline(self, orders_catalog):
        db = Connection(catalog=orders_catalog, parallel_bundles=True)
        customers = db.table("customers")
        flat = pyq("[name for (cid, name, region) in customers]",
                   customers=customers)
        assert db.compile(flat).bundle.size == 1
        assert sorted(db.run(flat)) == sorted(
            row[1] for row in orders_catalog.rows("customers"))

    def test_prepared_queries_parallel(self, orders_catalog):
        serial = Connection(catalog=orders_catalog)
        parallel = Connection(catalog=orders_catalog,
                              parallel_bundles=True)
        expected = serial.prepare(nested_report(serial)).execute()
        prepared = parallel.prepare(nested_report(parallel))
        assert prepared.execute() == expected
        assert prepared.execute() == expected  # warm pool, same answer


class TestObservability:
    def test_trace_has_ordered_execute_spans(self, orders_catalog):
        db = Connection(catalog=orders_catalog, parallel_bundles=True)
        db.run(nested_report(db))
        executes = db.last_trace.find_all("execute")
        assert [sp.attrs["query"] for sp in executes] == [1, 2, 3]
        for sp in executes:
            assert sp.attrs["backend"] == "engine"
            assert sp.attrs["rows"] >= 0
            assert sp.duration >= 0.0

    def test_explain_analyze_profiles_aligned(self, orders_catalog):
        db = Connection(catalog=orders_catalog, parallel_bundles=True)
        report = db.explain(nested_report(db), analyze=True)
        profiles = report.analyze.queries
        assert [p.index for p in profiles] == [1, 2, 3]
        assert all(p.ops for p in profiles)  # per-op breakdown present

    def test_sqlite_statement_count_intact(self, orders_catalog):
        db = Connection(backend="sqlite", catalog=orders_catalog,
                        parallel_bundles=True)
        before = db.backend.statements_executed
        db.run(nested_report(db))
        assert db.backend.statements_executed - before == 3


class TestSharedSubplans:
    def test_each_dag_node_materializes_once_per_bundle(self,
                                                        orders_catalog,
                                                        monkeypatch):
        """The bundle cache's once-semantics: even with shared subplans
        across the 3 queries, no DAG node is evaluated twice."""
        counts: dict[int, int] = {}
        lock = threading.Lock()
        original = Engine._eval

        def counting_eval(self, node, memo):
            with lock:
                counts[id(node)] = counts.get(id(node), 0) + 1
            return original(self, node, memo)

        monkeypatch.setattr(Engine, "_eval", counting_eval)
        db = Connection(catalog=orders_catalog, parallel_bundles=True)
        db.run(nested_report(db))
        evaluated_twice = [n for n, c in counts.items() if c > 1]
        assert not evaluated_twice, (
            f"{len(evaluated_twice)} nodes evaluated more than once")


class TestErrors:
    def test_partial_function_error_propagates(self):
        from repro.bench.workloads import numbers_dataset
        db = Connection(catalog=numbers_dataset(6), parallel_bundles=True)
        nums = db.table("nums")
        bad = pyq("[n // (n - n) for n in nums]", nums=nums)
        with pytest.raises(PartialFunctionError):
            db.run(bad)

    def test_sqlite_udf_error_propagates_parallel(self, orders_catalog):
        db = Connection(backend="sqlite", catalog=orders_catalog,
                        parallel_bundles=True)
        customers = db.table("customers")
        bad = pyq("[cid // (cid - cid) for (cid, name, region) in "
                  "customers]", customers=customers)
        with pytest.raises(PartialFunctionError):
            db.run(bad)


class TestWorkerSizing:
    def test_default_workers_bounds(self):
        assert default_workers(1) == 1
        assert 1 <= default_workers(8) <= 8

    def test_pool_reused_across_bundles(self, orders_catalog):
        backend = EngineBackend()
        db = Connection(backend=backend, catalog=orders_catalog,
                        parallel_bundles=True)
        db.run(nested_report(db))
        pool_first = backend._pool
        db.run(nested_report(db))
        assert backend._pool is pool_first
        assert pool_first is not None
