"""The sharded SQL executor: scatter/gather equivalence, transparent
fallback, failure propagation, and the observability surface.

The correctness contract under test: ``Connection(shards=n)`` returns
*exactly* what the single-image SQLite backend returns -- same values,
same order -- whether a query scatters (``S400``) or falls back
(``F40x``), and failures inside a shard surface either as the original
semantic error (transparent) or as a :class:`ShardError` naming the
failing shard (infrastructure).
"""

import pytest

from repro import (
    Connection,
    PartialFunctionError,
    QTypeError,
    ShardError,
    fmap,
    to_q,
)
from repro.backends.sql import ShardedSQLiteBackend
from repro.bench.table1 import running_example_query
from repro.bench.workloads import avalanche_dataset, paper_dataset
from repro.runtime import Catalog


def nested_probe(db):
    """A nested query whose inner member shards (code ``S400``): its
    ``iter`` derives from the stable base-scan surrogate, so the filter
    pushes through the surrogate-regeneration self-join."""
    features = db.table("features")
    return fmap(
        lambda f: features.filter(lambda g: g[0] == f[0]).map(
            lambda g: g[1]),
        db.table("facilities"))


def numbers_catalog(with_zero=False):
    cat = Catalog()
    cat.create_table("outers", [("k", int)], [(i,) for i in range(1, 9)])
    rows = [(i, i) for i in range(1, 9)]
    if with_zero:
        rows.append((5, 0))
    cat.create_table("inners", [("k", int), ("v", int)], rows)
    return cat


def division_probe(db):
    inners = db.table("inners")
    return fmap(
        lambda a: inners.filter(lambda b: b[0] == a).map(
            lambda b: to_q(100) // b[1]),
        db.table("outers"))


@pytest.fixture(scope="module")
def avalanche():
    return avalanche_dataset(30)


class TestScatterGather:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_rows_identical_to_single_image(self, avalanche, shards):
        single = Connection(backend="sqlite", catalog=avalanche)
        sharded = Connection(shards=shards, catalog=avalanche)
        expected = single.run(nested_probe(single))
        assert sharded.run(nested_probe(sharded)) == expected
        # order is part of the contract: the merge on (iter, pos) must
        # reproduce the nested list order exactly
        assert expected == sorted(expected, key=lambda g: g)

    def test_inner_query_actually_scatters(self, avalanche):
        sharded = Connection(shards=3, catalog=avalanche)
        report = sharded.explain(nested_probe(sharded))
        codes = [q.shard["code"] for q in report.queries]
        assert codes == ["F401", "S400"]
        assert report.queries[1].shard["fanout"] == 3
        assert report.queries[1].shard["coverage"] >= 0.25

    def test_fallback_is_transparent(self):
        # The running example's inner iter is itself a regenerated
        # surrogate referenced by the outer query, so the analysis must
        # refuse (the rank escapes) -- and results must still match.
        catalog = paper_dataset()
        single = Connection(backend="sqlite", catalog=catalog)
        sharded = Connection(shards=4, catalog=catalog)
        report = sharded.explain(running_example_query(sharded))
        assert all(not q.shard["shardable"] for q in report.queries)
        assert (single.run(running_example_query(single))
                == sharded.run(running_example_query(sharded)))

    def test_statement_accounting_counts_every_shard(self, avalanche):
        sharded = Connection(shards=3, catalog=avalanche)
        sharded.run(nested_probe(sharded))
        # Q1 falls back (1 statement), Q2 scatters (3 statements).
        assert sharded.backend.statements_executed == 4


class TestFailurePropagation:
    def test_semantic_error_passes_through_scatter(self):
        catalog = numbers_catalog(with_zero=True)
        sharded = Connection(shards=2, catalog=catalog)
        report = sharded.explain(division_probe(sharded))
        assert report.queries[1].shard["code"] == "S400"
        with pytest.raises(PartialFunctionError) as excinfo:
            sharded.run(division_probe(sharded))
        assert not isinstance(excinfo.value, ShardError)

    def test_infrastructure_failure_names_the_shard(self, avalanche):
        sharded = Connection(shards=2, catalog=avalanche)
        backend = sharded.backend
        original = backend._run_shard

        def failing(gen, query, catalog, k, qi, tracer):
            if k == 1:
                raise RuntimeError("injected shard crash")
            return original(gen, query, catalog, k, qi, tracer)

        backend._run_shard = failing
        with pytest.raises(ShardError) as excinfo:
            sharded.run(nested_probe(sharded))
        assert excinfo.value.shard == 1
        assert "shard 1" in str(excinfo.value)
        assert "injected shard crash" in str(excinfo.value)


class TestObservability:
    def test_describe_prepared_names_dialect_and_decision(self, avalanche):
        sharded = Connection(shards=2, catalog=avalanche)
        report = sharded.explain(nested_probe(sharded))
        fallback, scattered = (q.artifact for q in report.queries)
        for artifact in (fallback, scattered):
            assert "-- dialect sqlite (driver sqlite3" in artifact
        assert "-- shard decision: F401" in fallback
        assert "single-image fallback" in fallback
        assert "-- shard decision: S400" in scattered
        assert "fan-out 2" in scattered

    def test_render_includes_decision_lines(self, avalanche):
        sharded = Connection(shards=2, catalog=avalanche)
        text = str(sharded.explain(nested_probe(sharded)))
        assert "-- shard decision for Q1: F401" in text
        assert "-- shard decision for Q2: S400" in text

    def test_trace_has_one_span_per_shard(self, avalanche):
        sharded = Connection(shards=2, catalog=avalanche)
        sharded.run(nested_probe(sharded))
        trace = sharded.last_trace
        spans = [s for s in _walk(trace.root) if s.name == "execute"]
        shard_attrs = sorted(
            (s.attrs["query"], str(s.attrs["shard"])) for s in spans)
        # Q1 runs single-image (fallback span), Q2 fans out to 2 shards.
        assert shard_attrs == [(1, "fallback"), (2, "0"), (2, "1")]


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


class TestConfiguration:
    def test_backend_name_encodes_fanout(self):
        assert ShardedSQLiteBackend(4).name == "sqlite-x4"

    def test_shard_count_validated(self):
        with pytest.raises(ValueError):
            ShardedSQLiteBackend(0)

    def test_shards_require_sql_backend(self):
        with pytest.raises(QTypeError):
            Connection(backend="mil", shards=2)

    def test_shards_with_explicit_sqlite_backend(self, avalanche):
        conn = Connection(backend="sqlite", shards=2, catalog=avalanche)
        assert conn.backend.name == "sqlite-x2"

    def test_close_is_idempotent(self, avalanche):
        sharded = Connection(shards=2, catalog=avalanche)
        sharded.run(nested_probe(sharded))
        sharded.backend.close()
        sharded.backend.close()

    def test_partition_hints_validated(self, avalanche):
        from repro.errors import SchemaError
        avalanche.set_partition_hint("facilities", "cat")
        assert avalanche.partition_hint("facilities") == "cat"
        assert avalanche.partition_hint("features") is None
        with pytest.raises(SchemaError):
            avalanche.set_partition_hint("facilities", "nope")
