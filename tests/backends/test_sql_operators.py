"""Per-operator SQL generation: every algebra operator round-trips
through the SQL generator and SQLite with the same semantics the
in-memory engine gives it."""


from repro.algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Node,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    UnApp,
    UnionAll,
    schema_of,
)
from repro.backends.engine import Engine
from repro.backends.sql.backend import SQLiteBackend
from repro.backends.sql.generate import generate_sql
from repro.ftypes import BoolT, DoubleT, IntT, StringT
from repro.runtime import Catalog


def lt(rows, *cols):
    return LitTable(tuple(rows), tuple(cols))


NUMS = lt([(3,), (1,), (2,), (2,)], ("n", IntT))
PAIRS = lt([(1, "a"), (2, "b"), (2, "c")], ("k", IntT), ("s", StringT))


def both_ways(plan: Node):
    """Execute via the engine and via generated SQL; assert equal bags."""
    cols = tuple(schema_of(plan))
    engine_rel = Engine(Catalog()).execute(plan)
    idx = [engine_rel.col_index(c) for c in cols]
    engine_rows = sorted(tuple(r[i] for i in idx) for r in engine_rel.rows)

    backend = SQLiteBackend()
    backend._ensure_loaded(Catalog())
    gen = generate_sql(plan, cols, ())
    cursor = backend._conn.execute(gen.text)
    sql_rows = sorted(tuple(row) for row in cursor.fetchall())
    # SQLite returns ints for booleans; normalize for comparison
    engine_rows = [tuple(int(v) if isinstance(v, bool) else v for v in r)
                   for r in engine_rows]
    assert sql_rows == engine_rows
    return sql_rows


class TestOperatorsOnSQLite:
    def test_littable(self):
        assert both_ways(NUMS) == [(1,), (2,), (2,), (3,)]

    def test_empty_littable(self):
        assert both_ways(lt([], ("n", IntT))) == []

    def test_attach_project_select(self):
        plan = Select(BinApp(Attach(NUMS, "k", 10, IntT), "lt", "n", "k",
                             "c"), "c")
        plan = Project(plan, (("out", "n"),))
        both_ways(plan)

    def test_distinct(self):
        assert both_ways(Distinct(NUMS)) == [(1,), (2,), (3,)]

    def test_rownum_with_partition(self):
        t = lt([(1, 9), (1, 3), (2, 5)], ("g", IntT), ("v", IntT))
        both_ways(RowNum(t, "pos", (("v", "asc"),), ("g",)))

    def test_rownum_desc(self):
        both_ways(RowNum(NUMS, "pos", (("n", "desc"),)))

    def test_dense_rank(self):
        assert both_ways(RowRank(NUMS, "rk", (("n", "asc"),))) == [
            (1, 1), (2, 2), (2, 2), (3, 3)]

    def test_cross(self):
        both_ways(Cross(NUMS, lt([(True,)], ("b", BoolT))))

    def test_eqjoin_multi_pair(self):
        left = lt([(1, "a"), (2, "b")], ("k", IntT), ("s", StringT))
        right = lt([(1, "a"), (2, "x")], ("j", IntT), ("t", StringT))
        assert both_ways(EqJoin(left, right, (("k", "j"), ("s", "t")))) == [
            (1, "a", 1, "a")]

    def test_semijoin_antijoin(self):
        right = lt([(2,)], ("j", IntT))
        assert both_ways(SemiJoin(NUMS, right, (("n", "j"),))) == [
            (2,), (2,)]
        assert both_ways(AntiJoin(NUMS, right, (("n", "j"),))) == [
            (1,), (3,)]

    def test_union_all(self):
        both_ways(UnionAll(NUMS, NUMS))

    def test_group_aggr_all_functions(self):
        t = lt([(1, 2), (1, 4), (2, 6)], ("g", IntT), ("v", IntT))
        plan = GroupAggr(t, ("g",), (("sum", "v", "s"),
                                     ("count", None, "c"),
                                     ("min", "v", "lo"),
                                     ("max", "v", "hi"),
                                     ("avg", "v", "m")))
        assert both_ways(plan) == [(1, 6, 2, 2, 4, 3.0), (2, 6, 1, 6, 6, 6.0)]

    def test_bool_aggregates(self):
        t = BinApp(lt([(1, 2), (1, 4), (2, 6)],
                      ("g", IntT), ("v", IntT)),
                   "gt", "v", Const(3, IntT), "b")
        plan = GroupAggr(t, ("g",), (("all", "b", "a"), ("any", "b", "o")))
        both_ways(plan)

    def test_scalar_operator_matrix(self):
        plan = NUMS
        for op, rhs in (("add", Const(1, IntT)), ("sub", Const(1, IntT)),
                        ("mul", Const(3, IntT)), ("idiv", Const(2, IntT)),
                        ("mod", Const(2, IntT)), ("min", Const(2, IntT)),
                        ("max", Const(2, IntT))):
            plan = BinApp(plan, op, "n", rhs, f"c_{op}")
        both_ways(plan)

    def test_comparison_matrix(self):
        plan = NUMS
        for op in ("eq", "ne", "lt", "le", "gt", "ge"):
            plan = BinApp(plan, op, "n", Const(2, IntT), f"c_{op}")
        both_ways(plan)

    def test_unapps(self):
        base = BinApp(NUMS, "gt", "n", Const(1, IntT), "b")
        plan = UnApp(UnApp(UnApp(base, "not", "b", "nb"),
                           "neg", "n", "m"), "to_double", "n", "d")
        both_ways(plan)

    def test_real_division(self):
        t = lt([(1.0,), (3.0,)], ("x", DoubleT))
        plan = BinApp(t, "div", "x", Const(2.0, DoubleT), "h")
        assert both_ways(plan) == [(1.0, 0.5), (3.0, 1.5)]

    def test_string_escaping(self):
        t = lt([("o'hare",)], ("s", StringT))
        plan = BinApp(t, "eq", "s", Const("o'hare", StringT), "c")
        both_ways(plan)
