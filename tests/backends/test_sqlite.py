"""SQL:1999 generation and the SQLite executor.

Includes the appendix golden test: the running example compiles to a
bundle of exactly two SQL statements whose shapes match the paper's --
a duplicate-elimination binding (DISTINCT) driving the outer query and
DENSE_RANK bindings carrying surrogates in the inner query.
"""

import datetime

import pytest

from repro import Connection, PartialFunctionError, fmap, to_q
from repro.backends.sql import SQLiteBackend, render_literal, sql_type
from repro.bench.table1 import running_example_query
from repro.ftypes import BoolT, DateT, DoubleT, IntT, StringT, TimeT


@pytest.fixture()
def db(paper_catalog):
    return Connection(backend="sqlite", catalog=paper_catalog)


def bundle_sql(db, q):
    compiled = db.compile(q)
    backend = db.backend
    return [backend.generate(query).text
            for query in compiled.bundle.queries]


class TestAppendixGolden:
    def test_running_example_is_two_statements(self, db):
        sqls = bundle_sql(db, running_example_query(db))
        assert len(sqls) == 2

    def test_outer_query_has_distinct_binding(self, db):
        outer, _inner = bundle_sql(db, running_example_query(db))
        assert "SELECT DISTINCT" in outer

    def test_queries_use_rank_operators(self, db):
        outer, inner = bundle_sql(db, running_example_query(db))
        assert "DENSE_RANK() OVER" in inner
        assert "ROW_NUMBER() OVER" in outer

    def test_statements_are_cte_shaped_and_ordered(self, db):
        for sql in bundle_sql(db, running_example_query(db)):
            assert sql.startswith("WITH")
            assert "t0000" in sql
            assert sql.rstrip().endswith(";")
            assert "ORDER BY" in sql

    def test_result_matches_other_backends(self, db, paper_catalog):
        engine = Connection(backend="engine", catalog=paper_catalog)
        q1 = running_example_query(db)
        q2 = running_example_query(engine)
        assert db.run(q1) == engine.run(q2)


class TestDialect:
    def test_sql_types(self):
        assert sql_type(IntT) == "INTEGER"
        assert sql_type(BoolT) == "INTEGER"
        assert sql_type(DoubleT) == "REAL"
        assert sql_type(StringT) == "TEXT"
        assert sql_type(DateT) == "TEXT"

    def test_literals(self):
        assert render_literal(True, BoolT) == "1"
        assert render_literal(3, IntT) == "3"
        assert render_literal("o'hare", StringT) == "'o''hare'"
        assert render_literal(datetime.date(2009, 6, 29), DateT) == \
            "'2009-06-29'"
        assert render_literal(datetime.time(12, 30), TimeT) == "'12:30:00'"


class TestExecution:
    def test_roundtrip_all_atom_types(self):
        db = Connection(backend="sqlite")
        value = [(True, 1, 2.5, "x",
                  datetime.date(2020, 2, 2), datetime.time(23, 59))]
        assert db.run(to_q(value)) == value

    def test_integer_division_floors(self):
        # sqlite's native '/' truncates; the FERRY_IDIV UDF must floor
        db = Connection(backend="sqlite")
        assert db.run(fmap(lambda x: x // 2, to_q([-7, 7]))) == [-4, 3]

    def test_mod_sign(self):
        db = Connection(backend="sqlite")
        assert db.run(fmap(lambda x: x % 3, to_q([-7, 7]))) == [2, 1]

    def test_division_by_zero_raises(self):
        db = Connection(backend="sqlite")
        with pytest.raises(PartialFunctionError):
            db.run(fmap(lambda x: x // (x - x), to_q([1])))

    def test_statement_accounting(self, paper_catalog):
        db = Connection(backend="sqlite", catalog=paper_catalog)
        backend: SQLiteBackend = db.backend
        before = backend.statements_executed
        db.run(running_example_query(db))
        assert backend.statements_executed - before == 2

    def test_catalog_reload_on_version_change(self):
        db = Connection(backend="sqlite")
        db.create_table("t", [("n", int)], [(1,)])
        q = db.table("t")
        assert db.run(q) == [1]
        db.catalog.drop_table("t")
        db.create_table("t", [("n", int)], [(5,), (6,)])
        assert db.run(db.table("t")) == [5, 6]

    def test_empty_table(self):
        db = Connection(backend="sqlite")
        db.create_table("t", [("n", int)], [])
        assert db.run(db.table("t")) == []
