"""The HaskellDB and LINQ baselines: avalanche counts and (lack of)
order guarantees, versus Ferry's constant-size bundle."""

import pytest

from repro import Connection
from repro.baselines.haskelldb import (
    HaskellDBSession,
    get_cat_features,
    get_cats,
)
from repro.baselines.haskelldb import run_running_example as hdb_run
from repro.baselines.linq import LinqSession
from repro.baselines.linq import run_running_example as linq_run
from repro.bench.table1 import run_dsh, running_example_query
from repro.bench.workloads import avalanche_dataset
from repro.errors import ExecutionError


class TestHaskellDBQueryBuilder:
    def test_get_cats_sql(self, paper_catalog):
        session = HaskellDBSession(paper_catalog)
        sql = get_cats(session).sql()
        assert sql.startswith("SELECT DISTINCT")
        assert '"facilities"' in sql

    def test_get_cat_features_sql(self, paper_catalog):
        session = HaskellDBSession(paper_catalog)
        sql = get_cat_features(session, "LIB").sql()
        assert "WHERE" in sql
        assert "'LIB'" in sql

    def test_unknown_column_rejected(self, paper_catalog):
        session = HaskellDBSession(paper_catalog)
        q = session.query()
        facs = q.table("facilities")
        with pytest.raises(ExecutionError):
            facs.nonexistent

    def test_projection_required(self, paper_catalog):
        session = HaskellDBSession(paper_catalog)
        q = session.query()
        q.table("facilities")
        with pytest.raises(ExecutionError):
            q.sql()

    def test_string_constants_escaped(self, paper_catalog):
        session = HaskellDBSession(paper_catalog)
        q = session.query()
        facs = q.table("facilities")
        q.restrict(facs.cat == "o'brien")
        q.project(cat=facs.cat)
        assert "'o''brien'" in q.sql()


class TestAvalancheCounts:
    def test_haskelldb_issues_one_plus_n(self):
        for n in (3, 7):
            catalog = avalanche_dataset(n)
            session = HaskellDBSession(catalog)
            hdb_run(session)
            assert session.statements_executed == 1 + n

    def test_dsh_always_issues_two(self):
        for n in (3, 7, 25):
            _, count = run_dsh(avalanche_dataset(n))
            assert count == 2

    def test_linq_issues_even_more(self):
        catalog = avalanche_dataset(4)
        session = LinqSession(catalog)
        linq_run(session)
        assert session.statements_executed > 1 + 4


class TestResultAgreement:
    def test_haskelldb_matches_dsh_content(self, paper_catalog):
        session = HaskellDBSession(paper_catalog)
        hdb = hdb_run(session)
        db = Connection(catalog=paper_catalog)
        dsh = db.run(running_example_query(db))
        assert {k for k, _ in hdb} == {k for k, _ in dsh}
        # HaskellDB gives no order guarantee inside groups: compare as sets
        assert ({k: frozenset(v) for k, v in hdb}
                == {k: frozenset(v) for k, v in dsh})

    def test_linq_loses_order(self, paper_catalog):
        ordered = LinqSession(paper_catalog, shuffle=False)
        shuffled = LinqSession(paper_catalog, shuffle=True)
        a = linq_run(ordered)
        b = linq_run(shuffled)
        assert ({k: frozenset(v) for k, v in a}
                == {k: frozenset(v) for k, v in b})

    def test_dsh_order_is_deterministic(self, paper_catalog):
        db1 = Connection(catalog=paper_catalog)
        db2 = Connection(backend="mil", catalog=paper_catalog)
        assert (db1.run(running_example_query(db1))
                == db2.run(running_example_query(db2)))


class TestAvalancheLint:
    """The F302 observed-statement lint: baselines get flagged, the Ferry
    bundle passes the verifier with all stages green."""

    def test_haskelldb_is_flagged(self):
        catalog = avalanche_dataset(5)
        session = HaskellDBSession(catalog)
        hdb_run(session)
        db = Connection(catalog=catalog)
        ty = running_example_query(db).ty
        diags = session.avalanche_diagnostics(ty)
        assert [d.code for d in diags] == ["F302"]
        assert "6 statements" in diags[0].message

    def test_linq_is_flagged(self):
        catalog = avalanche_dataset(5)
        session = LinqSession(catalog)
        linq_run(session)
        db = Connection(catalog=catalog)
        diags = session.avalanche_diagnostics(running_example_query(db).ty)
        assert [d.code for d in diags] == ["F302"]

    def test_ferry_bundle_is_verified_not_flagged(self):
        from repro.analysis import avalanche_lint

        catalog = avalanche_dataset(5)
        db = Connection(catalog=catalog)
        query = running_example_query(db)
        compiled = db.compile(query)
        assert compiled.bundle.verified
        db.run(query)
        assert avalanche_lint(query.ty, compiled.query_count) == []

    def test_under_budget_sessions_stay_clean(self):
        catalog = avalanche_dataset(3)
        session = HaskellDBSession(catalog)
        session.do_query(get_cats(session))
        db = Connection(catalog=catalog)
        # one statement against a two-[.] type: within the static bound
        assert session.avalanche_diagnostics(
            running_example_query(db).ty) == []
