"""Shared fixtures: the paper's demo dataset and per-backend connections."""

from __future__ import annotations

import os

import pytest

from repro import Connection
from repro.bench.workloads import numbers_dataset, paper_dataset
from repro.runtime import Catalog
from repro.semantics import Interpreter

BACKENDS = ("engine", "sqlite", "mil")

#: Fan-out of the sharded-SQL differential leg.  CI runs a dedicated
#: tier-1 pass with ``FERRY_SHARDS=4``; the default keeps local runs
#: cheap while still exercising scatter, gather, and fallback.
SHARDS = int(os.environ.get("FERRY_SHARDS", "2"))


def pytest_collection_modifyitems(config, items):
    """Every test without an explicit suite marker is tier-1, so CI can
    select the fast deterministic suite with ``-m tier1`` (equivalently
    ``-m "not property and not bench"``)."""
    for item in items:
        if ("property" not in item.keywords
                and "bench" not in item.keywords):
            item.add_marker(pytest.mark.tier1)


@pytest.fixture()
def paper_catalog() -> Catalog:
    """The Figure 1 tables (facilities / features / meanings)."""
    return paper_dataset()


@pytest.fixture()
def paper_db(paper_catalog) -> Connection:
    """Default (engine) connection over the paper dataset."""
    return Connection(catalog=paper_catalog)


@pytest.fixture(params=BACKENDS)
def any_backend_db(request, paper_catalog) -> Connection:
    """The paper dataset on each backend in turn."""
    return Connection(backend=request.param, catalog=paper_catalog)


@pytest.fixture()
def nums_db() -> Connection:
    """A small shuffled-integers table (0..9)."""
    return Connection(catalog=numbers_dataset(10))


@pytest.fixture()
def oracle(paper_catalog) -> Interpreter:
    """The reference interpreter over the paper dataset."""
    return Interpreter(paper_catalog)


def run_all_ways(q, catalog: Catalog):
    """Evaluate a query through the oracle and every backend; assert they
    agree and return the common value (the differential-testing core)."""
    expected = Interpreter(catalog).run(q.exp)
    for backend in BACKENDS:
        actual = Connection(backend=backend, catalog=catalog).run(q)
        assert actual == expected, (
            f"backend {backend} disagrees with the reference semantics:\n"
            f"  expected {expected!r}\n  actual   {actual!r}")
    # the optimizer must not change results either
    raw = Connection(backend="engine", catalog=catalog, optimize=False).run(q)
    assert raw == expected
    # nor must intra-bundle parallelism (same plans, threaded fan-out)
    par = Connection(backend="engine", catalog=catalog,
                     parallel_bundles=True).run(q)
    assert par == expected, "parallel bundle execution diverged"
    # nor must partition-parallel SQL (scatter on iter, or transparent
    # single-image fallback when the analysis refuses to shard)
    sharded = Connection(shards=SHARDS, catalog=catalog).run(q)
    assert sharded == expected, "sharded SQL execution diverged"
    return expected
