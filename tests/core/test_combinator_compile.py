"""Per-combinator differential tests: every list-prelude operation is
compiled and executed on every backend and must agree exactly -- values
*and* order -- with the reference interpreter."""

import pytest

from repro import (
    all_q,
    and_q,
    any_q,
    append,
    break_q,
    concat,
    concat_map,
    cond,
    cons,
    drop,
    drop_while,
    elem,
    favg,
    ffilter,
    fmap,
    fsum,
    group_with,
    head,
    index,
    init,
    last,
    length,
    max_q,
    maximum_q,
    min_q,
    minimum_q,
    nil,
    not_elem,
    nub,
    null,
    number,
    or_q,
    reverse,
    singleton,
    snoc,
    sort_with,
    sort_with_desc,
    span_q,
    split_at,
    tail,
    take,
    take_while,
    the,
    to_q,
    tup,
    unzip_q,
    zip3_q,
    zip_q,
    zip_with,
)
from repro.bench.workloads import numbers_dataset
from repro.ftypes import IntT

from ..conftest import run_all_ways


@pytest.fixture(scope="module")
def catalog():
    return numbers_dataset(6)


XS = to_q([3, 1, 4, 1, 5])
YS = to_q([10, 20, 30])
EMPTY = nil(IntT)
NESTED = to_q([[2, 1], [], [3]])
PAIRS = to_q([(2, "b"), (1, "a"), (2, "a")])


def check(q, catalog):
    return run_all_ways(q, catalog)


class TestMapFilter:
    def test_map(self, catalog):
        assert check(fmap(lambda x: x * 2 + 1, XS), catalog) == [7, 3, 9, 3, 11]

    def test_map_over_empty(self, catalog):
        assert check(fmap(lambda x: x * 2, EMPTY), catalog) == []

    def test_map_to_tuples(self, catalog):
        check(fmap(lambda x: tup(x, x % 2 == 0), XS), catalog)

    def test_map_to_nested_lists(self, catalog):
        check(fmap(lambda x: take(x, YS), XS), catalog)

    def test_filter(self, catalog):
        assert check(ffilter(lambda x: x > 2, XS), catalog) == [3, 4, 5]

    def test_filter_all_out(self, catalog):
        assert check(ffilter(lambda x: x > 99, XS), catalog) == []

    def test_filter_nested_elements(self, catalog):
        check(ffilter(lambda l: length(l) > 0, NESTED), catalog)

    def test_map_captures_outer_scope(self, catalog):
        q = fmap(lambda x: fmap(lambda y: x * 10 + y, YS), XS)
        check(q, catalog)


class TestConcat:
    def test_concat(self, catalog):
        assert check(concat(NESTED), catalog) == [2, 1, 3]

    def test_concat_map(self, catalog):
        q = concat_map(lambda x: to_q([0]).map(lambda z: x), XS)
        assert check(q, catalog) == [3, 1, 4, 1, 5]

    def test_concat_map_varying_lengths(self, catalog):
        check(concat_map(lambda x: take(x, YS), XS), catalog)


class TestOrderSensitive:
    def test_sort_with(self, catalog):
        assert check(sort_with(lambda x: x, XS), catalog) == [1, 1, 3, 4, 5]

    def test_sort_with_stability(self, catalog):
        check(sort_with(lambda p: p[0], PAIRS), catalog)

    def test_sort_with_desc(self, catalog):
        check(sort_with_desc(lambda p: p[0], PAIRS), catalog)

    def test_sort_with_tuple_key(self, catalog):
        check(sort_with(lambda p: tup(p[1], p[0]), PAIRS), catalog)

    def test_reverse(self, catalog):
        assert check(reverse(XS), catalog) == [5, 1, 4, 1, 3]

    def test_number(self, catalog):
        check(number(reverse(XS)), catalog)

    def test_nub(self, catalog):
        assert check(nub(XS), catalog) == [3, 1, 4, 5]

    def test_nub_on_tuples(self, catalog):
        check(nub(PAIRS), catalog)


class TestGrouping:
    def test_group_with(self, catalog):
        assert check(group_with(lambda x: x % 2, XS), catalog) == [
            [4], [3, 1, 1, 5]]

    def test_group_with_string_keys(self, catalog):
        check(group_with(lambda p: p[1], PAIRS), catalog)

    def test_group_then_aggregate(self, catalog):
        q = fmap(lambda g: tup(the(fmap(lambda p: p[1], g)),
                               fsum(fmap(lambda p: p[0], g))),
                 group_with(lambda p: p[1], PAIRS))
        assert check(q, catalog) == [("a", 3), ("b", 2)]


class TestElementAccess:
    def test_head_last_the(self, catalog):
        assert check(head(XS), catalog) == 3
        assert check(last(XS), catalog) == 5
        assert check(the(to_q([7, 7])), catalog) == 7

    def test_head_of_nested(self, catalog):
        assert check(head(NESTED), catalog) == [2, 1]
        assert check(last(NESTED), catalog) == [3]

    def test_index(self, catalog):
        assert check(index(XS, 2), catalog) == 4
        assert check(index(NESTED, to_q(2)), catalog) == [3]

    def test_tail_init(self, catalog):
        assert check(tail(XS), catalog) == [1, 4, 1, 5]
        assert check(init(XS), catalog) == [3, 1, 4, 1]

    def test_tail_of_nested(self, catalog):
        check(tail(NESTED), catalog)


class TestSlicing:
    def test_take_drop(self, catalog):
        assert check(take(2, XS), catalog) == [3, 1]
        assert check(drop(2, XS), catalog) == [4, 1, 5]

    def test_take_drop_clamp(self, catalog):
        assert check(take(99, XS), catalog) == [3, 1, 4, 1, 5]
        assert check(drop(99, XS), catalog) == []

    def test_take_computed_count(self, catalog):
        check(fmap(lambda x: take(x, YS), XS), catalog)

    def test_split_at(self, catalog):
        assert check(split_at(2, XS), catalog) == ([3, 1], [4, 1, 5])

    def test_take_while_drop_while(self, catalog):
        assert check(take_while(lambda x: x > 2, XS), catalog) == [3]
        assert check(drop_while(lambda x: x > 2, XS), catalog) == [1, 4, 1, 5]

    def test_span_break(self, catalog):
        check(span_q(lambda x: x % 2 == 1, XS), catalog)
        check(break_q(lambda x: x > 3, XS), catalog)


class TestZips:
    def test_zip(self, catalog):
        assert check(zip_q(XS, YS), catalog) == [(3, 10), (1, 20), (4, 30)]

    def test_zip_with(self, catalog):
        assert check(zip_with(lambda a, b: a + b, XS, YS), catalog) == [
            13, 21, 34]

    def test_zip3(self, catalog):
        check(zip3_q(XS, YS, reverse(XS)), catalog)

    def test_unzip(self, catalog):
        assert check(unzip_q(PAIRS), catalog) == ([2, 1, 2], ["b", "a", "a"])


class TestBuilding:
    def test_append(self, catalog):
        assert check(append(XS, YS), catalog) == [3, 1, 4, 1, 5, 10, 20, 30]

    def test_append_nested(self, catalog):
        check(append(NESTED, to_q([[9]])), catalog)

    def test_cons_snoc_singleton(self, catalog):
        assert check(cons(0, XS), catalog) == [0, 3, 1, 4, 1, 5]
        assert check(snoc(XS, 9), catalog) == [3, 1, 4, 1, 5, 9]
        assert check(singleton(7), catalog) == [7]

    def test_cons_nested_element(self, catalog):
        check(cons(to_q([8, 9]), NESTED), catalog)


class TestAggregates:
    def test_numeric(self, catalog):
        assert check(fsum(XS), catalog) == 14
        assert check(favg(to_q([1.0, 2.0])), catalog) == 1.5
        assert check(maximum_q(XS), catalog) == 5
        assert check(minimum_q(XS), catalog) == 1

    def test_double_sum(self, catalog):
        assert check(fsum(to_q([0.5, 0.25])), catalog) == 0.75

    def test_length_null(self, catalog):
        assert check(length(XS), catalog) == 5
        assert check(null(EMPTY), catalog) is True
        assert check(null(XS), catalog) is False

    def test_defaults_on_empty(self, catalog):
        assert check(fsum(EMPTY), catalog) == 0
        assert check(length(EMPTY), catalog) == 0
        assert check(and_q(fmap(lambda x: x > 0, EMPTY)), catalog) is True
        assert check(or_q(fmap(lambda x: x > 0, EMPTY)), catalog) is False

    def test_lifted_aggregates(self, catalog):
        # aggregates inside map: per-iteration groups, with defaults for
        # iterations whose list is empty
        q = fmap(lambda x: fsum(ffilter(lambda y: y > x, YS)), XS)
        check(q, catalog)

    def test_quantifiers(self, catalog):
        assert check(all_q(lambda x: x > 0, XS), catalog) is True
        assert check(any_q(lambda x: x > 4, XS), catalog) is True

    def test_membership(self, catalog):
        assert check(elem(4, XS), catalog) is True
        assert check(not_elem(9, XS), catalog) is True


class TestConditionals:
    def test_scalar_cond(self, catalog):
        q = fmap(lambda x: cond(x % 2 == 0, x * 10, -x), XS)
        assert check(q, catalog) == [-3, -1, 40, -1, -5]

    def test_list_cond(self, catalog):
        q = fmap(lambda x: cond(x > 2, take(2, YS), nil(IntT)), XS)
        check(q, catalog)

    def test_cond_with_nested_branches(self, catalog):
        q = cond(to_q(True), NESTED, to_q([[7]]))
        assert check(q, catalog) == [[2, 1], [], [3]]

    def test_scalar_arithmetic_binops(self, catalog):
        q = fmap(lambda x: (x + 1) * 2 - x % 3, XS)
        check(q, catalog)

    def test_min_max(self, catalog):
        check(fmap(lambda x: min_q(x, 3), XS), catalog)
        check(fmap(lambda x: max_q(x, 3), XS), catalog)


class TestTablesInQueries:
    def test_table_scan(self, catalog):
        from repro import table
        q = table("nums", {"n": int})
        assert check(q, catalog) == [0, 1, 2, 3, 4, 5]

    def test_correlated_filter_on_table(self, catalog):
        # exercises the decorrelation rule
        from repro import table
        nums = table("nums", {"n": int})
        q = fmap(lambda x: ffilter(lambda y: y == x % 3, nums), XS)
        check(q, catalog)

    def test_decorrelated_with_rest_conjuncts(self, catalog):
        from repro import table
        nums = table("nums", {"n": int})
        q = fmap(lambda x: ffilter(lambda y: (y % 3 == x % 3) & (y > 1),
                                   nums), XS)
        check(q, catalog)
