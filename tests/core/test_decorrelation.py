"""The decorrelation (join-graph isolation) rule and guard scheduling."""

import pytest

from repro import Connection, ffilter, fmap, table
from repro.frontend.comprehensions import parser as P
from repro.frontend.comprehensions.desugar import (
    FusedGen,
    _conjuncts,
    _schedule_guards,
)
from repro.semantics import Interpreter


@pytest.fixture()
def db():
    conn = Connection()
    conn.create_table("t", [("k", int), ("v", str)],
                      [(1, "a"), (2, "b"), (1, "c"), (3, "d")])
    conn.create_table("nums", [("n", int)], [(i,) for i in range(5)])
    return conn


class TestGuardScheduling:
    def parse(self, src):
        return P.parse_comprehension(src).quals

    def test_conjunct_split(self):
        expr = P.parse_expression("a and b and c")
        assert len(_conjuncts(expr)) == 3

    def test_single_generator_guard_fused(self):
        quals = _schedule_guards(self.parse("[x | x <- xs, x > 1]"))
        (gen,) = quals
        assert isinstance(gen, FusedGen)
        assert len(gen.fused) == 1

    def test_multi_generator_guard_stays_after(self):
        quals = _schedule_guards(self.parse(
            "[x | x <- xs, y <- ys, x == y]"))
        assert isinstance(quals[0], FusedGen) and not quals[0].fused
        assert isinstance(quals[1], FusedGen) and not quals[1].fused
        assert isinstance(quals[2], P.PGuard)

    def test_mixed_guard_splits_across_generators(self):
        quals = _schedule_guards(self.parse(
            "[x | x <- xs, y <- ys, x > 1 and y > 2 and x == y]"))
        assert quals[0].fused and len(quals[0].fused) == 1   # x > 1
        assert quals[1].fused and len(quals[1].fused) == 1   # y > 2
        assert isinstance(quals[2], P.PGuard)                # x == y

    def test_guard_never_crosses_group_by(self):
        quals = _schedule_guards(self.parse(
            "[the(x) | x <- xs, then group by x, length(x) > 1]"))
        # the guard references x *after* grouping; it must stay there
        assert isinstance(quals[-1], P.PGuard)
        assert not quals[0].fused

    def test_free_variable_guard_fuses_into_generator(self):
        quals = _schedule_guards(self.parse("[v | (k, v) <- t, k == x]"))
        (gen,) = quals
        assert len(gen.fused) == 1


class TestDecorrelationSemantics:
    def test_correlated_filter_matches_oracle(self, db):
        t = db.table("t")
        q = fmap(lambda x: ffilter(lambda r: r[0] == x % 4, t),
                 db.table("nums"))
        oracle = Interpreter(db.catalog).run(q.exp)
        assert db.run(q) == oracle
        naive = Connection(catalog=db.catalog, decorrelate=False)
        assert naive.run(q) == oracle

    def test_constant_key_filter(self, db):
        t = db.table("t")
        q = ffilter(lambda r: r[0] == 1, t)
        assert db.run(q) == [(1, "a"), (1, "c")]

    def test_rest_conjuncts_applied(self, db):
        t = db.table("t")
        q = fmap(lambda x: ffilter(lambda r: (r[0] == 1) & (r[1] != "a"), t),
                 db.table("nums"))
        oracle = Interpreter(db.catalog).run(q.exp)
        assert db.run(q) == oracle

    def test_swapped_equality_sides(self, db):
        t = db.table("t")
        q = fmap(lambda x: ffilter(lambda r: x % 4 == r[0], t),
                 db.table("nums"))
        oracle = Interpreter(db.catalog).run(q.exp)
        assert db.run(q) == oracle

    def test_non_invariant_source_not_decorrelated(self, db):
        # inner source depends on the outer variable: rule must not apply,
        # and results must still be correct
        nums = db.table("nums")
        q = fmap(lambda x: ffilter(lambda y: y == x,
                                   nums.map(lambda z: z + x)), nums)
        oracle = Interpreter(db.catalog).run(q.exp)
        assert db.run(q) == oracle

    def test_running_example_agrees_across_modes(self):
        from repro.bench.table1 import running_example_query
        from repro.bench.workloads import paper_dataset
        results = []
        for mode in (True, False):
            db = Connection(catalog=paper_dataset(), decorrelate=mode)
            results.append(db.run(running_example_query(db)))
        assert results[0] == results[1]


class TestDecorrelationScaling:
    def test_linear_not_quadratic(self):
        """Row counts through the decorrelated plan grow linearly with the
        category count (the naive plan is quadratic)."""
        import time
        from repro.bench.table1 import run_dsh
        from repro.bench.workloads import avalanche_dataset

        def cost(n):
            catalog = avalanche_dataset(n)
            start = time.perf_counter()
            run_dsh(catalog, "engine")
            return time.perf_counter() - start

        small, large = cost(60), cost(240)
        # 4x data; quadratic would be ~16x -- allow generous noise
        assert large < small * 11
