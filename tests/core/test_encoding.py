"""Golden tests for the relational encodings of Figure 3.

(a) a flat ordered list becomes a table ``pos | item1..n`` (here with the
    leading ``iter`` column of the loop-lifted form, constant 1 at top
    level);
(b) a nested list becomes a bundle of two queries: Q1 encodes the outer
    list with surrogate keys, Q2 all inner lists keyed by those
    surrogates; empty inner lists simply do not appear in Q2.
"""

import pytest

from repro import Connection, to_q
from repro.backends.engine import EngineBackend
from repro.core import NestRef, compile_exp
from repro.optimizer import optimize_bundle
from repro.runtime import Catalog


def execute(bundle):
    result = EngineBackend().execute_bundle(optimize_bundle(bundle),
                                            Catalog())
    return result.rows


class TestFig3aFlatList:
    def test_pos_encodes_order(self):
        bundle = compile_exp(to_q([30, 10, 20]).exp)
        assert bundle.size == 1
        (rows,) = execute(bundle)
        assert rows == [(1, 1, 30), (1, 2, 10), (1, 3, 20)]

    def test_tuples_widen_the_row(self):
        bundle = compile_exp(to_q([(1, "a"), (2, "b")]).exp)
        (rows,) = execute(bundle)
        assert rows == [(1, 1, 1, "a"), (1, 2, 2, "b")]

    def test_nested_tuple_flattened(self):
        # ((v1, v2), v3) is represented like its flat variant (Section 3.2)
        bundle = compile_exp(to_q([((1, 2), 3)]).exp)
        (rows,) = execute(bundle)
        assert rows == [(1, 1, 1, 2, 3)]


class TestFig3bNestedList:
    def test_two_queries_with_surrogates(self):
        value = [[11, 12], [], [31]]
        bundle = compile_exp(to_q(value).exp)
        assert bundle.size == 2
        outer, inner = execute(bundle)
        # Q1: outer list of three elements, items are surrogates
        assert [(r[0], r[1]) for r in outer] == [(1, 1), (1, 2), (1, 3)]
        surrogates = [r[2] for r in outer]
        assert len(set(surrogates)) == 3
        # Q2: inner rows grouped by surrogate; the empty inner list's
        # surrogate does not appear
        by_surr = {}
        for it, pos, item in inner:
            by_surr.setdefault(it, []).append(item)
        assert by_surr.get(surrogates[0]) == [11, 12]
        assert surrogates[1] not in by_surr
        assert by_surr.get(surrogates[2]) == [31]

    def test_ref_tree_points_at_inner_query(self):
        bundle = compile_exp(to_q([[1]]).exp)
        assert isinstance(bundle.root_ref, NestRef)
        assert bundle.root_ref.query == 1

    def test_depth_three_bundle(self):
        bundle = compile_exp(to_q([[[1], [2]], [[3]]]).exp)
        assert bundle.size == 3
        q1, q2, q3 = execute(bundle)
        assert len(q1) == 2   # two middle lists
        assert len(q2) == 3   # three leaf lists
        assert len(q3) == 3   # three atoms


class TestOrderPreservation:
    """List order survives the relational round trip (Section 4.1)."""

    @pytest.mark.parametrize("value", [
        [3, 1, 2],
        [[2, 1], [3]],
        [("b", [2, 1]), ("a", [9])],
    ])
    def test_roundtrip(self, value):
        db = Connection()
        assert db.run(to_q(value)) == value
