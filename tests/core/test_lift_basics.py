"""Loop-lifting fundamentals: vector shapes, boxing, bundle sizes."""

import pytest

from repro import Connection, fmap, fsum, group_with, table, the, to_q, tup
from repro.core import (
    AtomLay,
    LiftCompiler,
    NestLay,
    TupleLay,
    compile_exp,
    layout_cols,
    shape_matches,
)
from repro.errors import CompilationError
from repro.expr import AppE, VarE
from repro.ftypes import IntT, ListT, StringT, TupleT, count_list_constructors


class TestVectorShapes:
    def compile(self, q):
        return LiftCompiler().compile_top(q.exp)

    def test_scalar_literal(self):
        vec = self.compile(to_q(42))
        assert isinstance(vec.layout, AtomLay)
        assert vec.layout.ty == IntT

    def test_tuple_layout(self):
        vec = self.compile(to_q((1, "a")))
        assert isinstance(vec.layout, TupleLay)
        assert len(layout_cols(vec.layout)) == 2

    def test_list_layout_matches_type(self):
        q = to_q([(1, [2, 3])])
        vec = self.compile(q)
        assert shape_matches(vec.layout, TupleT((IntT, ListT(IntT))))

    def test_nested_list_boxes(self):
        vec = self.compile(to_q([[1]]))
        assert isinstance(vec.layout, NestLay)

    def test_table_single_column_is_atom(self):
        vec = self.compile(table("t", {"n": int}))
        assert isinstance(vec.layout, AtomLay)

    def test_table_multi_column_tuple(self):
        vec = self.compile(table("t", [("a", int), ("b", str)]))
        assert isinstance(vec.layout, TupleLay)


class TestBundleSizes:
    """Avalanche safety: bundle size = # list constructors in the result
    type (Section 3.2)."""

    @pytest.mark.parametrize("q, expected", [
        (to_q([1, 2]), 1),
        (to_q([[1], [2]]), 2),
        (to_q([[[1]]]), 3),
        (to_q([(1, [2])]), 2),
        (to_q([([1], [2.0])]), 3),
    ])
    def test_list_results(self, q, expected):
        bundle = compile_exp(q.exp)
        assert bundle.size == expected
        assert bundle.size == count_list_constructors(q.ty)

    def test_running_example_type_gives_two(self):
        facs = table("facilities", [("fac", str), ("cat", str)])
        q = fmap(lambda g: tup(the(fmap(lambda r: r[0], g)),
                               fmap(lambda r: r[1], g)),
                 group_with(lambda r: r[0], facs))
        assert q.ty == ListT(TupleT((StringT, ListT(StringT))))
        assert compile_exp(q.exp).size == 2

    def test_scalar_result_is_one_query(self):
        assert compile_exp(fsum(to_q([1, 2])).exp).size == 1

    def test_bundle_size_independent_of_data(self):
        # same program, different instance sizes: identical bundles
        for n in (0, 1, 100):
            db = Connection()
            db.create_table("t", [("n", int)], [(i,) for i in range(n)])
            q = db.table("t").map(lambda x: db.table("t"))
            assert db.compile(q).query_count == 2


class TestCompilerErrors:
    def test_unbound_variable(self):
        with pytest.raises(CompilationError):
            LiftCompiler().compile_top(VarE("ghost", IntT))

    def test_unknown_builtin(self):
        bad = AppE("frobnicate", (to_q([1]).exp,), IntT)
        with pytest.raises(CompilationError):
            LiftCompiler().compile_top(bad)


class TestPlanValidity:
    def test_all_bundle_plans_validate(self):
        from repro.analysis import check_plan
        db = Connection()
        db.create_table("t", [("a", int), ("b", str)], [(1, "x")])
        q = group_with(lambda r: r[1],
                       db.table("t").filter(lambda r: r[0] > 0))
        for query in db.compile(q).bundle.queries:
            check_plan(query.plan)
