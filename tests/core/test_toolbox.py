"""Unit tests for the loop-lifting toolbox: boxing, merging, renaming,
environment lifting, and literal shredding."""

import pytest

from repro import to_q
from repro.algebra import LitTable, contains, node_count
from repro.analysis import check_plan
from repro.backends.engine import Engine
from repro.core import (
    AtomLay,
    LiftCompiler,
    NestLay,
    TupleLay,
    Vec,
    layout_col_types,
    layout_cols,
    nest_positions,
    relabel,
    shape_matches,
)
from repro.ftypes import BoolT, IntT, ListT, StringT, TupleT
from repro.runtime import Catalog


@pytest.fixture()
def comp():
    return LiftCompiler()


def rows_of(vec: Vec):
    rel = Engine(Catalog()).execute(vec.plan)
    i = rel.col_index(vec.iter_col)
    p = rel.col_index(vec.pos_col)
    items = [rel.col_index(c) for c in layout_cols(vec.layout)]
    return sorted(tuple([r[i], r[p]] + [r[j] for j in items])
                  for r in rel.rows)


class TestLayouts:
    def test_layout_cols_order(self):
        lay = TupleLay((AtomLay("a", IntT),
                        TupleLay((AtomLay("b", StringT),
                                  AtomLay("c", BoolT)))))
        assert layout_cols(lay) == ["a", "b", "c"]
        assert layout_col_types(lay) == [IntT, StringT, BoolT]

    def test_relabel_keeps_inner_vecs(self, comp):
        inner = comp.empty_vec(IntT)
        lay = NestLay("s", inner)
        out = relabel(lay, {"s": "t"})
        assert out.col == "t"
        assert out.inner is inner

    def test_nest_positions(self, comp):
        lay = TupleLay((AtomLay("a", IntT),
                        NestLay("s", comp.empty_vec(IntT))))
        assert [n.col for n in nest_positions(lay)] == ["s"]

    def test_shape_matches(self, comp):
        vec = comp.compile_top(to_q([(1, [True])]).exp)
        assert shape_matches(vec.layout, TupleT((IntT, ListT(BoolT))))
        assert not shape_matches(vec.layout, TupleT((IntT, IntT)))


class TestFreshRenaming:
    def test_as_fresh_renames_everything(self, comp):
        vec = comp.compile_top(to_q([(1, "a")]).exp)
        fresh = comp.as_fresh(vec)
        old = {vec.iter_col, vec.pos_col, *layout_cols(vec.layout)}
        new = {fresh.iter_col, fresh.pos_col, *layout_cols(fresh.layout)}
        assert old.isdisjoint(new)
        assert rows_of(vec) == rows_of(fresh)

    def test_self_join_via_as_fresh(self, comp):
        # the same vector used twice must not clash
        from repro.algebra import EqJoin
        vec = comp.compile_top(to_q([1, 2]).exp)
        other = comp.as_fresh(vec)
        join = EqJoin(vec.plan, other.plan,
                      ((vec.pos_col, other.pos_col),))
        check_plan(join)


class TestBoxing:
    def test_box_then_unbox_is_identity_on_rows(self, comp):
        vec = comp.compile_top(to_q([5, 6]).exp)
        boxed = comp.box(vec, comp.unit_loop())
        assert isinstance(boxed.layout, NestLay)
        unboxed = comp.unbox(boxed)
        assert rows_of(unboxed) == rows_of(vec)

    def test_unbox_requires_nest(self, comp):
        from repro.errors import CompilationError
        vec = comp.compile_top(to_q([5]).exp)
        with pytest.raises(CompilationError):
            comp.unbox(vec)


class TestMergeVecs:
    def test_flat_merge_orders_by_source(self, comp):
        a = comp.compile_top(to_q([1, 2]).exp)
        b = comp.compile_top(to_q([3]).exp)
        merged = comp.merge_vecs([a, b])
        assert rows_of(merged) == [(1, 1, 1), (1, 2, 2), (1, 3, 3)]

    def test_merge_single_is_noop(self, comp):
        a = comp.compile_top(to_q([1]).exp)
        assert comp.merge_vecs([a]) is a

    def test_nested_merge_regenerates_surrogates(self, comp):
        a = comp.compile_top(to_q([[1], [2]]).exp)
        b = comp.compile_top(to_q([[3]]).exp)
        merged = comp.merge_vecs([a, b])
        assert isinstance(merged.layout, NestLay)
        outer = rows_of(merged)
        surrogates = [r[2] for r in outer]
        assert len(set(surrogates)) == 3  # fresh and distinct


class TestLiteralShredding:
    def test_flat_literal_is_a_single_littable(self, comp):
        vec = comp.compile_top(to_q(list(range(100))).exp)
        assert contains(vec.plan, lambda n: isinstance(n, LitTable)
                        and len(n.rows) == 100)
        # plan depth stays tiny regardless of the literal's length
        assert node_count(vec.plan) < 10

    def test_nested_literal_one_table_per_level(self, comp):
        value = [[i, i + 1] for i in range(50)]
        vec = comp.compile_top(to_q(value).exp)
        assert node_count(vec.plan) < 10
        assert isinstance(vec.layout, NestLay)

    def test_shredded_empty_inner_lists(self, comp):
        vec = comp.compile_top(to_q([[1], [], [2]]).exp)
        outer = rows_of(vec)
        assert len(outer) == 3

    def test_tuple_with_nested_literal(self, comp):
        value = [(1, [True]), (2, [])]
        vec = comp.compile_top(to_q(value).exp)
        assert shape_matches(vec.layout, TupleT((IntT, ListT(BoolT))))

    def test_non_literal_lists_still_merge(self, comp):
        # a list literal with a computed element takes the merge path
        from repro import fmap
        q = fmap(lambda x: x, to_q([1]))  # non-literal piece
        from repro import append
        out = append(to_q([9]), q)
        vec = comp.compile_top(out.exp)
        assert rows_of(vec) == [(1, 1, 9), (1, 2, 1)]


class TestEnvLifting:
    def test_outer_variable_replicated_per_inner_iteration(self):
        from repro import fmap
        db_value = to_q([10, 20])
        q = fmap(lambda x: fmap(lambda y: x + y, to_q([1, 2])), db_value)
        comp = LiftCompiler()
        vec = comp.compile_top(q.exp)
        assert isinstance(vec.layout, NestLay)
        inner_rows = rows_of(vec.layout.inner)
        assert sorted(r[2] for r in inner_rows) == [11, 12, 21, 22]
