"""Figure 6: the structural correspondence between DPH's vectorised code
and DSH's loop-lifted algebra plan for sparse-vector multiplication.

The paper's table of correspondences:

* ``bpermuteP`` (bulk indexed lookup)  =>  relational equi-join over ``pos``
* ``*^`` (lifted multiplication)       =>  column-wise ``BinApp mul``
* ``sumP``                             =>  grouped aggregation ``sum``
"""

import pytest

from repro import Connection
from repro.algebra import BinApp, EqJoin, GroupAggr, contains
from repro.dph import (
    FIG6_SV,
    FIG6_V,
    dotp_comprehension,
    dotp_query,
    dotp_vectorised,
    from_list,
)


class TestAllThreeAgree:
    def test_fig6_concrete_value(self):
        # sv = [(1,0.1),(3,1.0),(4,0.0)], v = [10..50] (0-based indexing):
        # 0.1*20 + 1.0*40 + 0.0*50 = 42.0
        expected = 42.0
        assert dotp_comprehension(FIG6_SV, FIG6_V) == expected
        assert dotp_vectorised(from_list(FIG6_SV),
                               from_list(FIG6_V)) == expected
        db = Connection()
        assert db.run(dotp_query(FIG6_SV, FIG6_V)) == expected

    @pytest.mark.parametrize("n", [1, 8, 64])
    def test_random_sizes(self, n):
        from repro.bench.workloads import sparse_vector
        sv, v = sparse_vector(n, density=0.5, seed=n)
        if not sv:
            pytest.skip("empty sparse vector")
        expected = dotp_comprehension(sv, v)
        assert dotp_vectorised(from_list(sv),
                               from_list(v)) == pytest.approx(expected)
        db = Connection()
        assert db.run(dotp_query(sv, v)) == pytest.approx(expected)


class TestStructuralCorrespondence:
    def plan(self):
        db = Connection()
        compiled = db.compile(dotp_query(FIG6_SV, FIG6_V))
        assert compiled.bundle.size == 1  # scalar result: one query
        return compiled.bundle.queries[0].plan

    def test_bpermute_becomes_equi_join(self):
        # positional lookup v !! i compiles to a join on the pos encoding
        assert contains(self.plan(), lambda n: isinstance(n, EqJoin))

    def test_lifted_multiplication_becomes_binapp(self):
        assert contains(self.plan(),
                        lambda n: isinstance(n, BinApp) and n.op == "mul")

    def test_sump_becomes_group_aggregation(self):
        assert contains(
            self.plan(),
            lambda n: (isinstance(n, GroupAggr)
                       and any(f == "sum" for f, _, _ in n.aggs)))

    def test_index_join_compares_positions(self):
        # at least one equi-join pair compares an Int column computed from
        # the sparse indexes against the dense vector's positions
        plan = self.plan()
        joins = []
        from repro.algebra import postorder
        for node in postorder(plan):
            if isinstance(node, EqJoin):
                joins.append(node)
        assert len(joins) >= 2  # the iter-joins plus the pos lookup join
