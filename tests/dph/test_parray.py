"""Mini-DPH: parallel arrays and the non-parametric representation."""

import pytest

from repro.dph import (
    FlatArray,
    NestedArray,
    TupleArray,
    add_l,
    bpermute,
    enum_from_to_p,
    from_list,
    fst_l,
    index_p,
    mul_l,
    pack_p,
    replicate_p,
    snd_l,
    sum_p,
    sum_s,
    zip_p,
)


class TestRepresentation:
    def test_flat(self):
        arr = from_list([1.0, 2.0])
        assert isinstance(arr, FlatArray)
        assert arr.to_list() == [1.0, 2.0]

    def test_tuples_become_tuple_of_arrays(self):
        # "[:(a, b):] are represented as tuples of arrays" (Section 4.2)
        arr = from_list([(1, 0.1), (3, 1.0)])
        assert isinstance(arr, TupleArray)
        assert isinstance(arr.parts[0], FlatArray)
        assert arr.parts[0].values == [1, 3]
        assert arr.to_list() == [(1, 0.1), (3, 1.0)]

    def test_nested_becomes_descriptor_plus_data(self):
        # "(offset, length) descriptors and a flat data array"
        arr = from_list([[1, 2], [], [3]])
        assert isinstance(arr, NestedArray)
        assert arr.offsets == [0, 2, 2]
        assert arr.lengths == [2, 0, 1]
        assert arr.data.to_list() == [1, 2, 3]
        assert arr.to_list() == [[1, 2], [], [3]]

    def test_tuple_arrays_check_lengths(self):
        with pytest.raises(ValueError):
            TupleArray((FlatArray([1]), FlatArray([1, 2])))

    def test_empty(self):
        assert from_list([]).to_list() == []


class TestPrimitives:
    SV = from_list([(1, 0.1), (3, 1.0), (4, 0.0)])
    V = from_list([10.0, 20.0, 30.0, 40.0, 50.0])

    def test_projections(self):
        assert fst_l(self.SV).to_list() == [1, 3, 4]
        assert snd_l(self.SV).to_list() == [0.1, 1.0, 0.0]

    def test_projections_require_tuples(self):
        with pytest.raises(TypeError):
            fst_l(self.V)

    def test_bpermute(self):
        out = bpermute(self.V, fst_l(self.SV))
        assert out.to_list() == [20.0, 40.0, 50.0]

    def test_bpermute_bounds(self):
        with pytest.raises(IndexError):
            bpermute(self.V, FlatArray([9]))

    def test_lifted_arithmetic(self):
        assert mul_l(FlatArray([1, 2]), FlatArray([3, 4])).values == [3, 8]
        assert add_l(FlatArray([1, 2]), FlatArray([3, 4])).values == [4, 6]

    def test_sum_p_and_index(self):
        assert sum_p(FlatArray([1, 2, 3])) == 6
        assert index_p(self.V, 2) == 30.0

    def test_segmented_sum(self):
        nested = from_list([[1, 2], [], [3]])
        assert sum_s(nested).values == [3, 0, 3]

    def test_zip_replicate_enum_pack(self):
        assert zip_p(FlatArray([1]), FlatArray(["a"])).to_list() == [(1, "a")]
        assert replicate_p(3, 7).values == [7, 7, 7]
        assert enum_from_to_p(2, 5).values == [2, 3, 4, 5]
        assert pack_p(FlatArray([1, 2, 3]), [True, False, True]).values == [1, 3]
