"""Direct evaluation of algebra plans on the in-memory engine."""

import pytest

from repro.algebra import (
    AntiJoin,
    Attach,
    BinApp,
    Const,
    Cross,
    Distinct,
    EqJoin,
    GroupAggr,
    LitTable,
    Project,
    RowNum,
    RowRank,
    Select,
    SemiJoin,
    TableScan,
    UnApp,
    UnionAll,
)
from repro.backends.engine import Engine
from repro.errors import PartialFunctionError
from repro.ftypes import BoolT, IntT, StringT
from repro.runtime import Catalog


@pytest.fixture()
def engine():
    catalog = Catalog()
    catalog.create_table("t", [("n", int), ("s", str)],
                         [(2, "b"), (1, "a"), (2, "a")])
    return Engine(catalog)


def lt(rows, *cols):
    return LitTable(tuple(rows), tuple(cols))


NUMS = lt([(3,), (1,), (2,)], ("n", IntT))


def rows_of(engine, plan, cols=None):
    rel = engine.execute(plan)
    if cols is None:
        return sorted(rel.rows)
    idx = [rel.col_index(c) for c in cols]
    return sorted(tuple(r[i] for i in idx) for r in rel.rows)


class TestLeavesAndBasics:
    def test_littable(self, engine):
        assert rows_of(engine, NUMS) == [(1,), (2,), (3,)]

    def test_tablescan_renames(self, engine):
        scan = TableScan("t", (("x", "n", IntT), ("y", "s", StringT)))
        assert rows_of(engine, scan) == [(1, "a"), (2, "a"), (2, "b")]

    def test_attach(self, engine):
        plan = Attach(NUMS, "k", True, BoolT)
        assert rows_of(engine, plan) == [(1, True), (2, True), (3, True)]

    def test_project_duplicates(self, engine):
        plan = Project(NUMS, (("a", "n"), ("b", "n")))
        assert rows_of(engine, plan) == [(1, 1), (2, 2), (3, 3)]

    def test_select(self, engine):
        plan = Select(BinApp(NUMS, "gt", "n", Const(1, IntT), "c"), "c")
        assert rows_of(engine, plan, ["n"]) == [(2,), (3,)]

    def test_distinct(self, engine):
        dup = lt([(1,), (1,), (2,)], ("n", IntT))
        assert rows_of(engine, Distinct(dup)) == [(1,), (2,)]


class TestWindows:
    def test_rownum_order(self, engine):
        plan = RowNum(NUMS, "pos", (("n", "asc"),))
        assert rows_of(engine, plan) == [(1, 1), (2, 2), (3, 3)]

    def test_rownum_desc(self, engine):
        plan = RowNum(NUMS, "pos", (("n", "desc"),))
        assert rows_of(engine, plan) == [(1, 3), (2, 2), (3, 1)]

    def test_rownum_partitioned(self, engine):
        t = lt([(1, 10), (1, 5), (2, 7)], ("g", IntT), ("v", IntT))
        plan = RowNum(t, "pos", (("v", "asc"),), ("g",))
        assert rows_of(engine, plan) == [(1, 5, 1), (1, 10, 2), (2, 7, 1)]

    def test_dense_rank(self, engine):
        t = lt([(5,), (3,), (5,), (9,)], ("v", IntT))
        plan = RowRank(t, "rk", (("v", "asc"),))
        assert rows_of(engine, plan) == [(3, 1), (5, 2), (5, 2), (9, 3)]


class TestJoins:
    L = lt([(1, "l1"), (2, "l2")], ("k", IntT), ("lv", StringT))
    R = lt([(2, "r2"), (3, "r3"), (2, "r2b")], ("j", IntT), ("rv", StringT))

    def test_cross(self, engine):
        assert len(rows_of(engine, Cross(self.L, self.R))) == 6

    def test_eqjoin(self, engine):
        plan = EqJoin(self.L, self.R, (("k", "j"),))
        assert rows_of(engine, plan, ["lv", "rv"]) == [
            ("l2", "r2"), ("l2", "r2b")]

    def test_eqjoin_multi_pair(self, engine):
        plan = EqJoin(self.L, self.R, (("k", "j"), ("lv", "rv")))
        assert rows_of(engine, plan) == []

    def test_semijoin(self, engine):
        plan = SemiJoin(self.L, self.R, (("k", "j"),))
        assert rows_of(engine, plan) == [(2, "l2")]

    def test_antijoin(self, engine):
        plan = AntiJoin(self.L, self.R, (("k", "j"),))
        assert rows_of(engine, plan) == [(1, "l1")]

    def test_union_aligns_by_name(self, engine):
        flipped = Project(self.L, (("lv", "lv"), ("k", "k")))
        plan = UnionAll(self.L, flipped)
        assert len(rows_of(engine, plan)) == 4


class TestAggregates:
    T = lt([(1, 10), (1, 20), (2, 5)], ("g", IntT), ("v", IntT))

    def test_sum_count(self, engine):
        plan = GroupAggr(self.T, ("g",), (("sum", "v", "s"),
                                          ("count", None, "n")))
        assert rows_of(engine, plan) == [(1, 30, 2), (2, 5, 1)]

    def test_min_max_avg(self, engine):
        plan = GroupAggr(self.T, ("g",), (("min", "v", "lo"),
                                          ("max", "v", "hi"),
                                          ("avg", "v", "m")))
        assert rows_of(engine, plan) == [(1, 10, 20, 15.0), (2, 5, 5, 5.0)]

    def test_all_any(self, engine):
        t = Attach(BinApp(self.T, "gt", "v", Const(7, IntT), "b"), "k", 0, IntT)
        plan = GroupAggr(t, ("g",), (("all", "b", "a"), ("any", "b", "o")))
        assert rows_of(engine, plan) == [(1, True, True), (2, False, False)]

    def test_global_aggregate_empty_input(self, engine):
        empty = lt([], ("v", IntT))
        plan = GroupAggr(empty, (), (("count", None, "n"),))
        # SQL semantics at the algebra level: no group, no row
        assert rows_of(engine, plan) == []


class TestScalarKernels:
    def test_arith(self, engine):
        plan = BinApp(NUMS, "mul", "n", Const(10, IntT), "m")
        assert rows_of(engine, plan, ["m"]) == [(10,), (20,), (30,)]

    def test_division_by_zero_raises(self, engine):
        plan = BinApp(NUMS, "idiv", "n", Const(0, IntT), "d")
        with pytest.raises(PartialFunctionError):
            engine.execute(plan)

    def test_unapp(self, engine):
        plan = UnApp(NUMS, "neg", "n", "m")
        assert rows_of(engine, plan, ["m"]) == [(-3,), (-2,), (-1,)]

    def test_const_operand_on_left(self, engine):
        plan = BinApp(NUMS, "sub", Const(10, IntT), "n", "m")
        assert rows_of(engine, plan, ["m"]) == [(7,), (8,), (9,)]

    def test_memoizes_shared_subplans(self, engine):
        shared = RowNum(NUMS, "pos", (("n", "asc"),))
        left = Project(shared, (("a", "pos"),))
        right = Project(shared, (("b", "pos"),))
        plan = EqJoin(left, right, (("a", "b"),))
        assert len(rows_of(engine, plan)) == 3
