"""Unit tests for the deep-embedded expression AST."""

import pytest

from repro.expr import (
    AppE,
    BinOpE,
    FnT,
    IfE,
    LamE,
    ListE,
    LitE,
    TableE,
    TupleE,
    TupleElemE,
    UnOpE,
    VarE,
    count_nodes,
    free_vars,
    pretty,
    tables_referenced,
    walk,
)
from repro.ftypes import BoolT, IntT, ListT, StringT, TupleT


def lit(n: int) -> LitE:
    return LitE(n, IntT)


class TestNodeTypes:
    def test_tuple_type_derived(self):
        e = TupleE((lit(1), LitE("a", StringT)))
        assert e.ty == TupleT((IntT, StringT))

    def test_lam_type(self):
        lam = LamE("x", IntT, VarE("x", IntT))
        assert lam.ty == FnT(IntT, IntT)

    def test_tuple_elem_type(self):
        e = TupleElemE(TupleE((lit(1), LitE("a", StringT))), 1)
        assert e.ty == StringT

    def test_tuple_elem_requires_tuple(self):
        with pytest.raises(ValueError):
            TupleElemE(lit(1), 0)

    def test_if_type_from_then_branch(self):
        e = IfE(LitE(True, BoolT), lit(1), lit(2))
        assert e.ty == IntT

    def test_list_carries_type(self):
        e = ListE((), ListT(IntT))
        assert e.ty == ListT(IntT)


class TestTraversal:
    def test_walk_visits_all(self):
        e = BinOpE("add", lit(1), lit(2), IntT)
        kinds = {type(n).__name__ for n in walk(e)}
        assert kinds == {"BinOpE", "LitE"}

    def test_count_nodes(self):
        e = BinOpE("add", lit(1), BinOpE("mul", lit(2), lit(3), IntT), IntT)
        assert count_nodes(e) == 5

    def test_free_vars(self):
        body = BinOpE("add", VarE("x", IntT), VarE("y", IntT), IntT)
        assert free_vars(body) == {"x", "y"}
        lam = LamE("x", IntT, body)
        assert free_vars(lam) == {"y"}

    def test_free_vars_shadowing(self):
        inner = LamE("x", IntT, VarE("x", IntT))
        outer = AppE("map", (inner, VarE("x", ListT(IntT))), ListT(IntT))
        assert free_vars(outer) == {"x"}  # the list variable, not the param

    def test_tables_referenced(self):
        t = TableE("nums", (("n", IntT),), ListT(IntT))
        e = AppE("length", (t,), IntT)
        assert set(tables_referenced(e)) == {"nums"}


class TestPretty:
    def test_literal(self):
        assert pretty(lit(42)) == "42"

    def test_lambda_application(self):
        lam = LamE("x", IntT, BinOpE("mul", VarE("x", IntT), lit(2), IntT))
        e = AppE("map", (lam, VarE("xs", ListT(IntT))), ListT(IntT))
        assert pretty(e) == "map (\\x -> (x * 2)) xs"

    def test_table(self):
        t = TableE("facilities", (("cat", StringT),), ListT(StringT))
        assert pretty(t) == 'table "facilities"'

    def test_if(self):
        e = IfE(LitE(True, BoolT), lit(1), lit(0))
        assert pretty(e) == "if True then 1 else 0"

    def test_projection(self):
        e = TupleElemE(TupleE((lit(1), lit(2))), 0)
        assert pretty(e) == "(1, 2).0"
