"""Construction-time behaviour of the queryable list prelude."""

import pytest

from repro import (
    QTypeError,
    UnsupportedError,
    all_q,
    and_q,
    any_q,
    append,
    break_q,
    concat,
    concat_map,
    cons,
    drop,
    drop_while,
    elem,
    favg,
    ffilter,
    fmap,
    foldl,
    foldr,
    fsum,
    group_with,
    head,
    index,
    init,
    last,
    length,
    maximum_q,
    minimum_q,
    not_elem,
    nub,
    null,
    number,
    or_q,
    reverse,
    singleton,
    snoc,
    sort_with,
    sort_with_desc,
    span_q,
    split_at,
    tail,
    take,
    take_while,
    the,
    to_q,
    tup,
    unzip_q,
    zip3_q,
    zip_q,
    zip_with,
)
from repro.ftypes import (
    BoolT,
    DoubleT,
    IntT,
    ListT,
    StringT,
    TupleT,
)

NUMS = to_q([3, 1, 2])
PAIRS = to_q([(1, "a"), (2, "b")])
NESTED = to_q([[1], [2, 3]])


class TestHigherOrderTyping:
    def test_map_result_type(self):
        assert fmap(lambda x: x == 1, NUMS).ty == ListT(BoolT)

    def test_map_requires_list(self):
        with pytest.raises(QTypeError):
            fmap(lambda x: x, to_q(1))

    def test_map_tuple_unpacking_lambda(self):
        q = fmap(lambda n, s: s, PAIRS)
        assert q.ty == ListT(StringT)

    def test_filter_predicate_must_be_bool(self):
        with pytest.raises(QTypeError):
            ffilter(lambda x: x + 1, NUMS)

    def test_concat_map_must_return_list(self):
        with pytest.raises(QTypeError):
            concat_map(lambda x: x, NUMS)
        q = concat_map(lambda x: to_q([0]), NUMS)
        assert q.ty == ListT(IntT)

    def test_concat_requires_nesting(self):
        assert concat(NESTED).ty == ListT(IntT)
        with pytest.raises(QTypeError):
            concat(NUMS)

    def test_sort_with_key_must_be_flat(self):
        assert sort_with(lambda x: x, NUMS).ty == ListT(IntT)
        with pytest.raises(QTypeError):
            sort_with(lambda x: x, NESTED)

    def test_sort_with_desc_type(self):
        assert sort_with_desc(lambda x: x, NUMS).ty == ListT(IntT)

    def test_group_with_type(self):
        assert group_with(lambda x: x % 2, NUMS).ty == ListT(ListT(IntT))

    def test_quantifiers(self):
        assert all_q(lambda x: x > 0, NUMS).ty == BoolT
        assert any_q(lambda x: x > 0, NUMS).ty == BoolT
        with pytest.raises(QTypeError):
            all_q(lambda x: x, NUMS)

    def test_while_combinators(self):
        assert take_while(lambda x: x > 1, NUMS).ty == ListT(IntT)
        assert drop_while(lambda x: x > 1, NUMS).ty == ListT(IntT)

    def test_span_break(self):
        assert span_q(lambda x: x > 1, NUMS).ty == TupleT(
            (ListT(IntT), ListT(IntT)))
        assert break_q(lambda x: x > 1, NUMS).ty == TupleT(
            (ListT(IntT), ListT(IntT)))

    def test_zip_with(self):
        q = zip_with(lambda a, b: a + b, NUMS, NUMS)
        assert q.ty == ListT(IntT)


class TestFirstOrderTyping:
    def test_element_extractors(self):
        assert head(NUMS).ty == IntT
        assert last(NUMS).ty == IntT
        assert the(NUMS).ty == IntT
        assert index(NUMS, 1).ty == IntT

    def test_the_requires_flat(self):
        with pytest.raises(QTypeError):
            the(NESTED)

    def test_sublists(self):
        assert tail(NUMS).ty == ListT(IntT)
        assert init(NUMS).ty == ListT(IntT)
        assert take(2, NUMS).ty == ListT(IntT)
        assert drop(2, NUMS).ty == ListT(IntT)
        assert split_at(2, NUMS).ty == TupleT((ListT(IntT), ListT(IntT)))

    def test_take_needs_int(self):
        with pytest.raises(QTypeError):
            take(to_q("x"), NUMS)

    def test_misc_shapes(self):
        assert length(NUMS).ty == IntT
        assert null(NUMS).ty == BoolT
        assert reverse(NUMS).ty == ListT(IntT)
        assert nub(NUMS).ty == ListT(IntT)
        assert number(NUMS).ty == ListT(TupleT((IntT, IntT)))

    def test_nub_requires_flat(self):
        with pytest.raises(QTypeError):
            nub(NESTED)

    def test_append_cons_snoc_singleton(self):
        assert append(NUMS, NUMS).ty == ListT(IntT)
        assert cons(9, NUMS).ty == ListT(IntT)
        assert snoc(NUMS, 9).ty == ListT(IntT)
        assert singleton(5).ty == ListT(IntT)

    def test_append_element_mismatch(self):
        with pytest.raises(QTypeError):
            append(NUMS, to_q(["a"]))

    def test_zip_unzip(self):
        z = zip_q(NUMS, to_q(["a", "b"]))
        assert z.ty == ListT(TupleT((IntT, StringT)))
        assert unzip_q(PAIRS).ty == TupleT((ListT(IntT), ListT(StringT)))
        assert zip3_q(NUMS, NUMS, NUMS).ty == ListT(
            TupleT((IntT, IntT, IntT)))

    def test_unzip_requires_pairs(self):
        with pytest.raises(QTypeError):
            unzip_q(NUMS)

    def test_elem(self):
        assert elem(1, NUMS).ty == BoolT
        assert not_elem(1, NUMS).ty == BoolT


class TestFolds:
    def test_special_folds(self):
        assert fsum(NUMS).ty == IntT
        assert fsum(to_q([1.0])).ty == DoubleT
        assert favg(NUMS).ty == DoubleT
        assert maximum_q(NUMS).ty == IntT
        assert minimum_q(NUMS).ty == IntT
        assert and_q(to_q([True])).ty == BoolT
        assert or_q(to_q([False])).ty == BoolT

    def test_sum_requires_numeric(self):
        with pytest.raises(QTypeError):
            fsum(to_q(["a"]))

    def test_extrema_require_orderable_atoms(self):
        with pytest.raises(QTypeError):
            maximum_q(NESTED)

    def test_and_requires_bools(self):
        with pytest.raises(QTypeError):
            and_q(NUMS)

    def test_general_folds_unsupported(self):
        # the paper's documented limitation (Section 3.1)
        with pytest.raises(UnsupportedError):
            foldr(lambda a, b: a, 0, NUMS)
        with pytest.raises(UnsupportedError):
            foldl(lambda a, b: a, 0, NUMS)


class TestFluentMethods:
    def test_chaining(self):
        q = NUMS.map(lambda x: x * 2).filter(lambda x: x > 2).reverse()
        assert q.ty == ListT(IntT)

    def test_aggregate_methods(self):
        assert NUMS.sum().ty == IntT
        assert NUMS.length().ty == IntT
        assert NUMS.maximum().ty == IntT
        assert NESTED.concat().ty == ListT(IntT)

    def test_slicing_methods(self):
        assert NUMS.take(1).ty == ListT(IntT)
        assert NUMS.drop(1).ty == ListT(IntT)
