"""Semantics of Python-syntax comprehensions (pyq / pye)."""

import pytest

from repro import ComprehensionSyntaxError, pye, pyq
from repro.runtime import Catalog
from repro.semantics import Interpreter


@pytest.fixture()
def it():
    return Interpreter(Catalog())


def ev(it, q):
    return it.run(q.exp)


class TestComprehensions:
    def test_basic(self, it):
        assert ev(it, pyq("[x * 2 for x in xs]", xs=[1, 2])) == [2, 4]

    def test_guard(self, it):
        assert ev(it, pyq("[x for x in xs if x % 2 == 0]",
                          xs=[1, 2, 3, 4])) == [2, 4]

    def test_two_generators(self, it):
        q = pyq("[(x, y) for x in a for y in b]", a=[1, 2], b=[3])
        assert ev(it, q) == [(1, 3), (2, 3)]

    def test_dependent_generator(self, it):
        q = pyq("[y for xs in xss for y in xs]", xss=[[1], [2, 3]])
        assert ev(it, q) == [1, 2, 3]

    def test_tuple_target(self, it):
        q = pyq("[a + b for (a, b) in ps]", ps=[(1, 2), (3, 4)])
        assert ev(it, q) == [3, 7]

    def test_nested_comprehension(self, it):
        q = pyq("[[y for y in xs if y < x] for x in xs]", xs=[1, 2])
        assert ev(it, q) == [[], [1]]

    def test_generator_expression_form(self, it):
        assert ev(it, pyq("(x for x in xs)", xs=[5])) == [5]

    def test_chained_comparison(self, it):
        assert ev(it, pyq("[x for x in xs if 1 < x < 4]",
                          xs=[0, 2, 3, 9])) == [2, 3]

    def test_membership(self, it):
        assert ev(it, pyq("[x for x in xs if x in ys]",
                          xs=[1, 2, 3], ys=[2, 3, 9])) == [2, 3]
        assert ev(it, pyq("[x for x in xs if x not in ys]",
                          xs=[1, 2], ys=[2])) == [1]

    def test_conditional_expression(self, it):
        q = pyq("[x if x > 0 else -x for x in xs]", xs=[-2, 3])
        assert ev(it, q) == [2, 3]


class TestPythonBuiltins:
    def test_len_sum(self, it):
        assert ev(it, pye("len(xs)", xs=[1, 2, 3])) == 3
        assert ev(it, pye("sum(xs)", xs=[1, 2, 3])) == 6

    def test_max_min(self, it):
        assert ev(it, pye("max(xs)", xs=[1, 5, 3])) == 5
        assert ev(it, pye("min(2, 7)")) == 2

    def test_any_all(self, it):
        assert ev(it, pye("any([x > 2 for x in xs])", xs=[1, 3])) is True
        assert ev(it, pye("all([x > 2 for x in xs])", xs=[1, 3])) is False

    def test_sorted(self, it):
        assert ev(it, pye("sorted(xs)", xs=[3, 1, 2])) == [1, 2, 3]
        assert ev(it, pye("sorted(xs, key=lambda x: -x)",
                          xs=[3, 1, 2])) == [3, 2, 1]
        assert ev(it, pye("sorted(xs, reverse=True)",
                          xs=[3, 1, 2])) == [3, 2, 1]

    def test_reversed_list(self, it):
        assert ev(it, pye("list(reversed(xs))", xs=[1, 2])) == [2, 1]

    def test_zip(self, it):
        assert ev(it, pye("zip(a, b)", a=[1, 2], b=["x", "y"])) == [
            (1, "x"), (2, "y")]

    def test_enumerate(self, it):
        assert ev(it, pye("enumerate(xs)", xs=["a", "b"])) == [
            (0, "a"), (1, "b")]

    def test_abs_float(self, it):
        assert ev(it, pye("abs(-3)")) == 3
        assert ev(it, pye("float(3)")) == 3.0

    def test_subscript(self, it):
        assert ev(it, pye("p[1]", p=(1, "x"))) == "x"
        assert ev(it, pye("xs[2]", xs=[7, 8, 9])) == 9

    def test_lambda_env_function(self, it):
        assert ev(it, pye("f(3)", f=lambda q: q * 10)) == 30


class TestErrors:
    def test_not_a_comprehension(self):
        with pytest.raises(ComprehensionSyntaxError):
            pyq("1 + 1")

    def test_invalid_syntax(self):
        with pytest.raises(ComprehensionSyntaxError):
            pyq("[x for x in")

    def test_unbound_name(self):
        with pytest.raises(ComprehensionSyntaxError):
            pyq("[x for x in nope]")

    def test_unknown_function(self):
        with pytest.raises(ComprehensionSyntaxError):
            pyq("[foo(x) for x in xs]", xs=[1])

    def test_starred_rejected(self):
        with pytest.raises(ComprehensionSyntaxError):
            pye("f(*xs)", f=lambda *a: a, xs=[1])

    def test_async_rejected(self):
        with pytest.raises(ComprehensionSyntaxError):
            pyq("[x async for x in xs]", xs=[1])
